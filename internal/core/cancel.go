package core

import (
	"context"
	"errors"
	"fmt"
)

// cancelStride is how many node expansions pass between context polls in
// the search loops. Polling a context takes a mutex, so checking on every
// node would tax the hot path; once per stride bounds both the overhead
// and the cancellation latency (a canceled search stops within at most
// cancelStride further expansions per worker).
const cancelStride = 256

// CanceledError is the partial-work error returned when a detection run is
// canceled mid-lattice: the traversal stopped early, the partial result was
// discarded, and NodesExamined records how much work was done before the
// cancellation was observed. It unwraps to the context's error, so
// errors.Is(err, context.Canceled) works.
type CanceledError struct {
	// NodesExamined counts the pattern nodes examined before the search
	// observed the cancellation and stopped.
	NodesExamined int64
	// Cause is the context's error (context.Canceled or DeadlineExceeded).
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: search canceled after %d node expansions: %v", e.NodesExamined, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// DeadlineExceeded reports whether the cancellation was a time budget
// expiring rather than an explicit cancel — the service maps the former
// to a deadline_exceeded envelope and the latter to a canceled job.
func (e *CanceledError) DeadlineExceeded() bool {
	return errors.Is(e.Cause, context.DeadlineExceeded)
}

// canceler polls a context once every cancelStride node expansions. Each
// worker goroutine owns one (no synchronization); a nil context disables
// polling entirely.
type canceler struct {
	ctx    context.Context
	tick   int
	halted bool
}

// stopped reports whether the search should abandon its traversal. It is
// called once per node expansion; most calls only bump a counter.
func (c *canceler) stopped() bool {
	if c.halted {
		return true
	}
	if c.ctx == nil {
		return false
	}
	if c.tick++; c.tick >= cancelStride {
		c.tick = 0
		c.halted = c.ctx.Err() != nil
	}
	return c.halted
}

// preflight rejects an already-canceled context before any work happens.
func preflight(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CanceledError{Cause: err}
	}
	return nil
}

// canceledErr builds the partial-work error for a search halted after
// nodes expansions.
func canceledErr(ctx context.Context, nodes int64) error {
	cause := context.Canceled
	if ctx != nil && ctx.Err() != nil {
		cause = ctx.Err()
	}
	return &CanceledError{NodesExamined: nodes, Cause: cause}
}
