package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"running", "worstcase", "student", "compas", "german"} {
		out := filepath.Join(dir, name+".csv")
		if err := run(name, 40, 1, out); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s: only %d lines", name, lines)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 10, 1, ""); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("student", 40, 1, "/nonexistent/dir/file.csv"); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestDefaults(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.csv")
	if err := run("german", 0, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1001 { // header + 1000
		t.Errorf("german default rows: %d lines", lines)
	}
}
