package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"rankfair/internal/synth"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	cfg := Defaults()
	cfg.Tau = 10
	cfg.KMin, cfg.KMax = 5, 14
	cfg.LowerBase, cfg.LowerStep, cfg.LowerWidth = 2, 2, 5
	cfg.Timeout = 0
	return cfg
}

func tinyStudent() *synth.Bundle { return synth.Students(120, 3) }

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Defaults()
	if cfg.Tau != 50 || cfg.KMin != 10 || cfg.KMax != 49 || cfg.Alpha != 0.8 {
		t.Errorf("defaults diverge from Section VI-A: %+v", cfg)
	}
	lower := cfg.lower(10, 49)
	if lower[0] != 10 || lower[39] != 40 {
		t.Errorf("staircase = %v", lower)
	}
}

func TestDatasetsScaling(t *testing.T) {
	bundles := Datasets(1, 1)
	if len(bundles) != 3 {
		t.Fatalf("%d bundles", len(bundles))
	}
	wantRows := map[string]int{"compas": 6889, "student": 395, "german": 1000}
	for _, b := range bundles {
		if got := b.Table.NumRows(); got != wantRows[b.Name] {
			t.Errorf("%s: %d rows, want %d", b.Name, got, wantRows[b.Name])
		}
	}
	small := Datasets(0.01, 1)
	for _, b := range small {
		if b.Table.NumRows() < 60 {
			t.Errorf("%s: scaled below the floor: %d", b.Name, b.Table.NumRows())
		}
	}
	if Datasets(-1, 1)[0].Table.NumRows() != 6889 {
		t.Error("non-positive scale should mean 1.0")
	}
}

func TestAttrSweepShape(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.AttrSweep(tinyStudent(), false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 { // attrs 3..6
		t.Fatalf("%d rows, want 4", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if len(row) != len(fig.Header) {
			t.Fatalf("row width %d, header %d", len(row), len(fig.Header))
		}
		if !strings.HasSuffix(row[1], "ms") || !strings.HasSuffix(row[2], "ms") {
			t.Errorf("durations missing: %v", row)
		}
		if _, err := strconv.ParseInt(row[4], 10, 64); err != nil {
			t.Errorf("baseline nodes not numeric: %v", row)
		}
	}
	// Proportional variant has the PropBounds column.
	figP, err := cfg.AttrSweep(tinyStudent(), true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if figP.Header[2] != "PropBounds" {
		t.Errorf("header = %v", figP.Header)
	}
}

func TestThresholdSweepShape(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.ThresholdSweep(tinyStudent(), false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 10 { // τs = 10..100 step 10
		t.Fatalf("%d rows, want 10", len(fig.Rows))
	}
	if fig.Rows[0][0] != "10" || fig.Rows[9][0] != "100" {
		t.Errorf("τs endpoints: %v %v", fig.Rows[0][0], fig.Rows[9][0])
	}
}

func TestKRangeSweepShape(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.KRangeSweep(tinyStudent(), true, 5, []int{20, 60, 110, 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 { // 9999 exceeds the 120-row dataset
		t.Fatalf("%d rows, want 3", len(fig.Rows))
	}
}

func TestNodesExaminedReduction(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.NodesExamined([]*synth.Bundle{tinyStudent()}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 { // global + proportional
		t.Fatalf("%d rows", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if !strings.HasSuffix(row[4], "%") {
			t.Errorf("reduction cell %q", row[4])
		}
	}
	// The global-bounds reduction is guaranteed non-negative (the
	// incremental algorithm never revisits more nodes than the baseline).
	red := strings.TrimSuffix(fig.Rows[0][4], "%")
	v, err := strconv.ParseFloat(red, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", red, err)
	}
	if v < 0 {
		t.Errorf("global reduction negative: %v", v)
	}
}

func TestShapleyCases(t *testing.T) {
	cfg := tinyConfig()
	cfg.Tau = 20
	bundles := []*synth.Bundle{synth.Students(200, 5), synth.GermanCredit(200, 6)}
	cases, err := cfg.ShapleyCases(bundles)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("%d cases", len(cases))
	}
	for _, c := range cases {
		if len(c.Shapley.Rows) == 0 {
			t.Errorf("%s: empty Shapley table", c.Dataset)
		}
		if !strings.Contains(c.Distribution, "top-k") {
			t.Errorf("%s: missing distribution", c.Dataset)
		}
		var sb strings.Builder
		if err := c.Shapley.Render(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "attribute") {
			t.Error("render lost the header")
		}
	}
}

func TestCaseStudy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Tau = 16 // support 16/120 ≈ 0.13, the paper's ratio
	fig, err := cfg.CaseStudy(tinyStudent())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PropBounds", "GlobalBounds", "Divergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study missing %q:\n%s", want, out)
		}
	}
}

func TestResultSizeSurvey(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.ResultSizeSurvey([]*synth.Bundle{tinyStudent()}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if !strings.HasSuffix(row[5], "%") {
			t.Errorf("fraction cell %q", row[5])
		}
	}
}

func TestTimeoutMarksRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Timeout = time.Nanosecond
	fig, err := cfg.AttrSweep(tinyStudent(), false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) == 0 {
		t.Fatal("no rows")
	}
	if fig.Rows[0][1] != "timeout" {
		t.Errorf("baseline cell = %q, want timeout", fig.Rows[0][1])
	}
}

func TestFigureRenderAlignment(t *testing.T) {
	fig := &Figure{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[1], "  a  ") || !strings.HasPrefix(lines[2], "  xxx") {
		t.Errorf("misaligned:\n%s", sb.String())
	}
}

func TestExtensionSweep(t *testing.T) {
	cfg := tinyConfig()
	fig, err := cfg.ExtensionSweep(tinyStudent(), 5, []int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 { // 2 kmaxes x 2 measures
		t.Fatalf("%d rows, want 4", len(fig.Rows))
	}
	var sb strings.Builder
	if err := fig.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "exposure") || !strings.Contains(sb.String(), "global-upper") {
		t.Errorf("csv missing measures:\n%s", sb.String())
	}
}
