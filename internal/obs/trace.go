package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one request's span tree: a root span covering the whole job
// plus nested phase spans (decode → rank → index → search → serialize).
// Spans are appended by at most a handful of goroutines per request, so a
// single trace-level mutex is cheap; the cost per span is one lock and a
// couple of time.Now calls, far below the phases it brackets.
type Trace struct {
	id    string
	mu    sync.Mutex
	root  *Span
	start time.Time
}

// Span is one timed phase inside a trace. A nil *Span is a valid no-op
// receiver everywhere, which is how instrumented code paths stay free of
// "is tracing on" conditionals.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	children []*Span
}

// NewTrace starts a trace whose root span (named name) opens at start.
func NewTrace(id, name string, start time.Time) *Trace {
	t := &Trace{id: id, start: start}
	t.root = &Span{tr: t, name: name, start: start}
	return t
}

// ID returns the trace's correlation ID (the job ID on the audit path).
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// StartChild opens a child span starting now.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, time.Now(), time.Time{})
}

// ChildAt records a child span with explicit endpoints; a zero end leaves
// the span open for a later Finish.
func (s *Span) ChildAt(name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: start, end: end}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// Finish closes the span now.
func (s *Span) Finish() { s.FinishAt(time.Now()) }

// FinishAt closes the span at a caller-provided instant.
func (s *Span) FinishAt(t time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.end = t
	s.tr.mu.Unlock()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context; StartSpan calls below it
// open children of that span. Attaching a nil span is a no-op carrier.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil when tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying it. Without a span on the context it returns
// the context unchanged and a nil span — Finish on nil is a no-op, so call
// sites need no tracing conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// SpanTree is the JSON rendering of one span: offsets are relative to the
// trace start so a reader can line phases up without absolute timestamps.
type SpanTree struct {
	Name       string     `json:"name"`
	StartMS    float64    `json:"start_ms"`
	DurationMS float64    `json:"duration_ms"`
	Children   []SpanTree `json:"children,omitempty"`
}

// TraceTree is the JSON rendering of a whole trace.
type TraceTree struct {
	ID         string   `json:"id"`
	Start      string   `json:"start"`
	DurationMS float64  `json:"duration_ms"`
	Root       SpanTree `json:"root"`
}

// Tree snapshots the trace as a JSON-renderable span tree. Open spans
// render with duration 0.
func (t *Trace) Tree() TraceTree {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.root.treeLocked(t.start)
	return TraceTree{
		ID:         t.id,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMS: root.DurationMS,
		Root:       root,
	}
}

func (s *Span) treeLocked(origin time.Time) SpanTree {
	out := SpanTree{
		Name:    s.name,
		StartMS: float64(s.start.Sub(origin)) / float64(time.Millisecond),
	}
	if !s.end.IsZero() {
		out.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.treeLocked(origin))
	}
	return out
}

// TraceStore is a bounded ring of finished traces keyed by ID: the
// serving layer records every finished audit's trace here and the trace
// endpoint reads them back. When the ring is full the oldest trace falls
// out.
type TraceStore struct {
	mu   sync.Mutex
	m    map[string]*Trace
	ring []string
	head int
	size int
}

// NewTraceStore returns a store retaining up to capacity traces (<= 0
// selects 256).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceStore{m: make(map[string]*Trace, capacity), ring: make([]string, capacity)}
}

// Put records a finished trace, evicting the oldest when full. Re-putting
// an ID replaces the stored trace without consuming a ring slot.
func (ts *TraceStore) Put(t *Trace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.m[t.id]; ok {
		ts.m[t.id] = t
		return
	}
	if ts.size == len(ts.ring) {
		delete(ts.m, ts.ring[ts.head])
	} else {
		ts.size++
	}
	ts.ring[ts.head] = t.id
	ts.head = (ts.head + 1) % len(ts.ring)
	ts.m[t.id] = t
}

// Get returns the trace recorded under id.
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.m[id]
	return t, ok
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.size
}
