package rankfair

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"rankfair/internal/core"
	"rankfair/internal/count"
)

// GroupInfo enriches a detected group with the quantities behind its
// detection, supporting the output organization the paper recommends
// ("rank the groups by their overall size in the data or by the bias in
// their representation", Section III).
type GroupInfo struct {
	// Pattern is the detected group.
	Pattern Pattern
	// Size is s_D(p), the group's size in the dataset.
	Size int
	// TopK is s_{R_k(D)}(p), the group's size among the top-k.
	TopK int
	// Required is the bound the group violates at k: the lower bound for
	// under-representation reports, the upper bound for over-representation
	// reports.
	Required float64
	// Bias is the violation magnitude: Required-TopK for lower bounds,
	// TopK-Required for upper bounds. Larger means more biased.
	Bias float64
}

// reportKind identifies which bound a Report's groups violate.
type reportKind int

const (
	kindGlobalLower reportKind = iota
	kindPropLower
	kindGlobalUpper
	kindPropUpper
	kindExposure
)

// groupCounts is one distinct group's materialized count vector: its size
// in the dataset plus, for every k in the report's range, its top-k count
// (and, for exposure reports, its top-k exposure). Built in one pass per
// group from the rank-indexed match list — counts at k+1 derive from
// counts at k — instead of a dataset scan per (group, k). The rendered
// JSON labels are precomputed here too: a group typically appears at many
// prefixes, and building its attribute→label map per (group, k) dominated
// warm-report serialization.
type groupCounts struct {
	sD     int
	counts []int32   // counts[k-KMin] = s_{R_k(D)}(p)
	exps   []float64 // exposure kind only: exps[k-KMin] = exposure_k(p)
	// labels maps attribute names to value labels (GroupJSON.Pattern);
	// shared read-only across every k-level entry of the group. pairs is
	// the same assignment as sorted key/value pairs, the iteration order
	// the streaming JSON encoder needs (encoding/json sorts map keys).
	labels map[string]string
	pairs  [][2]string
}

// levelEntry pairs one group of a k-level result set with its canonical
// key and count vectors, aligned index-for-index with Result.Groups so
// InfoAt never rebuilds keys or re-probes the map per (group, k).
type levelEntry struct {
	key string
	gc  *groupCounts
}

// exposurePrefixLocked returns the cumulative exposure table E with
// E[k] = sum_{i=1..k} PositionExposure(i), building it on first use.
// Report.bound previously re-summed the series on every call, making
// serialization O(K²) in the exposure weights alone. Callers hold matMu.
func (r *Report) exposurePrefixLocked() []float64 {
	if r.expPrefix == nil {
		w := make([]float64, r.KMax)
		pre := make([]float64, r.KMax+1)
		for i := 0; i < r.KMax; i++ {
			w[i] = core.PositionExposure(i + 1)
			pre[i+1] = pre[i] + w[i]
		}
		r.expWeights, r.expPrefix = w, pre
	}
	return r.expPrefix
}

func (r *Report) exposurePrefix() []float64 {
	r.matMu.Lock()
	defer r.matMu.Unlock()
	return r.exposurePrefixLocked()
}

// materialized returns the per-level (key, counts) slices for the whole
// report, building them on first use: one index probe per distinct group
// covers the whole [KMin, KMax] range, so InfoAt and ToJSON are
// incremental across k instead of rescanning the dataset per (group, k),
// and every group's key string is built exactly once per report.
func (r *Report) materialized() [][]levelEntry {
	r.matMu.Lock()
	defer r.matMu.Unlock()
	if r.levels != nil {
		return r.levels
	}
	ix := r.analyst.index()
	var w []float64
	if r.kind == kindExposure {
		r.exposurePrefixLocked()
		w = r.expWeights
	}
	mat := make(map[string]*groupCounts)
	levels := make([][]levelEntry, len(r.Groups))
	for li, ks := range r.Groups {
		if len(ks) == 0 {
			continue
		}
		level := make([]levelEntry, len(ks))
		for gi, g := range ks {
			key := g.Key()
			gc, ok := mat[key]
			if !ok {
				ranks := ix.MatchRanks(g)
				gc = &groupCounts{sD: len(ranks), counts: count.CountsOver(ranks, r.KMin, r.KMax)}
				if r.kind == kindExposure {
					gc.exps = count.ExposuresOver(ranks, w, r.KMin, r.KMax)
				}
				gc.labels, gc.pairs = r.groupLabels(g)
				mat[key] = gc
			}
			level[gi] = levelEntry{key: key, gc: gc}
		}
		levels[li] = level
	}
	r.levels = levels
	return r.levels
}

// bound computes the violated bound for a pattern of size sD at prefix k.
// expPrefix is the cumulative exposure table, consulted only by
// exposure-kind reports; callers fetch it once per batch (exposurePrefix)
// rather than per (group, k), keeping the hot serialization loop free of
// lock round-trips.
func (r *Report) bound(sD, k int, expPrefix []float64) float64 {
	n := float64(len(r.analyst.in.Rows))
	switch r.kind {
	case kindGlobalLower:
		return float64(r.gParams.Lower[k-r.gParams.KMin])
	case kindPropLower:
		return r.pParams.Alpha * float64(sD) * float64(k) / n
	case kindGlobalUpper:
		return float64(r.guParams.Upper[k-r.guParams.KMin])
	case kindExposure:
		return r.eParams.Alpha * float64(sD) * expPrefix[k] / n
	default:
		return r.puParams.Beta * float64(sD) * float64(k) / n
	}
}

// boundNaive is the pre-index bound computation, kept as the differential
// and benchmark baseline: for exposure reports it re-sums the position
// series on every call (O(k) per call, O(K²) per report).
func (r *Report) boundNaive(sD, k int) float64 {
	if r.kind != kindExposure {
		return r.bound(sD, k, nil)
	}
	n := float64(len(r.analyst.in.Rows))
	ek := 0.0
	for i := 1; i <= k; i++ {
		ek += core.PositionExposure(i)
	}
	return r.eParams.Alpha * float64(sD) * ek / n
}

// groupLabels renders a group's attribute→label assignment once per
// distinct group: the map feeds GroupJSON.Pattern (shared read-only by
// every k level the group appears at), the sorted pairs feed the streaming
// encoder. Duplicate attribute names collapse exactly as they do in the
// map, so the pair view and the map marshal identically.
func (r *Report) groupLabels(g Pattern) (map[string]string, [][2]string) {
	attrs := g.Attrs()
	labels := make(map[string]string, len(attrs))
	for _, a := range attrs {
		label := strconv.Itoa(int(g[a]))
		if r.analyst.dicts != nil && a < len(r.analyst.dicts) && int(g[a]) < len(r.analyst.dicts[a]) {
			label = r.analyst.dicts[a][g[a]]
		}
		labels[r.analyst.in.Space.Names[a]] = label
	}
	pairs := make([][2]string, 0, len(labels))
	for name, label := range labels {
		pairs = append(pairs, [2]string{name, label})
	}
	slices.SortFunc(pairs, func(a, b [2]string) int { return strings.Compare(a[0], b[0]) })
	return labels, pairs
}

// keyedInfo pairs one enriched group with its materialized level entry, so
// serialization reads precomputed keys and label maps instead of
// rebuilding them per (group, k).
type keyedInfo struct {
	info GroupInfo
	le   levelEntry
}

// enrichedAt computes the enriched result set at k from the materialized
// per-group vectors, sorted by descending bias (ties: larger groups first,
// then deterministic key order). It returns nil when k is out of range.
func (r *Report) enrichedAt(k int) []keyedInfo {
	groups := r.At(k)
	if groups == nil {
		return nil
	}
	level := r.materialized()[k-r.KMin]
	var expPrefix []float64
	if r.kind == kindExposure {
		expPrefix = r.exposurePrefix()
	}
	items := make([]keyedInfo, len(groups))
	for i, g := range groups {
		le := level[i]
		sD := le.gc.sD
		cnt := int(le.gc.counts[k-r.KMin])
		req := r.bound(sD, k, expPrefix)
		var bias float64
		switch r.kind {
		case kindGlobalUpper, kindPropUpper:
			bias = float64(cnt) - req
		case kindExposure:
			bias = req - le.gc.exps[k-r.KMin]
		default:
			bias = req - float64(cnt)
		}
		items[i] = keyedInfo{
			info: GroupInfo{Pattern: g, Size: sD, TopK: cnt, Required: req, Bias: bias},
			le:   le,
		}
	}
	slices.SortFunc(items, func(a, b keyedInfo) int {
		if a.info.Bias != b.info.Bias {
			if a.info.Bias > b.info.Bias {
				return -1
			}
			return 1
		}
		if a.info.Size != b.info.Size {
			return b.info.Size - a.info.Size
		}
		return strings.Compare(a.le.key, b.le.key)
	})
	return items
}

// InfoAt returns the result set at k enriched with sizes, bounds and bias
// magnitudes, sorted by descending bias (ties: larger groups first, then
// deterministic key order). Counts come from the report's materialized
// per-group vectors (see materialized); outputs are byte-identical to the
// naive dataset scans they replaced.
func (r *Report) InfoAt(k int) []GroupInfo {
	if r.naiveCounts {
		if r.At(k) == nil {
			return nil
		}
		return r.infoAtNaive(k)
	}
	items := r.enrichedAt(k)
	if items == nil {
		return nil
	}
	infos := make([]GroupInfo, len(items))
	for i := range items {
		infos[i] = items[i].info
	}
	return infos
}

// infoAtNaive is the pre-index InfoAt, preserved verbatim as the
// differential-test and benchmark baseline: one full dataset scan per
// group for s_D(p), one top-k scan per group for s_{R_k(D)}(p), and key
// rebuilding inside the sort comparator.
func (r *Report) infoAtNaive(k int) []GroupInfo {
	groups := r.At(k)
	if groups == nil {
		return nil
	}
	in := r.analyst.in
	infos := make([]GroupInfo, len(groups))
	for i, g := range groups {
		sD := g.Count(in.Rows)
		cnt := g.CountTopK(in.Rows, in.Ranking, k)
		req := r.boundNaive(sD, k)
		var bias float64
		switch r.kind {
		case kindGlobalUpper, kindPropUpper:
			bias = float64(cnt) - req
		case kindExposure:
			bias = req - core.PatternExposure(in, g, k)
		default:
			bias = req - float64(cnt)
		}
		infos[i] = GroupInfo{Pattern: g, Size: sD, TopK: cnt, Required: req, Bias: bias}
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].Bias != infos[b].Bias {
			return infos[a].Bias > infos[b].Bias
		}
		if infos[a].Size != infos[b].Size {
			return infos[a].Size > infos[b].Size
		}
		return infos[a].Pattern.Key() < infos[b].Pattern.Key()
	})
	return infos
}

// Measure returns the report's measure name as serialized in ReportJSON
// (e.g. "proportional-lower"). It identifies which bound the report's
// groups violate without exposing the parameter structs.
func (r *Report) Measure() string { return r.measureName() }

// Describe renders one enriched group as a human-readable line, e.g.
//
//	{sex=F, address=R}: 61 tuples, 2 of top-20 (bound 4.9, bias 2.9)
func (r *Report) Describe(info GroupInfo, k int) string {
	return fmt.Sprintf("%s: %d tuples, %d of top-%d (bound %.1f, bias %.1f)",
		r.Format(info.Pattern), info.Size, info.TopK, k, info.Required, info.Bias)
}

// SuggestLowerBounds proposes a non-decreasing lower-bound staircase for
// DetectGlobal from a target share: L_k = floor(share·k), clamped to at
// least 1 once share·k reaches 1. It addresses the paper's future-work item
// of automatic threshold suggestion with the simplest useful policy: "every
// substantial group should hold at least `share` of every prefix".
func SuggestLowerBounds(kMin, kMax int, share float64) ([]int, error) {
	if kMax < kMin || kMin < 1 {
		return nil, fmt.Errorf("rankfair: invalid k range [%d,%d]", kMin, kMax)
	}
	if share <= 0 || share > 1 {
		return nil, fmt.Errorf("rankfair: share %v outside (0,1]", share)
	}
	out := make([]int, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		out[k-kMin] = int(share * float64(k))
	}
	return out, nil
}

// attachKind records the bound parameters on a freshly built report so
// InfoAt can recompute per-group bounds.
func (r *Report) attachGlobal(p core.GlobalParams) *Report {
	r.kind = kindGlobalLower
	r.gParams = p
	return r
}

func (r *Report) attachProp(p core.PropParams) *Report {
	r.kind = kindPropLower
	r.pParams = p
	return r
}

func (r *Report) attachGlobalUpper(p core.GlobalUpperParams) *Report {
	r.kind = kindGlobalUpper
	r.guParams = p
	return r
}

func (r *Report) attachPropUpper(p core.PropUpperParams) *Report {
	r.kind = kindPropUpper
	r.puParams = p
	return r
}
