// Package stats provides the small statistical helpers the result-analysis
// pipeline needs: categorical value-distribution histograms, the top-k vs
// detected-group distribution comparison of Figures 10d-10f, and summary
// statistics.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram holds the proportion of tuples per categorical value.
type Histogram struct {
	// Labels are the value labels in dictionary order.
	Labels []string
	// Props[i] is the fraction of tuples with value i; sums to 1 for
	// non-empty input.
	Props []float64
	// N is the number of tuples summarized.
	N int
}

// NewHistogram computes the distribution of codes over a domain of the
// given cardinality. labels may be nil, in which case codes are rendered
// numerically.
func NewHistogram(codes []int32, card int, labels []string) *Histogram {
	h := &Histogram{Props: make([]float64, card), N: len(codes)}
	if labels != nil {
		h.Labels = labels
	} else {
		h.Labels = make([]string, card)
		for i := range h.Labels {
			h.Labels[i] = fmt.Sprintf("%d", i)
		}
	}
	if len(codes) == 0 {
		return h
	}
	for _, c := range codes {
		if c >= 0 && int(c) < card {
			h.Props[c]++
		}
	}
	for i := range h.Props {
		h.Props[i] /= float64(len(codes))
	}
	return h
}

// Comparison pairs the distribution of one attribute among the top-k tuples
// with its distribution inside a detected group (Figures 10d-10f).
type Comparison struct {
	// Attribute names the compared attribute.
	Attribute string
	// TopK and Group are distributions over the same value domain.
	TopK, Group *Histogram
}

// TotalVariation returns the total variation distance between the two
// distributions: half the L1 distance, in [0, 1].
func (c *Comparison) TotalVariation() float64 {
	tv := 0.0
	for i := range c.TopK.Props {
		tv += math.Abs(c.TopK.Props[i] - c.Group.Props[i])
	}
	return tv / 2
}

// Render formats the comparison as an aligned text table with proportion
// bars, the textual analogue of the paper's bar charts.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "value distribution of %q (top-k n=%d vs group n=%d)\n", c.Attribute, c.TopK.N, c.Group.N)
	width := 5
	for _, l := range c.TopK.Labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, label := range c.TopK.Labels {
		fmt.Fprintf(&b, "  %-*s  top-k %5.1f%% %-20s  group %5.1f%% %s\n",
			width, label,
			100*c.TopK.Props[i], bar(c.TopK.Props[i]),
			100*c.Group.Props[i], bar(c.Group.Props[i]))
	}
	return b.String()
}

func bar(p float64) string {
	n := int(math.Round(p * 20))
	if n < 0 {
		n = 0
	}
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n)
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
