package synth

import (
	"strings"
	"testing"

	"rankfair/internal/dataset"
)

func TestRunningExampleShape(t *testing.T) {
	b := RunningExample()
	if b.Table.NumRows() != 16 {
		t.Fatalf("rows = %d, want 16", b.Table.NumRows())
	}
	if got := b.NumCatAttrs(); got != 4 {
		t.Fatalf("categorical attrs = %d, want 4", got)
	}
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"Gender", "School", "Address", "Failures"}
	for i, w := range wantNames {
		if in.Space.Names[i] != w {
			t.Errorf("attr %d = %q, want %q", i, in.Space.Names[i], w)
		}
	}
	// Top-1 must be tuple 12 (grade 20).
	if in.Ranking[0] != 11 {
		t.Errorf("top tuple = %d, want 12", in.Ranking[0]+1)
	}
}

func TestWorstCaseMatchesFigure2(t *testing.T) {
	const n = 6
	b := WorstCase(n)
	if b.Table.NumRows() != n+1 {
		t.Fatalf("rows = %d, want %d", b.Table.NumRows(), n+1)
	}
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := int32(0)
			if i == j {
				want = 1
			}
			if in.Rows[i][j] != want {
				t.Errorf("t%d[A%d] = %d, want %d", i+1, j+1, in.Rows[i][j], want)
			}
		}
		if in.Ranking[i] != i {
			t.Errorf("ranking[%d] = %d, want identity", i, in.Ranking[i])
		}
	}
	for j := 0; j < n; j++ {
		if in.Rows[n][j] != 0 {
			t.Errorf("t%d[A%d] = %d, want 0", n+1, j+1, in.Rows[n][j])
		}
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	gens := []func(int64) *Bundle{
		func(s int64) *Bundle { return Students(150, s) },
		func(s int64) *Bundle { return COMPAS(200, s) },
		func(s int64) *Bundle { return GermanCredit(150, s) },
	}
	for _, gen := range gens {
		a, b, c := gen(1), gen(1), gen(2)
		ia, err := a.Input()
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Input()
		if err != nil {
			t.Fatal(err)
		}
		ic, err := c.Input()
		if err != nil {
			t.Fatal(err)
		}
		same, diff := true, false
		for i := range ia.Rows {
			for j := range ia.Rows[i] {
				if ia.Rows[i][j] != ib.Rows[i][j] {
					same = false
				}
				if ia.Rows[i][j] != ic.Rows[i][j] {
					diff = true
				}
			}
		}
		if !same {
			t.Errorf("%s: same seed must reproduce identical data", a.Name)
		}
		if !diff {
			t.Errorf("%s: different seeds should differ", a.Name)
		}
	}
}

func TestStudentsShapeAndCorrelations(t *testing.T) {
	b := Students(DefaultStudentRows, 42)
	if b.Table.NumRows() != 395 {
		t.Fatalf("rows = %d", b.Table.NumRows())
	}
	if got := b.NumCatAttrs(); got != 33 {
		t.Fatalf("categorical attrs = %d, want 33", got)
	}
	// Mother's education must correlate positively with the final grade
	// (the paper's Figure 10a finding).
	medu := b.Table.ColumnByName("Medu")
	score := b.Table.ColumnByName("G3_score")
	loSum, loN, hiSum, hiN := 0.0, 0, 0.0, 0
	for i := 0; i < b.Table.NumRows(); i++ {
		switch medu.Label(medu.Codes[i]) {
		case "none", "primary":
			loSum += score.Floats[i]
			loN++
		case "higher":
			hiSum += score.Floats[i]
			hiN++
		}
	}
	if loN < 10 || hiN < 10 {
		t.Fatalf("degenerate education distribution: lo=%d hi=%d", loN, hiN)
	}
	if hiSum/float64(hiN) <= loSum/float64(loN)+0.5 {
		t.Errorf("G3 should rise with mother's education: low=%.2f high=%.2f",
			loSum/float64(loN), hiSum/float64(hiN))
	}
	// Grades must be in [0,20].
	for _, v := range score.Floats {
		if v < 0 || v > 20 {
			t.Fatalf("grade %v out of range", v)
		}
	}
}

func TestCOMPASShape(t *testing.T) {
	b := COMPAS(1000, 7)
	if got := b.NumCatAttrs(); got != 16 {
		t.Fatalf("categorical attrs = %d, want 16", got)
	}
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Rows) != 1000 {
		t.Fatalf("rows = %d", len(in.Rows))
	}
	// The age<35 bucket must be substantial (it is the paper's case-study
	// group p2 and needs s_D >= τs = 50).
	age := b.Table.ColumnByName("age")
	young := 0
	for _, c := range age.Codes {
		if age.Label(c) == "<35" {
			young++
		}
	}
	if young < 100 {
		t.Errorf("only %d individuals younger than 35", young)
	}
}

func TestGermanShapeAndRankingDirection(t *testing.T) {
	b := GermanCredit(DefaultGermanRows, 3)
	if b.Table.NumRows() != 1000 {
		t.Fatalf("rows = %d", b.Table.NumRows())
	}
	if got := b.NumCatAttrs(); got != 20 {
		t.Fatalf("categorical attrs = %d, want 20", got)
	}
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	// Short loan durations should dominate the top of the ranking
	// (creditworthiness falls with duration by construction).
	dur := b.Table.ColumnByName("duration")
	topShort, allShort := 0, 0
	for _, ri := range in.Ranking[:100] {
		if dur.Label(dur.Codes[ri]) == "<12m" {
			topShort++
		}
	}
	for _, c := range dur.Codes {
		if dur.Label(c) == "<12m" {
			allShort++
		}
	}
	topFrac := float64(topShort) / 100
	allFrac := float64(allShort) / 1000
	if topFrac <= allFrac {
		t.Errorf("short loans should be overrepresented in the top: top=%.2f overall=%.2f", topFrac, allFrac)
	}
	// The p3 case-study group must be substantial.
	status := b.Table.ColumnByName("status_checking")
	mid := 0
	for _, c := range status.Codes {
		if status.Label(c) == "[0,200)DM" {
			mid++
		}
	}
	if mid < 50 {
		t.Errorf("status [0,200)DM group has only %d members", mid)
	}
}

func TestInputAttrsTrims(t *testing.T) {
	b := Students(80, 5)
	in, err := b.InputAttrs(7)
	if err != nil {
		t.Fatal(err)
	}
	if in.Space.NumAttrs() != 7 || len(in.Rows[0]) != 7 {
		t.Fatalf("trimmed width = %d", in.Space.NumAttrs())
	}
	if _, err := b.InputAttrs(99); err == nil {
		t.Error("too many attributes should fail")
	}
}

func TestBundleTablesValidate(t *testing.T) {
	for _, b := range []*Bundle{
		RunningExample(), WorstCase(5), Students(60, 1), COMPAS(60, 1), GermanCredit(60, 1),
	} {
		if err := b.Table.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// TestGeneratorsCSVRoundTrip exercises dataset CSV encoding on the full
// generator output.
func TestGeneratorsCSVRoundTrip(t *testing.T) {
	b := GermanCredit(50, 9)
	var sb strings.Builder
	if err := dataset.WriteCSV(&sb, b.Table); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(strings.NewReader(sb.String()), dataset.CSVOptions{NumericColumns: []string{"credit_score"}})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 50 || back.NumCols() != b.Table.NumCols() {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
}

// TestCOMPASAgePriorsCorrelation checks the correlation the Figure 10b
// reproduction depends on: priors accumulate with age, pushing older
// defendants up the normalized-score ranking.
func TestCOMPASAgePriorsCorrelation(t *testing.T) {
	b := COMPAS(2000, 13)
	age := b.Table.ColumnByName("age_num").Floats
	priors := b.Table.ColumnByName("priors_num").Floats
	youngSum, youngN, oldSum, oldN := 0.0, 0, 0.0, 0
	for i := range age {
		if age[i] < 35 {
			youngSum += priors[i]
			youngN++
		} else if age[i] >= 45 {
			oldSum += priors[i]
			oldN++
		}
	}
	if youngN < 50 || oldN < 50 {
		t.Fatalf("degenerate age split: young=%d old=%d", youngN, oldN)
	}
	if oldSum/float64(oldN) <= youngSum/float64(youngN) {
		t.Errorf("priors should grow with age: young=%.2f old=%.2f",
			youngSum/float64(youngN), oldSum/float64(oldN))
	}
	// And the top of the ranking therefore over-represents older people
	// relative to a pure age sort.
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	ageAttr := b.Table.ColumnByName("age")
	young := 0
	for _, ri := range in.Ranking[:49] {
		if ageAttr.Label(ageAttr.Codes[ri]) == "<35" {
			young++
		}
	}
	if young >= 45 {
		t.Errorf("top-49 is %d/49 young; the age<35 case study needs a mix", young)
	}
}
