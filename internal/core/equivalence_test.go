package core_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
)

// randomInput builds a random dataset + ranking small enough for the
// brute-force oracle but varied enough to exercise every code path.
func randomInput(rng *rand.Rand) *core.Input {
	nAttrs := 2 + rng.Intn(4) // 2..5
	cards := make([]int, nAttrs)
	names := make([]string, nAttrs)
	for i := range cards {
		cards[i] = 2 + rng.Intn(3) // 2..4
		names[i] = string(rune('A' + i))
	}
	nRows := 20 + rng.Intn(60)
	rows := make([][]int32, nRows)
	for i := range rows {
		r := make([]int32, nAttrs)
		for j := range r {
			r[j] = int32(rng.Intn(cards[j]))
		}
		rows[i] = r
	}
	return &core.Input{
		Rows:    rows,
		Space:   &pattern.Space{Names: names, Cards: cards},
		Ranking: rng.Perm(nRows),
	}
}

// oracleBiased enumerates every pattern and returns the most general ones
// with size >= minSize whose top-k count is below the bound.
func oracleBiased(in *core.Input, minSize, k int, below func(sD, cnt int) bool) []pattern.Pattern {
	var biased []pattern.Pattern
	pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
		sD := p.Count(in.Rows)
		if sD >= minSize && below(sD, p.CountTopK(in.Rows, in.Ranking, k)) {
			biased = append(biased, p)
		}
		return true
	})
	return pattern.MostGeneral(biased)
}

// sameGroups compares two result sets order-insensitively.
func sameGroups(a, b []pattern.Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, p := range a {
		seen[p.Key()]++
	}
	for _, p := range b {
		seen[p.Key()]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

// quickCfg keeps the property tests fast but meaningful.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestQuickGlobalBoundsMatchesIterTDAndOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 1 + rng.Intn(5)
		kMax := kMin + rng.Intn(15)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(5)
		// Non-decreasing random staircase.
		lower := make([]int, kMax-kMin+1)
		l := 1 + rng.Intn(3)
		for i := range lower {
			if rng.Intn(4) == 0 {
				l += rng.Intn(2)
			}
			lower[i] = l
		}
		params := core.GlobalParams{MinSize: minSize, KMin: kMin, KMax: kMax, Lower: lower}
		base, err := core.IterTDGlobal(in, params)
		if err != nil {
			t.Logf("IterTDGlobal: %v", err)
			return false
		}
		opt, err := core.GlobalBounds(in, params)
		if err != nil {
			t.Logf("GlobalBounds: %v", err)
			return false
		}
		for k := kMin; k <= kMax; k++ {
			lk := lower[k-kMin]
			want := oracleBiased(in, minSize, k, func(sD, cnt int) bool { return cnt < lk })
			if !sameGroups(base.At(k), want) {
				t.Logf("seed %d k=%d: IterTD %v != oracle %v", seed, k, base.At(k), want)
				return false
			}
			if !sameGroups(opt.At(k), want) {
				t.Logf("seed %d k=%d: GlobalBounds %v != oracle %v (L=%d τs=%d)", seed, k, opt.At(k), want, lk, minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(7)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPropBoundsMatchesIterTDAndOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 1 + rng.Intn(5)
		kMax := kMin + rng.Intn(15)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(5)
		alpha := 0.2 + rng.Float64() // (0.2, 1.2): exercises the α>1 path
		params := core.PropParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: alpha}
		base, err := core.IterTDProp(in, params)
		if err != nil {
			t.Logf("IterTDProp: %v", err)
			return false
		}
		opt, err := core.PropBounds(in, params)
		if err != nil {
			t.Logf("PropBounds: %v", err)
			return false
		}
		nf := float64(n)
		for k := kMin; k <= kMax; k++ {
			kf := float64(k)
			want := oracleBiased(in, minSize, k, func(sD, cnt int) bool {
				return float64(cnt) < alpha*float64(sD)*kf/nf
			})
			if !sameGroups(base.At(k), want) {
				t.Logf("seed %d k=%d: IterTDProp %v != oracle %v (α=%v)", seed, k, base.At(k), want, alpha)
				return false
			}
			if !sameGroups(opt.At(k), want) {
				t.Logf("seed %d k=%d: PropBounds %v != oracle %v (α=%v τs=%d)", seed, k, opt.At(k), want, alpha, minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(11)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUpperGlobalMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2 + rng.Intn(5)
		kMax := kMin + rng.Intn(8)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		upper := make([]int, kMax-kMin+1)
		for i := range upper {
			upper[i] = 1 + rng.Intn(5)
		}
		params := core.GlobalUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Upper: upper}
		got, err := core.IterTDGlobalUpper(in, params)
		if err != nil {
			t.Logf("IterTDGlobalUpper: %v", err)
			return false
		}
		for k := kMin; k <= kMax; k++ {
			u := upper[k-kMin]
			var exceeding []pattern.Pattern
			pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
				if p.Count(in.Rows) >= minSize && p.CountTopK(in.Rows, in.Ranking, k) > u {
					exceeding = append(exceeding, p)
				}
				return true
			})
			want := pattern.MostSpecific(exceeding)
			if !sameGroups(got.At(k), want) {
				t.Logf("seed %d k=%d: upper %v != oracle %v (U=%d τs=%d)", seed, k, got.At(k), want, u, minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(13)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUpperPropMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2 + rng.Intn(5)
		kMax := kMin + rng.Intn(8)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		beta := 1.0 + rng.Float64()*1.5
		params := core.PropUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Beta: beta}
		got, err := core.IterTDPropUpper(in, params)
		if err != nil {
			t.Logf("IterTDPropUpper: %v", err)
			return false
		}
		nf := float64(n)
		for k := kMin; k <= kMax; k++ {
			kf := float64(k)
			var exceeding []pattern.Pattern
			pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
				sD := p.Count(in.Rows)
				if sD >= minSize && float64(p.CountTopK(in.Rows, in.Ranking, k)) > beta*float64(sD)*kf/nf {
					exceeding = append(exceeding, p)
				}
				return true
			})
			want := pattern.MostSpecific(exceeding)
			if !sameGroups(got.At(k), want) {
				t.Logf("seed %d k=%d: prop upper %v != oracle %v (β=%v τs=%d)", seed, k, got.At(k), want, beta, minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(17)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParallelMatchesSerial checks the tentpole invariant of the
// worker fan-out: for every measure, both baseline and optimized, the
// parallel lattice search returns results byte-identical to the serial
// path — same per-k groups in the same order, same Stats — across random
// inputs and k ranges.
func TestQuickParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 1 + rng.Intn(5)
		kMax := kMin + rng.Intn(15)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(5)
		lower := make([]int, kMax-kMin+1)
		l := 1 + rng.Intn(3)
		for i := range lower {
			if rng.Intn(4) == 0 {
				l += rng.Intn(2)
			}
			lower[i] = l
		}
		upper := make([]int, kMax-kMin+1)
		for i := range upper {
			upper[i] = 1 + rng.Intn(4)
		}
		gp := core.GlobalParams{MinSize: minSize, KMin: kMin, KMax: kMax, Lower: lower}
		pp := core.PropParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: 0.2 + rng.Float64()}
		ep := core.ExposureParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: 0.2 + rng.Float64()}
		gup := core.GlobalUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Upper: upper}
		pup := core.PropUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Beta: 1.0 + rng.Float64()}
		runs := []struct {
			name string
			f    func(w int) (*core.Result, error)
		}{
			{"GlobalBounds", func(w int) (*core.Result, error) { return core.GlobalBoundsCtx(ctx, in, gp, w) }},
			{"IterTDGlobal", func(w int) (*core.Result, error) { return core.IterTDGlobalCtx(ctx, in, gp, w) }},
			{"PropBounds", func(w int) (*core.Result, error) { return core.PropBoundsCtx(ctx, in, pp, w) }},
			{"IterTDProp", func(w int) (*core.Result, error) { return core.IterTDPropCtx(ctx, in, pp, w) }},
			{"ExposureBounds", func(w int) (*core.Result, error) { return core.ExposureBoundsCtx(ctx, in, ep, w) }},
			{"IterTDExposure", func(w int) (*core.Result, error) { return core.IterTDExposureCtx(ctx, in, ep, w) }},
			{"GlobalUpperBounds", func(w int) (*core.Result, error) { return core.GlobalUpperBoundsCtx(ctx, in, gup, w) }},
			{"IterTDGlobalUpper", func(w int) (*core.Result, error) { return core.IterTDGlobalUpperCtx(ctx, in, gup, w) }},
			{"IterTDPropUpper", func(w int) (*core.Result, error) { return core.IterTDPropUpperCtx(ctx, in, pup, w) }},
			{"IterTDGlobalUpperMostGeneral", func(w int) (*core.Result, error) {
				return core.IterTDGlobalUpperMostGeneralCtx(ctx, in, gup, w)
			}},
			{"IterTDGlobalLowerMostSpecific", func(w int) (*core.Result, error) {
				return core.IterTDGlobalLowerMostSpecificCtx(ctx, in, gp, w)
			}},
		}
		for _, run := range runs {
			serial, err := run.f(1)
			if err != nil {
				t.Logf("seed %d %s serial: %v", seed, run.name, err)
				return false
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := run.f(workers)
				if err != nil {
					t.Logf("seed %d %s workers=%d: %v", seed, run.name, workers, err)
					return false
				}
				if !reflect.DeepEqual(serial.Groups, par.Groups) {
					t.Logf("seed %d %s workers=%d: groups diverge from serial", seed, run.name, workers)
					return false
				}
				if serial.Stats != par.Stats {
					t.Logf("seed %d %s workers=%d: stats diverge: serial %+v parallel %+v",
						seed, run.name, workers, serial.Stats, par.Stats)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(23)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOptimizedExaminesFewerNodes checks the headline claim of
// Section VI-B: across a k range, the optimized algorithms examine no more
// pattern nodes than the baseline.
func TestQuickOptimizedExaminesFewerNodes(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2
		kMax := kMin + 10 + rng.Intn(10)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(3)
		params := core.GlobalParams{MinSize: minSize, KMin: kMin, KMax: kMax, Lower: core.ConstantBounds(kMin, kMax, 2)}
		base, err := core.IterTDGlobal(in, params)
		if err != nil {
			return false
		}
		opt, err := core.GlobalBounds(in, params)
		if err != nil {
			return false
		}
		if opt.Stats.NodesExamined > base.Stats.NodesExamined {
			t.Logf("seed %d: optimized examined %d nodes, baseline %d", seed, opt.Stats.NodesExamined, base.Stats.NodesExamined)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(19)); err != nil {
		t.Fatal(err)
	}
}
