package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/store"
	"rankfair/internal/stream"
)

// persistServer builds a store-backed service over dir plus an httptest
// server. The returned stop function shuts both down; it is safe to call
// early (to simulate a restart) and is also registered as cleanup.
func persistServer(t testing.TB, dir string, persistCache bool) (*Service, *httptest.Server, func()) {
	t.Helper()
	svc := mustNew(t, Config{
		Workers: 2, QueueDepth: 32, CacheEntries: 32, MaxDatasets: 8,
		DataDir: dir, PersistCache: persistCache,
	})
	ts := httptest.NewServer(svc.Handler())
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		})
	}
	t.Cleanup(stop)
	return svc, ts, stop
}

// getDatasetInfo fetches one dataset record over the API.
func getDatasetInfo(t *testing.T, ts *httptest.Server, id string) (DatasetInfo, int) {
	t.Helper()
	var info DatasetInfo
	code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+id, nil, &info)
	return info, code
}

// TestPersistRestartWarm is the restart-warm proof: a dataset built by a
// seed upload plus appends survives an abrupt shutdown, the restarted
// service replays the chain through the incremental path (replays > 0,
// rebuilds == 0), and the post-restart audit is byte-identical to the
// pre-restart one.
func TestPersistRestartWarm(t *testing.T) {
	dir := t.TempDir()
	seed := biasedCSV(60)

	_, ts1, stop1 := persistServer(t, dir, false)
	info := upload(t, ts1, seed)
	for i := 0; i < 2; i++ {
		if resp, code := postAppend(t, ts1, info.ID, "text/csv", appendBatchCSV(4+i)); code != http.StatusCreated {
			t.Fatalf("append %d: status %d: %+v", i, code, resp)
		}
	}
	head, code := getDatasetInfo(t, ts1, info.ID)
	if code != http.StatusOK || head.Version != 3 {
		t.Fatalf("pre-restart head: status %d, %+v", code, head)
	}
	report1 := runAuditReport(t, ts1, info.ID)
	stop1() // fsync-at-write durability: no flush path exists to miss

	svc2, ts2, _ := persistServer(t, dir, false)
	got, code := getDatasetInfo(t, ts2, info.ID)
	if code != http.StatusOK {
		t.Fatalf("post-restart GET: status %d", code)
	}
	if got.Version != head.Version || got.Hash != head.Hash || got.Rows != head.Rows {
		t.Fatalf("post-restart head = %+v, want %+v", got, head)
	}
	report2 := runAuditReport(t, ts2, info.ID)
	if !bytes.Equal(report1, report2) {
		t.Fatalf("post-restart report differs:\n%s\nvs\n%s", report1, report2)
	}
	if loads := svc2.metrics.storeLoads.Load(); loads < 1 {
		t.Errorf("storeLoads = %d, want >= 1", loads)
	}
	if replayed := svc2.metrics.storeReplayed.Load(); replayed != 2 {
		t.Errorf("storeReplayed = %d, want 2", replayed)
	}
	if rebuilds := svc2.metrics.storeRebuilds.Load(); rebuilds != 0 {
		t.Errorf("storeRebuilds = %d, want 0", rebuilds)
	}

	// The warm-restart series is scrapeable, not just internal state.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"rankfaird_store_replayed_generations_total 2",
		"rankfaird_store_replay_rebuilds_total 0",
		"rankfaird_store_dataset_loads_total 1",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The chain keeps growing after restart: the next append builds on the
	// replayed head, not on a fresh fork.
	resp2, code := postAppend(t, ts2, info.ID, "text/csv", appendBatchCSV(3))
	if code != http.StatusCreated {
		t.Fatalf("post-restart append: status %d", code)
	}
	if resp2.Dataset.Version != 4 || resp2.Dataset.Parent != head.Hash {
		t.Fatalf("post-restart append landed on %+v, want version 4 chained to %s", resp2.Dataset, head.Hash[:12])
	}
}

// TestPersistUploadResolvesDiskChain re-uploads a seed whose on-disk chain
// has advanced past the seed: the response must carry the chain's real
// head, not fork a fresh v1 in memory that disagrees with disk.
func TestPersistUploadResolvesDiskChain(t *testing.T) {
	dir := t.TempDir()
	seed := biasedCSV(40)

	_, ts1, stop1 := persistServer(t, dir, false)
	info := upload(t, ts1, seed)
	if resp, code := postAppend(t, ts1, info.ID, "text/csv", appendBatchCSV(4)); code != http.StatusCreated {
		t.Fatalf("append: status %d: %+v", code, resp)
	}
	stop1()

	_, ts2, _ := persistServer(t, dir, false)
	again := upload(t, ts2, seed)
	if again.ID != info.ID || again.Version != 2 {
		t.Fatalf("re-upload returned %+v, want version 2 of %s", again, info.ID)
	}
}

// TestPersistPageInAfterLRUEviction: with a durable store, a registry
// capacity eviction is a page-out, not a loss — the dataset reloads on
// next touch.
func TestPersistPageInAfterLRUEviction(t *testing.T) {
	dir := t.TempDir()
	svc := mustNew(t, Config{Workers: 1, MaxDatasets: 1, DataDir: dir})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})

	a := upload(t, ts, biasedCSV(20))
	b := upload(t, ts, biasedCSV(30)) // evicts a from the registry
	if svc.Registry().Len() != 1 {
		t.Fatalf("registry holds %d datasets, want 1", svc.Registry().Len())
	}
	got, code := getDatasetInfo(t, ts, a.ID)
	if code != http.StatusOK || got.Hash != a.Hash {
		t.Fatalf("paged-in GET: status %d, %+v", code, got)
	}
	if loads := svc.metrics.storeLoads.Load(); loads < 1 {
		t.Errorf("storeLoads = %d, want >= 1", loads)
	}
	// Both datasets remain listable regardless of which is resident.
	var list DatasetList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	ids := map[string]bool{}
	for _, d := range list.Datasets {
		ids[d.ID] = true
	}
	if !ids[a.ID] || !ids[b.ID] {
		t.Errorf("list = %v, want both %s and %s", ids, a.ID, b.ID)
	}
}

// TestPersistTombstoneSurvivesRestart: DELETE is durable — the dataset
// stays gone after a restart instead of resurrecting from its chain.
func TestPersistTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	_, ts1, stop1 := persistServer(t, dir, false)
	info := upload(t, ts1, biasedCSV(20))
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/datasets/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	stop1()

	_, ts2, _ := persistServer(t, dir, false)
	if _, code := getDatasetInfo(t, ts2, info.ID); code != http.StatusNotFound {
		t.Fatalf("tombstoned dataset GET after restart: status %d, want 404", code)
	}
	var list DatasetList
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Datasets) != 0 {
		t.Fatalf("list after tombstone = %+v, want empty", list.Datasets)
	}
}

// TestPersistResultCacheReload: with -persist-cache, a computed audit
// survives restart and the re-submitted audit is a cache hit.
func TestPersistResultCacheReload(t *testing.T) {
	dir := t.TempDir()

	_, ts1, stop1 := persistServer(t, dir, true)
	info := upload(t, ts1, biasedCSV(40))
	report1 := runAuditReport(t, ts1, info.ID)
	stop1()

	svc2, ts2, _ := persistServer(t, dir, true)
	if loaded := svc2.metrics.storeCacheLoaded.Load(); loaded < 1 {
		t.Fatalf("storeCacheLoaded = %d, want >= 1", loaded)
	}
	var view JobView
	req := AuditRequest{Dataset: info.ID, Ranker: scoreRanker(), Params: streamAuditParams()}
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/audits", req, &view); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	report2 := awaitReport(t, ts2, view.ID)
	final, _ := svc2.Jobs().Get(view.ID)
	if !final.CacheHit {
		t.Error("post-restart audit should be served from the persisted result cache")
	}
	raw1, raw2 := mustMarshalReport(t, report1), mustMarshalReport(t, report2)
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cached report differs after restart:\n%s\nvs\n%s", raw1, raw2)
	}
	if svc2.metrics.storeRebuilds.Load() != 0 {
		t.Errorf("storeRebuilds = %d, want 0", svc2.metrics.storeRebuilds.Load())
	}
}

// mustMarshalReport renders a report exactly as the HTTP layer would.
func mustMarshalReport(t *testing.T, v any) []byte {
	t.Helper()
	switch r := v.(type) {
	case []byte:
		return r
	case *rankfair.ReportJSON:
		rec := httptest.NewRecorder()
		writeJSON(rec, http.StatusOK, r)
		return rec.Body.Bytes()
	default:
		t.Fatalf("unexpected report type %T", v)
		return nil
	}
}

// chainGenerations reads one dataset's persisted chain straight from the
// data dir, for tests that need a generation's blob name to damage it.
func chainGenerations(t *testing.T, dir, id string) []store.Generation {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gens, ok := st.Chain(id)
	if !ok {
		t.Fatalf("no chain for %s", id)
	}
	return gens
}

// TestPersistCrashConsistentPrefix damages a populated data dir at each
// WAL/blob write boundary and asserts the restarted service recovers to
// the longest consistent chain prefix — and that an audit over the
// recovered prefix is byte-identical to a fresh upload of the prefix
// bytes, so recovery lands on a real generation, not an approximation.
func TestPersistCrashConsistentPrefix(t *testing.T) {
	seed := biasedCSV(50)
	batch1, batch2 := appendBatchCSV(4), appendBatchCSV(9)

	populate := func(t *testing.T) (string, DatasetInfo) {
		dir := t.TempDir()
		_, ts, stop := persistServer(t, dir, false)
		info := upload(t, ts, seed)
		for _, b := range [][]byte{batch1, batch2} {
			if resp, code := postAppend(t, ts, info.ID, "text/csv", b); code != http.StatusCreated {
				t.Fatalf("append: status %d: %+v", code, resp)
			}
		}
		stop()
		return dir, info
	}

	for _, tc := range []struct {
		name string
		// damage corrupts the data dir; wantVersion is the head version
		// the recovered chain must land on; wantRaw is that generation's
		// full CSV content.
		damage      func(t *testing.T, dir, id string)
		wantVersion int
		wantRaw     []byte
	}{
		{
			// The WAL record for generation 3 is durable but its batch blob
			// is not (crash between blob write and... the inverse ordering —
			// which the store's blob-first discipline makes impossible to
			// create in normal operation, but disk loss can).
			name: "manifest-ahead-of-blob",
			damage: func(t *testing.T, dir, id string) {
				gens := chainGenerations(t, dir, id)
				blob := gens[2].Blob
				if err := os.Remove(filepath.Join(dir, "blobs", blob[:2], blob)); err != nil {
					t.Fatal(err)
				}
			},
			wantVersion: 2,
			wantRaw:     stream.Concat(seed, batch1),
		},
		{
			// Torn batch blob: the file exists but lost its tail.
			name: "torn-batch-blob",
			damage: func(t *testing.T, dir, id string) {
				gens := chainGenerations(t, dir, id)
				blob := gens[2].Blob
				if err := os.Truncate(filepath.Join(dir, "blobs", blob[:2], blob), int64(len(batch2)/2)); err != nil {
					t.Fatal(err)
				}
			},
			wantVersion: 2,
			wantRaw:     stream.Concat(seed, batch1),
		},
		{
			// Torn manifest tail: the crash cut the WAL mid-record. The
			// orphaned batch blob for the lost record is harmless.
			name: "torn-manifest-tail",
			damage: func(t *testing.T, dir, _ string) {
				f, err := os.OpenFile(filepath.Join(dir, "MANIFEST"), os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteString(`{"op":"append","dataset":"ds-tru`); err != nil {
					t.Fatal(err)
				}
			},
			wantVersion: 3,
			wantRaw:     stream.Concat(stream.Concat(seed, batch1), batch2),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, info := populate(t)
			tc.damage(t, dir, info.ID)

			svc, ts, _ := persistServer(t, dir, false)
			got, code := getDatasetInfo(t, ts, info.ID)
			if code != http.StatusOK {
				t.Fatalf("recovered GET: status %d", code)
			}
			if got.Version != tc.wantVersion || got.Hash != HashCSV(tc.wantRaw) {
				t.Fatalf("recovered head = v%d %s, want v%d %s",
					got.Version, got.Hash[:12], tc.wantVersion, HashCSV(tc.wantRaw)[:12])
			}
			recovered := runAuditReport(t, ts, info.ID)
			if svc.metrics.storeRebuilds.Load() != 0 {
				t.Errorf("recovery used %d rebuilds, want pure replay", svc.metrics.storeRebuilds.Load())
			}

			// Byte-identity against a fresh upload of the recovered prefix.
			_, fresh := testServer(t)
			freshInfo := upload(t, fresh, tc.wantRaw)
			if freshInfo.Hash != got.Hash {
				t.Fatalf("fresh upload hash %s != recovered %s", freshInfo.Hash[:12], got.Hash[:12])
			}
			freshReport := runAuditReport(t, fresh, freshInfo.ID)
			if !bytes.Equal(recovered, freshReport) {
				t.Fatalf("recovered-prefix audit differs from fresh upload:\n%s\nvs\n%s", recovered, freshReport)
			}

			// Appends chain cleanly off the recovered head.
			resp, code := postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(2))
			if code != http.StatusCreated {
				t.Fatalf("append after recovery: status %d", code)
			}
			if resp.Dataset.Version != tc.wantVersion+1 || resp.Dataset.Parent != got.Hash {
				t.Fatalf("append after recovery landed on %+v", resp.Dataset)
			}
		})
	}
}

// awaitJob blocks until one submitted job finishes successfully.
func awaitJob(tb testing.TB, svc *Service, id string) JobView {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(ctx, id)
	if err != nil {
		tb.Fatal(err)
	}
	if final.Status != JobDone {
		tb.Fatalf("job %s ended %s: %s", id, final.Status, final.Error)
	}
	return final
}

// benchWorstAttrs sizes the Theorem 3.3 worst-case head of the benchmark
// dataset; the serial lattice search is exponential in it.
const benchWorstAttrs = 16

// benchSeedCSV builds the benchmark corpus: the first benchWorstAttrs+1
// ranks reproduce the Theorem 3.3 worst-case construction (row i sets
// attribute A_{i+1}, the last row none), so the audit search over the top
// ranks is exponential in benchWorstAttrs, while `filler` trailing
// baseline rows below the audited window give chain replay real decode
// work. Scores strictly descend, making the ranking deterministic.
func benchSeedCSV(filler int) []byte {
	var b bytes.Buffer
	for a := 0; a < benchWorstAttrs; a++ {
		fmt.Fprintf(&b, "A%d,", a+1)
	}
	b.WriteString("score\n")
	for i := 0; i <= benchWorstAttrs; i++ {
		for a := 0; a < benchWorstAttrs; a++ {
			if a == i {
				b.WriteString("y,")
			} else {
				b.WriteString("n,")
			}
		}
		fmt.Fprintf(&b, "%d\n", 1_000_000-i)
	}
	b.Write(benchFillerRows(filler, 0))
	return b.Bytes()
}

// benchFillerRows emits headerless all-baseline rows ranked below the
// worst-case head; offset keeps scores unique across batches.
func benchFillerRows(rows, offset int) []byte {
	var b bytes.Buffer
	for i := 0; i < rows; i++ {
		b.WriteString(strings.Repeat("n,", benchWorstAttrs))
		fmt.Fprintf(&b, "%d\n", 500_000-offset-i)
	}
	return b.Bytes()
}

// BenchmarkRestartWarm measures what the durable store buys on restart:
//
//   - cold-upload: no store — every "restart" re-uploads the full CSV and
//     recomputes the audit from scratch (the only option before PR 7).
//   - warm-replay: a store-backed restart pages the dataset in by chain
//     replay, then recomputes the audit (result cache not persisted).
//   - warm-replay-cached: -persist-cache restart — chain replay plus the
//     audit served from the reloaded result cache.
func BenchmarkRestartWarm(b *testing.B) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	seed := benchSeedCSV(2000)
	batches := [][]byte{benchFillerRows(100, 2000), benchFillerRows(150, 2100), benchFillerRows(200, 2250)}
	req := func(id string) AuditRequest {
		return AuditRequest{Dataset: id, Ranker: scoreRanker(), Params: rankfair.AuditParams{
			Measure: rankfair.MeasureGlobal, MinSize: 2,
			KMin: benchWorstAttrs, KMax: benchWorstAttrs,
			Lower: []int{benchWorstAttrs/2 + 1},
		}}
	}

	// One audited, store-backed corpus shared by both warm arms.
	populate := func(b *testing.B, persistCache bool) (string, string) {
		b.Helper()
		dir := b.TempDir()
		svc := mustNew(b, Config{Workers: 1, DataDir: dir, PersistCache: persistCache, Logger: quiet})
		defer svc.Shutdown(context.Background())
		info, _, err := svc.Registry().Add("bench", seed, rankfair.CSVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.persistSeed(info, seed, rankfair.CSVOptions{}); err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := svc.AppendRows(info.ID, "text/csv", batch); err != nil {
				b.Fatal(err)
			}
		}
		view, err := svc.SubmitAudit(req(info.ID))
		if err != nil {
			b.Fatal(err)
		}
		awaitJob(b, svc, view.ID)
		return dir, info.ID
	}

	fullRaw := seed
	for _, batch := range batches {
		fullRaw = stream.Concat(fullRaw, batch)
	}

	b.Run("cold-upload", func(b *testing.B) {
		b.SetBytes(int64(len(fullRaw)))
		for i := 0; i < b.N; i++ {
			svc := mustNew(b, Config{Workers: 1, Logger: quiet})
			info, _, err := svc.Registry().Add(fmt.Sprintf("cold-%d", i), fullRaw, rankfair.CSVOptions{})
			if err != nil {
				b.Fatal(err)
			}
			view, err := svc.SubmitAudit(req(info.ID))
			if err != nil {
				b.Fatal(err)
			}
			awaitJob(b, svc, view.ID)
			svc.Shutdown(context.Background())
		}
	})
	b.Run("warm-replay", func(b *testing.B) {
		dir, id := populate(b, false)
		b.SetBytes(int64(len(fullRaw)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc := mustNew(b, Config{Workers: 1, DataDir: dir, Logger: quiet})
			view, err := svc.SubmitAudit(req(id))
			if err != nil {
				b.Fatal(err)
			}
			awaitJob(b, svc, view.ID)
			b.StopTimer()
			svc.Shutdown(context.Background())
			b.StartTimer()
		}
	})
	b.Run("warm-replay-cached", func(b *testing.B) {
		dir, id := populate(b, true)
		b.SetBytes(int64(len(fullRaw)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc := mustNew(b, Config{Workers: 1, DataDir: dir, PersistCache: true, Logger: quiet})
			view, err := svc.SubmitAudit(req(id))
			if err != nil {
				b.Fatal(err)
			}
			done := awaitJob(b, svc, view.ID)
			if !done.CacheHit {
				b.Fatal("cached arm missed the persisted result cache")
			}
			b.StopTimer()
			svc.Shutdown(context.Background())
			b.StartTimer()
		}
	})
}
