package core

import (
	"sort"

	"rankfair/internal/pattern"
)

// pnode is a node of the persistent search tree maintained by PROPBOUNDS.
// Unlike the global case, a node can oscillate between biased and unbiased:
// the per-pattern bound α·s_D(p)·k/|D| grows with k while the count grows
// only when new top tuples match. Nodes therefore keep their explored
// children even while biased ("orphan" subtrees stay tracked).
type pnode struct {
	p        pattern.Pattern
	sD       int
	cnt      int
	biased   bool
	expanded bool
	children []*pnode
	// ktilde is, for an unbiased node, the smallest k at which the node
	// becomes biased if its count stays unchanged (the k̃ of Section IV-C).
	ktilde int
}

// propState holds the incremental search state of Algorithm 3.
type propState struct {
	in    *Input
	pr    *PropParams
	stats *Stats
	n     int // |D|

	roots     []*pnode
	biasedSet map[*pnode]struct{}
	// buckets[k] holds unbiased nodes scheduled for re-examination at k
	// (the set K of the paper). Entries can be stale: a node is only
	// processed when its stored ktilde still equals k and it is unbiased.
	buckets [][]*pnode

	res  []Pattern // current result snapshot (sorted)
	dirt bool      // biased set changed since the last snapshot
}

// PropBounds is Algorithm 3 (PROPBOUNDS): detection of groups with biased
// proportional representation, computed incrementally across k. Per k it
// examines only (a) explored nodes satisfied by the newly inserted tuple
// R(D)[k] — walking down from the root and skipping subtrees the tuple does
// not satisfy — and (b) unbiased nodes whose critical value k̃ equals k
// (maintained in the bucket queue K). A biased frontier node whose count
// catches up with its growing bound is expanded (selectiveTD resumes the
// search below it).
func PropBounds(in *Input, params PropParams) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &propState{
		in:        in,
		pr:        &params,
		stats:     &res.Stats,
		n:         len(in.Rows),
		biasedSet: make(map[*pnode]struct{}),
		buckets:   make([][]*pnode, params.KMax+2),
	}
	st.fullBuild(params.KMin)
	res.Groups[0] = st.snapshot()
	for k := params.KMin + 1; k <= params.KMax; k++ {
		st.step(k)
		res.Groups[k-params.KMin] = st.snapshot()
	}
	return res, nil
}

// biasedAt evaluates the proportional bias condition at k.
func (s *propState) biasedAt(sD, cnt, k int) bool {
	return float64(cnt) < s.pr.Alpha*float64(sD)*float64(k)/float64(s.n)
}

// computeKtilde returns the smallest k with biasedAt(sD, cnt, k), or
// KMax+1 when the node cannot become biased within the range. The initial
// estimate comes from solving cnt = α·sD·k/|D| and is corrected by a local
// scan to be robust against floating-point rounding.
func (s *propState) computeKtilde(sD, cnt int) int {
	limit := s.pr.KMax + 1
	if sD == 0 {
		return limit
	}
	kt := int(float64(cnt)*float64(s.n)/(s.pr.Alpha*float64(sD))) + 1
	if kt < 1 {
		kt = 1
	}
	for kt > 1 && s.biasedAt(sD, cnt, kt-1) {
		kt--
	}
	for kt <= s.pr.KMax && !s.biasedAt(sD, cnt, kt) {
		kt++
	}
	if kt > s.pr.KMax {
		return limit
	}
	return kt
}

// schedule records the node's k̃ and enqueues it for re-examination.
func (s *propState) schedule(nd *pnode) {
	nd.ktilde = s.computeKtilde(nd.sD, nd.cnt)
	if nd.ktilde <= s.pr.KMax {
		s.buckets[nd.ktilde] = append(s.buckets[nd.ktilde], nd)
	}
}

// fullBuild runs the complete top-down search at kMin, materializing the
// explored tree, the biased frontier, and the schedule K.
func (s *propState) fullBuild(k int) {
	s.stats.FullSearches++
	n := s.in.Space.NumAttrs()
	all := make([]int32, len(s.in.Rows))
	for i := range all {
		all[i] = int32(i)
	}
	top := make([]int32, k)
	for i := 0; i < k; i++ {
		top[i] = int32(s.in.Ranking[i])
	}
	root := &pnode{p: pattern.Empty(n), sD: len(all), cnt: k, expanded: true}
	s.roots = s.buildChildren(root, all, top, k)
	s.dirt = true
}

func (s *propState) buildChildren(parent *pnode, matchAll, matchTop []int32, k int) []*pnode {
	var kids []*pnode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.pr.MinSize {
				continue
			}
			child := &pnode{p: parent.p.With(a, int32(v)), sD: sD, cnt: len(topBuckets[v])}
			kids = append(kids, child)
			if s.biasedAt(sD, child.cnt, k) {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				continue
			}
			s.schedule(child)
			child.expanded = true
			child.children = s.buildChildren(child, allBuckets[v], topBuckets[v], k)
		}
	}
	parent.children = kids
	return kids
}

// step advances the state from k-1 to k.
func (s *propState) step(k int) {
	newRow := s.in.Rows[s.in.Ranking[k-1]]

	// Phase 1 (selectiveTD): walk only explored nodes the new tuple
	// satisfies; their counts grow by one. Orphan subtrees below biased
	// nodes are traversed too so their counts stay fresh.
	var freed []*pnode
	var walk func(nd *pnode)
	walk = func(nd *pnode) {
		if !nd.p.Matches(newRow) {
			return
		}
		s.stats.NodesExamined++
		nd.cnt++
		if nd.biased {
			if !s.biasedAt(nd.sD, nd.cnt, k) {
				nd.biased = false
				delete(s.biasedSet, nd)
				s.schedule(nd)
				freed = append(freed, nd)
				s.dirt = true
			}
		} else if s.biasedAt(nd.sD, nd.cnt, k) {
			// Only reachable when α > 1 lets the bound grow faster than
			// one per k; handled for completeness.
			nd.biased = true
			s.biasedSet[nd] = struct{}{}
			s.dirt = true
		} else {
			s.schedule(nd)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}

	// Phase 2: nodes whose critical k̃ is reached flip to biased unless
	// their count was bumped meanwhile (stale entries are skipped via the
	// ktilde guard).
	for _, nd := range s.buckets[k] {
		if nd.biased || nd.ktilde != k {
			continue
		}
		s.stats.NodesExamined++
		if s.biasedAt(nd.sD, nd.cnt, k) {
			nd.biased = true
			s.biasedSet[nd] = struct{}{}
			s.dirt = true
		} else {
			s.schedule(nd)
		}
	}
	s.buckets[k] = nil

	// Phase 3: resume the search below frontier nodes that became
	// unbiased and had no explored children yet.
	for _, nd := range freed {
		if !nd.expanded {
			nd.expanded = true
			matchAll := matchingRows(s.in.Rows, nd.p, nil)
			matchTop := matchingTopK(s.in.Rows, s.in.Ranking, nd.p, k)
			s.expandWith(nd, matchAll, matchTop, k)
		}
	}
}

func (s *propState) expandWith(nd *pnode, matchAll, matchTop []int32, k int) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.pr.MinSize {
				continue
			}
			child := &pnode{p: nd.p.With(a, int32(v)), sD: sD, cnt: len(topBuckets[v])}
			nd.children = append(nd.children, child)
			if s.biasedAt(sD, child.cnt, k) {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				s.dirt = true
				continue
			}
			s.schedule(child)
			child.expanded = true
			s.expandWith(child, allBuckets[v], topBuckets[v], k)
		}
	}
}

// snapshot returns the most general biased patterns. Because biased nodes
// can appear and disappear anywhere in the explored tree (including
// interior nodes with explored descendants), Res is recomputed from the
// biased frontier whenever it changed.
func (s *propState) snapshot() []Pattern {
	if !s.dirt {
		return s.res
	}
	s.dirt = false
	nodes := make([]*pnode, 0, len(s.biasedSet))
	for nd := range s.biasedSet {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool {
		ni, nj := nodes[i].p.NumAttrs(), nodes[j].p.NumAttrs()
		if ni != nj {
			return ni < nj
		}
		return nodes[i].p.Key() < nodes[j].p.Key()
	})
	res := make([]Pattern, 0, len(nodes))
	for _, nd := range nodes {
		dominated := false
		for _, q := range res {
			if q.ProperSubsetOf(nd.p) {
				dominated = true
				break
			}
		}
		if !dominated {
			res = append(res, nd.p)
		}
	}
	s.res = res
	return res
}
