package synth

import (
	"math"

	"rankfair/internal/dataset"
	"rankfair/internal/rank"
)

// DefaultCOMPASRows matches the ProPublica COMPAS dataset used in the
// paper (6,889 individuals, 16 usable attributes).
const DefaultCOMPASRows = 6889

// COMPAS generates a synthetic COMPAS-shaped dataset: 16 categorical
// attributes with the ProPublica schema plus the seven numeric scoring
// columns the paper ranks by ("c_days_from_compas, juv_other_count,
// days_b_screening_arrest, start, end, age, and priors_count", normalized
// min-max, all ascending except age which is inverted — the method of
// Asudeh et al. [4]).
func COMPAS(n int, seed int64) *Bundle {
	g := newGen(seed)

	sex := make([]string, n)
	ageCat := make([]string, n)
	race := make([]string, n)
	juvFel := make([]string, n)
	juvMisd := make([]string, n)
	juvOtherCat := make([]string, n)
	priorsCat := make([]string, n)
	chargeDegree := make([]string, n)
	decile := make([]string, n)
	vDecile := make([]string, n)
	isRecid := make([]string, n)
	twoYear := make([]string, n)
	daysFromCat := make([]string, n)
	screeningCat := make([]string, n)
	startCat := make([]string, n)
	endCat := make([]string, n)

	ageNum := make([]float64, n)
	juvOtherNum := make([]float64, n)
	priorsNum := make([]float64, n)
	daysFromNum := make([]float64, n)
	screeningNum := make([]float64, n)
	startNum := make([]float64, n)
	endNum := make([]float64, n)

	raceLabels := []string{"African-American", "Asian", "Caucasian", "Hispanic", "Native American", "Other"}

	for i := 0; i < n; i++ {
		// Latent criminal-history intensity; correlated with age so the
		// top of the ranking has a distinctive age mix.
		risk := g.normal(0, 1)

		sex[i] = "Male"
		if g.bern(0.19) {
			sex[i] = "Female"
		}
		age := clamp(18+math.Abs(g.normal(0, 14))+2.0*clamp(risk, -1, 3), 18, 96)
		ageNum[i] = math.Round(age)
		ageCat[i] = ageBucket(ageNum[i])
		race[i] = raceLabels[g.choice([]float64{0.51, 0.01, 0.34, 0.08, 0.01, 0.05})]

		jf := g.poissonish(clamp(0.06+0.05*risk, 0, 2), 5)
		jm := g.poissonish(clamp(0.09+0.06*risk, 0, 2), 5)
		jo := g.poissonish(clamp(0.10+0.08*risk, 0, 2), 6)
		juvFel[i] = countBucket(jf)
		juvMisd[i] = countBucket(jm)
		juvOtherCat[i] = countBucket(jo)
		juvOtherNum[i] = float64(jo)

		// Priors accumulate with age, so older defendants climb the
		// normalized-score ranking despite the inverted age term — which
		// is what leaves {age<35} under-represented in the paper's top-k.
		priors := g.poissonish(clamp(3.2+2.4*risk+0.16*(age-35), 0, 30), 38)
		priorsNum[i] = float64(priors)
		priorsCat[i] = priorsBucket(priors)

		chargeDegree[i] = "F"
		if g.bern(0.36) {
			chargeDegree[i] = "M"
		}

		dec := int(clamp(math.Round(5.2+2.3*risk-0.045*(age-35)+g.normal(0, 1.6)), 1, 10))
		decile[i] = decileBucket(dec)
		vdec := int(clamp(float64(dec)+g.normal(0, 1.8), 1, 10))
		vDecile[i] = decileBucket(vdec)

		recid := g.bern(clamp(0.30+0.12*risk, 0.02, 0.95))
		isRecid[i] = boolLabel(recid)
		twoYear[i] = boolLabel(recid && g.bern(0.8) || g.bern(0.08))

		dfc := math.Abs(g.normal(0, 1)) * 200 * (1 + 0.3*clamp(risk, -1, 2))
		if g.bern(0.7) {
			dfc = g.uniform(0, 2) // most screenings happen within a day or two
		}
		daysFromNum[i] = math.Round(dfc)
		daysFromCat[i] = daysBucket(daysFromNum[i])

		sba := g.normal(0, 8)
		if g.bern(0.12) {
			sba = g.normal(-200, 120)
		}
		screeningNum[i] = math.Round(clamp(sba, -600, 60))
		screeningCat[i] = screeningBucket(screeningNum[i])

		st := math.Abs(g.normal(0, 1)) * 120 * (1 + 0.4*clamp(risk, -1, 2))
		startNum[i] = math.Round(st)
		startCat[i] = daysBucket(startNum[i])

		// Supervision end: overwhelmingly small, heavy right tail that is
		// larger for young high-risk individuals — reproducing the
		// Figure 10e contrast between the top-k (end=0) and the detected
		// young group (about a third in higher buckets).
		en := 0.0
		if g.bern(clamp(0.42+0.10*risk-0.004*(age-35), 0.05, 0.9)) {
			en = math.Abs(g.normal(0, 1)) * 350 * (1 + 0.5*clamp(risk, -1, 2))
		}
		endNum[i] = math.Round(en)
		endCat[i] = endBucket(endNum[i])
	}

	t := dataset.New()
	mustAddCat(t, "sex", sex)
	mustAddCat(t, "age", ageCat)
	mustAddCat(t, "race", race)
	mustAddCat(t, "juv_fel_count", juvFel)
	mustAddCat(t, "juv_misd_count", juvMisd)
	mustAddCat(t, "juv_other_count", juvOtherCat)
	mustAddCat(t, "priors_count", priorsCat)
	mustAddCat(t, "c_charge_degree", chargeDegree)
	mustAddCat(t, "decile_score", decile)
	mustAddCat(t, "v_decile_score", vDecile)
	mustAddCat(t, "is_recid", isRecid)
	mustAddCat(t, "two_year_recid", twoYear)
	mustAddCat(t, "c_days_from_compas", daysFromCat)
	mustAddCat(t, "days_b_screening_arrest", screeningCat)
	mustAddCat(t, "start", startCat)
	mustAddCat(t, "end", endCat)
	mustAddNum(t, "age_num", ageNum)
	mustAddNum(t, "juv_other_num", juvOtherNum)
	mustAddNum(t, "priors_num", priorsNum)
	mustAddNum(t, "c_days_from_compas_num", daysFromNum)
	mustAddNum(t, "days_b_screening_arrest_num", screeningNum)
	mustAddNum(t, "start_num", startNum)
	mustAddNum(t, "end_num", endNum)

	return &Bundle{
		Name:  "compas",
		Table: t,
		Ranker: &rank.Linear{
			Columns: []string{
				"c_days_from_compas_num", "juv_other_num",
				"days_b_screening_arrest_num", "start_num", "end_num",
				"age_num", "priors_num",
			},
			Inverted: []string{"age_num"},
		},
	}
}

func boolLabel(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ageBucket matches the paper's case-study group p2 = {age = younger than 35}.
func ageBucket(age float64) string {
	switch {
	case age < 35:
		return "<35"
	case age < 55:
		return "[35,55)"
	default:
		return ">=55"
	}
}

func countBucket(v int) string {
	switch {
	case v == 0:
		return "0"
	case v == 1:
		return "1"
	case v == 2:
		return "2"
	default:
		return ">=3"
	}
}

func priorsBucket(v int) string {
	switch {
	case v == 0:
		return "0"
	case v <= 3:
		return "[1,3]"
	case v <= 9:
		return "[4,9]"
	default:
		return ">=10"
	}
}

func decileBucket(v int) string {
	switch {
	case v <= 3:
		return "low"
	case v <= 7:
		return "medium"
	default:
		return "high"
	}
}

func daysBucket(v float64) string {
	switch {
	case v < 1:
		return "0"
	case v < 30:
		return "[1,30)"
	case v < 180:
		return "[30,180)"
	default:
		return ">=180"
	}
}

func screeningBucket(v float64) string {
	switch {
	case v < -30:
		return "<-30"
	case v < 0:
		return "[-30,0)"
	case v < 8:
		return "[0,8)"
	default:
		return ">=8"
	}
}

// endBucket uses ordinal bucket indices as labels, matching the x-axis of
// Figure 10e (values 0, 1, 2, 3).
func endBucket(v float64) string {
	switch {
	case v < 1:
		return "0"
	case v < 120:
		return "1"
	case v < 500:
		return "2"
	default:
		return "3"
	}
}
