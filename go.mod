module rankfair

go 1.23
