package rankfair

import (
	"encoding/json"
	"math/rand"
	"testing"

	"rankfair/internal/explain"
	"rankfair/internal/synth"
)

// equivAnalyst builds an analyst over a synthetic dataset for the
// differential tests between the indexed and naive counting paths.
func equivAnalyst(t testing.TB, bundle *synth.Bundle, attrs int) *Analyst {
	t.Helper()
	in, err := bundle.InputAttrs(attrs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewFromInput(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// equivReports runs one detection per measure over the analyst.
func equivReports(t testing.TB, a *Analyst) map[string]*Report {
	t.Helper()
	n := len(a.Input().Rows)
	kMax := 49
	if kMax > n {
		kMax = n
	}
	reports := map[string]*Report{}
	detections := []struct {
		name string
		run  func() (*Report, error)
	}{
		{"global", func() (*Report, error) {
			return a.DetectGlobal(GlobalParams{MinSize: 10, KMin: 10, KMax: kMax, Lower: StaircaseBounds(10, kMax, 10, 10, 10)})
		}},
		{"prop", func() (*Report, error) {
			return a.DetectProportional(PropParams{MinSize: 10, KMin: 10, KMax: kMax, Alpha: 0.8})
		}},
		{"global-upper", func() (*Report, error) {
			return a.DetectGlobalUpper(GlobalUpperParams{MinSize: 10, KMin: 10, KMax: kMax, Upper: ConstantBounds(10, kMax, 8)})
		}},
		{"prop-upper", func() (*Report, error) {
			return a.DetectProportionalUpper(PropUpperParams{MinSize: 10, KMin: 10, KMax: kMax, Beta: 1.2})
		}},
		{"exposure", func() (*Report, error) {
			return a.DetectExposure(ExposureParams{MinSize: 10, KMin: 10, KMax: kMax, Alpha: 0.8})
		}},
	}
	for _, d := range detections {
		rep, err := d.run()
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		reports[d.name] = rep
	}
	return reports
}

// TestToJSONByteIdentical is the tentpole's acceptance proof: for every
// measure, the serialized report produced through the posting-list
// materializer is byte-identical to the one produced by the naive
// per-(group, k) dataset scans.
func TestToJSONByteIdentical(t *testing.T) {
	bundles := map[string]*synth.Bundle{
		"german":  synth.GermanCredit(400, 3),
		"student": synth.Students(395, 2),
		"compas":  synth.COMPAS(500, 1),
	}
	for name, bundle := range bundles {
		a := equivAnalyst(t, bundle, 6)
		for measure, rep := range equivReports(t, a) {
			rep.naiveCounts = true
			naive, err := json.Marshal(rep.ToJSON())
			if err != nil {
				t.Fatal(err)
			}
			rep.naiveCounts = false
			indexed, err := json.Marshal(rep.ToJSON())
			if err != nil {
				t.Fatal(err)
			}
			if string(naive) != string(indexed) {
				t.Errorf("%s/%s: indexed ToJSON differs from naive\nnaive:   %.400s\nindexed: %.400s",
					name, measure, naive, indexed)
			}
			if rep.TotalGroups() > 0 && len(rep.ToJSON().Results) == 0 {
				t.Errorf("%s/%s: report with %d groups serialized no results", name, measure, rep.TotalGroups())
			}
		}
	}
}

// TestInfoAtByteIdentical checks the enriched per-k views directly,
// including the float-for-float equality of bounds and bias magnitudes.
func TestInfoAtByteIdentical(t *testing.T) {
	a := equivAnalyst(t, synth.GermanCredit(400, 7), 6)
	for measure, rep := range equivReports(t, a) {
		for k := rep.KMin; k <= rep.KMax; k++ {
			rep.naiveCounts = true
			naive := rep.InfoAt(k)
			rep.naiveCounts = false
			indexed := rep.InfoAt(k)
			if len(naive) != len(indexed) {
				t.Fatalf("%s k=%d: %d infos indexed, %d naive", measure, k, len(indexed), len(naive))
			}
			for i := range naive {
				ni, xi := naive[i], indexed[i]
				if !ni.Pattern.Equal(xi.Pattern) || ni.Size != xi.Size || ni.TopK != xi.TopK ||
					ni.Required != xi.Required || ni.Bias != xi.Bias {
					t.Fatalf("%s k=%d info %d: indexed %+v != naive %+v", measure, k, i, xi, ni)
				}
			}
		}
	}
}

// TestAnalystCountsMatchNaive checks the public Count/CountTopK facade
// against the naive scans on random patterns over a real schema.
func TestAnalystCountsMatchNaive(t *testing.T) {
	a := equivAnalyst(t, synth.Students(395, 5), 8)
	in := a.Input()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := a.EmptyPattern()
		for attr := 0; attr < in.Space.NumAttrs(); attr++ {
			if rng.Float64() < 0.4 {
				p[attr] = int32(rng.Intn(in.Space.Cards[attr]))
			}
		}
		if got, want := a.Count(p), p.Count(in.Rows); got != want {
			t.Fatalf("Count(%v) = %d, naive %d", p, got, want)
		}
		k := 1 + rng.Intn(len(in.Rows))
		if got, want := a.CountTopK(p, k), p.CountTopK(in.Rows, in.Ranking, k); got != want {
			t.Fatalf("CountTopK(%v, %d) = %d, naive %d", p, k, got, want)
		}
	}
}

// TestExplainIndexedIdentical proves Analyst.Explain (index-gathered
// members) equals the scanning explain pipeline bit for bit: the member
// iteration order feeds a seeded sampler, so any ordering slip would show
// up as different Shapley values.
func TestExplainIndexedIdentical(t *testing.T) {
	bundle := synth.GermanCredit(300, 2)
	a, err := New(bundle.Table, &ByColumns{Keys: []ColumnKey{{Column: "credit_score", Descending: true}}})
	if err != nil {
		t.Fatal(err)
	}
	p := a.EmptyPattern().With(0, 0)
	opts := ExplainOptions{Seed: 9, Permutations: 8, BackgroundSize: 16}
	got, err := a.Explain(p, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := explain.Explain(a.in, a.dicts, p, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Errorf("indexed explanation differs from naive\nindexed: %.400s\nnaive:   %.400s", gj, wj)
	}
}

// TestRepairUnchangedByIndex pins RepairTopK's output across the
// counting-engine PR: repair keeps its inline O(n) position scores and
// must still return the minimally perturbed prefix.
func TestRepairUnchangedByIndex(t *testing.T) {
	bundle := synth.GermanCredit(200, 11)
	a, err := New(bundle.Table, &ByColumns{Keys: []ColumnKey{{Column: "credit_score", Descending: true}}})
	if err != nil {
		t.Fatal(err)
	}
	attr := a.Space().Names[0]
	selected, err := a.RepairTopK(attr, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained repair must return the ranking prefix itself.
	for i, ri := range selected {
		if ri != a.Input().Ranking[i] {
			t.Fatalf("unconstrained repair diverged from ranking at %d: %d != %d", i, ri, a.Input().Ranking[i])
		}
	}
}
