package core

import (
	"context"

	"rankfair/internal/pattern"
)

// domFrontier maintains the Res/DRes split of the biased frontier
// incrementally across k. The incremental searches used to recompute the
// split from scratch at every snapshot — sort the frontier, run
// markDominated over all of it — which made the per-k term quadratic-ish
// in the frontier size even when one pattern flipped. The frontier instead
// keeps the split materialized and updates it on each membership change,
// so per-k work is proportional to the flip set.
//
// Correctness rests on an order-independence property of the split.
// markDominated marks p dominated iff some *accepted* (itself
// non-dominated) earlier pattern is a proper subset of p — but over a
// fixed member set that is equivalent to "some member, accepted or not,
// is a proper subset of p": if any member q ⊊ p exists, pick a ⊂-minimal
// one; minimality means no member is a proper subset of q, so q is
// accepted and witnesses p's domination (every proper subset has strictly
// fewer bound attributes, so the induction over generality levels is
// well-founded). The split is therefore a pure function of the current
// member set, and maintaining it by membership deltas is exact:
//
//   - applyAdd(nd): nd is dominated iff some existing member is a proper
//     subset of it; members one or more levels above nd may newly become
//     dominated with nd as witness.
//   - applyRemove(nd): only members whose recorded witness was nd can
//     change status; each rescans the levels below it for a replacement
//     subset.
//
// Every dominated member carries a witness (one member proving its
// domination — any proper subset serves), which is what bounds
// applyRemove to the orphaned entries instead of a full recompute.
//
// Each incremental operation costs one mask pass over the members, so a
// step that flips thousands of nodes on a hundred-thousand-node frontier
// (the full-scale COMPAS sweep) would pay more than the recompute it
// replaced. add/remove therefore only buffer the flip into an op log;
// settle() — called once per snapshot — replays a small batch through
// the incremental operations and routes a large one back through the
// bulk sort + markDominatedWitness pass. Because the split is a pure
// function of the member set, both routes produce identical snapshots.
//
// Members are kept sorted by (bound-attribute count, interned key), the
// sortNodesInterned order, so emit() reproduces the old sort-then-filter
// snapshot byte for byte; the attrMask prefilter of subsetFilter is
// maintained in place alongside. The struct is generic over the node type
// for the same reason sortNodesInterned is: the three incremental
// searches each have their own node struct with an interned key field.
//
// Cancellation: add and remove poll the caller's canceler with the same
// effective cadence as markDominated's scan loops. A halted operation
// returns immediately and may leave the split stale — callers abandon the
// whole search on halt, so consistency after a halt is never observed.
type domFrontier[N any] struct {
	pat func(*N) pattern.Pattern
	key func(*N) *string

	nodes []*N
	masks []uint64
	attrs []int32
	dom   []bool
	wit   []*N // wit[i] proves dom[i]; nil otherwise
	ndom  int

	// Before the first seed() the frontier only accumulates members:
	// the initial build discovers thousands of biased patterns at once,
	// and bulk-seeding them through markDominatedWitness keeps that
	// pass's level-parallel fan-out instead of paying one incremental
	// insert each.
	seeded  bool
	pending []*N

	// ops buffers post-seed membership flips until the next settle().
	ops []frontOp[N]
}

// frontOp is one buffered membership flip.
type frontOp[N any] struct {
	nd  *N
	add bool
}

func newDomFrontier[N any](pat func(*N) pattern.Pattern, key func(*N) *string) *domFrontier[N] {
	return &domFrontier[N]{pat: pat, key: key}
}

// searchPos returns the insertion index of (attrs, key) in the sorted
// member order. Member keys are interned before insertion, so the
// comparison never builds a key.
func (f *domFrontier[N]) searchPos(attrs int32, key string) int {
	lo, hi := 0, len(f.nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.attrs[mid] < attrs || (f.attrs[mid] == attrs && *f.key(f.nodes[mid]) < key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// add admits nd into the frontier. Pre-seed it queues the node for the
// bulk seed; afterwards it buffers the flip for the next settle().
func (f *domFrontier[N]) add(nd *N) {
	if !f.seeded {
		f.pending = append(f.pending, nd)
		return
	}
	f.ops = append(f.ops, frontOp[N]{nd: nd, add: true})
}

// remove evicts nd. Pre-seed it drops the node from the pending queue;
// afterwards it buffers the flip for the next settle().
func (f *domFrontier[N]) remove(nd *N) {
	if !f.seeded {
		for i, q := range f.pending {
			if q == nd {
				f.pending[i] = f.pending[len(f.pending)-1]
				f.pending = f.pending[:len(f.pending)-1]
				return
			}
		}
		return
	}
	f.ops = append(f.ops, frontOp[N]{nd: nd, add: false})
}

// settle applies the buffered flips, leaving the split current. Small
// batches replay through the incremental operations; a batch whose
// one-mask-pass-per-op cost would exceed a recompute reroutes through
// the bulk seed path. It reports halted=true when the update was
// abandoned because ctx was canceled (the split may be stale; callers
// abandon the search).
func (f *domFrontier[N]) settle(ctx context.Context, workers int) (halted bool) {
	if !f.seeded {
		return f.seed(ctx, workers)
	}
	if len(f.ops) == 0 {
		return false
	}
	if len(f.ops) > max(64, len(f.nodes)/64) {
		return f.rebulk(ctx, workers)
	}
	cn := canceler{ctx: ctx}
	for _, op := range f.ops {
		if op.add {
			f.applyAdd(op.nd, &cn)
		} else {
			f.applyRemove(op.nd, &cn)
		}
		if cn.halted {
			return true
		}
	}
	f.ops = f.ops[:0]
	return false
}

// rebulk folds the op log into the member list and recomputes the split
// through the seed path's level-parallel markDominatedWitness pass.
func (f *domFrontier[N]) rebulk(ctx context.Context, workers int) (halted bool) {
	// Only a node's last flip decides its final membership.
	last := make(map[*N]bool, len(f.ops))
	order := make([]*N, 0, len(f.ops))
	for _, op := range f.ops {
		if _, seen := last[op.nd]; !seen {
			order = append(order, op.nd)
		}
		last[op.nd] = op.add
	}
	merged := make([]*N, 0, len(f.nodes)+len(order))
	for _, nd := range f.nodes {
		if want, touched := last[nd]; !touched || want {
			merged = append(merged, nd)
			// A re-added member must not be appended again below.
			delete(last, nd)
		}
	}
	for _, nd := range order {
		if last[nd] {
			merged = append(merged, nd)
		}
	}
	f.ops = nil
	f.pending = merged
	f.nodes, f.masks, f.attrs, f.dom, f.wit = nil, nil, nil, nil, nil
	f.ndom = 0
	f.seeded = false
	return f.seed(ctx, workers)
}

// applyAdd admits nd into the settled split. Polls cn and returns early
// when the search is halted.
func (f *domFrontier[N]) applyAdd(nd *N, cn *canceler) {
	p := f.pat(nd)
	pm := attrMask(p)
	na := int32(p.NumAttrs())
	kp := f.key(nd)
	if *kp == "" {
		*kp = p.Key()
	}
	// One pass over the members: lower levels may dominate nd (the first
	// witness found serves — the split does not depend on which), higher
	// levels may newly become dominated by nd. Same-level members never
	// nest. The mask prefilter skips pairs whose attribute sets cannot.
	dominated := false
	var w *N
	for i := range f.nodes {
		if i&63 == 63 && cn.stopped() {
			return
		}
		switch qa := f.attrs[i]; {
		case qa < na:
			if !dominated && f.masks[i]&^pm == 0 && f.pat(f.nodes[i]).ProperSubsetOf(p) {
				dominated = true
				w = f.nodes[i]
			}
		case qa > na:
			if !f.dom[i] && pm&^f.masks[i] == 0 && p.ProperSubsetOf(f.pat(f.nodes[i])) {
				f.dom[i] = true
				f.wit[i] = nd
				f.ndom++
			}
		}
	}
	pos := f.searchPos(na, *kp)
	f.nodes = append(f.nodes, nil)
	copy(f.nodes[pos+1:], f.nodes[pos:])
	f.nodes[pos] = nd
	f.masks = append(f.masks, 0)
	copy(f.masks[pos+1:], f.masks[pos:])
	f.masks[pos] = pm
	f.attrs = append(f.attrs, 0)
	copy(f.attrs[pos+1:], f.attrs[pos:])
	f.attrs[pos] = na
	f.dom = append(f.dom, false)
	copy(f.dom[pos+1:], f.dom[pos:])
	f.dom[pos] = dominated
	f.wit = append(f.wit, nil)
	copy(f.wit[pos+1:], f.wit[pos:])
	f.wit[pos] = w
	if dominated {
		f.ndom++
	}
}

// applyRemove evicts nd from the settled split, re-witnessing the
// members its departure orphaned. Polls cn and returns early when
// halted.
func (f *domFrontier[N]) applyRemove(nd *N, cn *canceler) {
	p := f.pat(nd)
	pos := f.searchPos(int32(p.NumAttrs()), *f.key(nd))
	if pos >= len(f.nodes) || f.nodes[pos] != nd {
		return // not a member
	}
	if f.dom[pos] {
		f.ndom--
	}
	last := len(f.nodes) - 1
	copy(f.nodes[pos:], f.nodes[pos+1:])
	f.nodes[last] = nil
	f.nodes = f.nodes[:last]
	copy(f.masks[pos:], f.masks[pos+1:])
	f.masks = f.masks[:last]
	copy(f.attrs[pos:], f.attrs[pos+1:])
	f.attrs = f.attrs[:last]
	copy(f.dom[pos:], f.dom[pos+1:])
	f.dom = f.dom[:last]
	copy(f.wit[pos:], f.wit[pos+1:])
	f.wit[last] = nil
	f.wit = f.wit[:last]
	// Only entries witnessed by nd can change status.
	checks := 0
	for i := range f.nodes {
		if f.wit[i] != nd {
			continue
		}
		f.wit[i] = nil
		f.dom[i] = false
		f.ndom--
		q := f.pat(f.nodes[i])
		qm := f.masks[i]
		qa := f.attrs[i]
		for j := 0; j < len(f.nodes) && f.attrs[j] < qa; j++ {
			if checks++; checks&63 == 0 && cn.stopped() {
				return
			}
			if f.masks[j]&^qm == 0 && f.pat(f.nodes[j]).ProperSubsetOf(q) {
				f.wit[i] = f.nodes[j]
				f.dom[i] = true
				f.ndom++
				break
			}
		}
	}
}

// seed bulk-loads the pending members through the level-parallel
// markDominatedWitness pass, recording each dominated pattern's witness.
// It reports halted=true when the filter was abandoned because the
// context was canceled (the frontier stays unseeded).
func (f *domFrontier[N]) seed(ctx context.Context, workers int) (halted bool) {
	sortNodesInterned(f.pending, f.pat, f.key)
	ps := make([]pattern.Pattern, len(f.pending))
	for i, nd := range f.pending {
		ps[i] = f.pat(nd)
	}
	wit, halted := markDominatedWitness(ctx, ps, workers)
	if halted {
		return true
	}
	n := len(f.pending)
	f.nodes = f.pending
	f.pending = nil
	f.masks = make([]uint64, n)
	f.attrs = make([]int32, n)
	f.dom = make([]bool, n)
	f.wit = make([]*N, n)
	f.ndom = 0
	for i := range f.nodes {
		f.masks[i] = attrMask(ps[i])
		f.attrs[i] = int32(ps[i].NumAttrs())
		if wit[i] >= 0 {
			f.dom[i] = true
			f.wit[i] = f.nodes[wit[i]]
			f.ndom++
		}
	}
	f.seeded = true
	return false
}

// emit renders the current Res — the non-dominated members in
// (generality, key) order, matching the old sort-then-filter snapshot.
func (f *domFrontier[N]) emit() []Pattern {
	out := make([]Pattern, 0, len(f.nodes)-f.ndom)
	for i, nd := range f.nodes {
		if !f.dom[i] {
			out = append(out, f.pat(nd))
		}
	}
	return out
}
