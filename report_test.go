package rankfair_test

import (
	"strings"
	"testing"

	"rankfair"
)

func TestInfoAtGlobalBiasRanking(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	infos := report.InfoAt(4)
	if len(infos) != len(report.At(4)) {
		t.Fatalf("InfoAt size %d != At size %d", len(infos), len(report.At(4)))
	}
	for i, info := range infos {
		if info.Required != 2 {
			t.Errorf("global bound should be 2, got %v", info.Required)
		}
		if info.Bias != 2-float64(info.TopK) {
			t.Errorf("bias mismatch: %+v", info)
		}
		if info.Size < 4 {
			t.Errorf("reported group below threshold: %+v", info)
		}
		if i > 0 && infos[i].Bias > infos[i-1].Bias {
			t.Errorf("not sorted by bias at %d", i)
		}
	}
	// {Failures=2} has 0 of the top-4 — maximal bias 2 — and must sort
	// ahead of the count-1 groups.
	if infos[0].TopK != 0 {
		t.Errorf("most biased group has count %d, want 0: %+v", infos[0].TopK, infos[0])
	}
	desc := report.Describe(infos[0], 4)
	for _, want := range []string{"tuples", "top-4", "bias"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q: %s", want, desc)
		}
	}
	if report.InfoAt(99) != nil {
		t.Error("out-of-range k should be nil")
	}
}

func TestInfoAtProportional(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectProportional(rankfair.PropParams{
		MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range report.InfoAt(4) {
		// Bound = 0.9 * sD * 4/16 and the group must violate it.
		want := 0.9 * float64(info.Size) * 4.0 / 16.0
		if info.Required != want {
			t.Errorf("bound %v, want %v", info.Required, want)
		}
		if float64(info.TopK) >= info.Required {
			t.Errorf("reported group does not violate its bound: %+v", info)
		}
	}
}

func TestInfoAtUpper(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectGlobalUpper(rankfair.GlobalUpperParams{
		MinSize: 4, KMin: 5, KMax: 5, Upper: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range report.InfoAt(5) {
		if info.TopK <= 2 {
			t.Errorf("upper report must exceed the bound: %+v", info)
		}
		if info.Bias != float64(info.TopK)-2 {
			t.Errorf("upper bias mismatch: %+v", info)
		}
	}
	prop, err := a.DetectProportionalUpper(rankfair.PropUpperParams{
		MinSize: 4, KMin: 5, KMax: 5, Beta: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range prop.InfoAt(5) {
		if float64(info.TopK) <= info.Required {
			t.Errorf("prop upper report must exceed its bound: %+v", info)
		}
	}
}

func TestSuggestLowerBounds(t *testing.T) {
	got, err := rankfair.SuggestLowerBounds(10, 20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("len %d", len(got))
	}
	if got[0] != 2 || got[10] != 5 { // floor(0.25*10)=2, floor(0.25*20)=5
		t.Errorf("bounds = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("suggested bounds must be non-decreasing")
		}
	}
	// Suggested bounds must be accepted by the optimized algorithm.
	a := runningAnalyst(t)
	lower, err := rankfair.SuggestLowerBounds(4, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DetectGlobal(rankfair.GlobalParams{MinSize: 4, KMin: 4, KMax: 8, Lower: lower}); err != nil {
		t.Fatalf("suggested bounds rejected: %v", err)
	}
	if _, err := rankfair.SuggestLowerBounds(5, 4, 0.5); err == nil {
		t.Error("bad range should fail")
	}
	if _, err := rankfair.SuggestLowerBounds(1, 5, 0); err == nil {
		t.Error("zero share should fail")
	}
	if _, err := rankfair.SuggestLowerBounds(1, 5, 1.5); err == nil {
		t.Error("share > 1 should fail")
	}
}
