package rank

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rankfair/internal/dataset"
)

// buildNumTable builds a table with the given numeric columns drawn from a
// tiny value domain, so key ties are frequent and the stable tie-break is
// exercised hard.
func buildNumTable(t *testing.T, rng *rand.Rand, rows, cols, domain int) *dataset.Table {
	t.Helper()
	tb := dataset.New()
	for c := 0; c < cols; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = float64(rng.Intn(domain))
		}
		if err := tb.AddNumeric(fmt.Sprintf("s%d", c), vals); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// appendNumRows returns a new table extending t with extra random rows.
func appendNumRows(t *testing.T, rng *rand.Rand, tb *dataset.Table, extra, domain int) *dataset.Table {
	t.Helper()
	out := dataset.New()
	for _, c := range tb.Columns() {
		vals := make([]float64, 0, len(c.Floats)+extra)
		vals = append(vals, c.Floats...)
		for i := 0; i < extra; i++ {
			vals = append(vals, float64(rng.Intn(domain)))
		}
		if err := out.AddNumeric(c.Name, vals); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestRankAppendMatchesRank is the exactness contract of IncrementalRanker:
// extending a ranking must yield precisely the permutation a full re-rank
// produces, including all tie-breaks.
func TestRankAppendMatchesRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(40)
		extra := rng.Intn(20)
		cols := 1 + rng.Intn(3)
		domain := 1 + rng.Intn(5) // tiny: ties everywhere
		base := buildNumTable(t, rng, rows, cols, domain)
		full := appendNumRows(t, rng, base, extra, domain)
		keys := make([]ColumnKey, cols)
		for c := range keys {
			keys[c] = ColumnKey{Column: fmt.Sprintf("s%d", c), Descending: rng.Intn(2) == 0}
		}
		r := &ByColumns{Keys: keys}
		oldRanking, err := r.Rank(base)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Rank(full)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.RankAppend(full, oldRanking)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d entries, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (rows=%d extra=%d domain=%d): rank %d: got row %d, want %d\ngot  %v\nwant %v",
					trial, rows, extra, domain, i, got[i], want[i], got, want)
			}
		}
	}
}

// TestRankAppendRejectsNaN: NaN in a key column breaks the strict weak
// order the merge-insert relies on (NaN ties with everything), so
// RankAppend must refuse rather than silently diverge from Rank — callers
// then fall back to the full re-sort.
func TestRankAppendRejectsNaN(t *testing.T) {
	tb := dataset.New()
	if err := tb.AddNumeric("s0", []float64{3, math.NaN(), 1, 2}); err != nil {
		t.Fatal(err)
	}
	r := &ByColumns{Keys: []ColumnKey{{Column: "s0", Descending: true}}}
	old, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	full := dataset.New()
	if err := full.AddNumeric("s0", []float64{3, math.NaN(), 1, 2, 2.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RankAppend(full, old); err == nil {
		t.Fatal("RankAppend accepted a NaN key column")
	}
	// NaN only in the appended rows is just as order-breaking.
	full2 := dataset.New()
	if err := full2.AddNumeric("s0", []float64{3, 0, 1, 2, math.NaN()}); err != nil {
		t.Fatal(err)
	}
	clean := dataset.New()
	if err := clean.AddNumeric("s0", []float64{3, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	old2, err := r.Rank(clean)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RankAppend(full2, old2); err == nil {
		t.Fatal("RankAppend accepted a NaN appended key value")
	}
}

// TestRankAppendErrors covers the defensive paths.
func TestRankAppendErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := buildNumTable(t, rng, 5, 1, 3)
	r := &ByColumns{Keys: []ColumnKey{{Column: "s0"}}}
	if _, err := r.RankAppend(tb, []int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("oversized old ranking accepted")
	}
	if _, err := (&ByColumns{}).RankAppend(tb, nil); err == nil {
		t.Fatal("keyless ranker accepted")
	}
	if _, err := (&ByColumns{Keys: []ColumnKey{{Column: "nope"}}}).RankAppend(tb, nil); err == nil {
		t.Fatal("missing column accepted")
	}
}
