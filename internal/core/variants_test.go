package core_test

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
)

func TestQuickUpperMostGeneralMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2 + rng.Intn(4)
		kMax := kMin + rng.Intn(6)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		upper := make([]int, kMax-kMin+1)
		for i := range upper {
			upper[i] = 1 + rng.Intn(4)
		}
		params := core.GlobalUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Upper: upper}
		got, err := core.IterTDGlobalUpperMostGeneral(in, params)
		if err != nil {
			return false
		}
		for k := kMin; k <= kMax; k++ {
			u := upper[k-kMin]
			var exceeding []pattern.Pattern
			pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
				if p.Count(in.Rows) >= minSize && p.CountTopK(in.Rows, in.Ranking, k) > u {
					exceeding = append(exceeding, p)
				}
				return true
			})
			want := pattern.MostGeneral(exceeding)
			if !sameGroups(got.At(k), want) {
				t.Logf("seed %d k=%d: %v != %v", seed, k, got.At(k), want)
				return false
			}
			// Downward closure makes every most general exceeding
			// pattern single-attribute.
			for _, p := range got.At(k) {
				if p.NumAttrs() != 1 {
					t.Logf("seed %d k=%d: non-unary most general %v", seed, k, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(23)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLowerMostSpecificMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2 + rng.Intn(4)
		kMax := kMin + rng.Intn(6)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		params := core.GlobalParams{MinSize: minSize, KMin: kMin, KMax: kMax, Lower: core.ConstantBounds(kMin, kMax, 1+rng.Intn(3))}
		got, err := core.IterTDGlobalLowerMostSpecific(in, params)
		if err != nil {
			return false
		}
		for k := kMin; k <= kMax; k++ {
			l := params.Lower[k-kMin]
			// Oracle: below patterns that are most specific among the
			// substantial-and-below set.
			var below []pattern.Pattern
			pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
				if p.Count(in.Rows) >= minSize && p.CountTopK(in.Rows, in.Ranking, k) < l {
					below = append(below, p)
				}
				return true
			})
			want := pattern.MostSpecific(below)
			if !sameGroups(got.At(k), want) {
				t.Logf("seed %d k=%d: %v != %v (L=%d τs=%d)", seed, k, got.At(k), want, l, minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(29)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExposureMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 2 + rng.Intn(4)
		kMax := kMin + rng.Intn(8)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		alpha := 0.3 + rng.Float64()*0.8
		params := core.ExposureParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: alpha}
		got, err := core.IterTDExposure(in, params)
		if err != nil {
			return false
		}
		for k := kMin; k <= kMax; k++ {
			ek := 0.0
			for i := 1; i <= k; i++ {
				ek += core.PositionExposure(i)
			}
			var biased []pattern.Pattern
			pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
				sD := p.Count(in.Rows)
				if sD < minSize {
					return true
				}
				if core.PatternExposure(in, p, k) < alpha*float64(sD)*ek/float64(n) {
					biased = append(biased, p)
				}
				return true
			})
			want := pattern.MostGeneral(biased)
			if !sameGroups(got.At(k), want) {
				t.Logf("seed %d k=%d: %v != %v (α=%v)", seed, k, got.At(k), want, alpha)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(31)); err != nil {
		t.Fatal(err)
	}
}

// TestExposureDistinguishesPositions encodes the Section III motivation:
// two groups with identical top-10 counts but different positions get
// different exposure verdicts.
func TestExposureDistinguishesPositions(t *testing.T) {
	// 20 tuples, one binary attribute: value 0 occupies positions 1-5,
	// value 1 positions 6-10, both absent from 11-20... then both have
	// count 5 in the top-10 but value 1's exposure is much lower.
	rows := make([][]int32, 20)
	ranking := make([]int, 20)
	for i := range rows {
		v := int32(0)
		if (i >= 5 && i < 10) || i >= 15 {
			v = 1
		}
		rows[i] = []int32{v}
		ranking[i] = i
	}
	in := &core.Input{
		Rows:    rows,
		Space:   &pattern.Space{Names: []string{"g"}, Cards: []int{2}},
		Ranking: ranking,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p0 := pattern.Pattern{0}
	p1 := pattern.Pattern{1}
	if c0, c1 := p0.CountTopK(rows, ranking, 10), p1.CountTopK(rows, ranking, 10); c0 != 5 || c1 != 5 {
		t.Fatalf("counts %d/%d, want 5/5", c0, c1)
	}
	e0 := core.PatternExposure(in, p0, 10)
	e1 := core.PatternExposure(in, p1, 10)
	if e0 <= e1 {
		t.Fatalf("positions 1-5 must out-expose 6-10: %v vs %v", e0, e1)
	}
	// With α tuned between the two exposure shares, only the low-exposure
	// group is reported even though counts are equal.
	ek := e0 + e1
	share := e1 / (ek * 0.5) // e1 relative to its proportional share
	alpha := share + (e0/(ek*0.5)-share)/2
	res, err := core.IterTDExposure(in, core.ExposureParams{MinSize: 1, KMin: 10, KMax: 10, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	groups := res.At(10)
	if len(groups) != 1 || !groups[0].Equal(p1) {
		t.Fatalf("want exactly {g=1}, got %v", groups)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := randomInput(rng)
	n := len(in.Rows)
	kMax := 15
	if kMax > n {
		kMax = n
	}
	gp := core.GlobalParams{MinSize: 2, KMin: 2, KMax: kMax, Lower: core.ConstantBounds(2, kMax, 2)}
	seq, err := core.IterTDGlobal(in, gp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, runtime.GOMAXPROCS(0) + 2} {
		par, err := core.IterTDGlobalParallel(in, gp, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats.NodesExamined != seq.Stats.NodesExamined {
			t.Errorf("workers=%d: nodes %d != %d", workers, par.Stats.NodesExamined, seq.Stats.NodesExamined)
		}
		for k := gp.KMin; k <= gp.KMax; k++ {
			if !sameGroups(par.At(k), seq.At(k)) {
				t.Fatalf("workers=%d k=%d: %v != %v", workers, k, par.At(k), seq.At(k))
			}
		}
	}
	pp := core.PropParams{MinSize: 2, KMin: 2, KMax: kMax, Alpha: 0.8}
	seqP, err := core.IterTDProp(in, pp)
	if err != nil {
		t.Fatal(err)
	}
	parP, err := core.IterTDPropParallel(in, pp, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := pp.KMin; k <= pp.KMax; k++ {
		if !sameGroups(parP.At(k), seqP.At(k)) {
			t.Fatalf("prop k=%d: %v != %v", k, parP.At(k), seqP.At(k))
		}
	}
	// Validation errors propagate.
	if _, err := core.IterTDGlobalParallel(in, core.GlobalParams{KMin: 0, KMax: 1}, 2); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := core.IterTDPropParallel(in, core.PropParams{KMin: 1, KMax: 1, Alpha: -1}, 2); err == nil {
		t.Error("invalid params should fail")
	}
}

// TestQuickThresholdMonotonicity verifies the size-threshold invariant:
// because every proper subset of a qualifying pattern is automatically
// substantial, Res(τs') for τs' > τs is exactly Res(τs) filtered by size.
func TestQuickThresholdMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		k := 2 + rng.Intn(min(10, n-1))
		l := 1 + rng.Intn(3)
		tau1 := 1 + rng.Intn(3)
		tau2 := tau1 + 1 + rng.Intn(4)
		run := func(tau int) []pattern.Pattern {
			res, err := core.GlobalBounds(in, core.GlobalParams{MinSize: tau, KMin: k, KMax: k, Lower: []int{l}})
			if err != nil {
				t.Fatal(err)
			}
			return res.At(k)
		}
		loose := run(tau1)
		tight := run(tau2)
		var filtered []pattern.Pattern
		for _, p := range loose {
			if p.Count(in.Rows) >= tau2 {
				filtered = append(filtered, p)
			}
		}
		return sameGroups(tight, filtered)
	}
	if err := quick.Check(prop, quickCfg(37)); err != nil {
		t.Fatal(err)
	}
}

func TestExposureParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInput(rng)
	cases := []core.ExposureParams{
		{MinSize: 1, KMin: 0, KMax: 5, Alpha: 0.5},
		{MinSize: -1, KMin: 1, KMax: 5, Alpha: 0.5},
		{MinSize: 1, KMin: 1, KMax: 5, Alpha: 0},
		{MinSize: 1, KMin: 1, KMax: 10_000, Alpha: 0.5},
	}
	for i, p := range cases {
		if _, err := core.IterTDExposure(in, p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
