// Package divergence reimplements the comparator of Pastor, de Alfaro &
// Baralis ("Identifying biased subgroups in ranking and classification",
// [27] in the paper) that Section VI-D contrasts with the detection
// algorithms. Each tuple gets a binary outcome o(t) = 1 iff it appears in
// the top-k; a subgroup's outcome o(G) is the mean over its members; the
// divergence of G is o(G) - o(D). The method reports every pattern with
// support above a threshold (no most-general filtering), ranked by
// divergence — which is why its output is typically much larger than the
// paper's and contains mutually subsumed groups.
package divergence

import (
	"fmt"
	"math"
	"sort"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
)

// Params configures the divergence search.
type Params struct {
	// MinSupport is the minimum fraction of the dataset a subgroup must
	// cover (the s threshold of [27]; the paper's case study uses 0.13).
	MinSupport float64
	// K defines the binary outcome: o(t) = 1 iff t ranks in the top K.
	K int
}

// Group is one reported subgroup.
type Group struct {
	// Pattern describes the subgroup.
	Pattern pattern.Pattern
	// Size is the subgroup's tuple count.
	Size int
	// Support is Size / |D|.
	Support float64
	// Outcome is the mean outcome o(G): the fraction of the subgroup in
	// the top-k.
	Outcome float64
	// Divergence is o(G) - o(D).
	Divergence float64
	// TStat is Welch's t statistic between the group's outcomes and the
	// complement's, the significance measure DivExplorer attaches to its
	// divergences. Zero when either side is too small to estimate.
	TStat float64
}

// Result is the divergence-ranked report.
type Result struct {
	// Groups is sorted by divergence descending (most negative last);
	// ties break by generality then key for determinism.
	Groups []Group
	// DatasetOutcome is o(D) = K / |D|.
	DatasetOutcome float64
}

// checkParams validates the input and derives the absolute support
// threshold (ceil of MinSupport·n, at least 1) and the dataset outcome
// o(D). Shared by Find and FindIndexed so the two searches cannot drift.
func checkParams(in *core.Input, params Params) (minSize int, oD float64, err error) {
	if err := in.Validate(); err != nil {
		return 0, 0, err
	}
	if params.MinSupport < 0 || params.MinSupport > 1 {
		return 0, 0, fmt.Errorf("divergence: support %v outside [0,1]", params.MinSupport)
	}
	if params.K < 1 || params.K > len(in.Rows) {
		return 0, 0, fmt.Errorf("divergence: k=%d outside [1,%d]", params.K, len(in.Rows))
	}
	n := len(in.Rows)
	minSize = int(params.MinSupport * float64(n))
	if float64(minSize) < params.MinSupport*float64(n) {
		minSize++ // ceil
	}
	if minSize < 1 {
		minSize = 1
	}
	return minSize, float64(params.K) / float64(n), nil
}

// newGroup assembles one reported subgroup from its size and top-k hits.
func newGroup(p pattern.Pattern, size, hits, n, k int, oD float64) Group {
	oG := float64(hits) / float64(size)
	return Group{
		Pattern:    p,
		Size:       size,
		Support:    float64(size) / float64(n),
		Outcome:    oG,
		Divergence: oG - oD,
		TStat:      welchT(hits, size, k-hits, n-size),
	}
}

// sortGroups orders a report deterministically: divergence descending,
// ties by generality then key.
func sortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Divergence != groups[j].Divergence {
			return groups[i].Divergence > groups[j].Divergence
		}
		ni, nj := groups[i].Pattern.NumAttrs(), groups[j].Pattern.NumAttrs()
		if ni != nj {
			return ni < nj
		}
		return groups[i].Pattern.Key() < groups[j].Pattern.Key()
	})
}

// Find enumerates all patterns with support >= MinSupport and computes
// their divergence. Support pruning makes the frequent-pattern search
// tractable: a pattern below the support threshold has no frequent
// descendant.
func Find(in *core.Input, params Params) (*Result, error) {
	minSize, oD, err := checkParams(in, params)
	if err != nil {
		return nil, err
	}
	n := len(in.Rows)

	inTop := make([]bool, n)
	for _, ri := range in.Ranking[:params.K] {
		inTop[ri] = true
	}

	var groups []Group
	type entry struct {
		p     pattern.Pattern
		match []int32
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	queue := []entry{{p: pattern.Empty(in.Space.NumAttrs()), match: all}}
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		queue[head] = entry{}
		if e.p.NumAttrs() > 0 {
			hits := 0
			for _, ri := range e.match {
				if inTop[ri] {
					hits++
				}
			}
			groups = append(groups, newGroup(e.p, len(e.match), hits, n, params.K, oD))
		}
		// Generate frequent children along the search tree.
		for a := e.p.MaxAttrIdx() + 1; a < in.Space.NumAttrs(); a++ {
			for v := 0; v < in.Space.Cards[a]; v++ {
				child := e.p.With(a, int32(v))
				var match []int32
				for _, ri := range e.match {
					if in.Rows[ri][a] == int32(v) {
						match = append(match, ri)
					}
				}
				if len(match) >= minSize {
					queue = append(queue, entry{p: child, match: match})
				}
			}
		}
	}
	sortGroups(groups)
	return &Result{Groups: groups, DatasetOutcome: oD}, nil
}

// welchT computes Welch's t statistic between two Bernoulli samples: a
// group with hitsG successes of nG trials against its complement with
// hitsC of nC. Sample variances use the n-1 denominator; degenerate sides
// yield 0.
func welchT(hitsG, nG, hitsC, nC int) float64 {
	if nG < 2 || nC < 2 {
		return 0
	}
	oG := float64(hitsG) / float64(nG)
	oC := float64(hitsC) / float64(nC)
	varG := oG * (1 - oG) * float64(nG) / float64(nG-1)
	varC := oC * (1 - oC) * float64(nC) / float64(nC-1)
	se := varG/float64(nG) + varC/float64(nC)
	if se <= 0 {
		return 0
	}
	return (oG - oC) / math.Sqrt(se)
}

// RankOf returns the 1-based position of pattern p in the divergence-ranked
// report, or 0 if absent. The paper's case study reports {sex=M} at rank 17.
func (r *Result) RankOf(p pattern.Pattern) int {
	for i, g := range r.Groups {
		if g.Pattern.Equal(p) {
			return i + 1
		}
	}
	return 0
}
