// Package exp implements the experimental harness of Section VI: parameter
// sweeps over the number of attributes (Figures 4-5), the size threshold τs
// (Figures 6-7) and the range of k (Figures 8-9), comparing ITERTD against
// the optimized algorithms; the nodes-examined comparison of Section VI-B;
// the Shapley case studies of Figures 10a-10f; the divergence case study of
// Section VI-D; and the result-size survey backing the "97.58% of runs
// report fewer than 100 groups" observation of Section III.
//
// Absolute timings depend on hardware; the harness reproduces the *shape*
// of the paper's results: which algorithm wins, how runtime grows with each
// parameter, and where the optimized algorithms save work.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"rankfair/internal/core"
	"rankfair/internal/synth"
)

// Config carries the default experiment parameters of Section VI-A.
type Config struct {
	// Tau is the size threshold τs (default 50).
	Tau int
	// KMin, KMax delimit the k range (default [10, 49]).
	KMin, KMax int
	// LowerBase/LowerStep/LowerWidth define the global-bounds staircase
	// (default 10/10/10: L=10,20,30,40 per decade of k).
	LowerBase, LowerStep, LowerWidth int
	// Alpha is the proportional-representation slack (default 0.8).
	Alpha float64
	// Timeout bounds each single algorithm run, mirroring the paper's
	// 10-minute cap; zero means no timeout.
	Timeout time.Duration
	// Seed drives the synthetic data generators.
	Seed int64
}

// Defaults returns the paper's default parameter setting.
func Defaults() Config {
	return Config{
		Tau:  50,
		KMin: 10, KMax: 49,
		LowerBase: 10, LowerStep: 10, LowerWidth: 10,
		Alpha:   0.8,
		Timeout: 2 * time.Minute,
		Seed:    1,
	}
}

// lower builds the staircase bounds for a k range.
func (c Config) lower(kMin, kMax int) []int {
	return core.StaircaseBounds(kMin, kMax, c.LowerBase, c.LowerStep, c.LowerWidth)
}

// Datasets instantiates the three evaluation datasets at a size scale
// (1.0 = the paper's sizes: COMPAS 6889, Student 395, German 1000).
func Datasets(scale float64, seed int64) []*synth.Bundle {
	if scale <= 0 {
		scale = 1
	}
	sz := func(n int) int {
		s := int(float64(n) * scale)
		if s < 60 {
			s = 60
		}
		return s
	}
	return []*synth.Bundle{
		synth.COMPAS(sz(synth.DefaultCOMPASRows), seed),
		synth.Students(sz(synth.DefaultStudentRows), seed+1),
		synth.GermanCredit(sz(synth.DefaultGermanRows), seed+2),
	}
}

// Measurement records one algorithm run within a sweep.
type Measurement struct {
	// Algorithm names the measured algorithm ("IterTD", "GlobalBounds",
	// "PropBounds").
	Algorithm string
	// Param is the swept parameter value (attribute count, τs, or kmax).
	Param int
	// Duration is the wall-clock run time.
	Duration time.Duration
	// Nodes is the number of pattern nodes examined.
	Nodes int64
	// Groups is the total number of reported groups across the k range.
	Groups int
	// TimedOut marks runs abandoned at the configured timeout.
	TimedOut bool
	// Err records a failed run.
	Err error
}

// Figure is a rendered experiment: a title, column header and value rows.
type Figure struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	widths := make([]int, len(f.Header))
	for i, h := range f.Header {
		widths[i] = len(h)
	}
	for _, row := range f.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(f.Header)); err != nil {
		return err
	}
	for _, row := range f.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the figure as CSV: a comment line with the title, the
// header row, then value rows — convenient for external plotting.
func (f *Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	if err := cw.Write(f.Header); err != nil {
		return err
	}
	for _, row := range f.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// runDetector executes one detection run under the configured timeout. A
// timed-out run keeps executing in the background (its goroutine cannot be
// cancelled) but is reported as TimedOut, mirroring the paper's policy of
// plotting timeouts as censored points.
func runDetector(name string, timeout time.Duration, f func() (*core.Result, error)) Measurement {
	type outcome struct {
		res *core.Result
		err error
		dur time.Duration
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := f()
		ch <- outcome{res: res, err: err, dur: time.Since(start)}
	}()
	if timeout <= 0 {
		o := <-ch
		return measurementFrom(name, o.res, o.err, o.dur)
	}
	select {
	case o := <-ch:
		return measurementFrom(name, o.res, o.err, o.dur)
	case <-time.After(timeout):
		return Measurement{Algorithm: name, Duration: timeout, TimedOut: true}
	}
}

func measurementFrom(name string, res *core.Result, err error, dur time.Duration) Measurement {
	m := Measurement{Algorithm: name, Duration: dur, Err: err}
	if res != nil {
		m.Nodes = res.Stats.NodesExamined
		m.Groups = res.TotalGroups()
	}
	return m
}

// fmtDur renders a duration with millisecond precision for tables.
func fmtDur(m Measurement) string {
	if m.TimedOut {
		return "timeout"
	}
	if m.Err != nil {
		return "error"
	}
	return fmt.Sprintf("%.1fms", float64(m.Duration.Microseconds())/1000)
}

func fmtNodes(m Measurement) string {
	if m.TimedOut || m.Err != nil {
		return "-"
	}
	return fmt.Sprintf("%d", m.Nodes)
}

func fmtGroups(m Measurement) string {
	if m.TimedOut || m.Err != nil {
		return "-"
	}
	return fmt.Sprintf("%d", m.Groups)
}

// speedup renders base/opt as a factor string.
func speedup(base, opt Measurement) string {
	if base.TimedOut && !opt.TimedOut {
		return ">1x (baseline timed out)"
	}
	if base.TimedOut || opt.TimedOut || base.Err != nil || opt.Err != nil || opt.Duration <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base.Duration)/float64(opt.Duration))
}
