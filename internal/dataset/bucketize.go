package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// BucketMethod selects how Bucketize splits a numeric domain.
type BucketMethod int

const (
	// EqualWidth splits [min, max] into bins of equal width, the paper's
	// default for continuous attributes such as age ("bucketized equally
	// into 3-4 bins, based on their domain and values", Sec. VI-A).
	EqualWidth BucketMethod = iota
	// Quantile splits at empirical quantiles so bins have roughly equal
	// population.
	Quantile
)

// Bucketize derives a categorical column from the named numeric column by
// splitting its domain into bins labeled "[lo,hi)" (last bin "[lo,hi]").
// The new column is appended with the given name. bins must be >= 2.
func (t *Table) Bucketize(numericCol, newName string, bins int, method BucketMethod) error {
	if bins < 2 {
		return fmt.Errorf("dataset: bucketize needs bins >= 2, got %d", bins)
	}
	c := t.ColumnByName(numericCol)
	if c == nil {
		return fmt.Errorf("dataset: no column %q", numericCol)
	}
	if c.Kind != Numeric {
		return fmt.Errorf("dataset: column %q is %s, want numeric", numericCol, c.Kind)
	}
	if len(c.Floats) == 0 {
		return fmt.Errorf("dataset: column %q is empty", numericCol)
	}
	cuts, err := cutPoints(c.Floats, bins, method)
	if err != nil {
		return fmt.Errorf("dataset: bucketize %q: %w", numericCol, err)
	}
	dict := make([]string, len(cuts)-1)
	for b := 0; b+1 < len(cuts); b++ {
		close := ")"
		if b == len(cuts)-2 {
			close = "]"
		}
		dict[b] = "[" + trimFloat(cuts[b]) + "," + trimFloat(cuts[b+1]) + close
	}
	codes := make([]int32, len(c.Floats))
	for i, v := range c.Floats {
		codes[i] = int32(bucketOf(v, cuts))
	}
	return t.AddCategoricalCodes(newName, codes, dict)
}

// cutPoints returns bins+1 strictly increasing cut points covering the data.
func cutPoints(vals []float64, bins int, method BucketMethod) ([]float64, error) {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("non-finite value %v", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		return nil, fmt.Errorf("constant column (all values %v)", lo)
	}
	var cuts []float64
	switch method {
	case EqualWidth:
		cuts = make([]float64, bins+1)
		for i := 0; i <= bins; i++ {
			cuts[i] = lo + (hi-lo)*float64(i)/float64(bins)
		}
	case Quantile:
		sorted := make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
		cuts = append(cuts, lo)
		for i := 1; i < bins; i++ {
			q := sorted[i*len(sorted)/bins]
			if q > cuts[len(cuts)-1] {
				cuts = append(cuts, q)
			}
		}
		cuts = append(cuts, hi)
		if len(cuts) < 3 {
			// Degenerate quantiles (heavily skewed data): fall back to
			// equal width so the caller still gets the requested shape.
			return cutPoints(vals, bins, EqualWidth)
		}
	default:
		return nil, fmt.Errorf("unknown bucket method %d", method)
	}
	return cuts, nil
}

// bucketOf returns the bin index of v for the given cut points: bin b covers
// [cuts[b], cuts[b+1]), with the final bin closed on the right.
func bucketOf(v float64, cuts []float64) int {
	n := len(cuts) - 1
	for b := 0; b < n-1; b++ {
		if v < cuts[b+1] {
			return b
		}
	}
	return n - 1
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
