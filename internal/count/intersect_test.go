package count

import (
	"math/rand"
	"reflect"
	"testing"

	"rankfair/internal/pattern"
)

// naiveIntersect is the reference set intersection over ascending lists.
func naiveIntersect(a, b []int32) []int32 {
	inB := make(map[int32]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	out := []int32{}
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// randAscending draws an ascending duplicate-free list from [0, domain).
func randAscending(rng *rand.Rand, domain, maxLen int) []int32 {
	n := rng.Intn(maxLen + 1)
	if n > domain {
		n = domain
	}
	seen := make(map[int32]bool, n)
	for len(seen) < n {
		seen[int32(rng.Intn(domain))] = true
	}
	out := make([]int32, 0, n)
	for v := int32(0); int(v) < domain; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestIntersectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		domain := 1 + rng.Intn(200)
		a := randAscending(rng, domain, 60)
		// Lopsided lengths on a third of the trials to force the galloping
		// path (gallopRatio).
		maxB := 60
		if trial%3 == 0 {
			maxB = domain
		}
		b := randAscending(rng, domain, maxB)
		want := naiveIntersect(a, b)
		got := Intersect(a, b)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Intersect(%v, %v) = %v, want %v", trial, a, b, got, want)
		}
		// Symmetry and append-into semantics.
		pre := []int32{-7}
		into := IntersectInto(pre, b, a)
		if !reflect.DeepEqual(into[1:], want) || into[0] != -7 {
			t.Fatalf("trial %d: IntersectInto mangled dst: %v", trial, into)
		}
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	if got := Intersect(nil, []int32{1, 2}); len(got) != 0 {
		t.Errorf("nil ∩ list = %v", got)
	}
	if got := Intersect([]int32{5}, []int32{1, 2, 3}); len(got) != 0 {
		t.Errorf("disjoint ranges = %v", got)
	}
	// Galloping past the end of the long list.
	long := make([]int32, 100)
	for i := range long {
		long[i] = int32(2 * i)
	}
	if got := Intersect([]int32{0, 97, 198, 500}, long); !reflect.DeepEqual(got, []int32{0, 198}) {
		t.Errorf("gallop overshoot: %v", got)
	}
}

// TestIntersectPostingsMatchesMatchRanks cross-checks the two match-set
// derivations on the index: progressive galloping intersection vs the
// probe-and-verify of MatchRanks.
func TestIntersectPostingsMatchesMatchRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nAttrs := 1 + rng.Intn(4)
		space := &pattern.Space{Names: make([]string, nAttrs), Cards: make([]int, nAttrs)}
		for a := range space.Cards {
			space.Names[a] = string(rune('A' + a))
			space.Cards[a] = 1 + rng.Intn(4)
		}
		nRows := 1 + rng.Intn(120)
		rows := make([][]int32, nRows)
		for i := range rows {
			r := make([]int32, nAttrs)
			for a := range r {
				r[a] = int32(rng.Intn(space.Cards[a]))
			}
			rows[i] = r
		}
		ix := Build(rows, space, rng.Perm(nRows))
		for arity := 0; arity <= nAttrs; arity++ {
			p := pattern.Empty(nAttrs)
			for a := 0; a < arity; a++ {
				p[a] = int32(rng.Intn(space.Cards[a]))
			}
			want := ix.MatchRanks(p)
			got := ix.IntersectPostings(p)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: IntersectPostings(%v) = %v, MatchRanks %v", trial, p, got, want)
			}
		}
		// Out-of-domain bound values match nothing on both paths.
		bad := pattern.Empty(nAttrs).With(0, int32(space.Cards[0]))
		if got := ix.IntersectPostings(bad); len(got) != 0 {
			t.Fatalf("out-of-domain pattern matched %v", got)
		}
	}
}
