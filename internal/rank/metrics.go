package rank

import (
	"fmt"
	"math"
)

// This file provides the rank-quality metrics the library uses to assess
// ranking surrogates (Section V trains a model to simulate the ranker; a
// downstream user should know how faithful it is) and to compare rankings:
// Kendall's tau, Spearman's rho, and NDCG (Järvelin & Kekäläinen, the
// paper's [20]).

// KendallTau returns Kendall's tau-a between two rankings of the same
// items: 1 for identical orders, -1 for reversed, 0 for uncorrelated.
// Both arguments are permutations of row indices (best first). Runs in
// O(n log n) via inversion counting.
func KendallTau(a, b []int) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("rank: rankings of different lengths %d and %d", n, len(b))
	}
	if n < 2 {
		return 1, nil
	}
	posB := make([]int, n)
	for i, ri := range b {
		if ri < 0 || ri >= n {
			return 0, fmt.Errorf("rank: index %d out of range", ri)
		}
		posB[ri] = i
	}
	seq := make([]int, n)
	for i, ri := range a {
		if ri < 0 || ri >= n {
			return 0, fmt.Errorf("rank: index %d out of range", ri)
		}
		seq[i] = posB[ri]
	}
	inv := countInversions(seq)
	pairs := float64(n) * float64(n-1) / 2
	return 1 - 2*float64(inv)/pairs, nil
}

// countInversions counts pairs i<j with seq[i] > seq[j] by merge sort.
func countInversions(seq []int) int64 {
	buf := make([]int, len(seq))
	return mergeCount(seq, buf)
}

func mergeCount(seq, buf []int) int64 {
	n := len(seq)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(seq[:mid], buf[:mid]) + mergeCount(seq[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if seq[i] <= seq[j] {
			buf[k] = seq[i]
			i++
		} else {
			buf[k] = seq[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	copy(buf[k:], seq[i:mid])
	copy(buf[k+mid-i:], seq[j:n])
	copy(seq, buf[:n])
	return inv
}

// SpearmanRho returns Spearman's rank correlation between two rankings of
// the same items (Pearson correlation of the position vectors).
func SpearmanRho(a, b []int) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("rank: rankings of different lengths %d and %d", n, len(b))
	}
	if n < 2 {
		return 1, nil
	}
	pa := Positions(a)
	pb := Positions(b)
	// With distinct ranks 0..n-1 on both sides the closed form applies:
	// rho = 1 - 6*sum(d²)/(n(n²-1)).
	var sumD2 float64
	for i := 0; i < n; i++ {
		d := float64(pa[i] - pb[i])
		sumD2 += d * d
	}
	nf := float64(n)
	return 1 - 6*sumD2/(nf*(nf*nf-1)), nil
}

// NDCG returns the normalized discounted cumulative gain of a ranking at
// cutoff k, given per-item relevance grades: DCG(ranking@k) / DCG(ideal@k).
// It returns 1 when all relevances are zero (any order is ideal).
func NDCG(relevance []float64, ranking []int, k int) (float64, error) {
	n := len(relevance)
	if len(ranking) != n {
		return 0, fmt.Errorf("rank: %d relevances for ranking of %d", n, len(ranking))
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("rank: cutoff %d outside [1,%d]", k, n)
	}
	dcg := 0.0
	for i := 0; i < k; i++ {
		ri := ranking[i]
		if ri < 0 || ri >= n {
			return 0, fmt.Errorf("rank: index %d out of range", ri)
		}
		dcg += relevance[ri] / math.Log2(float64(i)+2)
	}
	ideal := ByScoresDesc(relevance)
	idcg := 0.0
	for i := 0; i < k; i++ {
		idcg += relevance[ideal[i]] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1, nil
	}
	return dcg / idcg, nil
}
