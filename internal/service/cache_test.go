package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitAndEviction(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	compute := func(v string) func() (any, error) {
		return func() (any, error) { return v, nil }
	}

	if _, hit, _ := c.Do(ctx, "a", compute("va")); hit {
		t.Error("first Do should be a miss")
	}
	if v, hit, _ := c.Do(ctx, "a", compute("!")); !hit || v != "va" {
		t.Errorf("second Do: hit=%v v=%v, want cached va", hit, v)
	}

	// Fill beyond capacity; "a" was most recently used, so "b" evicts.
	c.Do(ctx, "b", compute("vb"))
	c.Do(ctx, "a", compute("!")) // touch a
	c.Do(ctx, "c", compute("vc"))

	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

// TestCacheSingleFlight is the single-computation proof: concurrent Do
// calls for one key run the compute function exactly once and share the
// result.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	const callers = 16
	var computes atomic.Int64
	gate := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (any, error) {
				computes.Add(1)
				<-gate // hold the flight open until every caller has arrived
				return "shared", nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}

	// Release the computation once all other callers are blocked on the
	// flight (waiters register under the cache lock before blocking, so
	// polling the stats is race-free).
	for {
		st := c.Stats()
		if st.Shared == callers-1 {
			break
		}
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers, want 1", got, callers)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != callers-1 {
		t.Errorf("stats = %+v, want misses=1 shared=%d", st, callers-1)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do(ctx, "k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Errorf("retry after error: v=%v hit=%v err=%v, want fresh ok", v, hit, err)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-gate
			return "late", nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (any, error) { return nil, fmt.Errorf("must not run") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(gate)
}
