package rankfair_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"rankfair"
	"rankfair/internal/core"
	"rankfair/internal/synth"
)

// statsAnalyst builds a facade analyst over the first 8 student
// attributes (full 33-attribute lattices are benchmark territory) with
// its own input, so strategy and stats toggles never leak across the
// instrumented/disabled pair.
func statsAnalyst(t *testing.T, b *synth.Bundle, strat core.Strategy) *rankfair.Analyst {
	t.Helper()
	in, err := b.InputAttrs(8)
	if err != nil {
		t.Fatal(err)
	}
	in.Strategy = strat
	a, err := rankfair.NewFromInput(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// statsCases is one audit per measure over a shared k range.
func statsCases(kMin, kMax int) []rankfair.AuditParams {
	span := kMax - kMin + 1
	lower := make([]int, span)
	upper := make([]int, span)
	for i := range lower {
		lower[i] = 2
		upper[i] = 3
	}
	return []rankfair.AuditParams{
		{Measure: rankfair.MeasureGlobal, MinSize: 8, KMin: kMin, KMax: kMax, Lower: lower},
		{Measure: rankfair.MeasureProp, MinSize: 8, KMin: kMin, KMax: kMax, Alpha: 0.8},
		{Measure: rankfair.MeasureGlobalUpper, MinSize: 8, KMin: kMin, KMax: kMax, Upper: upper},
		{Measure: rankfair.MeasurePropUpper, MinSize: 8, KMin: kMin, KMax: kMax, Beta: 1.25},
		{Measure: rankfair.MeasureExposure, MinSize: 8, KMin: kMin, KMax: kMax, Alpha: 0.8},
	}
}

// TestStatsInvariance is the observability layer's no-interference
// contract: collecting search statistics must not change what an audit
// reports. For every measure, both counting strategies, and serial vs
// parallel fan-out, the audit JSON of an instrumented run minus its
// "stats" key is byte-identical to a run with stats disabled.
func TestStatsInvariance(t *testing.T) {
	b := synth.Students(260, 7)
	strategies := []struct {
		name string
		s    core.Strategy
	}{
		{"lists", core.StrategyLists},
		{"index", core.StrategyIndex},
		{"bitmap", core.StrategyBitmap},
	}
	for _, strat := range strategies {
		for _, workers := range []int{1, 4} {
			for _, params := range statsCases(5, 15) {
				params.Workers = workers
				t.Run(fmt.Sprintf("%s/%s/w%d", params.Measure, strat.name, workers), func(t *testing.T) {
					on := statsAnalyst(t, b, strat.s)
					off := statsAnalyst(t, b, strat.s)
					off.SetSearchStats(false)

					repOn, err := on.Detect(params)
					if err != nil {
						t.Fatal(err)
					}
					repOff, err := off.Detect(params)
					if err != nil {
						t.Fatal(err)
					}
					if repOn.Search == nil {
						t.Fatal("instrumented run carries no SearchStats")
					}
					if repOn.Search.Strategy != strat.name {
						t.Errorf("stats strategy = %q, want %q", repOn.Search.Strategy, strat.name)
					}
					if repOn.Search.Workers != workers {
						t.Errorf("stats workers = %d, want %d", repOn.Search.Workers, workers)
					}
					if repOff.Search != nil {
						t.Fatal("disabled run still carries SearchStats")
					}

					jOn := repOn.ToJSON()
					if jOn.Stats == nil {
						t.Fatal("instrumented audit JSON has no stats key")
					}
					jOff := repOff.ToJSON()
					if jOff.Stats != nil {
						t.Fatal("disabled audit JSON still has a stats key")
					}
					jOn.Stats = nil
					rawOn, err := json.MarshalIndent(jOn, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					rawOff, err := json.MarshalIndent(jOff, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(rawOn, rawOff) {
						t.Errorf("audit JSON differs beyond the stats key:\n--- instrumented ---\n%s\n--- disabled ---\n%s", rawOn, rawOff)
					}

					// The pooled encoder agrees on the disabled shape too.
					var buf bytes.Buffer
					if err := repOff.WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					if want := append(rawOff, '\n'); !bytes.Equal(buf.Bytes(), want) {
						t.Error("WriteJSON of the disabled run diverges from encoding/json")
					}
				})
			}
		}
	}
}

// BenchmarkObsOverhead measures the cost of the always-on search
// instrumentation: the same warm audit with stats collected vs disabled.
// The two timings are the PR's acceptance gate (<= 2% apart, recorded in
// BENCH_PR6.json).
func BenchmarkObsOverhead(b *testing.B) {
	bundle := synth.Students(395, 2)
	for _, mode := range []struct {
		name    string
		enabled bool
	}{
		{"stats-on", true},
		{"stats-off", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			in, err := bundle.InputAttrs(8)
			if err != nil {
				b.Fatal(err)
			}
			a, err := rankfair.NewFromInput(in, nil)
			if err != nil {
				b.Fatal(err)
			}
			a.SetSearchStats(mode.enabled)
			a.Warm()
			params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 10, KMin: 10, KMax: 49, Alpha: 0.8}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Detect(params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestStatsWorkerIndependence: the serialized stats block is fan-out
// independent (audits differing only in worker count share one cache
// entry in the daemon), while the in-process Report.Search still reports
// the width that ran.
func TestStatsWorkerIndependence(t *testing.T) {
	b := synth.Students(260, 7)
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		a := statsAnalyst(t, b, core.StrategyAuto)
		rep, err := a.Detect(rankfair.AuditParams{
			Measure: rankfair.MeasureProp, MinSize: 8, KMin: 5, KMax: 15, Alpha: 0.8, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Search.Workers != workers {
			t.Errorf("Report.Search.Workers = %d, want %d", rep.Search.Workers, workers)
		}
		raw, err := json.Marshal(rep.ToJSON().Stats)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Errorf("workers=%d serialized stats diverge:\n%s\nvs\n%s", workers, raw, first)
		}
	}
}
