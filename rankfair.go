// Package rankfair detects groups with biased representation in the top-k
// results of a ranking algorithm, without pre-defined protected groups,
// implementing Li, Moskovitch & Jagadish, "Detection of Groups with Biased
// Representation in Ranking" (ICDE 2023).
//
// The entry point is an Analyst bound to a dataset and a black-box ranker:
//
//	table, _ := rankfair.ReadCSV(f, rankfair.CSVOptions{})
//	a, err := rankfair.New(table, &rankfair.ByColumns{
//		Keys: []rankfair.ColumnKey{{Column: "score", Descending: true}},
//	})
//	report, err := a.DetectProportional(rankfair.PropParams{
//		MinSize: 50, KMin: 10, KMax: 49, Alpha: 0.8,
//	})
//	for _, g := range report.At(20) {
//		fmt.Println(report.Format(g)) // e.g. {sex=F, address=R}
//	}
//
// Detected groups can be explained with aggregated Shapley values over a
// regression surrogate of the ranker (Analyst.Explain), and compared with
// the divergence-based method of Pastor et al. (Analyst.Divergence).
package rankfair

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"rankfair/internal/core"
	"rankfair/internal/count"
	"rankfair/internal/dataset"
	"rankfair/internal/divergence"
	"rankfair/internal/explain"
	"rankfair/internal/pattern"
	"rankfair/internal/rank"
)

// Re-exported substrate types: the facade exposes the full vocabulary of
// the library without requiring internal imports.
type (
	// Dataset is an in-memory relation of categorical and numeric columns.
	Dataset = dataset.Table
	// CSVOptions controls CSV decoding.
	CSVOptions = dataset.CSVOptions
	// Pattern is a value assignment to a subset of attributes, describing
	// a group (Definition 2.2 of the paper).
	Pattern = pattern.Pattern
	// Space describes the categorical attribute universe.
	Space = pattern.Space
	// Ranker is the black-box ranking algorithm interface.
	Ranker = rank.Ranker
	// IncrementalRanker is a Ranker that can extend an existing ranking
	// with appended tuples exactly (ByColumns implements it); the
	// streaming append path takes its fast path only for rankers
	// satisfying this interface.
	IncrementalRanker = rank.IncrementalRanker
	// ByColumns ranks lexicographically by numeric sort keys.
	ByColumns = rank.ByColumns
	// ColumnKey is one sort key of ByColumns.
	ColumnKey = rank.ColumnKey
	// Linear ranks by a weighted sum of min-max normalized attributes.
	Linear = rank.Linear
	// Fixed wraps an externally produced ranking permutation.
	Fixed = rank.Fixed

	// Input is the algorithm-level dataset view (rows, space, ranking).
	Input = core.Input
	// GlobalParams parameterizes Problem 3.1 (global bounds, lower side).
	GlobalParams = core.GlobalParams
	// PropParams parameterizes Problem 3.2 (proportional, lower side).
	PropParams = core.PropParams
	// GlobalUpperParams parameterizes upper-bound detection, global.
	GlobalUpperParams = core.GlobalUpperParams
	// PropUpperParams parameterizes upper-bound detection, proportional.
	PropUpperParams = core.PropUpperParams
	// ExposureParams parameterizes proportional-exposure detection (the
	// position-discounted measure of Singh & Joachims).
	ExposureParams = core.ExposureParams
	// Result holds per-k result sets and work statistics.
	Result = core.Result
	// CanceledError is the partial-work error a detection run returns when
	// its context is canceled mid-lattice; it unwraps to the context error.
	CanceledError = core.CanceledError

	// ExplainOptions tunes the Shapley explanation pipeline (Section V).
	ExplainOptions = explain.Options
	// Explanation is a Shapley-based group explanation.
	Explanation = explain.Explanation
	// DivergenceParams configures the Pastor et al. comparator.
	DivergenceParams = divergence.Params
	// DivergenceResult is the divergence-ranked subgroup report.
	DivergenceResult = divergence.Result
)

// Model kinds for ExplainOptions.
const (
	// RidgeModel uses one-hot ridge regression as the ranking surrogate.
	RidgeModel = explain.RidgeModel
	// TreeModel uses a CART regression tree as the ranking surrogate.
	TreeModel = explain.TreeModel
)

// Unbound marks an unconstrained attribute inside a Pattern.
const Unbound = pattern.Unbound

// NewDataset returns an empty dataset; add columns with AddCategorical,
// AddNumeric, and Bucketize.
func NewDataset() *Dataset { return dataset.New() }

// ReadCSV decodes a header-first CSV stream into a Dataset.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSV(r, opts)
}

// WriteCSV encodes a Dataset as CSV.
func WriteCSV(w io.Writer, t *Dataset) error { return dataset.WriteCSV(w, t) }

// StaircaseBounds builds the paper's default non-decreasing lower-bound
// sequence for GlobalParams.
func StaircaseBounds(kMin, kMax, base, step, width int) []int {
	return core.StaircaseBounds(kMin, kMax, base, step, width)
}

// ConstantBounds builds a constant bound sequence.
func ConstantBounds(kMin, kMax, l int) []int { return core.ConstantBounds(kMin, kMax, l) }

// Analyst binds a dataset to a ranker and exposes the paper's detection,
// explanation and comparison pipelines over it.
type Analyst struct {
	table *Dataset
	in    *core.Input
	dicts [][]string

	// idx is the shared rank-indexed counting engine (internal/count),
	// built lazily on first use and reused by every report, repair,
	// explanation and divergence query against this analyst. It is
	// immutable after construction, so a cached Analyst can serve
	// concurrent audits.
	idxOnce sync.Once
	idx     *count.Index
}

// index returns the analyst's counting index, building it on first use and
// threading it into the algorithm-level input: every detection run after
// this point starts its lattice search in rank space over the posting
// lists with zero setup scans (core.StrategyAuto always prefers an
// attached index). Callers reach the input only through methods that call
// index() first, so the write is safely published by the Once.
func (a *Analyst) index() *count.Index {
	a.idxOnce.Do(func() {
		a.idx = count.Build(a.in.Rows, a.in.Space, a.in.Ranking)
		a.in.Index = a.idx
	})
	return a.idx
}

// Warm pre-builds the analyst's rank-indexed counting engine so the first
// detection, report or explanation against this analyst starts warm. The
// rankfaird service calls it when admitting an analyst into its cache;
// library callers that build an Analyst ahead of serving traffic can do
// the same.
func (a *Analyst) Warm() { a.index() }

// IndexFootprint returns the estimated heap footprint in bytes of the
// analyst's counting index, building the index on first use. The rankfaird
// service surfaces the sum over cached analysts as a gauge.
func (a *Analyst) IndexFootprint() int64 { return a.index().SizeBytes() }

// SetSearchStats toggles collection of per-run core.SearchStats on this
// analyst's detection runs (enabled by default). Disabling removes the
// Report.Search counters and the audit JSON "stats" key; Groups and the
// comparable Stats are byte-identical either way. Call before sharing the
// analyst across goroutines — the flag is read at the start of each run.
func (a *Analyst) SetSearchStats(enabled bool) { a.in.DisableStats = !enabled }

// Count returns s_D(p), the number of tuples matching p, answered from the
// shared posting-list index (O(bound attrs · shortest list) instead of a
// full dataset scan).
func (a *Analyst) Count(p Pattern) int { return a.index().Count(p) }

// CountTopK returns s_{R_k(D)}(p), the number of tuples among the top k of
// the ranking matching p: a binary search on rank positions for
// single-attribute groups, a bounded probe for multi-attribute ones.
func (a *Analyst) CountTopK(p Pattern, k int) int { return a.index().CountTopK(p, k) }

// New builds an Analyst: it materializes the categorical view of the table
// and invokes the black-box ranker once.
func New(table *Dataset, ranker Ranker) (*Analyst, error) {
	if table == nil {
		return nil, errors.New("rankfair: nil dataset")
	}
	if ranker == nil {
		return nil, errors.New("rankfair: nil ranker")
	}
	rows, names, cards := table.CatMatrix()
	if len(names) == 0 {
		return nil, errors.New("rankfair: dataset has no categorical attributes (bucketize numeric columns first)")
	}
	ranking, err := ranker.Rank(table)
	if err != nil {
		return nil, fmt.Errorf("rankfair: ranking: %w", err)
	}
	in := &core.Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: ranking}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("rankfair: %w", err)
	}
	return &Analyst{table: table, in: in, dicts: table.CatDicts()}, nil
}

// NewFromInput builds an Analyst directly from an algorithm-level input,
// for callers that produce encoded rows and rankings themselves. dicts may
// be nil (patterns then render with raw codes).
func NewFromInput(in *Input, dicts [][]string) (*Analyst, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("rankfair: %w", err)
	}
	return &Analyst{in: in, dicts: dicts}, nil
}

// Input exposes the algorithm-level view (rows, space, ranking).
func (a *Analyst) Input() *Input { return a.in }

// Append derives an analyst for an extended dataset from this one without
// re-ranking or re-indexing: the streaming ingestion fast path. table must
// extend the analyst's dataset — its first NumRows() rows equal to the
// parent's rows, in order, with unchanged categorical schema (the contract
// Dataset.AppendRows produces). When the ranker supports incremental
// extension (rank.IncrementalRanker — ByColumns does), the appended rows'
// scores are merged into the maintained ranking, the warm posting-list
// index is extended copy-on-write (count.Index.Extend), and the shared row
// prefix is aliased rather than re-encoded, so the returned analyst is warm
// for O(n + b·attrs) work plus a prefix-equality check. The receiver stays
// fully usable — audits running against it are unaffected (snapshot
// isolation). Rankers without incremental support, schema mismatches and
// tables that do not extend this one fall back to New(table, ranker), which
// is always correct, just cold; either way the result is indistinguishable
// from an analyst built fresh over table (the append differential suite
// holds both paths to byte-identical reports).
func (a *Analyst) Append(table *Dataset, ranker Ranker) (*Analyst, error) {
	if table == nil {
		return nil, errors.New("rankfair: nil dataset")
	}
	if ranker == nil {
		return nil, errors.New("rankfair: nil ranker")
	}
	inc, ok := ranker.(rank.IncrementalRanker)
	if !ok || a.table == nil || !a.extendsTable(table) {
		return New(table, ranker)
	}
	newRanking, err := inc.RankAppend(table, a.in.Ranking)
	if err != nil {
		return New(table, ranker)
	}
	n := a.table.NumRows()
	tail := table.CatRowsFrom(n)
	rows := make([][]int32, 0, n+len(tail))
	rows = append(rows, a.in.Rows...)
	rows = append(rows, tail...)
	idx := a.index().Extend(rows, a.in.Space, newRanking)
	in := &core.Input{
		Rows:         rows,
		Space:        a.in.Space,
		Ranking:      newRanking,
		Index:        idx,
		Strategy:     a.in.Strategy,
		DisableStats: a.in.DisableStats,
	}
	if err := in.ValidateAppend(a.in); err != nil {
		return nil, fmt.Errorf("rankfair: append: %w", err)
	}
	na := &Analyst{table: table, in: in, dicts: table.CatDicts()}
	na.idxOnce.Do(func() { na.idx = idx })
	return na, nil
}

// extendsTable reports whether table extends the analyst's dataset: same
// columns in the same order with identical kinds, identical categorical
// dictionaries and code prefixes, and identical numeric prefixes (the
// ranker's sort keys live there — a re-scored prefix would make the
// merge-insert binary-search over a ranking the new scores no longer
// sort). The prefix comparison is one sequential O(n·cols) pass with no
// allocation — cheap insurance against a caller handing Append an
// unrelated table, which would otherwise silently produce a wrong ranking
// or search old codes under new labels. NaN prefix values fail the float
// equality and force the (always correct) rebuild fallback by design.
func (a *Analyst) extendsTable(table *Dataset) bool {
	if table.NumRows() < a.table.NumRows() || table.NumCols() != a.table.NumCols() {
		return false
	}
	n := a.table.NumRows()
	cat := 0
	for j, c := range table.Columns() {
		oc := a.table.Column(j)
		if c.Name != oc.Name || c.Kind != oc.Kind {
			return false
		}
		if c.Kind != dataset.Categorical {
			if c.Kind == dataset.Numeric {
				for i := 0; i < n; i++ {
					if c.Floats[i] != oc.Floats[i] {
						return false
					}
				}
			}
			continue
		}
		if c.Cardinality() != oc.Cardinality() {
			return false
		}
		for v := 0; v < oc.Cardinality(); v++ {
			if c.Dict[v] != oc.Dict[v] {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if c.Codes[i] != a.in.Rows[i][cat] {
				return false
			}
		}
		cat++
	}
	return true
}

// searchInput returns the algorithm-level input with the counting index
// attached (built on first use): every facade detection entry point runs
// its lattice search through this, so a warm Analyst — the service layer
// caches them per (dataset hash, ranker key) — starts each search in rank
// space over the posting lists with zero setup scans.
func (a *Analyst) searchInput() *core.Input {
	a.index()
	return a.in
}

// Space exposes the categorical attribute universe.
func (a *Analyst) Space() *Space { return a.in.Space }

// EmptyPattern returns the all-unbound pattern over the analyst's space;
// bind attributes with Pattern.With or Analyst.Bind.
func (a *Analyst) EmptyPattern() Pattern { return pattern.Empty(a.in.Space.NumAttrs()) }

// Bind returns a copy of p with the named attribute bound to the value
// with the given label.
func (a *Analyst) Bind(p Pattern, attr, label string) (Pattern, error) {
	for i, n := range a.in.Space.Names {
		if n != attr {
			continue
		}
		if a.dicts != nil {
			for c, l := range a.dicts[i] {
				if l == label {
					return p.With(i, int32(c)), nil
				}
			}
			return nil, fmt.Errorf("rankfair: attribute %q has no value %q", attr, label)
		}
		return nil, fmt.Errorf("rankfair: no value dictionary for attribute %q", attr)
	}
	return nil, fmt.Errorf("rankfair: no attribute %q", attr)
}

// Format renders a pattern with attribute names and value labels.
func (a *Analyst) Format(p Pattern) string { return p.Format(a.in.Space, a.dicts) }

// Report pairs a detection result with its analyst for rendering and with
// the bound parameters for bias-magnitude computations (see InfoAt).
type Report struct {
	*Result
	analyst *Analyst

	kind     reportKind
	gParams  core.GlobalParams
	pParams  core.PropParams
	guParams core.GlobalUpperParams
	puParams core.PropUpperParams
	eParams  core.ExposureParams

	// Materialization state (see materialized / exposurePrefixLocked):
	// per-level (key, count-vector) slices aligned with Result.Groups,
	// and the cumulative position-exposure table. Built lazily, guarded
	// by matMu.
	matMu      sync.Mutex
	levels     [][]levelEntry
	expWeights []float64
	expPrefix  []float64

	// naiveCounts forces the pre-index scan path in InfoAt; it exists so
	// differential tests and benchmarks can compare the two pipelines.
	naiveCounts bool
}

// Format renders a group with attribute names and value labels.
func (r *Report) Format(p Pattern) string { return r.analyst.Format(p) }

// DetectGlobal runs GLOBALBOUNDS (Algorithm 2): most general groups whose
// top-k count falls below L_k, for every k in range.
func (a *Analyst) DetectGlobal(params GlobalParams) (*Report, error) {
	res, err := core.GlobalBounds(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachGlobal(params), nil
}

// DetectGlobalBaseline runs the ITERTD baseline for global bounds. Unlike
// DetectGlobal it accepts non-monotone bound sequences.
func (a *Analyst) DetectGlobalBaseline(params GlobalParams) (*Report, error) {
	res, err := core.IterTDGlobal(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachGlobal(params), nil
}

// DetectProportional runs PROPBOUNDS (Algorithm 3): most general groups
// whose top-k count falls below α·s_D(p)·k/|D|, for every k in range.
func (a *Analyst) DetectProportional(params PropParams) (*Report, error) {
	res, err := core.PropBounds(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachProp(params), nil
}

// DetectProportionalBaseline runs the ITERTD baseline for proportional
// representation.
func (a *Analyst) DetectProportionalBaseline(params PropParams) (*Report, error) {
	res, err := core.IterTDProp(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachProp(params), nil
}

// DetectGlobalUpper finds the most specific substantial groups exceeding
// the upper bounds U_k (Section III, "Upper bounds").
func (a *Analyst) DetectGlobalUpper(params GlobalUpperParams) (*Report, error) {
	res, err := core.IterTDGlobalUpper(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachGlobalUpper(params), nil
}

// DetectProportionalUpper finds the most specific substantial groups
// exceeding β·s_D(p)·k/|D|.
func (a *Analyst) DetectProportionalUpper(params PropUpperParams) (*Report, error) {
	res, err := core.IterTDPropUpper(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachPropUpper(params), nil
}

// DetectExposure finds the most general groups whose position-discounted
// exposure in the top-k falls below α times their proportional exposure
// share, for every k in range. Exposure distinguishes *where* in the prefix
// a group sits, not just how often it appears (an extension measure from
// the fairness-in-ranking literature the paper builds on). It runs the
// incremental ExposureBounds algorithm.
func (a *Analyst) DetectExposure(params ExposureParams) (*Report, error) {
	res, err := core.ExposureBounds(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return &Report{Result: res, analyst: a, kind: kindExposure, eParams: params}, nil
}

// DetectExposureBaseline runs the per-k baseline for the exposure measure.
func (a *Analyst) DetectExposureBaseline(params ExposureParams) (*Report, error) {
	res, err := core.IterTDExposure(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return &Report{Result: res, analyst: a, kind: kindExposure, eParams: params}, nil
}

// DetectGlobalLowerMostSpecific reports the most specific substantial
// groups below the lower bounds — the alternate report semantics Section
// III sketches for analysts who want maximal detail rather than concise
// descriptions.
func (a *Analyst) DetectGlobalLowerMostSpecific(params GlobalParams) (*Report, error) {
	res, err := core.IterTDGlobalLowerMostSpecific(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachGlobal(params), nil
}

// DetectGlobalUpperMostGeneral reports the most general groups exceeding
// the upper bounds (by count monotonicity these bind a single attribute).
func (a *Analyst) DetectGlobalUpperMostGeneral(params GlobalUpperParams) (*Report, error) {
	res, err := core.IterTDGlobalUpperMostGeneral(a.searchInput(), params)
	if err != nil {
		return nil, err
	}
	return (&Report{Result: res, analyst: a}).attachGlobalUpper(params), nil
}

// Detect dispatches a measure-tagged AuditParams to the matching typed
// detection entry point. It is the single entry the rankfaird audit
// service drives; library callers with static measure choices should
// prefer the typed methods.
func (a *Analyst) Detect(params AuditParams) (*Report, error) {
	return a.DetectCtx(context.Background(), params)
}

// DetectCtx is Detect with cross-cutting execution controls. Canceling ctx
// stops the lattice search mid-traversal: the run discards its partial
// work and returns an error unwrapping to ctx.Err() (core.CanceledError),
// within a bounded number of node expansions of the cancellation. A
// params.Workers above 1 fans the search out over that many goroutines;
// results are byte-identical to the serial run for every worker count
// (params.Workers of 0 runs serially here — the rankfaird service
// substitutes its own default before calling).
func (a *Analyst) DetectCtx(ctx context.Context, params AuditParams) (*Report, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	w := params.Workers
	if w == 0 {
		w = 1
	}
	switch params.Measure {
	case MeasureGlobal:
		gp := GlobalParams{MinSize: params.MinSize, KMin: params.KMin, KMax: params.KMax, Lower: params.Lower}
		var res *Result
		var err error
		if params.Baseline {
			res, err = core.IterTDGlobalCtx(ctx, a.searchInput(), gp, w)
		} else {
			res, err = core.GlobalBoundsCtx(ctx, a.searchInput(), gp, w)
		}
		if err != nil {
			return nil, err
		}
		return (&Report{Result: res, analyst: a}).attachGlobal(gp), nil
	case MeasureProp:
		pp := PropParams{MinSize: params.MinSize, KMin: params.KMin, KMax: params.KMax, Alpha: params.Alpha}
		var res *Result
		var err error
		if params.Baseline {
			res, err = core.IterTDPropCtx(ctx, a.searchInput(), pp, w)
		} else {
			res, err = core.PropBoundsCtx(ctx, a.searchInput(), pp, w)
		}
		if err != nil {
			return nil, err
		}
		return (&Report{Result: res, analyst: a}).attachProp(pp), nil
	case MeasureGlobalUpper:
		up := GlobalUpperParams{MinSize: params.MinSize, KMin: params.KMin, KMax: params.KMax, Upper: params.Upper}
		res, err := core.IterTDGlobalUpperCtx(ctx, a.searchInput(), up, w)
		if err != nil {
			return nil, err
		}
		return (&Report{Result: res, analyst: a}).attachGlobalUpper(up), nil
	case MeasurePropUpper:
		up := PropUpperParams{MinSize: params.MinSize, KMin: params.KMin, KMax: params.KMax, Beta: params.Beta}
		res, err := core.IterTDPropUpperCtx(ctx, a.searchInput(), up, w)
		if err != nil {
			return nil, err
		}
		return (&Report{Result: res, analyst: a}).attachPropUpper(up), nil
	case MeasureExposure:
		ep := ExposureParams{MinSize: params.MinSize, KMin: params.KMin, KMax: params.KMax, Alpha: params.Alpha}
		var res *Result
		var err error
		if params.Baseline {
			res, err = core.IterTDExposureCtx(ctx, a.searchInput(), ep, w)
		} else {
			res, err = core.ExposureBoundsCtx(ctx, a.searchInput(), ep, w)
		}
		if err != nil {
			return nil, err
		}
		return &Report{Result: res, analyst: a, kind: kindExposure, eParams: ep}, nil
	default:
		return nil, fmt.Errorf("rankfair: unknown measure %q", params.Measure)
	}
}

// Explain runs the Section V pipeline on a detected group: it trains a
// regression surrogate of the ranker, aggregates Shapley values over the
// group's tuples, and compares the top attribute's value distribution
// between the top-k and the group. Group membership comes from the shared
// counting index; results are identical to the scanning pipeline.
func (a *Analyst) Explain(p Pattern, k int, opts ExplainOptions) (*Explanation, error) {
	return explain.ExplainIndexed(a.in, a.index(), a.dicts, p, k, opts)
}

// Divergence runs the comparator of Pastor et al. [27] (Section VI-D):
// every subgroup above the support threshold, ranked by the divergence of
// its binary top-k outcome. The frequent-subgroup search runs in rank
// space over the shared counting index — posting lists seed the root match
// lists and top-k hit counting is a binary search — returning the same
// report as the scanning implementation.
func (a *Analyst) Divergence(params DivergenceParams) (*DivergenceResult, error) {
	return divergence.FindIndexed(a.in, a.index(), params)
}
