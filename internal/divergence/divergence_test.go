package divergence

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
	"rankfair/internal/synth"
)

func runningInput(t *testing.T) *core.Input {
	t.Helper()
	in, err := synth.RunningExample().Input()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFindHandChecked(t *testing.T) {
	in := runningInput(t)
	// k=4: o(D) = 4/16 = 0.25. {Gender=F} has 8 members, 2 in top-4:
	// o(G)=0.25, divergence 0.
	res, err := Find(in, Params{MinSupport: 0.25, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DatasetOutcome-0.25) > 1e-12 {
		t.Errorf("o(D) = %v", res.DatasetOutcome)
	}
	gf := pattern.Pattern{0, pattern.Unbound, pattern.Unbound, pattern.Unbound}
	found := false
	for _, g := range res.Groups {
		if g.Pattern.Equal(gf) {
			found = true
			if g.Size != 8 || math.Abs(g.Outcome-0.25) > 1e-12 || math.Abs(g.Divergence) > 1e-12 {
				t.Errorf("{Gender=F}: %+v", g)
			}
		}
		if g.Support < 0.25-1e-12 {
			t.Errorf("group %v below support threshold: %v", g.Pattern, g.Support)
		}
	}
	if !found {
		t.Error("{Gender=F} missing from report")
	}
}

// TestFindMatchesBruteForce: the support-pruned search returns exactly the
// frequent patterns, with correct divergences.
func TestFindMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := 2 + rng.Intn(3)
		cards := make([]int, nAttrs)
		names := make([]string, nAttrs)
		for i := range cards {
			cards[i] = 2 + rng.Intn(2)
			names[i] = string(rune('A' + i))
		}
		nRows := 15 + rng.Intn(40)
		rows := make([][]int32, nRows)
		for i := range rows {
			r := make([]int32, nAttrs)
			for j := range r {
				r[j] = int32(rng.Intn(cards[j]))
			}
			rows[i] = r
		}
		in := &core.Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: rng.Perm(nRows)}
		k := 1 + rng.Intn(nRows)
		support := 0.05 + 0.3*rng.Float64()
		res, err := Find(in, Params{MinSupport: support, K: k})
		if err != nil {
			return false
		}
		got := make(map[string]Group, len(res.Groups))
		for _, g := range res.Groups {
			got[g.Pattern.Key()] = g
		}
		ok := true
		count := 0
		oD := float64(k) / float64(nRows)
		pattern.EnumerateAll(in.Space, func(p pattern.Pattern) bool {
			size := p.Count(rows)
			if float64(size) < support*float64(nRows) {
				return true
			}
			count++
			g, present := got[p.Key()]
			if !present {
				ok = false
				return false
			}
			wantO := float64(p.CountTopK(rows, in.Ranking, k)) / float64(size)
			if g.Size != size || math.Abs(g.Outcome-wantO) > 1e-12 || math.Abs(g.Divergence-(wantO-oD)) > 1e-12 {
				ok = false
				return false
			}
			return true
		})
		return ok && count == len(res.Groups)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedByDivergence(t *testing.T) {
	in := runningInput(t)
	res, err := Find(in, Params{MinSupport: 0.2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Groups); i++ {
		if res.Groups[i].Divergence > res.Groups[i-1].Divergence+1e-12 {
			t.Fatalf("not sorted at %d: %v > %v", i, res.Groups[i].Divergence, res.Groups[i-1].Divergence)
		}
	}
}

func TestRankOf(t *testing.T) {
	in := runningInput(t)
	res, err := Find(in, Params{MinSupport: 0.2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Groups[0].Pattern
	if res.RankOf(first) != 1 {
		t.Error("first group should rank 1")
	}
	absent := pattern.Pattern{0, 0, 0, 0}
	if res.RankOf(absent) != 0 {
		t.Error("absent pattern should rank 0")
	}
}

// TestOutputContainsSubsumedGroups documents the Section VI-D contrast: the
// divergence method reports subsumed group pairs, unlike the most-general
// semantics of the detection algorithms.
func TestOutputContainsSubsumedGroups(t *testing.T) {
	in := runningInput(t)
	res, err := Find(in, Params{MinSupport: 0.2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Groups {
		for _, b := range res.Groups {
			if a.Pattern.ProperSubsetOf(b.Pattern) {
				return // found a subsumed pair, as expected
			}
		}
	}
	t.Error("expected at least one subsumed pair in the divergence output")
}

func TestFindErrors(t *testing.T) {
	in := runningInput(t)
	if _, err := Find(in, Params{MinSupport: -0.1, K: 4}); err == nil {
		t.Error("negative support should fail")
	}
	if _, err := Find(in, Params{MinSupport: 1.5, K: 4}); err == nil {
		t.Error("support > 1 should fail")
	}
	if _, err := Find(in, Params{MinSupport: 0.1, K: 0}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Find(in, Params{MinSupport: 0.1, K: 99}); err == nil {
		t.Error("k beyond dataset should fail")
	}
}

func TestWelchTStat(t *testing.T) {
	in := runningInput(t)
	res, err := Find(in, Params{MinSupport: 0.25, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		// Sign of t must agree with the sign of the group-vs-complement
		// difference; groups at the dataset outcome with a balanced
		// complement sit near zero.
		hits := int(g.Outcome*float64(g.Size) + 0.5)
		compHits := 4 - hits
		compN := 16 - g.Size
		oc := float64(compHits) / float64(compN)
		diff := g.Outcome - oc
		switch {
		case diff > 1e-9 && g.TStat <= 0:
			t.Errorf("%v: positive difference %v but t=%v", g.Pattern, diff, g.TStat)
		case diff < -1e-9 && g.TStat >= 0:
			t.Errorf("%v: negative difference %v but t=%v", g.Pattern, diff, g.TStat)
		case math.Abs(diff) <= 1e-9 && math.Abs(g.TStat) > 1e-9:
			t.Errorf("%v: zero difference but t=%v", g.Pattern, g.TStat)
		}
	}
	// Hand check one value: {Gender=F} has 2 of 8 in the top-4; the
	// complement has 2 of 8 as well, so t must be exactly 0.
	gf := pattern.Pattern{0, pattern.Unbound, pattern.Unbound, pattern.Unbound}
	for _, g := range res.Groups {
		if g.Pattern.Equal(gf) && g.TStat != 0 {
			t.Errorf("{Gender=F}: t = %v, want 0", g.TStat)
		}
	}
}
