// Command benchfig regenerates every table and figure of the paper's
// experimental study (Section VI) on the synthetic datasets, printing the
// same series the paper plots: runtime as a function of the number of
// attributes (Figs. 4-5), the size threshold (Figs. 6-7) and the range of k
// (Figs. 8-9); the nodes-examined comparison (Sec. VI-B); the Shapley case
// studies (Fig. 10); the divergence case study (Sec. VI-D); and the
// result-size survey (Sec. III).
//
// Usage:
//
//	benchfig -fig all                 # everything, scaled-down datasets
//	benchfig -fig 4 -scale 1          # Figure 4 at the paper's full sizes
//	benchfig -fig casestudy -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rankfair/internal/exp"
	"rankfair/internal/synth"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4|5|6|7|8|9|10|nodes|casestudy|resultsize|all")
		scale   = flag.Float64("scale", 0.25, "dataset size scale (1 = paper sizes: COMPAS 6889, Student 395, German 1000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		attrs   = flag.Int("attrs", 10, "attribute budget for sweeps that fix the attribute count")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-run timeout (paper used 10m)")
		format  = flag.String("format", "text", "output format for figures: text|csv")
	)
	flag.Parse()

	cfg := exp.Defaults()
	cfg.Seed = *seed
	cfg.Timeout = *timeout

	bundles := exp.Datasets(*scale, *seed)
	if err := run(cfg, bundles, *fig, *attrs, *format); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(cfg exp.Config, bundles []*synth.Bundle, fig string, attrs int, format string) error {
	out := os.Stdout
	if format != "text" && format != "csv" {
		return fmt.Errorf("unknown format %q (want text|csv)", format)
	}
	printFig := func(f *exp.Figure, err error) error {
		if err != nil {
			return err
		}
		if format == "csv" {
			return f.RenderCSV(out)
		}
		return f.Render(out)
	}
	want := func(name string) bool { return fig == "all" || fig == name }

	if want("4") || want("5") {
		for _, proportional := range []bool{false, true} {
			if (proportional && !want("5") && fig != "all") || (!proportional && !want("4") && fig != "all") {
				continue
			}
			for _, b := range bundles {
				if err := printFig(cfg.AttrSweep(b, proportional, attrs)); err != nil {
					return err
				}
			}
		}
	}
	if want("6") || want("7") {
		for _, proportional := range []bool{false, true} {
			if (proportional && !want("7") && fig != "all") || (!proportional && !want("6") && fig != "all") {
				continue
			}
			for _, b := range bundles {
				if err := printFig(cfg.ThresholdSweep(b, proportional, min(attrs, b.NumCatAttrs()))); err != nil {
					return err
				}
			}
		}
	}
	if want("8") || want("9") {
		for _, proportional := range []bool{false, true} {
			if (proportional && !want("9") && fig != "all") || (!proportional && !want("8") && fig != "all") {
				continue
			}
			for _, b := range bundles {
				kMaxes := kRangeFor(b)
				if err := printFig(cfg.KRangeSweep(b, proportional, min(attrs, b.NumCatAttrs()), kMaxes)); err != nil {
					return err
				}
			}
		}
	}
	if want("nodes") {
		if err := printFig(cfg.NodesExamined(bundles, attrs)); err != nil {
			return err
		}
	}
	// The case studies (Fig. 10, Sec. VI-D) are cheap single runs whose
	// group sizes and support ratios only make sense at the paper's full
	// dataset sizes, so they ignore -scale.
	fullBundles := func() []*synth.Bundle { return exp.Datasets(1, cfg.Seed) }
	if want("10") {
		cases, err := cfg.ShapleyCases(fullBundles())
		if err != nil {
			return err
		}
		for _, c := range cases {
			if err := c.Shapley.Render(out); err != nil {
				return err
			}
			detected := "not detected"
			if c.Detected {
				detected = "detected by GlobalBounds (k=49, L=40)"
			}
			fmt.Fprintf(out, "  group %s: %s\n%s\n", c.Group, detected, c.Distribution)
		}
	}
	if want("casestudy") {
		var student *synth.Bundle
		for _, b := range fullBundles() {
			if b.Name == "student" {
				student = b
			}
		}
		if student == nil {
			return fmt.Errorf("no student bundle")
		}
		if err := printFig(cfg.CaseStudy(student)); err != nil {
			return err
		}
	}
	if want("resultsize") {
		if err := printFig(cfg.ResultSizeSurvey(bundles, attrs)); err != nil {
			return err
		}
	}
	if want("extensions") {
		for _, b := range bundles {
			if err := printFig(cfg.ExtensionSweep(b, attrs, kRangeFor(b))); err != nil {
				return err
			}
		}
	}
	return nil
}

// kRangeFor mirrors the paper's sweep endpoints: kmax up to 1000 for COMPAS
// and up to 350 for the smaller datasets, capped by the generated size.
func kRangeFor(b *synth.Bundle) []int {
	var ends []int
	limit := 350
	step := 50
	if b.Name == "compas" {
		limit = 1000
		step = 100
	}
	if limit > b.Table.NumRows() {
		limit = b.Table.NumRows()
	}
	for k := 50; k <= limit; k += step {
		ends = append(ends, k)
	}
	return ends
}
