package rankfair_test

import (
	"testing"

	"rankfair"
)

func TestRepairTopK(t *testing.T) {
	a := runningAnalyst(t)
	// The unconstrained top-5 has one GP student (Example 2.3). Repair to
	// require at least 2 from each school.
	sel, err := a.RepairTopK("School", 5, map[string]rankfair.FairTopKConstraint{
		"GP": {Lower: 2},
		"MS": {Lower: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 5 {
		t.Fatalf("selected %d", len(sel))
	}
	in := a.Input()
	schoolIdx := 1 // Gender, School, Address, Failures
	gp, ms := 0, 0
	for _, ri := range sel {
		if in.Rows[ri][schoolIdx] == 0 {
			gp++
		} else {
			ms++
		}
	}
	if gp < 2 || ms < 2 {
		t.Errorf("repaired selection has GP=%d MS=%d", gp, ms)
	}
	// Minimal perturbation: the repair keeps the best-ranked tuples it
	// can; tuple 12 (rank 1, GP) must stay selected.
	found := false
	for _, ri := range sel {
		if ri == 11 {
			found = true
		}
	}
	if !found {
		t.Error("rank-1 tuple dropped by repair")
	}
	// Order is best-first by the original ranking.
	pos := map[int]int{}
	for p, ri := range in.Ranking {
		pos[ri] = p
	}
	for i := 1; i < len(sel); i++ {
		if pos[sel[i-1]] > pos[sel[i]] {
			t.Error("repaired selection not in ranking order")
		}
	}
}

func TestRepairTopKErrors(t *testing.T) {
	a := runningAnalyst(t)
	if _, err := a.RepairTopK("Nope", 5, nil); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := a.RepairTopK("School", 5, map[string]rankfair.FairTopKConstraint{"Hogwarts": {Lower: 1}}); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := a.RepairTopK("School", 5, map[string]rankfair.FairTopKConstraint{"GP": {Lower: 9}}); err == nil {
		t.Error("infeasible lower bound should fail")
	}
}

func TestMetricsFacade(t *testing.T) {
	aIn := []int{0, 1, 2}
	if tau, err := rankfair.KendallTau(aIn, aIn); err != nil || tau != 1 {
		t.Errorf("tau = %v, %v", tau, err)
	}
	if rho, err := rankfair.SpearmanRho(aIn, []int{2, 1, 0}); err != nil || rho != -1 {
		t.Errorf("rho = %v, %v", rho, err)
	}
	if v, err := rankfair.NDCG([]float64{2, 1, 0}, aIn, 3); err != nil || v != 1 {
		t.Errorf("ndcg = %v, %v", v, err)
	}
}

func TestExposureBaselineAgreesWithOptimized(t *testing.T) {
	a := runningAnalyst(t)
	params := rankfair.ExposureParams{MinSize: 4, KMin: 4, KMax: 8, Alpha: 0.8}
	opt, err := a.DetectExposure(params)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.DetectExposureBaseline(params)
	if err != nil {
		t.Fatal(err)
	}
	for k := 4; k <= 8; k++ {
		og, bg := opt.At(k), base.At(k)
		if len(og) != len(bg) {
			t.Fatalf("k=%d: %d vs %d groups", k, len(og), len(bg))
		}
		for i := range og {
			if !og[i].Equal(bg[i]) {
				t.Fatalf("k=%d group %d: %v != %v", k, i, og[i], bg[i])
			}
		}
	}
}
