package obs

import (
	"bytes"
	"strings"
	"testing"
)

func renderOM(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return buf.String()
}

// TestOpenMetricsGolden pins the exact OM 1.0 rendering: counter family
// names drop _total while samples keep it, exemplars attach to the
// landing bucket only, and the body ends in # EOF.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	c.Add(3)
	g := r.NewGauge("depth", "Depth.")
	g.Set(2)
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.ObserveExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.75)
	got := renderOM(t, r)
	want := `# TYPE jobs counter
# HELP jobs Jobs.
jobs_total 3
# TYPE depth gauge
# HELP depth Depth.
depth 2
# TYPE lat_seconds histogram
# HELP lat_seconds Latency.
lat_seconds_bucket{le="0.5"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.25
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 1
lat_seconds_count 2
# EOF
`
	if got != want {
		t.Fatalf("OM render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateOpenMetrics([]byte(got)); err != nil {
		t.Fatalf("golden output fails own validator: %v", err)
	}
}

// TestOpenMetricsVectorsValidate renders labeled families (including a
// label value that needs escaping) plus runtime gauges and runs the
// strict validator over the result.
func TestOpenMetricsVectorsValidate(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "app_")
	cv := r.NewCounterVec("errs_total", "Errors by class.", "class")
	cv.With("5xx").Add(2)
	cv.With(`odd"class\with`).Inc()
	gv := r.NewGaugeVec("inflight", "Inflight.", "class")
	gv.With("audit").Set(1)
	hv := r.NewHistogramVec("req_seconds", "Req.", "endpoint", []float64{0.5, 1})
	hv.With("GET /v1/x").ObserveExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")
	hv.With("POST /v1/audits").Observe(3)
	out := renderOM(t, r)
	if err := ValidateOpenMetrics([]byte(out)); err != nil {
		t.Fatalf("validator rejected renderer output: %v\n%s", err, out)
	}
	if !strings.Contains(out, `req_seconds_bucket{endpoint="GET /v1/x",le="0.5"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.25`+"\n") {
		t.Fatalf("labeled exemplar bucket missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE errs counter\n") {
		t.Fatalf("counter family name not stripped:\n%s", out)
	}
}

// TestExemplarInvisibleIn004 proves the Prometheus 0.0.4 scrape is
// byte-identical whether observations carry exemplars or not — existing
// scrape consumers must never see a format change.
func TestExemplarInvisibleIn004(t *testing.T) {
	build := func(withExemplars bool) string {
		r := NewRegistry()
		h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.5, 1})
		v := r.NewHistogramVec("req_seconds", "Req.", "endpoint", []float64{1})
		for i, x := range []float64{0.25, 0.75, 3} {
			if withExemplars {
				h.ObserveExemplar(x, "4bf92f3577b34da6a3ce929d0e0e4736")
				v.With("GET /v1/x").ObserveExemplar(x, "4bf92f3577b34da6a3ce929d0e0e4736")
			} else {
				h.Observe(x)
				v.With("GET /v1/x").Observe(x)
			}
			_ = i
		}
		return render(t, r)
	}
	plain, ex := build(false), build(true)
	if plain != ex {
		t.Fatalf("0.0.4 scrape changed by exemplars:\nplain:\n%s\nexemplar:\n%s", plain, ex)
	}
	if strings.Contains(ex, "trace_id") {
		t.Fatal("exemplar leaked into 0.0.4 output")
	}
}

// TestExemplarLastWriteWins: the bucket keeps the most recent exemplar,
// and an empty trace ID records the observation without replacing it.
func TestExemplarLastWriteWins(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "H.", []float64{1})
	h.ObserveExemplar(0.5, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	h.ObserveExemplar(0.7, "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	h.ObserveExemplar(0.9, "") // counts, but must not clobber the exemplar
	p := h.snapshotPoint("")
	if p.Count != 3 {
		t.Fatalf("Count = %d, want 3", p.Count)
	}
	if p.Exemplars[0] == nil || p.Exemplars[0].TraceID != "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb" {
		t.Fatalf("exemplar = %+v, want trace bbbb... value 0.7", p.Exemplars[0])
	}
	if p.Exemplars[0].Value != 0.7 {
		t.Fatalf("exemplar value = %v, want 0.7", p.Exemplars[0].Value)
	}
}

// TestValidateOpenMetricsRejects feeds the strict parser malformed
// bodies it must refuse — each one a mistake the renderer could plausibly
// make if a future change regressed it.
func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"missing EOF", "# TYPE a gauge\na 1\n", "must end"},
		{"EOF mid-body", "# TYPE a gauge\n# EOF\na 1\n# EOF\n", "before end of body"},
		{"counter family keeps _total", "# TYPE a_total counter\na_total 1\n# EOF\n", "must not end in _total"},
		{"counter sample missing _total", "# TYPE a counter\na 1\n# EOF\n", "must end in _total"},
		{"sample before TYPE", "a 1\n# EOF\n", "before any TYPE"},
		{"sample outside family", "# TYPE a gauge\nb 1\n# EOF\n", "outside current family"},
		{"bad label escape", "# TYPE a gauge\na{x=\"\\t\"} 1\n# EOF\n", "invalid escape"},
		{"unterminated label block", "# TYPE a gauge\na{x=\"y\" 1\n# EOF\n", "expected ',' or '}'"},
		{"duplicate label", `# TYPE a gauge` + "\n" + `a{x="1",x="2"} 1` + "\n# EOF\n", "duplicate label"},
		{"trailing comma", `# TYPE a gauge` + "\n" + `a{x="1",} 1` + "\n# EOF\n", "trailing comma"},
		{"bad value", "# TYPE a gauge\na one\n# EOF\n", "bad value"},
		{"exemplar on gauge", "# TYPE a gauge\na 1 # {trace_id=\"f\"} 1\n# EOF\n", "exemplar on gauge"},
		{"exemplar on histogram sum", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 1\na_sum 1 # {trace_id=\"f\"} 1\na_count 1\n# EOF\n", "outside _bucket"},
		{"bad exemplar syntax", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 1 # trace 1\n# EOF\n", "exemplar missing label block"},
		{"bucket missing le", "# TYPE a histogram\na_bucket 1\n# EOF\n", "missing le"},
		{"non-cumulative buckets", "# TYPE a histogram\na_bucket{le=\"1\"} 5\na_bucket{le=\"+Inf\"} 3\n# EOF\n", "not cumulative"},
		{"missing +Inf bucket", "# TYPE a histogram\na_bucket{le=\"1\"} 1\na_count 1\n# EOF\n", "missing +Inf"},
		{"count disagrees with +Inf", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 3\na_count 4\n# EOF\n", "_count"},
		{"descending bounds", "# TYPE a histogram\na_bucket{le=\"2\"} 1\na_bucket{le=\"1\"} 2\na_bucket{le=\"+Inf\"} 2\n# EOF\n", "not ascending"},
		{"duplicate family", "# TYPE a gauge\n# TYPE a gauge\n# EOF\n", "duplicate family"},
		{"stray comment", "# TYPE a gauge\n# random note\n# EOF\n", "stray comment"},
		{"empty line", "# TYPE a gauge\n\n# EOF\n", "empty line"},
		{"HELP outside block", "# TYPE a gauge\n# HELP b B.\n# EOF\n", "outside its TYPE"},
		{"bad HELP escape", "# TYPE a gauge\n# HELP a bad \\t escape\n# EOF\n", "invalid escape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateOpenMetrics([]byte(tc.body))
			if err == nil {
				t.Fatalf("validator accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateOpenMetricsAccepts: spot-check legal bodies, including
// optional timestamps and exemplars with timestamps.
func TestValidateOpenMetricsAccepts(t *testing.T) {
	bodies := []string{
		"# EOF\n",
		"# TYPE a gauge\n# HELP a A.\na 1\n# EOF\n",
		"# TYPE a counter\na_total 5 1234.5\n# EOF\n",
		"# TYPE a histogram\na_bucket{le=\"1\"} 1 # {trace_id=\"f\"} 0.5 1234.5\na_bucket{le=\"+Inf\"} 1\na_sum 0.5\na_count 1\n# EOF\n",
		"# TYPE a counter\na_total 1 # {trace_id=\"f\"} 1\n# EOF\n",
	}
	for _, body := range bodies {
		if err := ValidateOpenMetrics([]byte(body)); err != nil {
			t.Errorf("validator rejected legal body %q: %v", body, err)
		}
	}
}
