package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rankfair"
)

func testParams() rankfair.AuditParams {
	return rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 2, Alpha: 0.8}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestManagerRunsJobs(t *testing.T) {
	m := NewManager(2, 8)
	defer m.Shutdown(context.Background())

	report := &rankfair.ReportJSON{Measure: "proportional-lower", KMin: 1, KMax: 2, NodesExamined: 7}
	view, err := m.Submit("ds-x", testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		return report, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != JobQueued || view.ID == "" {
		t.Errorf("submit view = %+v, want queued with ID", view)
	}

	final, err := m.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone || final.NodesExamined != 7 {
		t.Errorf("final = %+v, want done with stats", final)
	}
	got, _, ok := m.Report(view.ID)
	if !ok || got != report {
		t.Errorf("Report = %v, %v; want the submitted report", got, ok)
	}
	if st := m.Stats(); st.Completed != 1 || st.Submitted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestManagerJobFailure(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Shutdown(context.Background())
	view, err := m.Submit("ds-x", testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		return nil, false, errors.New("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobFailed || final.Error != "kaboom" {
		t.Errorf("final = %+v, want failed kaboom", final)
	}
	if st := m.Stats(); st.Failed != 1 {
		t.Errorf("stats = %+v, want 1 failure", st)
	}
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(1, 1)
	defer m.Shutdown(context.Background())
	gate := make(chan struct{})
	defer close(gate)
	block := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return &rankfair.ReportJSON{}, false, nil
	}
	// First job occupies the worker; second fills the queue slot. The
	// worker may not have picked up the first yet, so allow one extra.
	var lastErr error
	for i := 0; i < 4; i++ {
		_, lastErr = m.Submit("ds-x", testParams(), block)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull after saturating worker+queue", lastErr)
	}
}

func TestManagerCancelQueued(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Shutdown(context.Background())
	gate := make(chan struct{})
	block := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return &rankfair.ReportJSON{}, false, nil
	}
	running, err := m.Submit("ds-x", testParams(), block)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("ds-x", testParams(), block)
	if err != nil {
		t.Fatal(err)
	}

	if m.Cancel("job-nope") {
		t.Error("Cancel of unknown job should report false")
	}
	if !m.Cancel(queued.ID) {
		t.Fatal("Cancel of queued job should report true")
	}
	view, err := m.Wait(waitCtx(t), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != JobCanceled {
		t.Errorf("canceled job status = %s, want canceled", view.Status)
	}

	close(gate)
	if _, err := m.Wait(waitCtx(t), running.ID); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Canceled != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 canceled, 1 completed", st)
	}
}

func TestManagerList(t *testing.T) {
	m := NewManager(2, 8)
	defer m.Shutdown(context.Background())
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(fmt.Sprintf("ds-%d", i), testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
			return &rankfair.ReportJSON{}, false, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("List returned %d jobs, want 3", len(list))
	}
	if list[0].ID <= list[1].ID || list[1].ID <= list[2].ID {
		t.Errorf("List not newest-first: %v, %v, %v", list[0].ID, list[1].ID, list[2].ID)
	}
}

// TestManagerShutdownDrainsQueued: jobs still waiting in the queue when
// Shutdown runs must end canceled, and Wait on them must unblock.
func TestManagerShutdownDrainsQueued(t *testing.T) {
	m := NewManager(1, 8)
	started := make(chan struct{})
	block := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		close(started)
		<-ctx.Done()
		return nil, false, ctx.Err()
	}
	first, err := m.Submit("ds-x", testParams(), block)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queued []JobView
	for i := 0; i < 3; i++ {
		v, err := m.Submit("ds-x", testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
			return &rankfair.ReportJSON{}, false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, v)
	}

	waitErr := make(chan error, 1)
	go func() {
		_, err := m.Wait(context.Background(), queued[0].ID)
		waitErr <- err
	}()

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waitErr:
		if err != nil {
			t.Errorf("Wait on queued job after shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait on a queued job deadlocked across Shutdown")
	}
	for _, v := range append(queued, first) {
		final, ok := m.Get(v.ID)
		if !ok || final.Status != JobCanceled {
			t.Errorf("job %s = %+v, want canceled", v.ID, final)
		}
	}
}

// TestManagerPrunesFinishedJobs: the record map must stay bounded.
func TestManagerPrunesFinishedJobs(t *testing.T) {
	m := NewManager(2, 64)
	defer m.Shutdown(context.Background())
	m.retain = 5
	ids := make([]string, 12)
	for i := range ids {
		v, err := m.Submit("ds-x", testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
			return &rankfair.ReportJSON{}, false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
		if _, err := m.Wait(waitCtx(t), v.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.List()); got > 5 {
		t.Errorf("%d job records retained, want <= 5", got)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest finished job should have been pruned")
	}
	if _, ok := m.Get(ids[len(ids)-1]); !ok {
		t.Error("newest job should be retained")
	}
}

func TestManagerShutdownCancelsRunning(t *testing.T) {
	m := NewManager(1, 4)
	started := make(chan struct{})
	view, err := m.Submit("ds-x", testParams(), func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		close(started)
		<-ctx.Done()
		return nil, false, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	final, ok := m.Get(view.ID)
	if !ok || final.Status != JobCanceled {
		t.Errorf("after shutdown job = %+v, want canceled", final)
	}
}
