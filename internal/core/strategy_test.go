package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rankfair/internal/count"
	"rankfair/internal/pattern"
)

// strategyInput builds a random dataset + ranking, mirroring the
// equivalence-suite generator but available inside the package so the
// strategy tests can force engines and reuse the cancellation harness.
func strategyInput(rng *rand.Rand) *Input {
	nAttrs := 2 + rng.Intn(4) // 2..5
	cards := make([]int, nAttrs)
	names := make([]string, nAttrs)
	for i := range cards {
		cards[i] = 2 + rng.Intn(3) // 2..4
		names[i] = string(rune('A' + i))
	}
	nRows := 20 + rng.Intn(60)
	rows := make([][]int32, nRows)
	for i := range rows {
		r := make([]int32, nAttrs)
		for j := range r {
			r[j] = int32(rng.Intn(cards[j]))
		}
		rows[i] = r
	}
	return &Input{
		Rows:    rows,
		Space:   &pattern.Space{Names: names, Cards: cards},
		Ranking: rng.Perm(nRows),
	}
}

// strategyEntryPoints drives every detection entry point over one input
// with randomized parameters, so the two match-set engines can be compared
// wholesale.
func strategyEntryPoints(in *Input, rng *rand.Rand) map[string]func(ctx context.Context, workers int) (*Result, error) {
	n := len(in.Rows)
	kMin := 1 + rng.Intn(5)
	kMax := kMin + rng.Intn(15)
	if kMax > n {
		kMax = n
	}
	minSize := rng.Intn(5)
	lower := make([]int, kMax-kMin+1)
	l := 1 + rng.Intn(3)
	for i := range lower {
		if rng.Intn(4) == 0 {
			l += rng.Intn(2)
		}
		lower[i] = l
	}
	upper := make([]int, kMax-kMin+1)
	for i := range upper {
		upper[i] = 1 + rng.Intn(4)
	}
	gp := GlobalParams{MinSize: minSize, KMin: kMin, KMax: kMax, Lower: lower}
	pp := PropParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: 0.2 + rng.Float64()}
	ep := ExposureParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: 0.2 + rng.Float64()}
	gup := GlobalUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Upper: upper}
	pup := PropUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Beta: 1.0 + rng.Float64()}
	return map[string]func(ctx context.Context, workers int) (*Result, error){
		"GlobalBounds": func(ctx context.Context, w int) (*Result, error) { return GlobalBoundsCtx(ctx, in, gp, w) },
		"IterTDGlobal": func(ctx context.Context, w int) (*Result, error) { return IterTDGlobalCtx(ctx, in, gp, w) },
		"PropBounds":   func(ctx context.Context, w int) (*Result, error) { return PropBoundsCtx(ctx, in, pp, w) },
		"IterTDProp":   func(ctx context.Context, w int) (*Result, error) { return IterTDPropCtx(ctx, in, pp, w) },
		"ExposureBounds": func(ctx context.Context, w int) (*Result, error) {
			return ExposureBoundsCtx(ctx, in, ep, w)
		},
		"IterTDExposure": func(ctx context.Context, w int) (*Result, error) {
			return IterTDExposureCtx(ctx, in, ep, w)
		},
		"GlobalUpperBounds": func(ctx context.Context, w int) (*Result, error) {
			return GlobalUpperBoundsCtx(ctx, in, gup, w)
		},
		"IterTDGlobalUpper": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalUpperCtx(ctx, in, gup, w)
		},
		"IterTDPropUpper": func(ctx context.Context, w int) (*Result, error) {
			return IterTDPropUpperCtx(ctx, in, pup, w)
		},
		"IterTDGlobalUpperMostGeneral": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalUpperMostGeneralCtx(ctx, in, gup, w)
		},
		"IterTDGlobalLowerMostSpecific": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalLowerMostSpecificCtx(ctx, in, gp, w)
		},
	}
}

// withStrategy returns a shallow copy of in forced onto one engine. The
// rank-space copy alternates between building its own index and reusing a
// pre-built one, covering both the cold and warm entry conditions.
func withStrategy(in *Input, s Strategy, ix *count.Index) *Input {
	cp := *in
	cp.Strategy = s
	cp.Index = ix
	return &cp
}

// TestQuickStrategyIndexMatchesLists is the tentpole differential: for
// every entry point, the rank-space engine (cold and warm index, serial
// and fanned out) returns Groups and Stats byte-identical to the
// materialized-list engine.
func TestQuickStrategyIndexMatchesLists(t *testing.T) {
	ctx := context.Background()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := strategyInput(rng)
		prebuilt := count.Build(base.Rows, base.Space, base.Ranking)
		variants := []struct {
			name string
			in   *Input
		}{
			{"index-cold", withStrategy(base, StrategyIndex, nil)},
			{"index-warm", withStrategy(base, StrategyIndex, prebuilt)},
			{"auto-warm", withStrategy(base, StrategyAuto, prebuilt)},
			{"bitmap-cold", withStrategy(base, StrategyBitmap, nil)},
			{"bitmap-warm", withStrategy(base, StrategyBitmap, prebuilt)},
		}
		// One parameter draw shared by the lists run and every variant.
		prng := rand.New(rand.NewSource(seed + 1))
		lists := strategyEntryPoints(withStrategy(base, StrategyLists, nil), prng)
		for _, vr := range variants {
			vrng := rand.New(rand.NewSource(seed + 1))
			runs := strategyEntryPoints(vr.in, vrng)
			for name, run := range runs {
				want, err := lists[name](ctx, 1)
				if err != nil {
					t.Logf("seed %d %s lists: %v", seed, name, err)
					return false
				}
				for _, workers := range []int{1, 3} {
					got, err := run(ctx, workers)
					if err != nil {
						t.Logf("seed %d %s %s workers=%d: %v", seed, name, vr.name, workers, err)
						return false
					}
					if !reflect.DeepEqual(want.Groups, got.Groups) {
						t.Logf("seed %d %s %s workers=%d: groups diverge from lists engine", seed, name, vr.name, workers)
						return false
					}
					if want.Stats != got.Stats {
						t.Logf("seed %d %s %s workers=%d: stats diverge: lists %+v index %+v",
							seed, name, vr.name, workers, want.Stats, got.Stats)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// TestStrategyCanceledRunsAgree drives both engines into the same
// deterministic cancellation (a poll-budget context, serial workers) and
// asserts they abandon the search at the same point: both report a
// CanceledError carrying the same partial-work count.
func TestStrategyCanceledRunsAgree(t *testing.T) {
	base := denseCancelInput(12, 1500)
	listsIn := withStrategy(base, StrategyLists, nil)
	indexIn := withStrategy(base, StrategyIndex, nil)
	bitmapIn := withStrategy(base, StrategyBitmap, nil)
	listsRuns := strategyEntryPoints(listsIn, rand.New(rand.NewSource(31)))
	bitmapRuns := strategyEntryPoints(bitmapIn, rand.New(rand.NewSource(31)))
	for name, indexRun := range strategyEntryPoints(indexIn, rand.New(rand.NewSource(31))) {
		listsRun := listsRuns[name]
		bitmapRun := bitmapRuns[name]
		for _, budget := range []int64{1, 5} {
			lres, lerr := listsRun(newBudgetCtx(budget), 1)
			ires, ierr := indexRun(newBudgetCtx(budget), 1)
			bres, berr := bitmapRun(newBudgetCtx(budget), 1)
			if lres != nil || ires != nil || bres != nil {
				t.Errorf("%s budget=%d: canceled run returned a result (lists=%v index=%v bitmap=%v)",
					name, budget, lres != nil, ires != nil, bres != nil)
				continue
			}
			var lc, ic, bc *CanceledError
			if !errors.As(lerr, &lc) || !errors.As(ierr, &ic) || !errors.As(berr, &bc) {
				t.Errorf("%s budget=%d: want CanceledError on every engine, got lists=%v index=%v bitmap=%v",
					name, budget, lerr, ierr, berr)
				continue
			}
			if lc.NodesExamined != ic.NodesExamined || lc.NodesExamined != bc.NodesExamined {
				t.Errorf("%s budget=%d: partial work diverges: lists examined %d nodes, index %d, bitmap %d",
					name, budget, lc.NodesExamined, ic.NodesExamined, bc.NodesExamined)
			}
		}
	}
}

// TestAutoStrategyCostModel pins the cost model's contract: tiny inputs
// stay on the lists engine, an attached index always selects rank space,
// and the explicit knobs override everything.
func TestAutoStrategyCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tiny := strategyInput(rng)
	if tiny.useIndex() {
		t.Errorf("auto strategy picked the index engine for %d rows", len(tiny.Rows))
	}
	warm := withStrategy(tiny, StrategyAuto, count.Build(tiny.Rows, tiny.Space, tiny.Ranking))
	if !warm.useIndex() {
		t.Error("auto strategy ignored a pre-built index")
	}
	big := denseCancelInput(8, 4096)
	if !big.useIndex() {
		t.Errorf("auto strategy picked the lists engine for %d rows x %d attrs", len(big.Rows), big.Space.NumAttrs())
	}
	forced := withStrategy(tiny, StrategyIndex, nil)
	if !forced.useIndex() {
		t.Error("StrategyIndex not honored")
	}
	forcedLists := withStrategy(big, StrategyLists, nil)
	if forcedLists.useIndex() {
		t.Error("StrategyLists not honored")
	}
	forcedBitmap := withStrategy(tiny, StrategyBitmap, nil)
	if !forcedBitmap.useIndex() {
		t.Error("StrategyBitmap not honored")
	}
}

// TestValidateRejectsMismatchedIndex guards the one consistency check the
// input performs on an attached index.
func TestValidateRejectsMismatchedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := strategyInput(rng)
	other := strategyInput(rng)
	if len(other.Rows) == len(in.Rows) {
		other.Rows = other.Rows[:len(other.Rows)-1]
		other.Ranking = nil // irrelevant: row-count check fires first
	}
	bad := count.Build(other.Rows, other.Space, make([]int, len(other.Rows)))
	in.Index = bad
	if err := in.Validate(); err == nil {
		t.Error("Validate accepted an index over a different row count")
	}
	// The check must also fire on an already-validated input: attaching a
	// mismatched index later cannot hide behind the validation memo.
	in.Index = nil
	if err := in.Validate(); err != nil {
		t.Fatalf("clean input rejected: %v", err)
	}
	in.Index = bad
	if err := in.Validate(); err == nil {
		t.Error("memoized Validate accepted a mismatched index attached after validation")
	}
}
