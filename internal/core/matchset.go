package core

import (
	"sync"

	"rankfair/internal/count"
	"rankfair/internal/pattern"
)

// This file is the match-set engine behind every lattice search in the
// package. All detection algorithms share one traversal structure — examine
// a node, read s_D(p) and its top-k count (or exposure), descend — and
// differ only in how a node's match set is represented. Two strategies
// implement that representation behind a common interface, so the
// traversals are written once and are byte-identical across strategies:
//
//   - StrategyLists (the original implementation) carries two materialized
//     row-index lists per node, matchAll and matchTop; children are built
//     by partitioning both lists per attribute, and every full build first
//     scans the dataset to seed the root lists.
//
//   - StrategyIndex works in rank space over the shared count.Index: a
//     node's match set is the ascending list of *rank positions* matching
//     its pattern — the intersection of its bound attributes' posting
//     lists. s_D(p) is the list length, the count at any k is one binary
//     search (count.PrefixCount), root nodes alias the posting lists
//     outright (a warm index starts a search with zero setup scans), and
//     step-time re-materialization is a galloping posting-list
//     intersection instead of a dataset scan. Child generation partitions
//     one list instead of two, and the partitions live in per-worker
//     scratch arenas instead of per-node allocations.

// Strategy selects the match-set representation of the lattice search.
// Both strategies return byte-identical results (same groups, same order,
// same Stats); only the wall clock and allocation profile differ, which is
// why the knob is absent from every cache key.
type Strategy int

const (
	// StrategyAuto lets the cost model below pick the engine.
	StrategyAuto Strategy = iota
	// StrategyLists forces the materialized row-list engine. It is the
	// differential baseline for the rank-space path and the better choice
	// on tiny inputs, where the index build cannot amortize.
	StrategyLists
	// StrategyIndex forces the rank-space posting-list engine, building an
	// index first when Input.Index is nil. Intersections stay pure slice
	// walks — this is the differential baseline for the bitmap path.
	StrategyIndex
	// StrategyBitmap forces the rank-space engine with bitmap counting:
	// step-time re-materialization runs word-wise AND + popcount over the
	// index's roaring-style bitmaps whenever every bound value has one,
	// falling back to the galloping slice walk only below the bitmap
	// build cut. StrategyAuto picks between postings and bitmaps per node
	// by list length instead of forcing either.
	StrategyBitmap
)

// bitmapMode is the engine's resolved bitmap policy.
type bitmapMode uint8

const (
	bmOff   bitmapMode = iota // pure slice intersections (lists/index)
	bmAuto                    // per-node cost model (auto)
	bmForce                   // bitmaps whenever representable (bitmap)
)

// bitmapPassMin is the auto cost-model cut for one intersection pass: the
// galloping merge touches O(shortest) entries with branchy compares, so it
// stays the winner for short lists; past ~1k entries the straight-line
// word AND + popcount pass wins even counting the materialization scatter.
const bitmapPassMin = 1024

// useIndex resolves StrategyAuto with a small cost model. The rank-space
// engine saves the O(n·attrs) root scans of every full build, halves the
// partition traffic below the root, and turns step-time re-materialization
// into posting-list intersections — but must first build the index, itself
// one O(n·attrs) pass, when none is attached. A pre-built index makes the
// engine free to start, so it always wins; otherwise the build only
// amortizes on inputs large enough (the savings scale with rows) and
// lattices deep enough (the savings scale with explored nodes).
func (in *Input) useIndex() bool {
	switch in.Strategy {
	case StrategyLists:
		return false
	case StrategyIndex, StrategyBitmap:
		return true
	}
	if in.Index != nil {
		return true
	}
	n := len(in.Rows)
	if n < 1024 {
		return false // tiny input: the index build outweighs the savings
	}
	if in.Space.NumAttrs() <= 2 && n < 8192 {
		return false // flat lattice: the root scans are most of the search
	}
	return true
}

// matchSet is one node's match representation. On the lists engine, all
// holds the matching row indices in D and top the matching rows among the
// top-k (in ranking order); on the rank-space engine, all holds the
// ascending rank positions matching the pattern and top is nil.
type matchSet struct {
	all []int32
	top []int32
}

// unit pairs a search-tree pattern with its match set: a frontier element
// of the breadth-first baselines and an independent work item of the
// incremental algorithms' fan-outs.
type unit struct {
	p pattern.Pattern
	m matchSet
}

// engine binds one search run to its match-set strategy. It is read-only
// during the search and shared by every worker; the mutable scratch lives
// in per-worker searchers.
type engine struct {
	in *Input
	ix *count.Index // nil → materialized-list engine
	// rowAt is ix.RowsByRank(): the rank-major row view the rank-space
	// partition reads attribute values through.
	rowAt [][]int32
	// weightByRow / weightByRank are set by the exposure searches:
	// position-exposure weights addressed by row index (lists engine) and
	// by rank position (rank-space engine). Both sum in ascending rank
	// order, so the float results are bit-identical across engines.
	weightByRow  []float64
	weightByRank []float64
	// statsOff mirrors Input.DisableStats at engine construction:
	// newSearchStats returns nil under it, which disarms every nil-checked
	// counter increment downstream.
	statsOff bool
	// bm is the resolved bitmap policy; meaningful only on the rank-space
	// engine (ix != nil).
	bm bitmapMode
	// rootAll caches the lists engine's k-independent root partition: the
	// full dataset bucketed per (attribute, value), which every full build
	// used to recompute even when only the bound changed (the GLOBALBOUNDS
	// staircase performs one build per bound increase, the per-k baselines
	// one per k). The rank-space engine gets this for free by aliasing
	// posting lists; the Once makes the lazy fill safe under the per-k
	// baselines' concurrent rootUnits calls. Only the top-k buckets remain
	// per-call work.
	rootAllOnce sync.Once
	rootAll     [][][]int32 // [attr][value] → matching row indices
}

// newEngine resolves the input's strategy and builds the index when the
// rank-space engine needs one and none is attached.
func newEngine(in *Input) *engine {
	if !in.useIndex() {
		return &engine{in: in, statsOff: in.DisableStats}
	}
	ix := in.Index
	if ix == nil {
		ix = count.Build(in.Rows, in.Space, in.Ranking)
	}
	bm := bmOff
	switch in.Strategy {
	case StrategyBitmap:
		bm = bmForce
	case StrategyAuto:
		bm = bmAuto
	}
	return &engine{in: in, ix: ix, rowAt: ix.RowsByRank(), statsOff: in.DisableStats, bm: bm}
}

// strategyName labels the resolved match-set strategy for SearchStats.
// Auto resolving to the rank-space engine reports "index" regardless of
// its per-node bitmap picks — the name identifies the match-set
// representation contract, and per-pass bitmap usage is visible in the
// BitmapPasses/SlicePasses counters instead.
func (e *engine) strategyName() string {
	if e.ix == nil {
		return "lists"
	}
	if e.in.Strategy == StrategyBitmap {
		return "bitmap"
	}
	return "index"
}

// newSearchStats returns the run's SearchStats accumulator stamped with
// the resolved strategy and fan-out width, or nil when the input disabled
// stats — the nil pointer is what turns every increment into a no-op.
func (e *engine) newSearchStats(workers int) *SearchStats {
	if e.statsOff {
		return nil
	}
	return &SearchStats{Strategy: e.strategyName(), Workers: workers}
}

// topCount returns the node's size in the top-k: a slice length on the
// lists engine, one binary search on the rank-space engine.
func (e *engine) topCount(m matchSet, k int) int {
	if e.ix != nil {
		return count.PrefixCount(m.all, k)
	}
	return len(m.top)
}

// exposureOf returns the node's exposure in the top-k. Both branches sum
// the same weights in ascending rank order.
func (e *engine) exposureOf(m matchSet, k int) float64 {
	total := 0.0
	if e.ix != nil {
		cut := count.PrefixCount(m.all, k)
		for _, r := range m.all[:cut] {
			total += e.weightByRank[r]
		}
		return total
	}
	for _, ri := range m.top {
		total += e.weightByRow[ri]
	}
	return total
}

// rootUnits returns the search-tree children of the empty pattern — the
// starting frontier of every full build. The rank-space engine aliases the
// posting lists (zero scans, zero allocations beyond the unit headers);
// the lists engine seeds and partitions the full row and top-k lists.
func (e *engine) rootUnits(k int) []unit {
	space := e.in.Space
	n := space.NumAttrs()
	if e.ix != nil {
		total := 0
		for _, card := range space.Cards {
			total += card
		}
		units := make([]unit, 0, total)
		empty := pattern.Empty(n)
		for a := 0; a < n; a++ {
			for v := 0; v < space.Cards[a]; v++ {
				units = append(units, unit{p: empty.With(a, int32(v)), m: matchSet{all: e.ix.Postings(a, int32(v))}})
			}
		}
		return units
	}
	e.ensureRootAll()
	if k > len(e.in.Ranking) {
		k = len(e.in.Ranking)
	}
	top := make([]int32, k)
	for i := 0; i < k; i++ {
		top[i] = int32(e.in.Ranking[i])
	}
	var units []unit
	empty := pattern.Empty(n)
	for a := 0; a < n; a++ {
		card := space.Cards[a]
		topBuckets := partitionByValue(e.in.Rows, top, a, card)
		for v := 0; v < card; v++ {
			units = append(units, unit{p: empty.With(a, int32(v)), m: matchSet{all: e.rootAll[a][v], top: topBuckets[v]}})
		}
	}
	return units
}

// ensureRootAll lazily fills the cached k-independent root partition
// (safe under the per-k baselines' concurrent seeding).
func (e *engine) ensureRootAll() {
	e.rootAllOnce.Do(func() {
		n := e.in.Space.NumAttrs()
		all := make([]int32, len(e.in.Rows))
		for i := range all {
			all[i] = int32(i)
		}
		e.rootAll = make([][][]int32, n)
		for a := 0; a < n; a++ {
			e.rootAll[a] = partitionByValue(e.in.Rows, all, a, e.in.Space.Cards[a])
		}
	})
}

// searcher is an engine handle plus per-worker scratch. The incremental
// algorithms' recursive subtree builds have stack-shaped match-set
// lifetimes, so each worker partitions into a pooled arena with per-node
// mark/release instead of allocating per node.
type searcher struct {
	*engine
	scr *scratch
	// ss receives the engine-shortcut counters (count-only passes, lazy
	// scatters, posting intersections). Nil when stats are disabled; sinks
	// point it at their local accumulator after acquire.
	ss *SearchStats
}

func (e *engine) acquire() searcher {
	return searcher{engine: e, scr: getScratch()}
}

func (sr searcher) close() { putScratch(sr.scr) }

// parts is one attribute's partition of a node's match set: child v's
// match set is the offs[v]:offs[v+1] window of the flat block(s).
type parts struct {
	allFlat, allOffs []int32
	topFlat, topOffs []int32
}

func (pt parts) at(v int) matchSet {
	m := matchSet{all: pt.allFlat[pt.allOffs[v]:pt.allOffs[v+1]]}
	if pt.topOffs != nil {
		m.top = pt.topFlat[pt.topOffs[v]:pt.topOffs[v+1]]
	}
	return m
}

// childStats is one attribute's per-value child statistics. On the
// rank-space engine the sizes, counts and exposures come from count-only
// passes over the parent's rank list — s_D per value from the full list,
// the top-k quantities from its length-≤k prefix — and the actual child
// rank lists are scattered lazily, only when the search descends into at
// least one child. Fully pruned or all-frontier levels (the common case
// under a size threshold) never materialize a single child list. The lists
// engine has no count-only shortcut — materializing both row lists is how
// it knows the counts at all — so it partitions eagerly as before.
type childStats struct {
	sr         searcher
	m          matchSet
	a, card, k int
	// Rank-space per-value tallies (arena-backed).
	sD   []int32
	cnt  []int32
	wsum []float64
	// Materialized partitions: eager on the lists engine, scattered on the
	// first at() call on the rank-space engine.
	prt       parts
	scattered bool
}

// childStats computes the per-value statistics of splitting m at attribute
// a. wantExposure additionally accumulates per-value exposure over the
// top-k prefix (exposure searches only).
func (sr searcher) childStats(m matchSet, a, card, k int, wantExposure bool) childStats {
	cs := childStats{sr: sr, m: m, a: a, card: card, k: k}
	if sr.ix == nil {
		allFlat, allOffs := sr.part(m.all, a, card, false)
		topFlat, topOffs := sr.part(m.top, a, card, false)
		cs.prt = parts{allFlat: allFlat, allOffs: allOffs, topFlat: topFlat, topOffs: topOffs}
		cs.scattered = true
		return cs
	}
	sr.ss.countOnlyPass()
	rowAt := sr.rowAt
	cs.sD = sr.scr.ints.allocZero(card)
	cs.cnt = sr.scr.ints.allocZero(card)
	for _, r := range m.all {
		cs.sD[rowAt[r][a]]++
	}
	cut := count.PrefixCount(m.all, k)
	if wantExposure {
		cs.wsum = sr.scr.floats.allocZero(card)
		w := sr.weightByRank
		for _, r := range m.all[:cut] {
			v := rowAt[r][a]
			cs.cnt[v]++
			cs.wsum[v] += w[r]
		}
	} else {
		for _, r := range m.all[:cut] {
			cs.cnt[rowAt[r][a]]++
		}
	}
	return cs
}

// size returns s_D of child v.
func (cs *childStats) size(v int) int {
	if cs.sD != nil {
		return int(cs.sD[v])
	}
	return int(cs.prt.allOffs[v+1] - cs.prt.allOffs[v])
}

// count returns the top-k count of child v.
func (cs *childStats) count(v int) int {
	if cs.cnt != nil {
		return int(cs.cnt[v])
	}
	return int(cs.prt.topOffs[v+1] - cs.prt.topOffs[v])
}

// exposure returns the top-k exposure of child v. Both engines accumulate
// the same weights in ascending rank order, so results are bit-identical.
func (cs *childStats) exposure(v int) float64 {
	if cs.wsum != nil {
		return cs.wsum[v]
	}
	total := 0.0
	for _, ri := range cs.prt.at(v).top {
		total += cs.sr.weightByRow[ri]
	}
	return total
}

// at returns child v's match set, scattering the parent into all child
// lists on first use (rank-space engine); the scatter reuses the already
// computed per-value sizes as offsets.
func (cs *childStats) at(v int) matchSet {
	if !cs.scattered {
		cs.sr.ss.lazyScatter()
		offs := cs.sr.scr.ints.alloc(cs.card + 1)
		off := int32(0)
		for w := 0; w < cs.card; w++ {
			offs[w] = off
			off += cs.sD[w]
		}
		offs[cs.card] = off
		flat := cs.sr.scr.ints.alloc(len(cs.m.all))
		cur := cs.sr.scr.cursors(cs.card)
		copy(cur, offs[:cs.card])
		rowAt := cs.sr.rowAt
		for _, r := range cs.m.all {
			val := rowAt[r][cs.a]
			flat[cur[val]] = r
			cur[val]++
		}
		cs.prt = parts{allFlat: flat, allOffs: offs}
		cs.scattered = true
	}
	return cs.prt.at(v)
}

// part is the lists engine's counting-sort partition: count values, carve
// offsets and a flat block out of the arena, scatter.
func (sr searcher) part(idxs []int32, a, card int, byRank bool) (flat, offs []int32) {
	counts := sr.scr.counts(card)
	if byRank {
		rowAt := sr.rowAt
		for _, r := range idxs {
			counts[rowAt[r][a]]++
		}
	} else {
		rows := sr.in.Rows
		for _, ri := range idxs {
			counts[rows[ri][a]]++
		}
	}
	offs = sr.scr.ints.alloc(card + 1)
	off := int32(0)
	for v := 0; v < card; v++ {
		offs[v] = off
		off += counts[v]
	}
	offs[card] = off
	flat = sr.scr.ints.alloc(len(idxs))
	cur := sr.scr.cursors(card)
	copy(cur, offs[:card])
	if byRank {
		rowAt := sr.rowAt
		for _, r := range idxs {
			v := rowAt[r][a]
			flat[cur[v]] = r
			cur[v]++
		}
	} else {
		rows := sr.in.Rows
		for _, ri := range idxs {
			v := rows[ri][a]
			flat[cur[v]] = ri
			cur[v]++
		}
	}
	return flat, offs
}

// mark/release bracket a node's arena allocations; release at subtree exit
// returns the partitions and tallies to the worker's pool.
func (sr searcher) mark() arenaMark {
	return arenaMark{i: sr.scr.ints.mark(), f: sr.scr.floats.mark()}
}

func (sr searcher) release(mk arenaMark) {
	sr.scr.ints.release(mk.i)
	sr.scr.floats.release(mk.f)
}

type arenaMark struct{ i, f arenaPos }

// materialize rebuilds a node's match set from scratch — the step-time
// re-derivation when an unexplored frontier node resumes its subtree. The
// lists engine scans the dataset and the top-k prefix; the rank-space
// engine intersects the pattern's bound posting lists with galloping
// search, shortest pair first, into the worker's arena (the caller's
// mark/release owns the result's lifetime).
func (sr searcher) materialize(p pattern.Pattern, k int) matchSet {
	if sr.ix == nil {
		return matchSet{
			all: matchingRows(sr.in.Rows, p, nil),
			top: matchingTopK(sr.in.Rows, sr.in.Ranking, p, k),
		}
	}
	lists := sr.scr.lists[:0]
	bms := sr.scr.bms[:0]
	for a, v := range p {
		if v != pattern.Unbound {
			lists = append(lists, sr.ix.Postings(a, v))
			if sr.bm != bmOff {
				bms = append(bms, sr.ix.Bitmap(a, v))
			}
		}
	}
	sr.scr.lists = lists[:0] // retain the backing arrays for reuse
	sr.scr.bms = bms[:0]
	switch len(lists) {
	case 0:
		all := sr.scr.ints.alloc(len(sr.in.Rows))
		for i := range all {
			all[i] = int32(i)
		}
		return matchSet{all: all}
	case 1:
		return matchSet{all: lists[0]}
	}
	// Shortest pair first: every step's output is bounded by its shortest
	// input, so later intersections only get cheaper. Bitmaps ride the
	// same permutation so the two representations stay aligned.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
			if sr.bm != bmOff {
				bms[j], bms[j-1] = bms[j-1], bms[j]
			}
		}
	}
	if sr.useBitmaps(lists, bms) {
		return matchSet{all: sr.intersectBitmaps(bms)}
	}
	sr.ss.intersection()
	sr.ss.slicePass()
	res := count.IntersectInto(sr.scr.ints.alloc(len(lists[0]))[:0], lists[0], lists[1])
	for _, b := range lists[2:] {
		if len(res) == 0 {
			break
		}
		sr.ss.intersection()
		sr.ss.slicePass()
		res = count.IntersectInto(sr.scr.ints.alloc(len(res))[:0], res, b)
	}
	return matchSet{all: res}
}

// useBitmaps is the per-node arm of the cost model: bitmaps carry the
// intersection only when every bound value has one (availability), and —
// under auto — when the shortest list is long enough that the word-wise
// AND beats the galloping merge (profitability). Forced bitmap mode skips
// the profitability cut but still needs availability.
func (sr searcher) useBitmaps(lists [][]int32, bms []*count.Bitmap) bool {
	if sr.bm == bmOff {
		return false
	}
	for _, bm := range bms {
		if bm == nil {
			return false
		}
	}
	return sr.bm == bmForce || len(lists[0]) >= bitmapPassMin
}

// intersectBitmaps runs the pattern's intersection as a word-wise AND
// chain over the pre-sorted bitmaps and materializes the surviving ranks
// into the worker's arena. Every pairwise AND counts as one posting
// intersection (so the totals stay comparable across engines) plus one
// bitmap pass.
func (sr searcher) intersectBitmaps(bms []*count.Bitmap) []int32 {
	sr.ss.intersection()
	sr.ss.bitmapPass()
	acc := bms[0].And(bms[1])
	for _, b := range bms[2:] {
		if acc.Cardinality() == 0 {
			break
		}
		sr.ss.intersection()
		sr.ss.bitmapPass()
		acc = acc.And(b)
	}
	n := acc.Cardinality()
	return acc.AppendRanks(sr.scr.ints.alloc(n)[:0:n])
}

// scratch is the per-worker allocation pool: counting-sort scratch, the
// partition arenas, and a reusable posting-list header slice.
type scratch struct {
	cnt    []int32
	cur    []int32
	lists  [][]int32
	bms    []*count.Bitmap
	ints   arena[int32]
	floats arena[float64]
}

// counts returns a zeroed count buffer of the given width.
func (s *scratch) counts(card int) []int32 {
	if cap(s.cnt) < card {
		s.cnt = make([]int32, card)
	}
	s.cnt = s.cnt[:card]
	for i := range s.cnt {
		s.cnt[i] = 0
	}
	return s.cnt
}

// cursors returns an uninitialized cursor buffer of the given width.
func (s *scratch) cursors(card int) []int32 {
	if cap(s.cur) < card {
		s.cur = make([]int32, card)
	}
	return s.cur[:card]
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	s.ints.reset()
	s.floats.reset()
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// arena is a chunked stack allocator. Blocks are never reallocated, so
// outstanding slices stay valid across later allocations; mark/release
// rewinds in LIFO order, matching the recursion structure of the subtree
// builds. A cancellation unwind may skip releases — reset at the next
// acquire reclaims everything.
type arena[T any] struct {
	blocks [][]T
	bi     int // current block index
	off    int // next free offset in blocks[bi]
}

// arenaBlock is the minimum block size in elements; single allocations
// larger than this get a dedicated block.
const arenaBlock = 1 << 14

// arenaPos is a rewind point inside one arena.
type arenaPos struct{ bi, off int }

func (ar *arena[T]) mark() arenaPos { return arenaPos{bi: ar.bi, off: ar.off} }

func (ar *arena[T]) release(mk arenaPos) { ar.bi, ar.off = mk.bi, mk.off }

func (ar *arena[T]) reset() { ar.bi, ar.off = 0, 0 }

func (ar *arena[T]) alloc(n int) []T {
	for {
		if ar.bi < len(ar.blocks) {
			if b := ar.blocks[ar.bi]; ar.off+n <= len(b) {
				out := b[ar.off : ar.off+n]
				ar.off += n
				return out
			}
			// No room in this block: advance. The skipped tail is
			// reclaimed by release/reset, never handed out twice.
			ar.bi++
			ar.off = 0
			continue
		}
		size := arenaBlock
		if n > size {
			size = n
		}
		ar.blocks = append(ar.blocks, make([]T, size))
	}
}

// allocZero returns a zeroed block (arena memory is reused, so tallies
// must clear before accumulating).
func (ar *arena[T]) allocZero(n int) []T {
	out := ar.alloc(n)
	var zero T
	for i := range out {
		out[i] = zero
	}
	return out
}
