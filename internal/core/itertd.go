package core

import (
	"context"
	"fmt"
)

// IterTDGlobal is the ITERTD baseline of Section IV-A for global bounds
// (Problem 3.1): it re-runs the top-down search of Algorithm 1 from scratch
// for every k in [KMin, KMax]. Unlike GLOBALBOUNDS it accepts arbitrary
// (including non-monotone) lower-bound sequences.
func IterTDGlobal(in *Input, params GlobalParams) (*Result, error) {
	return IterTDGlobalCtx(context.Background(), in, params, 1)
}

// IterTDGlobalCtx is IterTDGlobal with cancellation and per-k fan-out: ctx
// aborts the search mid-lattice with a CanceledError, and the independent
// per-k searches spread over workers goroutines (<= 0 means GOMAXPROCS,
// 1 is serial). Results are identical for every worker count.
func IterTDGlobalCtx(ctx context.Context, in *Input, params GlobalParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	meas := globalMeasure{params: &params}
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		groups, _ := topDownSearch(cn, eng, params.MinSize, k, meas, st, ss)
		sortPatterns(groups)
		return groups
	})
}

// IterTDProp is the ITERTD baseline for proportional representation
// (Problem 3.2): Algorithm 1 with the proportional lower bound, re-run from
// scratch for every k in [KMin, KMax].
func IterTDProp(in *Input, params PropParams) (*Result, error) {
	return IterTDPropCtx(context.Background(), in, params, 1)
}

// IterTDPropCtx is IterTDProp with cancellation and per-k fan-out (see
// IterTDGlobalCtx).
func IterTDPropCtx(ctx context.Context, in *Input, params PropParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	meas := propMeasure{alpha: params.Alpha, n: len(in.Rows)}
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		groups, _ := topDownSearch(cn, eng, params.MinSize, k, meas, st, ss)
		sortPatterns(groups)
		return groups
	})
}

// prepare validates the input and parameter combination shared by all
// detection entry points.
func prepare(in *Input, kMax int, paramErr error) error {
	if paramErr != nil {
		return paramErr
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if kMax > len(in.Rows) {
		return fmt.Errorf("core: kMax=%d exceeds dataset size %d", kMax, len(in.Rows))
	}
	return nil
}
