package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics 1.0 rendering (https://openmetrics.io). The renderer reads
// the same Registry.Snapshot the OTLP exporter consumes, so the two
// formats can never disagree; the legacy 0.0.4 path keeps its own
// byte-stable render closures and never sees exemplars.
//
// Differences from the 0.0.4 exposition this registry also serves:
//   - counter *family* names drop the _total suffix while sample lines
//     keep it (`# TYPE foo counter` / `foo_total 5`);
//   - histogram _bucket lines may carry `# {trace_id="..."} value`
//     exemplar suffixes pointing at the last trace to land in the bucket;
//   - the body terminates with `# EOF`.

// ContentTypeOpenMetrics is the Content-Type for OpenMetrics 1.0 scrapes.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders every family in registration order as
// OpenMetrics 1.0 text, exemplars included, terminated by `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) (int64, error) {
	b := make([]byte, 0, 4096)
	for _, f := range r.Snapshot() {
		b = appendOpenMetricsFamily(b, f)
	}
	b = append(b, "# EOF\n"...)
	n, err := w.Write(b)
	return int64(n), err
}

func appendOpenMetricsFamily(b []byte, f FamilySnapshot) []byte {
	fam := f.Name
	if f.Typ == "counter" {
		fam = strings.TrimSuffix(fam, "_total")
	}
	b = append(b, "# TYPE "...)
	b = append(b, fam...)
	b = append(b, ' ')
	b = append(b, f.Typ...)
	b = append(b, "\n# HELP "...)
	b = append(b, fam...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.Help)
	b = append(b, '\n')
	for _, p := range f.Points {
		switch f.Typ {
		case "counter":
			b = appendOMSample(b, fam+"_total", f.Label, p.Label, p.Value)
		case "gauge":
			b = appendOMSample(b, fam, f.Label, p.Label, p.Value)
		case "histogram":
			b = appendOMHistogram(b, fam, f.Label, p)
		}
	}
	return b
}

// appendOMSample renders one `name{label="value"} v` line.
func appendOMSample(b []byte, name, labelName, labelValue string, v float64) []byte {
	b = append(b, name...)
	if labelName != "" {
		b = append(b, '{')
		b = append(b, labelName...)
		b = append(b, '=', '"')
		b = appendEscapedLabel(b, labelValue)
		b = append(b, '"', '}')
	}
	b = append(b, ' ')
	b = appendFloat(b, v)
	return append(b, '\n')
}

// appendOMHistogram renders the cumulative bucket lines (with exemplar
// suffixes where a bucket has one), then _sum and _count.
func appendOMHistogram(b []byte, fam, labelName string, p MetricPoint) []byte {
	var prefix []byte
	if labelName != "" {
		prefix = append(prefix, labelName...)
		prefix = append(prefix, '=', '"')
		prefix = appendEscapedLabel(prefix, p.Label)
		prefix = append(prefix, '"', ',')
	}
	cum := int64(0)
	for i := 0; i < len(p.Buckets); i++ {
		cum += p.Buckets[i]
		b = append(b, fam...)
		b = append(b, "_bucket{"...)
		b = append(b, prefix...)
		b = append(b, `le="`...)
		if i < len(p.Bounds) {
			b = appendFloat(b, p.Bounds[i])
		} else {
			b = append(b, "+Inf"...)
		}
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		if i < len(p.Exemplars) && p.Exemplars[i] != nil {
			b = append(b, ` # {trace_id="`...)
			b = appendEscapedLabel(b, p.Exemplars[i].TraceID)
			b = append(b, `"} `...)
			b = appendFloat(b, p.Exemplars[i].Value)
		}
		b = append(b, '\n')
	}
	b = append(b, fam...)
	b = append(b, "_sum"...)
	b = appendLabelBlock(b, string(prefix))
	b = append(b, ' ')
	b = appendFloat(b, p.Sum)
	b = append(b, '\n')
	b = append(b, fam...)
	b = append(b, "_count"...)
	b = appendLabelBlock(b, string(prefix))
	b = append(b, ' ')
	b = strconv.AppendInt(b, p.Count, 10)
	return append(b, '\n')
}

// ValidateOpenMetrics is a strict structural check over an OpenMetrics
// 1.0 text body: metadata ordering, name grammar, label escaping,
// exemplar syntax, counter `_total` conventions, cumulative histogram
// buckets ending in +Inf, and the mandatory `# EOF` terminator. It is
// the in-repo linter CI's openmetrics-lint step runs against live
// scrapes, so it rejects anything the renderer should never produce
// rather than accepting everything the spec might allow.
func ValidateOpenMetrics(data []byte) error {
	s := string(data)
	if !strings.HasSuffix(s, "# EOF\n") {
		return fmt.Errorf("openmetrics: body must end with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	v := &omValidator{types: make(map[string]string)}
	for i, line := range lines {
		last := i == len(lines)-1
		if line == "# EOF" {
			if !last {
				return fmt.Errorf("openmetrics: line %d: # EOF before end of body", i+1)
			}
			return v.finishFamily(i + 1)
		}
		if err := v.line(i+1, line); err != nil {
			return err
		}
	}
	return fmt.Errorf("openmetrics: missing # EOF terminator")
}

// omValidator accumulates per-family state while scanning lines.
type omValidator struct {
	types   map[string]string // family name -> type, in declaration order
	cur     string            // current family name
	curTyp  string
	sawHelp bool
	// hist accumulates bucket samples for the current histogram family,
	// keyed by the labelset minus le, for the cumulativity check.
	hist map[string][]omBucket
	cnt  map[string]float64 // _count value per labelset, for +Inf == count
}

type omBucket struct {
	le  float64
	cum float64
}

func (v *omValidator) line(n int, line string) error {
	switch {
	case strings.HasPrefix(line, "# TYPE "):
		rest := line[len("# TYPE "):]
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf("openmetrics: line %d: malformed TYPE line", n)
		}
		name, typ := rest[:sp], rest[sp+1:]
		if !validMetricName(name) {
			return fmt.Errorf("openmetrics: line %d: invalid family name %q", n, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "info", "stateset", "unknown", "gaugehistogram":
		default:
			return fmt.Errorf("openmetrics: line %d: unknown type %q", n, typ)
		}
		if typ == "counter" && strings.HasSuffix(name, "_total") {
			return fmt.Errorf("openmetrics: line %d: counter family %q must not end in _total", n, name)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("openmetrics: line %d: duplicate family %q", n, name)
		}
		if err := v.finishFamily(n); err != nil {
			return err
		}
		v.types[name] = typ
		v.cur, v.curTyp, v.sawHelp = name, typ, false
		if typ == "histogram" {
			v.hist = make(map[string][]omBucket)
			v.cnt = make(map[string]float64)
		}
		return nil
	case strings.HasPrefix(line, "# HELP "):
		rest := line[len("# HELP "):]
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf("openmetrics: line %d: malformed HELP line", n)
		}
		name, help := rest[:sp], rest[sp+1:]
		if name != v.cur {
			return fmt.Errorf("openmetrics: line %d: HELP for %q outside its TYPE block", n, name)
		}
		if v.sawHelp {
			return fmt.Errorf("openmetrics: line %d: duplicate HELP for %q", n, name)
		}
		if err := checkHelpEscaping(help); err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", n, err)
		}
		v.sawHelp = true
		return nil
	case strings.HasPrefix(line, "#"):
		return fmt.Errorf("openmetrics: line %d: stray comment %q (only TYPE/HELP/EOF allowed)", n, line)
	case line == "":
		return fmt.Errorf("openmetrics: line %d: empty line", n)
	default:
		return v.sample(n, line)
	}
}

func (v *omValidator) sample(n int, line string) error {
	if v.cur == "" {
		return fmt.Errorf("openmetrics: line %d: sample before any TYPE line", n)
	}
	name, rest, err := scanMetricName(line)
	if err != nil {
		return fmt.Errorf("openmetrics: line %d: %v", n, err)
	}
	suffix, ok := strings.CutPrefix(name, v.cur)
	if !ok {
		return fmt.Errorf("openmetrics: line %d: sample %q outside current family %q", n, name, v.cur)
	}
	switch v.curTyp {
	case "counter":
		if suffix != "_total" && suffix != "_created" {
			return fmt.Errorf("openmetrics: line %d: counter sample %q must end in _total", n, name)
		}
	case "gauge":
		if suffix != "" {
			return fmt.Errorf("openmetrics: line %d: gauge sample %q has unexpected suffix", n, name)
		}
	case "histogram":
		switch suffix {
		case "_bucket", "_sum", "_count", "_created":
		default:
			return fmt.Errorf("openmetrics: line %d: histogram sample %q has invalid suffix %q", n, name, suffix)
		}
	}
	labels, rest, err := scanLabels(rest)
	if err != nil {
		return fmt.Errorf("openmetrics: line %d: %v", n, err)
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("openmetrics: line %d: missing space before value", n)
	}
	rest = rest[1:]
	valTok := rest
	exemplar := ""
	if idx := strings.Index(rest, " # "); idx >= 0 {
		valTok, exemplar = rest[:idx], rest[idx+3:]
	}
	valFields := strings.Split(valTok, " ")
	if len(valFields) > 2 {
		return fmt.Errorf("openmetrics: line %d: too many value tokens %q", n, valTok)
	}
	val, err := strconv.ParseFloat(valFields[0], 64)
	if err != nil {
		return fmt.Errorf("openmetrics: line %d: bad value %q", n, valFields[0])
	}
	if len(valFields) == 2 { // optional timestamp
		if _, err := strconv.ParseFloat(valFields[1], 64); err != nil {
			return fmt.Errorf("openmetrics: line %d: bad timestamp %q", n, valFields[1])
		}
	}
	if exemplar != "" {
		if v.curTyp != "histogram" && v.curTyp != "counter" {
			return fmt.Errorf("openmetrics: line %d: exemplar on %s sample", n, v.curTyp)
		}
		if v.curTyp == "histogram" && !strings.HasSuffix(name, "_bucket") {
			return fmt.Errorf("openmetrics: line %d: histogram exemplar outside _bucket sample", n)
		}
		if err := checkExemplar(exemplar); err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", n, err)
		}
	}
	if v.curTyp == "histogram" {
		sig, le, hasLE, err := splitLE(labels)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", n, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if !hasLE {
				return fmt.Errorf("openmetrics: line %d: _bucket sample missing le label", n)
			}
			v.hist[sig] = append(v.hist[sig], omBucket{le: le, cum: val})
		case strings.HasSuffix(name, "_count"):
			if hasLE {
				return fmt.Errorf("openmetrics: line %d: le label on _count sample", n)
			}
			v.cnt[sig] = val
		}
	}
	return nil
}

// finishFamily runs the end-of-family checks for the histogram family
// being closed (cumulative ascending buckets, +Inf last and equal to
// _count).
func (v *omValidator) finishFamily(n int) error {
	if v.curTyp != "histogram" {
		return nil
	}
	for sig, buckets := range v.hist {
		for i := 1; i < len(buckets); i++ {
			if !(buckets[i].le > buckets[i-1].le) {
				return fmt.Errorf("openmetrics: line %d: family %q: le bounds not ascending for labelset {%s}", n, v.cur, sig)
			}
			if buckets[i].cum < buckets[i-1].cum {
				return fmt.Errorf("openmetrics: line %d: family %q: bucket counts not cumulative for labelset {%s}", n, v.cur, sig)
			}
		}
		if len(buckets) == 0 || !math.IsInf(buckets[len(buckets)-1].le, 1) {
			return fmt.Errorf("openmetrics: line %d: family %q: missing +Inf bucket for labelset {%s}", n, v.cur, sig)
		}
		if cnt, ok := v.cnt[sig]; ok && cnt != buckets[len(buckets)-1].cum {
			return fmt.Errorf("openmetrics: line %d: family %q: _count %v != +Inf bucket %v for labelset {%s}", n, v.cur, cnt, buckets[len(buckets)-1].cum, sig)
		}
	}
	v.hist, v.cnt = nil, nil
	return nil
}

// scanMetricName splits a sample line into its metric name and the rest.
func scanMetricName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// scanLabels consumes an optional `{k="v",...}` block, returning the
// parsed pairs in order and the unconsumed tail.
func scanLabels(s string) (labels []omLabel, rest string, err error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, nil
	}
	i := 1
	seen := map[string]bool{}
	for {
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return nil, "", fmt.Errorf("label missing '='")
		}
		key := s[i:j]
		if !validLabelName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		if seen[key] {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		seen[key] = true
		if j+1 >= len(s) || s[j+1] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", key)
		}
		val, next, err := scanQuoted(s[j+1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %v", key, err)
		}
		labels = append(labels, omLabel{key, val})
		i = j + 1 + next
		if i < len(s) && s[i] == ',' {
			i++
			if i < len(s) && s[i] == '}' {
				return nil, "", fmt.Errorf("trailing comma in label block")
			}
		} else if i < len(s) && s[i] != '}' {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q", key)
		}
	}
}

type omLabel struct{ key, val string }

// scanQuoted consumes a double-quoted string starting at s[0]=='"',
// enforcing that only \\ \" \n escapes appear, and returns the decoded
// value plus the number of bytes consumed.
func scanQuoted(s string) (val string, consumed int, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0, fmt.Errorf("missing opening quote")
	}
	var sb strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i += 2
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

// checkExemplar validates the ` # {labels} value [ts]` tail after the
// `# ` marker has been stripped.
func checkExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar missing label block")
	}
	labels, rest, err := scanLabels(s)
	if err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	runeLen := 0
	for _, l := range labels {
		runeLen += len([]rune(l.key)) + len([]rune(l.val))
	}
	if runeLen > 128 {
		return fmt.Errorf("exemplar labelset exceeds 128 runes")
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("exemplar missing value")
	}
	fields := strings.Split(rest[1:], " ")
	if len(fields) > 2 {
		return fmt.Errorf("exemplar has too many tokens")
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return fmt.Errorf("exemplar: bad number %q", f)
		}
	}
	return nil
}

// checkHelpEscaping rejects raw control escapes the renderer would never
// emit: only \\ and \n are legal in HELP text.
func checkHelpEscaping(s string) error {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
				return fmt.Errorf("invalid escape in HELP text")
			}
			i++
		}
	}
	return nil
}

// splitLE pulls the le label out of a labelset, returning the remaining
// labels as a canonical signature string for grouping.
func splitLE(labels []omLabel) (sig string, le float64, hasLE bool, err error) {
	var rest []string
	for _, l := range labels {
		if l.key == "le" {
			hasLE = true
			switch l.val {
			case "+Inf":
				le = math.Inf(1)
			default:
				le, err = strconv.ParseFloat(l.val, 64)
				if err != nil {
					return "", 0, false, fmt.Errorf("bad le value %q", l.val)
				}
			}
			continue
		}
		rest = append(rest, l.key+"="+l.val)
	}
	sort.Strings(rest)
	return strings.Join(rest, ","), le, hasLE, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
