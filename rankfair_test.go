package rankfair_test

import (
	"strings"
	"testing"

	"rankfair"
	"rankfair/internal/synth"
)

// studentsTable builds a small analyst over the synthetic Student dataset.
func studentsAnalyst(t *testing.T) *rankfair.Analyst {
	t.Helper()
	b := synth.Students(200, 11)
	a, err := rankfair.New(b.Table, b.Ranker)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runningAnalyst(t *testing.T) *rankfair.Analyst {
	t.Helper()
	b := synth.RunningExample()
	a, err := rankfair.New(b.Table, b.Ranker)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewErrors(t *testing.T) {
	if _, err := rankfair.New(nil, &rankfair.Fixed{}); err == nil {
		t.Error("nil dataset should fail")
	}
	b := synth.RunningExample()
	if _, err := rankfair.New(b.Table, nil); err == nil {
		t.Error("nil ranker should fail")
	}
	numericOnly := rankfair.NewDataset()
	if err := numericOnly.AddNumeric("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := rankfair.New(numericOnly, &rankfair.ByColumns{Keys: []rankfair.ColumnKey{{Column: "x"}}}); err == nil {
		t.Error("dataset without categorical attributes should fail")
	}
	if _, err := rankfair.New(b.Table, &rankfair.Fixed{Perm: []int{0}}); err == nil {
		t.Error("broken ranker should surface its error")
	}
}

func TestDetectGlobalFacade(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := report.At(5)
	if len(groups) != 9 {
		t.Fatalf("Res[5] has %d groups, want 9", len(groups))
	}
	// Rendering uses attribute names and labels.
	var rendered []string
	for _, g := range groups {
		rendered = append(rendered, report.Format(g))
	}
	joined := strings.Join(rendered, " ")
	for _, want := range []string{"{School=GP}", "{Failures=2}", "{Address=U, Failures=1}"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rendered output missing %s: %s", want, joined)
		}
	}
	// Baseline agrees.
	base, err := a.DetectGlobalBaseline(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.At(5)) != 9 {
		t.Errorf("baseline Res[5] has %d groups", len(base.At(5)))
	}
}

func TestDetectProportionalFacade(t *testing.T) {
	a := runningAnalyst(t)
	for _, run := range []func(rankfair.PropParams) (*rankfair.Report, error){
		a.DetectProportional, a.DetectProportionalBaseline,
	} {
		report, err := run(rankfair.PropParams{MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if len(report.At(4)) != 3 || len(report.At(5)) != 4 {
			t.Errorf("prop results %d/%d, want 3/4", len(report.At(4)), len(report.At(5)))
		}
	}
}

func TestBindAndFormat(t *testing.T) {
	a := runningAnalyst(t)
	p, err := a.Bind(a.EmptyPattern(), "School", "GP")
	if err != nil {
		t.Fatal(err)
	}
	p, err = a.Bind(p, "Gender", "F")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Format(p); got != "{Gender=F, School=GP}" {
		t.Errorf("Format = %q", got)
	}
	if _, err := a.Bind(p, "Nope", "x"); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := a.Bind(p, "School", "Hogwarts"); err == nil {
		t.Error("unknown label should fail")
	}
}

func TestUpperFacade(t *testing.T) {
	a := runningAnalyst(t)
	up, err := a.DetectGlobalUpper(rankfair.GlobalUpperParams{
		MinSize: 4, KMin: 5, KMax: 5, Upper: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// {School=MS} has 3 of the top-5 (> 2); some superset chain must be
	// reported as most specific.
	if len(up.At(5)) == 0 {
		t.Error("expected over-represented groups at k=5")
	}
	pu, err := a.DetectProportionalUpper(rankfair.PropUpperParams{
		MinSize: 4, KMin: 5, KMax: 5, Beta: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = pu
}

func TestExplainFacade(t *testing.T) {
	a := studentsAnalyst(t)
	p, err := a.Bind(a.EmptyPattern(), "Medu", "primary")
	if err != nil {
		t.Fatal(err)
	}
	expl, err := a.Explain(p, 30, rankfair.ExplainOptions{
		Seed: 2, Permutations: 8, BackgroundSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Shapley) == 0 || expl.Comparison == nil {
		t.Fatal("incomplete explanation")
	}
}

func TestDivergenceFacade(t *testing.T) {
	a := runningAnalyst(t)
	res, err := a.Divergence(rankfair.DivergenceParams{MinSupport: 0.25, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no divergent groups")
	}
}

func TestNewFromInput(t *testing.T) {
	b := synth.RunningExample()
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	a, err := rankfair.NewFromInput(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Space().NumAttrs() != 4 {
		t.Error("space lost")
	}
	// Without dictionaries, formatting falls back to raw codes.
	p := a.EmptyPattern().With(0, 1)
	if got := a.Format(p); got != "{Gender=1}" {
		t.Errorf("Format = %q", got)
	}
	bad := &rankfair.Input{}
	if _, err := rankfair.NewFromInput(bad, nil); err == nil {
		t.Error("invalid input should fail")
	}
}

func TestCSVFacadeRoundTrip(t *testing.T) {
	b := synth.RunningExample()
	var sb strings.Builder
	if err := rankfair.WriteCSV(&sb, b.Table); err != nil {
		t.Fatal(err)
	}
	back, err := rankfair.ReadCSV(strings.NewReader(sb.String()), rankfair.CSVOptions{
		CategoricalColumns: []string{"Failures"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 16 {
		t.Errorf("rows = %d", back.NumRows())
	}
}

func TestBoundHelpers(t *testing.T) {
	if got := rankfair.StaircaseBounds(10, 29, 10, 10, 10); got[0] != 10 || got[19] != 20 {
		t.Errorf("staircase = %v", got)
	}
	if got := rankfair.ConstantBounds(1, 3, 7); len(got) != 3 || got[2] != 7 {
		t.Errorf("constant = %v", got)
	}
}
