// Command biasexplain explains why a group has biased representation in
// the top-k of a ranking, using the paper's Section V method: a regression
// surrogate of the ranker, aggregated Shapley values over the group, and a
// value-distribution comparison for the most influential attribute.
//
// Usage:
//
//	biasexplain -demo student -group "Medu=primary" -k 49
//	biasexplain -input data.csv -rank-by score -group "sex=F,address=R" -k 20 -model tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rankfair"
	"rankfair/internal/synth"
)

func main() {
	var (
		input  = flag.String("input", "", "CSV file to analyze")
		demo   = flag.String("demo", "", "built-in dataset: running|student|compas|german")
		rows   = flag.Int("rows", 0, "row count for -demo generators (0 = paper default)")
		seed   = flag.Int64("seed", 1, "seed for generators and Shapley sampling")
		rankBy = flag.String("rank-by", "", "numeric column to rank by, descending (for -input)")
		group  = flag.String("group", "", `group to explain, e.g. "Medu=primary" or "sex=F,address=R"`)
		k      = flag.Int("k", 49, "top-k prefix the group was detected at")
		model  = flag.String("model", "ridge", "surrogate model: ridge|tree")
		perms  = flag.Int("perms", 32, "Shapley sampling permutations per tuple")
	)
	flag.Parse()

	if err := run(*input, *demo, *rows, *seed, *rankBy, *group, *k, *model, *perms); err != nil {
		fmt.Fprintln(os.Stderr, "biasexplain:", err)
		os.Exit(1)
	}
}

func run(input, demo string, rows int, seed int64, rankBy, group string, k int, model string, perms int) error {
	a, err := buildAnalyst(input, demo, rows, seed, rankBy)
	if err != nil {
		return err
	}
	if group == "" {
		return fmt.Errorf(`need -group, e.g. -group "Medu=primary"`)
	}
	p := a.EmptyPattern()
	for _, assign := range strings.Split(group, ",") {
		parts := strings.SplitN(strings.TrimSpace(assign), "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad assignment %q (want attr=value)", assign)
		}
		p, err = a.Bind(p, parts[0], parts[1])
		if err != nil {
			return err
		}
	}
	opts := rankfair.ExplainOptions{Seed: seed, Permutations: perms}
	switch model {
	case "ridge":
		opts.Model = rankfair.RidgeModel
	case "tree":
		opts.Model = rankfair.TreeModel
	default:
		return fmt.Errorf("unknown model %q (want ridge|tree)", model)
	}
	expl, err := a.Explain(p, k, opts)
	if err != nil {
		return err
	}

	fmt.Printf("group %s: %d tuples; explained against the top-%d\n\n", a.Format(p), expl.GroupSize, k)
	fmt.Println("aggregated Shapley values (surrogate predicts rank position; negative pushes toward the top):")
	for _, s := range expl.Shapley {
		fmt.Printf("  %-28s %+9.3f\n", s.Name, s.Value)
	}
	fmt.Println()
	fmt.Print(expl.Comparison.Render())
	fmt.Printf("\n(total variation distance between the distributions: %.3f)\n", expl.Comparison.TotalVariation())
	return nil
}

func buildAnalyst(input, demo string, rows int, seed int64, rankBy string) (*rankfair.Analyst, error) {
	if demo != "" {
		var b *synth.Bundle
		switch demo {
		case "running":
			b = synth.RunningExample()
		case "student":
			if rows <= 0 {
				rows = synth.DefaultStudentRows
			}
			b = synth.Students(rows, seed)
		case "compas":
			if rows <= 0 {
				rows = synth.DefaultCOMPASRows
			}
			b = synth.COMPAS(rows, seed)
		case "german":
			if rows <= 0 {
				rows = synth.DefaultGermanRows
			}
			b = synth.GermanCredit(rows, seed)
		default:
			return nil, fmt.Errorf("unknown demo dataset %q", demo)
		}
		return rankfair.New(b.Table, b.Ranker)
	}
	if input == "" {
		return nil, fmt.Errorf("need -input or -demo")
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	table, err := rankfair.ReadCSV(f, rankfair.CSVOptions{})
	if err != nil {
		return nil, err
	}
	if rankBy == "" {
		return nil, fmt.Errorf("-input requires -rank-by <numeric column>")
	}
	return rankfair.New(table, &rankfair.ByColumns{Keys: []rankfair.ColumnKey{
		{Column: rankBy, Descending: true},
	}})
}
