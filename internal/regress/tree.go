package regress

import (
	"errors"
	"fmt"
	"sort"
)

// TreeParams controls CART fitting.
type TreeParams struct {
	// MaxDepth bounds the tree depth (root = depth 0). <= 0 means 6.
	MaxDepth int
	// MinLeaf is the minimum number of samples per leaf. <= 0 means 5.
	MinLeaf int
}

func (p TreeParams) withDefaults() TreeParams {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 6
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 5
	}
	return p
}

// Tree is a CART regression tree with axis-aligned threshold splits,
// fitted by variance reduction.
type Tree struct {
	nodes []treeNode
}

type treeNode struct {
	feature   int     // split feature; -1 for leaves
	threshold float64 // go left when x[feature] <= threshold
	left      int32
	right     int32
	value     float64 // leaf prediction
}

// FitTree fits a CART regression tree to (X, y).
func FitTree(X [][]float64, y []float64, params TreeParams) (*Tree, error) {
	if len(X) == 0 {
		return nil, errors.New("regress: no training rows")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("regress: %d rows, %d targets", len(X), len(y))
	}
	p := params.withDefaults()
	t := &Tree{}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.build(X, y, idx, 0, p)
	return t, nil
}

// build grows the subtree over samples idx and returns its node index.
func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int, p TreeParams) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, value: meanAt(y, idx)})
	if depth >= p.MaxDepth || len(idx) < 2*p.MinLeaf {
		return node
	}
	feat, thr, ok := bestSplit(X, y, idx, p.MinLeaf)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	t.nodes[node].feature = feat
	t.nodes[node].threshold = thr
	l := t.build(X, y, left, depth+1, p)
	r := t.build(X, y, right, depth+1, p)
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// bestSplit finds the (feature, threshold) minimizing the weighted sum of
// child squared errors, honoring the minimum leaf size.
func bestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	d := len(X[idx[0]])
	totalSum, totalSq := 0.0, 0.0
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	bestScore := totalSq - totalSum*totalSum/float64(n) // parent SSE
	improved := false

	order := make([]int, n)
	for f := 0; f < d; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		leftSum, leftSq := 0.0, 0.0
		for pos := 0; pos < n-1; pos++ {
			i := order[pos]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			if X[order[pos]][f] == X[order[pos+1]][f] {
				continue // not a valid cut point
			}
			nl, nr := pos+1, n-pos-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			if sse < bestScore-1e-12 {
				bestScore = sse
				feature = f
				threshold = (X[order[pos]][f] + X[order[pos+1]][f]) / 2
				improved = true
			}
		}
	}
	return feature, threshold, improved
}

// Predict implements Model.
func (t *Tree) Predict(x []float64) float64 {
	nd := int32(0)
	for {
		n := t.nodes[nd]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			nd = n.left
		} else {
			nd = n.right
		}
	}
}

// NumNodes returns the number of nodes in the fitted tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

func meanAt(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}
