package count

import (
	"testing"

	"rankfair/internal/pattern"
)

// ranksEqual reports whether two rank lists are identical.
func ranksEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// denseRun returns n consecutive ranks starting at base.
func denseRun(base, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(base + i)
	}
	return out
}

// TestBitmapContainerForms pins the representation cut: a container at
// arrayMaxCard stays in array form, one entry more flips it to the word
// form, and both round-trip and count identically.
func TestBitmapContainerForms(t *testing.T) {
	for _, tc := range []struct {
		name     string
		ranks    []int32
		wantWord bool
	}{
		{"empty", nil, false},
		{"single", []int32{7}, false},
		{"at-array-max", denseRun(100, arrayMaxCard), false},
		{"past-array-max", denseRun(100, arrayMaxCard+1), true},
		{"container-tail", denseRun(containerSpan-5, 5), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bm := BitmapFromRanks(tc.ranks)
			if bm.Cardinality() != len(tc.ranks) {
				t.Fatalf("Cardinality = %d, want %d", bm.Cardinality(), len(tc.ranks))
			}
			if got := bm.AppendRanks(nil); !ranksEqual(got, tc.ranks) {
				t.Fatalf("AppendRanks = %v, want %v", got, tc.ranks)
			}
			if len(tc.ranks) > 0 {
				if isWord := bm.words[0] != nil; isWord != tc.wantWord {
					t.Fatalf("word container = %v, want %v", isWord, tc.wantWord)
				}
			}
			if bm.SizeBytes() <= 0 {
				t.Fatalf("SizeBytes = %d, want > 0", bm.SizeBytes())
			}
		})
	}
}

// TestBitmapMultiContainer covers ranks spanning several 1<<16 chunks,
// including a skipped chunk, with CountBelow probed at and around every
// container boundary.
func TestBitmapMultiContainer(t *testing.T) {
	ranks := append(denseRun(10, 20), denseRun(containerSpan+100, arrayMaxCard+50)...)
	ranks = append(ranks, denseRun(3*containerSpan+1, 3)...) // chunk 2 skipped
	bm := BitmapFromRanks(ranks)
	if got := bm.AppendRanks(nil); !ranksEqual(got, ranks) {
		t.Fatalf("AppendRanks mismatch: got %d entries, want %d", len(got), len(ranks))
	}
	if len(bm.keys) != 3 {
		t.Fatalf("containers = %d, want 3", len(bm.keys))
	}
	naive := func(k int) int {
		n := 0
		for _, r := range ranks {
			if int(r) < k {
				n++
			}
		}
		return n
	}
	for _, k := range []int{
		0, 1, 10, 30, containerSpan - 1, containerSpan, containerSpan + 100,
		containerSpan + 100 + 64, // word-aligned cut inside the word container
		containerSpan + 100 + 65, // mid-word cut
		2 * containerSpan, 3 * containerSpan, 3*containerSpan + 2, 4 * containerSpan,
	} {
		if got, want := bm.CountBelow(k), naive(k); got != want {
			t.Fatalf("CountBelow(%d) = %d, want %d", k, got, want)
		}
	}
}

// TestBitmapAndForms exercises every container pairing of the intersection
// kernels — array×array, array×word, word×word, and key-disjoint — against
// the slice-merge oracle, for AndCardinality, AndCardinalityBelow, and the
// materialized And.
func TestBitmapAndForms(t *testing.T) {
	sparse := []int32{5, 100, 200, 4000, int32(containerSpan) + 9}
	word := denseRun(0, arrayMaxCard+200) // word container in chunk 0
	arr := denseRun(3900, 300)            // array container straddling both
	for _, tc := range []struct {
		name string
		a, b []int32
	}{
		{"arr-arr", sparse, arr},
		{"arr-word", arr, word},
		{"word-arr", word, sparse},
		{"word-word", word, denseRun(2000, arrayMaxCard+300)},
		{"disjoint-keys", sparse, denseRun(2*containerSpan, 10)},
		{"empty-left", nil, sparse},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bmA, bmB := BitmapFromRanks(tc.a), BitmapFromRanks(tc.b)
			want := IntersectInto(nil, tc.a, tc.b)
			if got := bmA.AndCardinality(bmB); got != len(want) {
				t.Fatalf("AndCardinality = %d, want %d", got, len(want))
			}
			if got := bmA.And(bmB).AppendRanks(nil); !ranksEqual(got, want) {
				t.Fatalf("And().AppendRanks = %v, want %v", got, want)
			}
			for _, k := range []int{0, 1, 2048, 4000, containerSpan, 2*containerSpan + 5} {
				wantK := 0
				for _, r := range want {
					if int(r) < k {
						wantK++
					}
				}
				if got := bmA.AndCardinalityBelow(bmB, k); got != wantK {
					t.Fatalf("AndCardinalityBelow(%d) = %d, want %d", k, got, wantK)
				}
			}
		})
	}
}

// TestBuildBitmapCut pins the Build-side cost model: posting lists at or
// above bitmapMinLen get a bitmap, shorter ones stay slice-only, and the
// accessor mirrors that.
func TestBuildBitmapCut(t *testing.T) {
	// Attribute 0: value 0 appears bitmapMinLen times, value 1 once.
	n := bitmapMinLen + 1
	rows := make([][]int32, n)
	ranking := make([]int, n)
	for i := range rows {
		v := int32(0)
		if i == n-1 {
			v = 1
		}
		rows[i] = []int32{v}
		ranking[i] = i
	}
	space := &pattern.Space{Names: []string{"A"}, Cards: []int{2}}
	ix := Build(rows, space, ranking)
	if bm := ix.Bitmap(0, 0); bm == nil {
		t.Fatalf("Bitmap(0,0) = nil, want bitmap for list of len %d", bitmapMinLen)
	} else if got := bm.AppendRanks(nil); !ranksEqual(got, ix.Postings(0, 0)) {
		t.Fatalf("Bitmap(0,0) ranks %v != postings %v", got, ix.Postings(0, 0))
	}
	if bm := ix.Bitmap(0, 1); bm != nil {
		t.Fatalf("Bitmap(0,1) = %v, want nil below the bitmapMinLen cut", bm)
	}
}
