package count

import (
	"math/rand"
	"testing"

	"rankfair/internal/pattern"
)

// randAppendCase builds a random base dataset plus an appended extension
// with a random interleaved ranking — the worst case for the copy-on-write
// derivation (insertions anywhere, every list potentially shifted).
func randAppendCase(rng *rand.Rand, n, b, attrs, card int) (base, full [][]int32, space *pattern.Space, baseRank, fullRank []int) {
	space = &pattern.Space{}
	for a := 0; a < attrs; a++ {
		space.Names = append(space.Names, string(rune('A'+a)))
		space.Cards = append(space.Cards, card)
	}
	full = make([][]int32, n+b)
	for i := range full {
		row := make([]int32, attrs)
		for a := range row {
			row[a] = int32(rng.Intn(card))
		}
		full[i] = row
	}
	base = full[:n]
	baseRank = rng.Perm(n)
	// Interleave the appended rows at random positions while preserving the
	// base ranking's relative order — the shape every incremental ranker
	// guarantees.
	fullRank = make([]int, 0, n+b)
	for _, ri := range baseRank {
		fullRank = append(fullRank, ri)
	}
	for ri := n; ri < n+b; ri++ {
		pos := rng.Intn(len(fullRank) + 1)
		fullRank = append(fullRank, 0)
		copy(fullRank[pos+1:], fullRank[pos:])
		fullRank[pos] = ri
	}
	return base, full, space, baseRank, fullRank
}

// assertIndexEqual compares two indexes structurally and behaviorally.
func assertIndexEqual(t *testing.T, got, want *Index) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: %d vs %d", got.NumRows(), want.NumRows())
	}
	for r := range want.rankOf {
		if got.rankOf[r] != want.rankOf[r] {
			t.Fatalf("rankOf[%d]: %d vs %d", r, got.rankOf[r], want.rankOf[r])
		}
	}
	for r := range want.rowAt {
		for a := range want.rowAt[r] {
			if got.rowAt[r][a] != want.rowAt[r][a] {
				t.Fatalf("rowAt[%d][%d]: %d vs %d", r, a, got.rowAt[r][a], want.rowAt[r][a])
			}
		}
	}
	for a := range want.postings {
		if len(got.postings[a]) != len(want.postings[a]) {
			t.Fatalf("attr %d: %d values vs %d", a, len(got.postings[a]), len(want.postings[a]))
		}
		for v := range want.postings[a] {
			g, w := got.postings[a][v], want.postings[a][v]
			if len(g) != len(w) {
				t.Fatalf("postings[%d][%d]: len %d vs %d", a, v, len(g), len(w))
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("postings[%d][%d][%d]: %d vs %d", a, v, i, g[i], w[i])
				}
			}
		}
	}
}

// TestExtendMatchesBuild: the derived index must be structurally identical
// to a from-scratch Build over the appended input.
func TestExtendMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(60)
		b := rng.Intn(25)
		attrs := 1 + rng.Intn(4)
		card := 1 + rng.Intn(4)
		base, full, space, baseRank, fullRank := randAppendCase(rng, n, b, attrs, card)

		old := Build(base, space, baseRank)
		got := old.Extend(full, space, fullRank)
		want := Build(full, space, fullRank)
		assertIndexEqual(t, got, want)
	}
}

// TestExtendLeavesParentIntact: copy-on-write means the parent index keeps
// answering exactly as before the extension — snapshot isolation for
// in-flight readers.
func TestExtendLeavesParentIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, b := 50, 20
	base, full, space, baseRank, fullRank := randAppendCase(rng, n, b, 3, 3)
	old := Build(base, space, baseRank)
	pristine := Build(base, space, baseRank)
	_ = old.Extend(full, space, fullRank)
	assertIndexEqual(t, old, pristine)
}

// TestExtendAliasesUntouchedLists: a batch landing entirely at the bottom
// of the ranking shifts nothing, so every posting list of a value absent
// from the batch must be shared with the parent, not copied.
func TestExtendAliasesUntouchedLists(t *testing.T) {
	space := &pattern.Space{Names: []string{"g"}, Cards: []int{3}}
	base := [][]int32{{0}, {1}, {0}, {1}}
	baseRank := []int{0, 1, 2, 3}
	old := Build(base, space, baseRank)

	full := append(append([][]int32{}, base...), []int32{2}, []int32{2})
	fullRank := []int{0, 1, 2, 3, 4, 5} // appended rows at the bottom
	got := old.Extend(full, space, fullRank)

	for v := 0; v < 2; v++ {
		o, g := old.Postings(0, int32(v)), got.Postings(0, int32(v))
		if len(o) == 0 || len(g) != len(o) || &g[0] != &o[0] {
			t.Fatalf("value %d: untouched list not aliased", v)
		}
	}
	if want := []int32{4, 5}; len(got.Postings(0, 2)) != 2 || got.Postings(0, 2)[0] != want[0] || got.Postings(0, 2)[1] != want[1] {
		t.Fatalf("new value postings = %v, want %v", got.Postings(0, 2), want)
	}
}

// TestExtendGrownCardinality: the derived index accepts a space whose
// cardinalities grew (the rebuild-free path never feeds it one, but the
// structure must not assume old shapes).
func TestExtendGrownCardinality(t *testing.T) {
	oldSpace := &pattern.Space{Names: []string{"g"}, Cards: []int{2}}
	base := [][]int32{{0}, {1}}
	old := Build(base, oldSpace, []int{1, 0})

	newSpace := &pattern.Space{Names: []string{"g"}, Cards: []int{3}}
	full := [][]int32{{0}, {1}, {2}}
	fullRank := []int{2, 1, 0}
	got := old.Extend(full, newSpace, fullRank)
	want := Build(full, newSpace, fullRank)
	assertIndexEqual(t, got, want)
}

// TestExtendEmptyBatch: a zero-row batch with an unchanged ranking aliases
// everything.
func TestExtendEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, _, space, baseRank, _ := randAppendCase(rng, 30, 0, 2, 3)
	old := Build(base, space, baseRank)
	got := old.Extend(base, space, baseRank)
	assertIndexEqual(t, got, old)
	for a := range old.postings {
		for v := range old.postings[a] {
			o, g := old.postings[a][v], got.postings[a][v]
			if len(o) > 0 && &o[0] != &g[0] {
				t.Fatalf("empty batch copied postings[%d][%d]", a, v)
			}
		}
	}
}
