package count

import (
	"math/bits"

	"rankfair/internal/pattern"
)

// Roaring-style bitmaps over rank positions. A posting list is an ascending
// []int32 of ranks; a Bitmap stores the same set chunked into containers of
// 65536 consecutive ranks, each container represented either as a sorted
// array of low 16-bit offsets (sparse) or as a 1024-word bitmap (dense),
// chosen per container by cardinality. Word-wise AND + popcount turns the
// branchy merge walk of a posting-list intersection into straight-line
// arithmetic for dense values, and a per-container cumulative-cardinality
// prefix keeps rank-range counts (s_{R_k}) logarithmic without
// materializing the intersection.
const (
	containerSpan  = 1 << 16
	containerWords = containerSpan / 64
	// arrayMaxCard is the per-container representation cut: at most this
	// many ranks and the sorted uint16 array (<= 8 KiB) beats the fixed
	// 8 KiB word bitmap on both footprint and scan cost; above it the word
	// form wins on AND/popcount throughput.
	arrayMaxCard = 4096
	// bitmapMinLen is the per-(attr,value) cost-model cut used by Build:
	// posting lists shorter than this stay slice-only (a bitmap over a
	// handful of ranks buys nothing and costs container headers). Kept low
	// so small differential-test datasets still exercise the bitmap paths.
	bitmapMinLen = 16
)

// Bitmap is an immutable compressed bitmap over rank positions. Containers
// are stored in parallel slices: keys[i] is the container number
// (rank >> 16), exactly one of arrs[i] / words[i] is non-nil, and
// cum[i] is the total cardinality of containers before i (len(cum) ==
// len(keys)+1), which makes CountBelow a binary search plus one partial
// container scan.
type Bitmap struct {
	keys  []uint32
	cum   []int32
	arrs  [][]uint16
	words [][]uint64
}

// BitmapFromRanks builds a Bitmap from an ascending, duplicate-free rank
// list. The input is not retained.
func BitmapFromRanks(ranks []int32) *Bitmap {
	bm := &Bitmap{cum: []int32{0}}
	for i := 0; i < len(ranks); {
		key := uint32(ranks[i]) >> 16
		j := i + 1
		for j < len(ranks) && uint32(ranks[j])>>16 == key {
			j++
		}
		chunk := ranks[i:j]
		bm.keys = append(bm.keys, key)
		bm.cum = append(bm.cum, bm.cum[len(bm.cum)-1]+int32(len(chunk)))
		if len(chunk) <= arrayMaxCard {
			arr := make([]uint16, len(chunk))
			for n, r := range chunk {
				arr[n] = uint16(r)
			}
			bm.arrs = append(bm.arrs, arr)
			bm.words = append(bm.words, nil)
		} else {
			w := make([]uint64, containerWords)
			for _, r := range chunk {
				lo := uint32(r) & (containerSpan - 1)
				w[lo>>6] |= 1 << (lo & 63)
			}
			bm.arrs = append(bm.arrs, nil)
			bm.words = append(bm.words, w)
		}
		i = j
	}
	return bm
}

// Cardinality returns the number of ranks in the bitmap.
func (bm *Bitmap) Cardinality() int { return int(bm.cum[len(bm.cum)-1]) }

// SizeBytes estimates the heap footprint of the bitmap's owned storage.
func (bm *Bitmap) SizeBytes() int64 {
	const sliceHeader = 24
	size := int64(len(bm.keys))*4 + int64(len(bm.cum))*4 + int64(len(bm.arrs)+len(bm.words))*sliceHeader
	for i := range bm.keys {
		size += int64(len(bm.arrs[i]))*2 + int64(len(bm.words[i]))*8
	}
	return size
}

// searchKey returns the index of the first container with key >= want.
func (bm *Bitmap) searchKey(want uint32) int {
	lo, hi := 0, len(bm.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bm.keys[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountBelow returns the number of ranks strictly below k: the
// cumulative-cardinality prefix plus one partial container, so s_{R_k}
// stays O(log containers + log card) without materializing anything.
func (bm *Bitmap) CountBelow(k int) int {
	if k <= 0 {
		return 0
	}
	key := uint32(k) >> 16
	i := bm.searchKey(key)
	n := int(bm.cum[i])
	if i == len(bm.keys) || bm.keys[i] != key {
		return n
	}
	low := uint32(k) & (containerSpan - 1)
	if low == 0 {
		return n
	}
	if arr := bm.arrs[i]; arr != nil {
		return n + upperBound16(arr, uint16(low-1))
	}
	w := bm.words[i]
	full := int(low >> 6)
	for _, word := range w[:full] {
		n += bits.OnesCount64(word)
	}
	if rem := low & 63; rem != 0 {
		n += bits.OnesCount64(w[full] & (1<<rem - 1))
	}
	return n
}

// upperBound16 returns the number of entries of the sorted array at most
// hi (i.e. the count of entries <= hi).
func upperBound16(arr []uint16, hi uint16) int {
	lo, up := 0, len(arr)
	for lo < up {
		mid := int(uint(lo+up) >> 1)
		if arr[mid] <= hi {
			lo = mid + 1
		} else {
			up = mid
		}
	}
	return lo
}

// AndCardinality returns |bm ∩ o| without materializing the intersection:
// containers align by key and each pair resolves to a word-wise
// AND+popcount, a probe loop, or a merge count.
func (bm *Bitmap) AndCardinality(o *Bitmap) int {
	n, i, j := 0, 0, 0
	for i < len(bm.keys) && j < len(o.keys) {
		switch {
		case bm.keys[i] < o.keys[j]:
			i++
		case bm.keys[i] > o.keys[j]:
			j++
		default:
			n += andContainerCard(bm.arrs[i], bm.words[i], o.arrs[j], o.words[j], containerSpan)
			i++
			j++
		}
	}
	return n
}

// AndCardinalityBelow returns |bm ∩ o ∩ [0, k)| — the count-only top-k
// intersection pass. Containers wholly below k count in full; the boundary
// container counts through a masked tail.
func (bm *Bitmap) AndCardinalityBelow(o *Bitmap, k int) int {
	if k <= 0 {
		return 0
	}
	key := uint32(k) >> 16
	low := int(uint32(k) & (containerSpan - 1))
	n, i, j := 0, 0, 0
	for i < len(bm.keys) && j < len(o.keys) && bm.keys[i] <= key && o.keys[j] <= key {
		switch {
		case bm.keys[i] < o.keys[j]:
			i++
		case bm.keys[i] > o.keys[j]:
			j++
		default:
			limit := containerSpan
			if bm.keys[i] == key {
				limit = low
			}
			n += andContainerCard(bm.arrs[i], bm.words[i], o.arrs[j], o.words[j], limit)
			i++
			j++
		}
	}
	return n
}

// andContainerCard counts the intersection of two containers restricted to
// offsets strictly below limit (containerSpan = unrestricted).
func andContainerCard(aArr []uint16, aW []uint64, bArr []uint16, bW []uint64, limit int) int {
	if limit <= 0 {
		return 0
	}
	switch {
	case aW != nil && bW != nil:
		full := limit >> 6
		n := 0
		for w, word := range aW[:full] {
			n += bits.OnesCount64(word & bW[w])
		}
		if rem := limit & 63; rem != 0 {
			n += bits.OnesCount64(aW[full] & bW[full] & (1<<rem - 1))
		}
		return n
	case aArr != nil && bArr != nil:
		n, i, j := 0, 0, 0
		for i < len(aArr) && j < len(bArr) {
			x, y := aArr[i], bArr[j]
			if int(x) >= limit || int(y) >= limit {
				break
			}
			switch {
			case x < y:
				i++
			case x > y:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	default:
		// One array, one word bitmap: probe each array entry.
		arr, w := aArr, bW
		if arr == nil {
			arr, w = bArr, aW
		}
		n := 0
		for _, lo := range arr {
			if int(lo) >= limit {
				break
			}
			if w[lo>>6]&(1<<(lo&63)) != 0 {
				n++
			}
		}
		return n
	}
}

// And returns the intersection as a fresh Bitmap. Array×array and
// array×word containers produce array containers; word×word containers
// keep the word form regardless of the result cardinality (intersection
// results are transient — re-running the build cost model on them would
// cost more than the representation saves).
func (bm *Bitmap) And(o *Bitmap) *Bitmap {
	out := &Bitmap{cum: []int32{0}}
	i, j := 0, 0
	for i < len(bm.keys) && j < len(o.keys) {
		switch {
		case bm.keys[i] < o.keys[j]:
			i++
		case bm.keys[i] > o.keys[j]:
			j++
		default:
			arr, w := andContainer(bm.arrs[i], bm.words[i], o.arrs[j], o.words[j])
			card := len(arr)
			if w != nil {
				card = 0
				for _, word := range w {
					card += bits.OnesCount64(word)
				}
			}
			if card > 0 {
				out.keys = append(out.keys, bm.keys[i])
				out.cum = append(out.cum, out.cum[len(out.cum)-1]+int32(card))
				out.arrs = append(out.arrs, arr)
				out.words = append(out.words, w)
			}
			i++
			j++
		}
	}
	return out
}

// andContainer materializes the intersection of two containers; exactly
// one of the returned slices is non-nil unless the result is empty.
func andContainer(aArr []uint16, aW []uint64, bArr []uint16, bW []uint64) ([]uint16, []uint64) {
	switch {
	case aW != nil && bW != nil:
		out := make([]uint64, containerWords)
		for w, word := range aW {
			out[w] = word & bW[w]
		}
		return nil, out
	case aArr != nil && bArr != nil:
		short := len(aArr)
		if len(bArr) < short {
			short = len(bArr)
		}
		out := make([]uint16, 0, short)
		i, j := 0, 0
		for i < len(aArr) && j < len(bArr) {
			switch {
			case aArr[i] < bArr[j]:
				i++
			case aArr[i] > bArr[j]:
				j++
			default:
				out = append(out, aArr[i])
				i++
				j++
			}
		}
		if len(out) == 0 {
			return nil, nil
		}
		return out, nil
	default:
		arr, w := aArr, bW
		if arr == nil {
			arr, w = bArr, aW
		}
		out := make([]uint16, 0, len(arr))
		for _, lo := range arr {
			if w[lo>>6]&(1<<(lo&63)) != 0 {
				out = append(out, lo)
			}
		}
		if len(out) == 0 {
			return nil, nil
		}
		return out, nil
	}
}

// AppendRanks appends the bitmap's ranks to dst in ascending order and
// returns the extended slice — the materialization bridge back into the
// posting-list world (dst typically comes from a scratch arena sized by
// Cardinality, so no growth happens).
func (bm *Bitmap) AppendRanks(dst []int32) []int32 {
	for i, key := range bm.keys {
		base := int32(key) << 16
		if arr := bm.arrs[i]; arr != nil {
			for _, lo := range arr {
				dst = append(dst, base|int32(lo))
			}
			continue
		}
		for w, word := range bm.words[i] {
			wordBase := base + int32(w<<6)
			for word != 0 {
				dst = append(dst, wordBase+int32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	return dst
}

// bitmapProbeMin is the cost-model cut for the count-only query paths
// (Count/CountTopK): the probe-and-verify walk touches O(shortest·attrs)
// entries, so it stays the winner until the probed prefix is a few
// thousand entries long; past that the word-wise AND+popcount pass wins.
const bitmapProbeMin = 4096

// patternBitmaps collects the bitmaps of every bound (attr, value) of p,
// reporting ok=false when any bound value sits below the bitmap cut (the
// caller falls back to the slice walk). Bound values are in-domain here —
// shortestBound has already rejected out-of-domain patterns.
func (ix *Index) patternBitmaps(p pattern.Pattern) ([]*Bitmap, bool) {
	bms := make([]*Bitmap, 0, 8)
	for a, v := range p {
		if v == pattern.Unbound {
			continue
		}
		bm := ix.bitmaps[a][v]
		if bm == nil {
			return nil, false
		}
		bms = append(bms, bm)
	}
	return bms, true
}

// andCardinalityAll counts the intersection of two or more bitmaps,
// restricted to ranks below k when k >= 0. The chain runs
// smallest-cardinality first and the final pair resolves count-only, so
// only len(bms)-2 intermediate bitmaps materialize.
func andCardinalityAll(bms []*Bitmap, k int) int {
	for i := 1; i < len(bms); i++ {
		for j := i; j > 0 && bms[j].Cardinality() < bms[j-1].Cardinality(); j-- {
			bms[j], bms[j-1] = bms[j-1], bms[j]
		}
	}
	acc := bms[0]
	for _, bm := range bms[1 : len(bms)-1] {
		if acc.Cardinality() == 0 {
			return 0
		}
		acc = acc.And(bm)
	}
	last := bms[len(bms)-1]
	if k < 0 {
		return acc.AndCardinality(last)
	}
	return acc.AndCardinalityBelow(last, k)
}

// buildBitmaps constructs the per-(attr,value) bitmaps for every posting
// list at or above the bitmapMinLen cost-model cut.
func buildBitmaps(postings [][][]int32) [][]*Bitmap {
	out := make([][]*Bitmap, len(postings))
	for a, lists := range postings {
		out[a] = make([]*Bitmap, len(lists))
		for v, l := range lists {
			if len(l) >= bitmapMinLen {
				out[a][v] = BitmapFromRanks(l)
			}
		}
	}
	return out
}
