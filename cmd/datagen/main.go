// Command datagen emits the synthetic evaluation datasets as CSV, so the
// other tools (and external consumers) can run against files.
//
// Usage:
//
//	datagen -dataset compas -rows 6889 -seed 1 -o compas.csv
//	datagen -dataset running            # the paper's Figure 1 example
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rankfair/internal/dataset"
	"rankfair/internal/synth"
)

func main() {
	var (
		name = flag.String("dataset", "student", "dataset: running|worstcase|student|compas|german")
		rows = flag.Int("rows", 0, "row count (0 = paper default); attribute count for worstcase")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	if err := run(*name, *rows, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, rows int, seed int64, out string) error {
	var b *synth.Bundle
	switch name {
	case "running":
		b = synth.RunningExample()
	case "worstcase":
		if rows <= 0 {
			rows = 10
		}
		b = synth.WorstCase(rows)
	case "student":
		if rows <= 0 {
			rows = synth.DefaultStudentRows
		}
		b = synth.Students(rows, seed)
	case "compas":
		if rows <= 0 {
			rows = synth.DefaultCOMPASRows
		}
		b = synth.COMPAS(rows, seed)
	case "german":
		if rows <= 0 {
			rows = synth.DefaultGermanRows
		}
		b = synth.GermanCredit(rows, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want running|worstcase|student|compas|german)", name)
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, b.Table)
}
