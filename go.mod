module rankfair

go 1.24
