package main

import (
	"testing"

	"rankfair/internal/exp"
	"rankfair/internal/synth"
)

func tinyBundles() []*synth.Bundle {
	return []*synth.Bundle{
		synth.COMPAS(80, 1),
		synth.Students(80, 2),
		synth.GermanCredit(80, 3),
	}
}

func tinyConfig() exp.Config {
	cfg := exp.Defaults()
	cfg.Tau = 10
	cfg.KMin, cfg.KMax = 5, 12
	cfg.LowerBase, cfg.LowerStep, cfg.LowerWidth = 2, 1, 4
	cfg.Timeout = 0
	return cfg
}

func TestRunFigures(t *testing.T) {
	cfg := tinyConfig()
	bundles := tinyBundles()
	for _, fig := range []string{"4", "6", "nodes", "resultsize"} {
		if err := run(cfg, bundles, fig, 4, "text"); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
	if err := run(cfg, bundles, "4", 4, "csv"); err != nil {
		t.Errorf("csv format: %v", err)
	}
	if err := run(cfg, bundles, "4", 4, "yaml"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestKRangeFor(t *testing.T) {
	compas := synth.COMPAS(1200, 1)
	ends := kRangeFor(compas)
	if len(ends) == 0 || ends[0] != 50 {
		t.Fatalf("ends = %v", ends)
	}
	for _, k := range ends {
		if k > compas.Table.NumRows() {
			t.Errorf("kmax %d beyond dataset size", k)
		}
	}
	small := synth.Students(70, 1)
	for _, k := range kRangeFor(small) {
		if k > 70 {
			t.Errorf("kmax %d beyond dataset size", k)
		}
	}
}
