package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"rankfair/internal/pattern"
)

// budgetCtx reports cancellation once its Err method has been polled more
// than limit times. It makes cancellation latency deterministic: tests pin
// down exactly how many node expansions a search may perform after the
// cancellation becomes observable, with no reliance on wall-clock timing.
type budgetCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func newBudgetCtx(limit int64) *budgetCtx {
	return &budgetCtx{Context: context.Background(), limit: limit}
}

func (c *budgetCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// denseCancelInput builds an input whose lattice is large enough that a
// full traversal examines orders of magnitude more nodes than the
// cancellation-latency bound.
func denseCancelInput(nAttrs, nRows int) *Input {
	rng := rand.New(rand.NewSource(42))
	cards := make([]int, nAttrs)
	names := make([]string, nAttrs)
	for i := range cards {
		cards[i] = 2
		names[i] = string(rune('A' + i))
	}
	rows := make([][]int32, nRows)
	for i := range rows {
		r := make([]int32, nAttrs)
		for j := range r {
			r[j] = int32(rng.Intn(2))
		}
		rows[i] = r
	}
	return &Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: rng.Perm(nRows)}
}

// cancelEntryPoints drives every context-aware detection entry point with
// uniform parameters over a given input.
func cancelEntryPoints(in *Input, kMin, kMax int) map[string]func(ctx context.Context, workers int) (*Result, error) {
	lower := ConstantBounds(kMin, kMax, 1)
	upper := ConstantBounds(kMin, kMax, 1)
	gp := GlobalParams{MinSize: 1, KMin: kMin, KMax: kMax, Lower: lower}
	pp := PropParams{MinSize: 1, KMin: kMin, KMax: kMax, Alpha: 0.8}
	ep := ExposureParams{MinSize: 1, KMin: kMin, KMax: kMax, Alpha: 0.8}
	gup := GlobalUpperParams{MinSize: 1, KMin: kMin, KMax: kMax, Upper: upper}
	pup := PropUpperParams{MinSize: 1, KMin: kMin, KMax: kMax, Beta: 1.2}
	return map[string]func(ctx context.Context, workers int) (*Result, error){
		"GlobalBounds": func(ctx context.Context, w int) (*Result, error) { return GlobalBoundsCtx(ctx, in, gp, w) },
		"IterTDGlobal": func(ctx context.Context, w int) (*Result, error) { return IterTDGlobalCtx(ctx, in, gp, w) },
		"PropBounds":   func(ctx context.Context, w int) (*Result, error) { return PropBoundsCtx(ctx, in, pp, w) },
		"IterTDProp":   func(ctx context.Context, w int) (*Result, error) { return IterTDPropCtx(ctx, in, pp, w) },
		"ExposureBounds": func(ctx context.Context, w int) (*Result, error) {
			return ExposureBoundsCtx(ctx, in, ep, w)
		},
		"IterTDExposure": func(ctx context.Context, w int) (*Result, error) {
			return IterTDExposureCtx(ctx, in, ep, w)
		},
		"GlobalUpperBounds": func(ctx context.Context, w int) (*Result, error) {
			return GlobalUpperBoundsCtx(ctx, in, gup, w)
		},
		"IterTDGlobalUpper": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalUpperCtx(ctx, in, gup, w)
		},
		"IterTDPropUpper": func(ctx context.Context, w int) (*Result, error) {
			return IterTDPropUpperCtx(ctx, in, pup, w)
		},
		"IterTDGlobalUpperMostGeneral": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalUpperMostGeneralCtx(ctx, in, gup, w)
		},
		"IterTDGlobalLowerMostSpecific": func(ctx context.Context, w int) (*Result, error) {
			return IterTDGlobalLowerMostSpecificCtx(ctx, in, gp, w)
		},
	}
}

// TestPreCanceledContextRejectedUpfront: an already-canceled context must
// fail every entry point before any lattice work happens.
func TestPreCanceledContextRejectedUpfront(t *testing.T) {
	in := denseCancelInput(4, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range cancelEntryPoints(in, 2, 6) {
		res, err := run(ctx, 2)
		if res != nil {
			t.Errorf("%s: returned a result despite canceled context", name)
		}
		var cerr *CanceledError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: want CanceledError, got %v", name, err)
			continue
		}
		if cerr.NodesExamined != 0 {
			t.Errorf("%s: examined %d nodes before the preflight check", name, cerr.NodesExamined)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error does not unwrap to context.Canceled", name)
		}
	}
}

// TestCancellationBoundedLatency proves the tentpole claim: once the
// context reports canceled, a search stops within a bounded number of node
// expansions. Every canceler polls the context at most once per
// cancelStride expansions, so the total work after the poll budget is
// exhausted is bounded by (budget + live cancelers) * cancelStride; the
// test gives each run a tiny poll budget and asserts the examined-node
// count stays far below the full traversal.
func TestCancellationBoundedLatency(t *testing.T) {
	in := denseCancelInput(12, 400)
	full, err := GlobalBoundsCtx(context.Background(), in,
		GlobalParams{MinSize: 1, KMin: 20, KMax: 20, Lower: []int{1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One canceler exists per root unit (24 here) plus one per step walk;
	// with a poll budget of 3 the bound is well under 64 strides.
	const bound = 64 * cancelStride
	if full.Stats.NodesExamined <= 4*bound {
		t.Fatalf("workload too small to prove early exit: full run examined %d nodes", full.Stats.NodesExamined)
	}
	for name, run := range cancelEntryPoints(in, 20, 20) {
		for _, workers := range []int{1, 4} {
			res, err := run(newBudgetCtx(3), workers)
			if res != nil {
				t.Errorf("%s workers=%d: returned a result despite cancellation", name, workers)
			}
			var cerr *CanceledError
			if !errors.As(err, &cerr) {
				t.Errorf("%s workers=%d: want CanceledError, got %v", name, workers, err)
				continue
			}
			if cerr.NodesExamined > bound {
				t.Errorf("%s workers=%d: examined %d nodes after cancellation, bound %d",
					name, workers, cerr.NodesExamined, bound)
			}
		}
	}
}

// TestCancelMidRunReturnsPromptly exercises the real context machinery: a
// search over a large lattice is canceled shortly after it starts and must
// return a CanceledError long before the full traversal would finish.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	in := denseCancelInput(14, 600)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := GlobalBoundsCtx(ctx, in, GlobalParams{MinSize: 1, KMin: 30, KMax: 30, Lower: []int{1}}, 2)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Skip("search finished before the cancellation landed; nothing to assert")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled search did not return within 30s")
	}
}
