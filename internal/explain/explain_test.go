package explain

import (
	"strings"
	"testing"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
	"rankfair/internal/synth"
)

// studentCase builds a small Student dataset with the {Medu=primary}
// pattern of the paper's Figure 10a case study.
func studentCase(t *testing.T) (*core.Input, [][]string, pattern.Pattern) {
	t.Helper()
	b := synth.Students(250, 17)
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	dicts := b.Table.CatDicts()
	meduIdx := -1
	for i, n := range in.Space.Names {
		if n == "Medu" {
			meduIdx = i
			break
		}
	}
	if meduIdx < 0 {
		t.Fatal("no Medu attribute")
	}
	code := int32(-1)
	for c, label := range dicts[meduIdx] {
		if label == "primary" {
			code = int32(c)
			break
		}
	}
	if code < 0 {
		t.Fatal("no primary label in Medu dictionary")
	}
	p := pattern.Empty(in.Space.NumAttrs())
	p[meduIdx] = code
	return in, dicts, p
}

// TestExplainRecoversRankingAttribute is the Section VI-C headline: the
// surrogate's Shapley analysis must identify the final grade (the only
// attribute the Student ranker uses) as the most influential one.
func TestExplainRecoversRankingAttribute(t *testing.T) {
	in, dicts, p := studentCase(t)
	expl, err := Explain(in, dicts, p, 40, Options{Seed: 1, Permutations: 16, BackgroundSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	top := expl.Shapley[0].Name
	if top != "G3" && top != "G2" && top != "G1" {
		t.Errorf("top Shapley attribute = %q, want a grade attribute", top)
	}
	foundG3 := false
	for _, s := range expl.Shapley {
		if s.Name == "G3" {
			foundG3 = true
		}
	}
	if !foundG3 {
		t.Errorf("G3 missing from top attributes: %v", expl.Shapley)
	}
	if expl.GroupSize < 1 {
		t.Error("group size must be positive")
	}
	if len(expl.Shapley) != 6 {
		t.Errorf("default TopAttrs should be 6, got %d", len(expl.Shapley))
	}
	if len(expl.AllShapley) != in.Space.NumAttrs() {
		t.Errorf("AllShapley has %d entries", len(expl.AllShapley))
	}
}

// TestExplainDistributionsDiffer: the detected group's distribution of the
// top attribute must differ visibly from the top-k's (Figure 10d).
func TestExplainDistributionsDiffer(t *testing.T) {
	in, dicts, p := studentCase(t)
	expl, err := Explain(in, dicts, p, 40, Options{Seed: 1, Permutations: 16, BackgroundSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if expl.Comparison == nil {
		t.Fatal("missing comparison")
	}
	if tv := expl.Comparison.TotalVariation(); tv < 0.05 {
		t.Errorf("top-k vs group distributions too similar (TV=%v)", tv)
	}
	if out := expl.Comparison.Render(); !strings.Contains(out, expl.Shapley[0].Name) {
		t.Error("render should mention the attribute")
	}
}

func TestExplainDeterministicPerSeed(t *testing.T) {
	in, dicts, p := studentCase(t)
	a, err := Explain(in, dicts, p, 30, Options{Seed: 9, Permutations: 8, BackgroundSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explain(in, dicts, p, 30, Options{Seed: 9, Permutations: 8, BackgroundSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.AllShapley {
		if a.AllShapley[i] != b.AllShapley[i] {
			t.Fatalf("explanations differ at %d: %+v vs %+v", i, a.AllShapley[i], b.AllShapley[i])
		}
	}
}

func TestExplainTreeModel(t *testing.T) {
	in, dicts, p := studentCase(t)
	expl, err := Explain(in, dicts, p, 30, Options{
		Model: TreeModel, Seed: 3, Permutations: 8, BackgroundSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Shapley) == 0 {
		t.Fatal("no Shapley values")
	}
}

func TestExplainErrors(t *testing.T) {
	in, dicts, p := studentCase(t)
	if _, err := Explain(in, dicts, p, 0, Options{Seed: 1}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Explain(in, dicts, p, len(in.Rows)+1, Options{Seed: 1}); err == nil {
		t.Error("k beyond dataset should fail")
	}
	if _, err := Explain(in, dicts, pattern.Empty(2), 10, Options{Seed: 1}); err == nil {
		t.Error("wrong pattern width should fail")
	}
	bad := Options{Model: ModelKind(99)}
	if _, _, err := FitSurrogate(in, bad); err == nil {
		t.Error("unknown model kind should fail")
	}
	// A pattern matching no tuples.
	small, err := synth.RunningExample().Input()
	if err != nil {
		t.Fatal(err)
	}
	never := pattern.Pattern{0, 0, 0, 2} // F, GP, R, failures=2: no such tuple
	if never.Count(small.Rows) != 0 {
		t.Fatal("fixture assumption broken")
	}
	if _, err := Explain(small, nil, never, 5, Options{Seed: 1, Permutations: 4, BackgroundSize: 8}); err == nil {
		t.Error("empty group should fail")
	}
}

func TestCompareDistributions(t *testing.T) {
	in, err := synth.RunningExample().Input()
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.Pattern{pattern.Unbound, 0, pattern.Unbound, pattern.Unbound} // {School=GP}
	c := CompareDistributions(in, nil, p, 5, 1)
	if c.Attribute != "School" {
		t.Errorf("attribute = %q", c.Attribute)
	}
	if c.TopK.N != 5 || c.Group.N != 8 {
		t.Errorf("sizes: topk=%d group=%d", c.TopK.N, c.Group.N)
	}
	// All 8 group members are GP (code 0).
	if c.Group.Props[0] != 1 {
		t.Errorf("group GP proportion = %v", c.Group.Props[0])
	}
	// Top-5 has exactly one GP student (Example 2.3).
	if c.TopK.Props[0] != 0.2 {
		t.Errorf("top-k GP proportion = %v", c.TopK.Props[0])
	}
}

func TestExplainFidelityReported(t *testing.T) {
	in, dicts, p := studentCase(t)
	expl, err := Explain(in, dicts, p, 30, Options{Seed: 5, Permutations: 8, BackgroundSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// The Student ranker sorts by G3, which the surrogate sees only in
	// 4-value buckets; fidelity should still be strongly positive.
	if expl.Fidelity.R2 < 0.5 {
		t.Errorf("surrogate R² = %v, want >= 0.5", expl.Fidelity.R2)
	}
	if expl.Fidelity.Spearman < 0.6 {
		t.Errorf("surrogate Spearman = %v, want >= 0.6", expl.Fidelity.Spearman)
	}
}

func TestExplainExactOption(t *testing.T) {
	// The running example has 4 attributes — well within the exact limit.
	in, err := synth.RunningExample().Input()
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.Pattern{pattern.Unbound, 0, pattern.Unbound, pattern.Unbound} // {School=GP}
	exact, err := Explain(in, nil, p, 5, Options{Exact: true, Seed: 1, BackgroundSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Exact explanations are deterministic given the seed (background
	// sampling is the only random step).
	again, err := Explain(in, nil, p, 5, Options{Exact: true, Seed: 1, BackgroundSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.AllShapley {
		if exact.AllShapley[i] != again.AllShapley[i] {
			t.Fatalf("exact explanation not deterministic at %d", i)
		}
	}
	// Sampled with a large budget should approach the exact values.
	sampled, err := Explain(in, nil, p, 5, Options{Seed: 1, Permutations: 3000, BackgroundSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	exactByAttr := map[int]float64{}
	for _, s := range exact.AllShapley {
		exactByAttr[s.Attr] = s.Value
	}
	for _, s := range sampled.AllShapley {
		if d := s.Value - exactByAttr[s.Attr]; d > 0.4 || d < -0.4 {
			t.Errorf("attr %d: sampled %v vs exact %v", s.Attr, s.Value, exactByAttr[s.Attr])
		}
	}
	// Exact on a wide dataset must fail cleanly.
	wide, _, pw := studentCase(t)
	if _, err := Explain(wide, nil, pw, 20, Options{Exact: true, BackgroundSize: 4}); err == nil {
		t.Error("exact on 33 attributes should fail")
	}
}
