package rank

import (
	"fmt"
	"sort"
)

// FairTopK implements the constrained top-k selection of Celis, Straszak &
// Vishnoi (the paper's fairness definition [10]) for the common case of a
// single protected attribute partitioning the items: select k items
// maximizing total score subject to a lower and an upper bound on every
// group's count. Detection (this library's core) finds the groups whose
// bounds a ranking violates; FairTopK is the companion repair for the
// partition case.
//
// For partition constraints the greedy is exactly optimal: first take each
// group's top lower[g] members, then fill the remaining slots with the best
// remaining items whose groups are below their caps.

// FairTopKConstraint bounds one group's count in the selection.
type FairTopKConstraint struct {
	// Lower is the minimum number of selected members (0 = none).
	Lower int
	// Upper is the maximum number of selected members; <= 0 means k (no
	// cap).
	Upper int
}

// FairTopK returns the indices of the selected items ordered by descending
// score. groupOf[i] is item i's group id in [0, len(constraints)).
func FairTopK(scores []float64, groupOf []int, k int, constraints []FairTopKConstraint) ([]int, error) {
	n := len(scores)
	if len(groupOf) != n {
		return nil, fmt.Errorf("rank: %d group ids for %d scores", len(groupOf), n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("rank: k=%d outside [1,%d]", k, n)
	}
	g := len(constraints)
	sizes := make([]int, g)
	for i, gi := range groupOf {
		if gi < 0 || gi >= g {
			return nil, fmt.Errorf("rank: item %d has group %d outside [0,%d)", i, gi, g)
		}
		sizes[gi]++
	}
	lowerSum := 0
	for gi, c := range constraints {
		upper := c.Upper
		if upper <= 0 {
			upper = k
		}
		if c.Lower < 0 || c.Lower > upper {
			return nil, fmt.Errorf("rank: group %d bounds [%d,%d] invalid", gi, c.Lower, upper)
		}
		if c.Lower > sizes[gi] {
			return nil, fmt.Errorf("rank: group %d lower bound %d exceeds its size %d", gi, c.Lower, sizes[gi])
		}
		lowerSum += c.Lower
	}
	if lowerSum > k {
		return nil, fmt.Errorf("rank: lower bounds sum to %d > k=%d", lowerSum, k)
	}
	upperCap := 0
	for gi, c := range constraints {
		upper := c.Upper
		if upper <= 0 {
			upper = k
		}
		if upper > sizes[gi] {
			upper = sizes[gi]
		}
		upperCap += upper
	}
	if upperCap < k {
		return nil, fmt.Errorf("rank: upper bounds admit only %d items for k=%d", upperCap, k)
	}

	// Per-group members, best first.
	members := make([][]int, g)
	for _, i := range ByScoresDesc(scores) {
		members[groupOf[i]] = append(members[groupOf[i]], i)
	}
	taken := make([]int, g)
	inSelection := make(map[int]bool, k)
	var selected []int
	pick := func(i int) {
		selected = append(selected, i)
		inSelection[i] = true
		taken[groupOf[i]]++
	}
	// Phase 1: satisfy lower bounds with each group's best members.
	for gi, c := range constraints {
		for j := 0; j < c.Lower; j++ {
			pick(members[gi][j])
		}
	}
	// Phase 2: fill with the globally best remaining items under caps.
	for _, i := range ByScoresDesc(scores) {
		if len(selected) == k {
			break
		}
		if inSelection[i] {
			continue
		}
		gi := groupOf[i]
		upper := constraints[gi].Upper
		if upper <= 0 {
			upper = k
		}
		if taken[gi] >= upper {
			continue
		}
		pick(i)
	}
	sort.SliceStable(selected, func(a, b int) bool {
		if scores[selected[a]] != scores[selected[b]] {
			return scores[selected[a]] > scores[selected[b]]
		}
		return selected[a] < selected[b]
	})
	return selected, nil
}
