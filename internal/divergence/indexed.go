package divergence

import (
	"rankfair/internal/core"
	"rankfair/internal/count"
	"rankfair/internal/pattern"
)

// FindIndexed is Find accelerated by the shared counting index: the
// frequent-subgroup search runs in rank space, where root match lists come
// straight from posting lists (no initial dataset scan per attribute
// value) and a subgroup's top-k hit count is a binary search on its
// rank-sorted match list instead of a membership scan. The report is
// identical to Find's — same groups, sizes, outcomes, divergences and
// order — which TestFindIndexedMatchesNaive asserts.
func FindIndexed(in *core.Input, ix *count.Index, params Params) (*Result, error) {
	minSize, oD, err := checkParams(in, params)
	if err != nil {
		return nil, err
	}
	n := len(in.Rows)

	var groups []Group
	type entry struct {
		p pattern.Pattern
		// match holds the subgroup's rank positions, ascending. Entries
		// seeded from posting lists alias the index and are read-only.
		match []int32
	}
	nAttrs := in.Space.NumAttrs()
	queue := make([]entry, 0, 64)
	// Root children come straight from the posting lists: the index already
	// partitioned the dataset by (attribute, value) in rank order.
	for a := 0; a < nAttrs; a++ {
		for v := 0; v < in.Space.Cards[a]; v++ {
			if list := ix.Postings(a, int32(v)); len(list) >= minSize {
				queue = append(queue, entry{p: pattern.Empty(nAttrs).With(a, int32(v)), match: list})
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		queue[head] = entry{}
		hits := count.PrefixCount(e.match, params.K)
		groups = append(groups, newGroup(e.p, len(e.match), hits, n, params.K, oD))
		// Generate frequent children along the search tree by filtering the
		// parent's match list (rank order is preserved).
		for a := e.p.MaxAttrIdx() + 1; a < nAttrs; a++ {
			for v := 0; v < in.Space.Cards[a]; v++ {
				var match []int32
				for _, rk := range e.match {
					if in.Rows[in.Ranking[rk]][a] == int32(v) {
						match = append(match, rk)
					}
				}
				if len(match) >= minSize {
					queue = append(queue, entry{p: e.p.With(a, int32(v)), match: match})
				}
			}
		}
	}
	sortGroups(groups)
	return &Result{Groups: groups, DatasetOutcome: oD}, nil
}
