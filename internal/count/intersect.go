package count

import (
	"sort"

	"rankfair/internal/pattern"
)

// This file holds the posting-list intersection primitives behind the
// rank-space lattice search (internal/core StrategyIndex): a pattern's
// match set is the intersection of its bound attributes' posting lists,
// all ascending rank lists, so set algebra over sorted int32 slices is the
// entire per-node workload of that engine.

// gallopRatio is the length ratio between the two input lists beyond which
// IntersectInto abandons the linear merge for galloping search: probing the
// long list per element of the short one costs O(short·log(long/short)),
// which beats the O(short+long) merge only when the lists are lopsided.
const gallopRatio = 8

// Intersect returns the values common to a and b, two ascending rank
// lists, as a freshly allocated slice.
func Intersect(a, b []int32) []int32 {
	return IntersectInto(make([]int32, 0, min(len(a), len(b))), a, b)
}

// IntersectInto appends the values common to a and b — both ascending —
// onto dst and returns the extended slice. dst must not overlap a or b.
// The adaptive algorithm linearly merges lists of comparable length and
// gallops through the longer list when the lengths are lopsided
// (gallopRatio), so intersecting a tiny frontier list against a huge
// posting list costs O(tiny·log) instead of O(huge).
func IntersectInto(dst, a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 || a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, x := range a {
			lo += gallop(b[lo:], x)
			if lo >= len(b) {
				break
			}
			if b[lo] == x {
				dst = append(dst, x)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallop returns the index of the first element of b that is >= x:
// exponential probing from the front brackets the answer in a window of
// size proportional to its distance, then a binary search pins it down,
// O(log d) for distance d. b is ascending.
func gallop(b []int32, x int32) int {
	if len(b) == 0 || b[0] >= x {
		return 0
	}
	lo, step := 0, 1 // invariant: b[lo] < x
	for lo+step < len(b) && b[lo+step] < x {
		lo += step
		step <<= 1
	}
	hi := lo + step // b[hi] >= x, or hi is past the end
	if hi > len(b) {
		hi = len(b)
	}
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return b[lo+1+i] >= x })
}

// IntersectPostings returns the ascending rank positions of the rows
// matching p, computed by progressively intersecting the pattern's bound
// posting lists, shortest first (each step's output is no longer than its
// shortest input, so later intersections only get cheaper). It is the
// intersection-based counterpart of MatchRanks' probe-and-verify; both
// return identical lists. Single-attribute patterns alias their posting
// list directly — callers must treat the result as read-only.
func (ix *Index) IntersectPostings(p pattern.Pattern) []int32 {
	var lists [][]int32
	for a, v := range p {
		if v == pattern.Unbound {
			continue
		}
		if v < 0 || int(v) >= len(ix.postings[a]) {
			return nil // out-of-domain value: matches nothing
		}
		lists = append(lists, ix.postings[a][v])
	}
	switch len(lists) {
	case 0:
		all := make([]int32, len(ix.rows))
		for i := range all {
			all[i] = int32(i)
		}
		return all
	case 1:
		return lists[0]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	res := Intersect(lists[0], lists[1])
	for _, b := range lists[2:] {
		if len(res) == 0 {
			break
		}
		res = Intersect(res, b)
	}
	return res
}
