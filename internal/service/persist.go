package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"time"

	"rankfair"
	"rankfair/internal/dataset"
	"rankfair/internal/obs"
	"rankfair/internal/stream"
)

// storedMeta is the owner record each persisted generation carries: the
// generation's full registry record plus (on every generation, so any
// chain prefix is self-describing) the seed upload's decode options.
// It is the schema of store Generation.Meta — change it only additively.
type storedMeta struct {
	Info DatasetInfo      `json:"info"`
	Opts storedCSVOptions `json:"opts"`
}

// storedCSVOptions is the persisted form of rankfair.CSVOptions with
// explicit JSON names, so the on-disk schema does not silently track the
// library struct.
type storedCSVOptions struct {
	Comma              int32    `json:"comma,omitempty"`
	NumericColumns     []string `json:"numeric_columns,omitempty"`
	CategoricalColumns []string `json:"categorical_columns,omitempty"`
	AllCategorical     bool     `json:"all_categorical,omitempty"`
}

func encodeMeta(info DatasetInfo, opts rankfair.CSVOptions) json.RawMessage {
	raw, err := json.Marshal(storedMeta{Info: info, Opts: storedCSVOptions{
		Comma:              opts.Comma,
		NumericColumns:     opts.NumericColumns,
		CategoricalColumns: opts.CategoricalColumns,
		AllCategorical:     opts.AllCategorical,
	}})
	if err != nil { // DatasetInfo is plain data; this cannot fire
		return nil
	}
	return raw
}

func decodeMeta(raw json.RawMessage) (DatasetInfo, rankfair.CSVOptions, error) {
	var m storedMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return DatasetInfo{}, rankfair.CSVOptions{}, err
	}
	return m.Info, rankfair.CSVOptions{
		Comma:              m.Opts.Comma,
		NumericColumns:     m.Opts.NumericColumns,
		CategoricalColumns: m.Opts.CategoricalColumns,
		AllCategorical:     m.Opts.AllCategorical,
	}, nil
}

// loadFlight deduplicates concurrent page-ins of one dataset.
type loadFlight struct {
	done chan struct{}
	ok   bool
}

// getDataset resolves a dataset: from the registry when resident, else by
// paging it in from the durable store (decode the seed blob, replay the
// append chain). Every read path — audits, repairs, explains, GETs,
// appends — goes through here, which is what makes a registry LRU
// eviction of a store-backed dataset a page-out rather than a loss.
func (s *Service) getDataset(id string) (*rankfair.Dataset, DatasetInfo, bool) {
	if t, info, ok := s.registry.Get(id); ok {
		return t, info, true
	}
	if s.store == nil || !s.pageIn(id) {
		return nil, DatasetInfo{}, false
	}
	return s.registry.Get(id)
}

// pageIn materializes one stored dataset into the registry, deduplicating
// concurrent callers onto a single load.
func (s *Service) pageIn(id string) bool {
	s.loadMu.Lock()
	if f, ok := s.loads[id]; ok {
		s.loadMu.Unlock()
		<-f.done
		return f.ok
	}
	f := &loadFlight{done: make(chan struct{})}
	s.loads[id] = f
	s.loadMu.Unlock()

	f.ok = s.loadFromStore(id)

	s.loadMu.Lock()
	delete(s.loads, id)
	s.loadMu.Unlock()
	close(f.done)
	return f.ok
}

// loadFromStore replays one dataset's persisted append chain into the
// registry: the seed blob is decoded once, then every batch blob goes
// through the same incremental ingestion path a live append takes
// (Table.AppendRows — schema-checked column extension, falling back to a
// full re-decode only on schema drift). A blob that fails content
// verification cuts the replay at the consistent prefix and realigns the
// store's catalog to it. The page-in records a span tree in the trace
// ring under "load-<id>", so slow restarts are inspectable like slow
// audits.
func (s *Service) loadFromStore(id string) bool {
	gens, ok := s.store.Chain(id)
	if !ok || len(gens) == 0 {
		return false
	}
	start := time.Now()
	tr := obs.NewTrace("load-"+id, "page-in", start)
	defer func() {
		tr.Root().Finish()
		if s.obs != nil && s.obs.traces != nil {
			s.obs.traces.Put(tr)
		}
	}()

	info, opts, err := decodeMeta(gens[0].Meta)
	if err != nil {
		s.logger.Error("store: undecodable seed metadata", "dataset", id, "err", err)
		return false
	}
	raw, err := s.storeBlob(gens[0].Blob)
	if err != nil {
		s.logger.Error("store: unreadable seed blob", "dataset", id, "err", err)
		return false
	}
	sp := tr.Root().StartChild("seed-decode")
	table, err := rankfair.ReadCSV(bytes.NewReader(raw), opts)
	sp.Finish()
	if err != nil {
		s.logger.Error("store: seed no longer decodes", "dataset", id, "err", err)
		return false
	}

	replayed, rebuilds := 0, 0
	admitted := info
	for _, gen := range gens[1:] {
		genInfo, _, err := decodeMeta(gen.Meta)
		if err != nil {
			break
		}
		batchRaw, err := s.storeBlob(gen.Blob)
		if err != nil {
			// Same-size corruption slips past the boot-time stat checks;
			// the content verification catches it here. Serve the prefix
			// and realign the catalog so later appends chain off it.
			s.logger.Warn("store: replay cut at unreadable batch blob",
				"dataset", id, "generation", genInfo.Version, "err", err)
			s.store.Truncate(id, admitted.Hash)
			break
		}
		sp := tr.Root().StartChild("replay")
		next, incremental, err := s.replayBatch(table, raw, batchRaw, opts)
		sp.Finish()
		if err != nil {
			s.logger.Warn("store: replay cut at undecodable batch",
				"dataset", id, "generation", genInfo.Version, "err", err)
			s.store.Truncate(id, admitted.Hash)
			break
		}
		if incremental {
			replayed++
		} else {
			rebuilds++
		}
		table = next
		raw = stream.Concat(raw, batchRaw)
		admitted = genInfo
	}

	// The chain's construction guarantees the replayed bytes hash to the
	// admitted generation; verifying closes the loop against any logic
	// drift between the live append path and this one.
	if got := HashCSV(raw); got != admitted.Hash {
		s.logger.Error("store: replayed content does not hash to its generation",
			"dataset", id, "got", got[:12], "want", admitted.Hash[:12])
		return false
	}
	s.registry.Restore(admitted, table, raw, opts)
	s.metrics.storeLoads.Add(1)
	s.metrics.storeReplayed.Add(int64(replayed))
	s.metrics.storeRebuilds.Add(int64(rebuilds))
	s.logger.Debug("dataset paged in",
		"dataset", id, "version", admitted.Version, "rows", admitted.Rows,
		"replayed", replayed, "rebuilds", rebuilds,
		"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
	return true
}

// replayBatch applies one persisted batch to the materialized table,
// preferring the incremental extension and falling back to a full
// re-decode of the concatenation exactly as the live append path does.
// incremental reports which path ran.
func (s *Service) replayBatch(table *rankfair.Dataset, raw, batchRaw []byte, opts rankfair.CSVOptions) (*rankfair.Dataset, bool, error) {
	batch, err := stream.ParseCSV(batchRaw, table, opts.Comma)
	if err == nil {
		next, err := table.AppendRows(batch.Records)
		if err == nil {
			return next, true, nil
		}
		if !errors.Is(err, dataset.ErrSchemaDrift) {
			return nil, false, err
		}
	}
	next, err := rankfair.ReadCSV(bytes.NewReader(stream.Concat(raw, batchRaw)), opts)
	if err != nil {
		return nil, false, err
	}
	if err := next.Validate(); err != nil {
		return nil, false, err
	}
	return next, false, nil
}

// persistSeed writes a freshly admitted seed generation through to the
// store under the resilience policy (retry, breaker); failure rolls the
// registry entry back and is returned shaped for the HTTP layer, so an
// acknowledged upload is always durable.
func (s *Service) persistSeed(info DatasetInfo, raw []byte, opts rankfair.CSVOptions) error {
	if s.store == nil {
		return nil
	}
	err := s.storeWrite("seed", func() error {
		return s.store.PutSeed(info.ID, info.Hash, raw, encodeMeta(info, opts))
	})
	if err != nil {
		s.registry.Evict(info.ID)
		return storageErr(err)
	}
	return nil
}

// persistResult writes one computed audit result through to the store
// under its cache key. Persistence is best-effort by design: the result
// is already correct and cached in memory, so a storage fault degrades
// restart warmth, not the response.
func (s *Service) persistResult(key string, rj *rankfair.ReportJSON) {
	if s.store == nil || !s.cfg.PersistCache {
		return
	}
	raw, err := json.Marshal(rj)
	if err != nil {
		return
	}
	err = s.storeWrite("cache", func() error { return s.store.PutCache(key, raw) })
	if err != nil {
		// A breaker rejection is routine degraded-mode operation; only an
		// actual write failure deserves a warning.
		var ue *UnavailableError
		if errors.As(err, &ue) {
			s.logger.Debug("store: audit result not persisted (degraded mode)", "key", key)
		} else {
			s.logger.Warn("store: persisting audit result", "key", key, "err", err)
		}
		return
	}
	s.metrics.storeCachePersisted.Add(1)
}

// loadPersistedResults seeds the result cache from the store at boot.
// Entries that no longer decode are skipped — the cache is an
// optimization, never a source of truth.
func (s *Service) loadPersistedResults() {
	for _, key := range s.store.CacheKeys() {
		raw, err := s.store.CacheValue(key)
		if err != nil {
			continue
		}
		var rj rankfair.ReportJSON
		if err := json.Unmarshal(raw, &rj); err != nil {
			continue
		}
		s.cache.Put(key, &rj)
		s.metrics.storeCacheLoaded.Add(1)
	}
}

// listDatasets merges the resident registry records with store-backed
// datasets that have not been paged in yet, keeping the registry's
// ordering contract (Created descending, then ID) across both tiers.
func (s *Service) listDatasets() []DatasetInfo {
	infos := s.registry.List()
	if s.store == nil {
		return infos
	}
	resident := make(map[string]bool, len(infos))
	for _, info := range infos {
		resident[info.ID] = true
	}
	for _, id := range s.store.Datasets() {
		if resident[id] {
			continue
		}
		gens, ok := s.store.Chain(id)
		if !ok || len(gens) == 0 {
			continue
		}
		info, _, err := decodeMeta(gens[len(gens)-1].Meta)
		if err != nil {
			continue
		}
		infos = append(infos, info)
	}
	sortDatasetInfos(infos)
	return infos
}
