package synth

import (
	"fmt"

	"rankfair/internal/dataset"
	"rankfair/internal/rank"
)

// WorstCase builds the construction of Theorem 3.3 (Figure 2): n binary
// attributes and n+1 tuples where tuple i (i in [1,n]) has A_i=1 and zeros
// elsewhere, tuple n+1 is all zeros, and the ranking places t_1..t_{n+1} in
// order. With kmin=kmax=n and L_k = n/2+1 (global) or α=(n+3)/(n+4)
// (proportional), the most general biased patterns are exactly the C(n,n/2)
// patterns binding n/2 attributes to 0 — exponentially many.
func WorstCase(n int) *Bundle {
	rows := n + 1
	t := dataset.New()
	dict := []string{"0", "1"}
	for a := 0; a < n; a++ {
		codes := make([]int32, rows)
		if a < rows-1 {
			codes[a] = 1
		}
		mustAddCatCodes(t, attrName(a), codes, dict)
	}
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	return &Bundle{Name: "worst-case", Table: t, Ranker: &rank.Fixed{Perm: perm}}
}

func attrName(a int) string {
	return fmt.Sprintf("A%d", a+1)
}
