package rankfair_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"rankfair"
)

func TestReportJSONRoundTrip(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded rankfair.ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Measure != "global-lower" || decoded.KMin != 4 || decoded.KMax != 5 {
		t.Errorf("header: %+v", decoded)
	}
	if len(decoded.Attributes) != 4 || decoded.Attributes[0] != "Gender" {
		t.Errorf("attributes: %v", decoded.Attributes)
	}
	if decoded.NodesExamined == 0 {
		t.Error("stats lost")
	}
	if len(decoded.Results) != 2 {
		t.Fatalf("results for %d ks, want 2", len(decoded.Results))
	}
	k4 := decoded.Results[0]
	if k4.K != 4 || len(k4.Groups) != 6 {
		t.Fatalf("k=4: %d groups, want 6", len(k4.Groups))
	}
	// Keys parse back into live patterns over the analyst's space.
	for _, g := range k4.Groups {
		p, err := a.ParseGroupKey(g.Key)
		if err != nil {
			t.Fatalf("key %q: %v", g.Key, err)
		}
		if p.Count(a.Input().Rows) != g.Size {
			t.Errorf("key %q: size %d, recomputed %d", g.Key, g.Size, p.Count(a.Input().Rows))
		}
		if len(g.Pattern) != p.NumAttrs() {
			t.Errorf("key %q: %d assignments for %d bound attrs", g.Key, len(g.Pattern), p.NumAttrs())
		}
	}
	// The most biased group leads.
	if k4.Groups[0].Bias < k4.Groups[len(k4.Groups)-1].Bias {
		t.Error("groups not ordered by bias")
	}
}

func TestReportJSONAllMeasures(t *testing.T) {
	a := runningAnalyst(t)
	reports := map[string]*rankfair.Report{}
	var err error
	if reports["proportional-lower"], err = a.DetectProportional(rankfair.PropParams{MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9}); err != nil {
		t.Fatal(err)
	}
	if reports["global-upper"], err = a.DetectGlobalUpper(rankfair.GlobalUpperParams{MinSize: 4, KMin: 5, KMax: 5, Upper: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if reports["exposure"], err = a.DetectExposure(rankfair.ExposureParams{MinSize: 4, KMin: 5, KMax: 5, Alpha: 0.8}); err != nil {
		t.Fatal(err)
	}
	for want, r := range reports {
		j := r.ToJSON()
		if j.Measure != want {
			t.Errorf("measure = %q, want %q", j.Measure, want)
		}
		if len(j.Results) == 0 {
			t.Errorf("%s: empty results", want)
		}
	}
}

func TestAuditParamsJSONRoundTrip(t *testing.T) {
	in := rankfair.AuditParams{
		Measure: rankfair.MeasureGlobal, MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2}, Baseline: true,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out rankfair.AuditParams
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Measure != in.Measure || out.MinSize != in.MinSize || len(out.Lower) != 2 || !out.Baseline {
		t.Errorf("round trip lost fields: %+v", out)
	}
	if in.CacheKey() != out.CacheKey() {
		t.Errorf("cache keys differ after round trip: %q vs %q", in.CacheKey(), out.CacheKey())
	}
}

func TestAuditParamsValidate(t *testing.T) {
	bad := []rankfair.AuditParams{
		{Measure: "bogus", MinSize: 1, KMin: 1, KMax: 2},
		{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 2},                                         // no alpha
		{Measure: rankfair.MeasurePropUpper, MinSize: 1, KMin: 1, KMax: 2},                                    // no beta
		{Measure: rankfair.MeasureGlobal, MinSize: 1, KMin: 1, KMax: 2},                                       // no bounds
		{Measure: rankfair.MeasureGlobalUpper, MinSize: 1, KMin: 1, KMax: 2},                                  // no bounds
		{Measure: rankfair.MeasureGlobal, MinSize: 1, KMin: 3, KMax: 2},                                       // bad range
		{Measure: rankfair.MeasureProp, MinSize: -1, KMin: 1, KMax: 2, Alpha: 0.8},                            // bad tau
		{Measure: rankfair.MeasureGlobal, MinSize: 1, KMin: 1, KMax: 2, Lower: []int{1}},                      // short bounds
		{Measure: rankfair.MeasureGlobalUpper, MinSize: 1, KMin: 1, KMax: 1, Upper: []int{2}, Baseline: true}, // no baseline variant
		{Measure: rankfair.MeasurePropUpper, MinSize: 1, KMin: 1, KMax: 2, Beta: 1.2, Baseline: true},         // no baseline variant
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted invalid params", i, p)
		}
	}
	good := rankfair.AuditParams{Measure: rankfair.MeasureExposure, MinSize: 0, KMin: 2, KMax: 5, Alpha: 0.8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// TestDetectDispatchMatchesTyped checks the measure-tagged entry point
// agrees with the typed methods it routes to.
func TestDetectDispatchMatchesTyped(t *testing.T) {
	a := runningAnalyst(t)
	typed, err := a.DetectProportional(rankfair.PropParams{MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	dispatched, err := a.Detect(rankfair.AuditParams{
		Measure: rankfair.MeasureProp, MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	tj, _ := json.Marshal(typed.ToJSON())
	dj, _ := json.Marshal(dispatched.ToJSON())
	if !bytes.Equal(tj, dj) {
		t.Errorf("Detect(prop) report differs from DetectProportional:\n%s\nvs\n%s", dj, tj)
	}
	if dispatched.Measure() != "proportional-lower" {
		t.Errorf("Measure() = %q", dispatched.Measure())
	}

	for _, m := range rankfair.Measures() {
		p := rankfair.AuditParams{Measure: m, MinSize: 4, KMin: 4, KMax: 5, Alpha: 0.8, Beta: 1.25,
			Lower: []int{2, 2}, Upper: []int{3, 3}}
		if _, err := a.Detect(p); err != nil {
			t.Errorf("Detect(%s): %v", m, err)
		}
	}
	if _, err := a.Detect(rankfair.AuditParams{Measure: "bogus", KMin: 1, KMax: 1}); err == nil {
		t.Error("Detect should reject unknown measures")
	}
}

func TestParseGroupKeyErrors(t *testing.T) {
	a := runningAnalyst(t)
	if _, err := a.ParseGroupKey("not-a-key"); err == nil {
		t.Error("garbage key should fail")
	}
	if _, err := a.ParseGroupKey("0|1"); err == nil {
		t.Error("short key should fail")
	}
	if _, err := a.ParseGroupKey("9|*|*|*"); err == nil {
		t.Error("out-of-domain value should fail")
	}
}

func TestAuditParamsWorkers(t *testing.T) {
	p := rankfair.AuditParams{
		Measure: rankfair.MeasureProp, MinSize: 5, KMin: 2, KMax: 4, Alpha: 0.8, Workers: 4,
	}
	raw, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"workers":4`)) {
		t.Errorf("workers missing from JSON: %s", raw)
	}
	var back rankfair.AuditParams
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers != 4 {
		t.Errorf("workers did not round-trip: got %d", back.Workers)
	}

	// Workers changes only wall clock, never results, so it must not
	// fragment the result cache.
	q := p
	q.Workers = 0
	if p.CacheKey() != q.CacheKey() {
		t.Errorf("CacheKey varies with workers: %q vs %q", p.CacheKey(), q.CacheKey())
	}

	for _, w := range []int{-1, rankfair.MaxWorkers + 1} {
		bad := p
		bad.Workers = w
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted workers=%d", w)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate rejected workers=4: %v", err)
	}
}

func TestDetectCtxParallelMatchesSerial(t *testing.T) {
	a := runningAnalyst(t)
	for _, m := range rankfair.Measures() {
		p := rankfair.AuditParams{Measure: m, MinSize: 4, KMin: 4, KMax: 5, Alpha: 0.8, Beta: 1.25,
			Lower: []int{2, 2}, Upper: []int{3, 3}}
		serial, err := a.Detect(p)
		if err != nil {
			t.Fatalf("Detect(%s): %v", m, err)
		}
		p.Workers = 8
		parallel, err := a.DetectCtx(context.Background(), p)
		if err != nil {
			t.Fatalf("DetectCtx(%s, workers=8): %v", m, err)
		}
		sj, _ := json.Marshal(serial.ToJSON())
		pj, _ := json.Marshal(parallel.ToJSON())
		if !bytes.Equal(sj, pj) {
			t.Errorf("measure %s: parallel report differs from serial:\n%s\nvs\n%s", m, pj, sj)
		}
	}
}

func TestDetectCtxCanceled(t *testing.T) {
	a := runningAnalyst(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.DetectCtx(ctx, rankfair.AuditParams{
		Measure: rankfair.MeasureProp, MinSize: 4, KMin: 4, KMax: 5, Alpha: 0.8,
	})
	var cerr *rankfair.CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("want CanceledError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}
