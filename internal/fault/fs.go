package fault

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam the durable store writes through. The
// methods mirror the os package calls the store makes; production uses
// the OS passthrough, chaos tests wrap it in a FaultFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
}

// File is the slice of *os.File the store needs.
type File interface {
	Write(p []byte) (int, error)
	Name() string
	Sync() error
	Truncate(size int64) error
	Close() error
}

// OS is the passthrough FS backed by the real disk.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error               { return os.Remove(name) }
func (OS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (OS) Stat(name string) (fs.FileInfo, error)  { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// FaultFS wraps an FS, consulting an Injector before every operation.
// Operation keys: "mkdir", "create", "openfile", "open", "rename",
// "remove", "readfile", "stat", "truncate" fire on the path-level
// calls; files returned by CreateTemp/OpenFile/Open additionally fire
// "write", "sync", "ftruncate", and "close" with the file's own path.
// Torn rules apply to "write": the configured number of payload bytes
// reaches the underlying file before the error is returned, modeling a
// crash mid-write.
type FaultFS struct {
	fs  FS
	inj *Injector
}

// NewFaultFS wraps fsys so every operation consults inj first.
func NewFaultFS(fsys FS, inj *Injector) *FaultFS {
	return &FaultFS{fs: fsys, inj: inj}
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if out := f.inj.Fire("mkdir", path); out.Err != nil {
		return out.Err
	}
	return f.fs.MkdirAll(path, perm)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if out := f.inj.Fire("create", dir); out.Err != nil {
		return nil, out.Err
	}
	file, err := f.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.inj, path: file.Name()}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if out := f.inj.Fire("openfile", name); out.Err != nil {
		return nil, out.Err
	}
	file, err := f.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.inj, path: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if out := f.inj.Fire("open", name); out.Err != nil {
		return nil, out.Err
	}
	file, err := f.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, inj: f.inj, path: name}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if out := f.inj.Fire("rename", newpath); out.Err != nil {
		return out.Err
	}
	return f.fs.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if out := f.inj.Fire("remove", name); out.Err != nil {
		return out.Err
	}
	return f.fs.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if out := f.inj.Fire("readfile", name); out.Err != nil {
		return nil, out.Err
	}
	return f.fs.ReadFile(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if out := f.inj.Fire("stat", name); out.Err != nil {
		return nil, out.Err
	}
	return f.fs.Stat(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if out := f.inj.Fire("truncate", name); out.Err != nil {
		return out.Err
	}
	return f.fs.Truncate(name, size)
}

type faultFile struct {
	f    File
	inj  *Injector
	path string
}

func (f *faultFile) Name() string { return f.f.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	out := f.inj.Fire("write", f.path)
	if out.Err != nil {
		n := 0
		if out.Torn > 0 {
			n, _ = f.f.Write(p[:min(out.Torn, len(p))])
		}
		return n, out.Err
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	if out := f.inj.Fire("sync", f.path); out.Err != nil {
		return out.Err
	}
	return f.f.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if out := f.inj.Fire("ftruncate", f.path); out.Err != nil {
		return out.Err
	}
	return f.f.Truncate(size)
}

func (f *faultFile) Close() error {
	if out := f.inj.Fire("close", f.path); out.Err != nil {
		f.f.Close()
		return out.Err
	}
	return f.f.Close()
}
