// Package regress implements the regression substrate of Section V: the
// paper trains a regression model M_R on D_R = {(t, R(D)[t])} to simulate a
// black-box ranking algorithm, then explains it with Shapley values. The
// package provides one-hot encoding of categorical tuples, ridge regression
// solved by normal equations, and a CART regression tree.
package regress

import (
	"errors"
	"fmt"

	"rankfair/internal/pattern"
)

// Model is a trained regression model over encoded feature vectors.
type Model interface {
	// Predict returns the model output for one encoded feature vector.
	Predict(x []float64) float64
}

// Encoder one-hot encodes dictionary-coded categorical tuples. Attribute i
// with cardinality c_i occupies c_i consecutive feature columns.
type Encoder struct {
	space   *pattern.Space
	offsets []int
	width   int
}

// NewEncoder builds an encoder for the attribute space.
func NewEncoder(space *pattern.Space) *Encoder {
	e := &Encoder{space: space, offsets: make([]int, space.NumAttrs())}
	for i, c := range space.Cards {
		e.offsets[i] = e.width
		e.width += c
	}
	return e
}

// Width returns the encoded feature-vector length.
func (e *Encoder) Width() int { return e.width }

// NumAttrs returns the number of attributes the encoder covers.
func (e *Encoder) NumAttrs() int { return e.space.NumAttrs() }

// AttrColumns returns the feature-column range [lo, hi) of attribute attr.
func (e *Encoder) AttrColumns(attr int) (lo, hi int) {
	return e.offsets[attr], e.offsets[attr] + e.space.Cards[attr]
}

// Encode writes the one-hot encoding of row into dst, which must have
// length Width().
func (e *Encoder) Encode(row []int32, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for a, v := range row {
		dst[e.offsets[a]+int(v)] = 1
	}
}

// EncodeAll encodes a batch of rows into a fresh matrix.
func (e *Encoder) EncodeAll(rows [][]int32) [][]float64 {
	X := make([][]float64, len(rows))
	flat := make([]float64, len(rows)*e.width)
	for i, r := range rows {
		X[i] = flat[i*e.width : (i+1)*e.width]
		e.Encode(r, X[i])
	}
	return X
}

// Ridge is a linear model fitted with L2 regularization.
type Ridge struct {
	// Weights holds one coefficient per encoded feature column.
	Weights []float64
	// Intercept is the bias term.
	Intercept float64
}

// FitRidge fits min_w ||Xw + b - y||² + λ||w||² via the normal equations.
// λ must be positive; with one-hot features the unregularized system is
// singular (each attribute's columns sum to the intercept column).
func FitRidge(X [][]float64, y []float64, lambda float64) (*Ridge, error) {
	if len(X) == 0 {
		return nil, errors.New("regress: no training rows")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("regress: %d rows, %d targets", len(X), len(y))
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("regress: lambda must be positive, got %v", lambda)
	}
	d := len(X[0])
	// Center y and columns so the intercept is handled analytically.
	yMean := mean(y)
	colMean := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			colMean[j] += v
		}
	}
	for j := range colMean {
		colMean[j] /= float64(len(X))
	}

	// A = Xc^T Xc + λI, rhs = Xc^T yc.
	A := newSym(d)
	rhs := make([]float64, d)
	for i, row := range X {
		yc := y[i] - yMean
		for j := 0; j < d; j++ {
			xj := row[j] - colMean[j]
			if xj == 0 {
				continue
			}
			rhs[j] += xj * yc
			for l := j; l < d; l++ {
				A.add(j, l, xj*(row[l]-colMean[l]))
			}
		}
	}
	for j := 0; j < d; j++ {
		A.add(j, j, lambda)
	}
	w, err := solveCholesky(A, rhs)
	if err != nil {
		return nil, fmt.Errorf("regress: ridge solve: %w", err)
	}
	b := yMean
	for j := 0; j < d; j++ {
		b -= w[j] * colMean[j]
	}
	return &Ridge{Weights: w, Intercept: b}, nil
}

// Predict implements Model.
func (r *Ridge) Predict(x []float64) float64 {
	out := r.Intercept
	for j, w := range r.Weights {
		out += w * x[j]
	}
	return out
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
