package stream

import (
	"bytes"
	"strings"
	"testing"

	"rankfair/internal/dataset"
)

func streamTestTable(t *testing.T) *dataset.Table {
	t.Helper()
	tb, err := dataset.ReadCSV(strings.NewReader("city,score,tier\nparis,1.5,A\nlyon,2,B\n"), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestParseCSV(t *testing.T) {
	tb := streamTestTable(t)
	b, err := ParseCSV([]byte("nice,3,A\nlyon,4.5,B"), tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 2 || b.Records[0][0] != "nice" || b.Records[1][1] != "4.5" {
		t.Fatalf("records = %v", b.Records)
	}
	if !bytes.HasSuffix(b.Raw, []byte("\n")) {
		t.Fatal("raw not newline-terminated")
	}
	// Arity mismatches are rejected at parse time.
	if _, err := ParseCSV([]byte("nice,3\n"), tb, 0); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestParseJSONShapes(t *testing.T) {
	tb := streamTestTable(t)
	cases := []string{
		`{"rows": [["nice", 3, "A"], ["lyon", 4.5, "B"]]}`,
		`[["nice", 3, "A"], ["lyon", 4.5, "B"]]`,
		`{"rows": [{"city": "nice", "score": 3, "tier": "A"}, {"tier": "B", "city": "lyon", "score": 4.5}]}`,
	}
	for _, src := range cases {
		b, err := ParseJSON([]byte(src), tb, 0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if b.Rows() != 2 || b.Records[0][0] != "nice" || b.Records[0][1] != "3" || b.Records[1][1] != "4.5" {
			t.Fatalf("%s → %v", src, b.Records)
		}
	}
	bad := []string{
		`{"rows": [["nice", 3]]}`,                            // arity
		`{"rows": [{"city": "nice", "score": 3}]}`,           // missing column
		`{"rows": [{"city": "nice", "score": 3, "x": "y"}]}`, // unknown column
		`{"rows": [["nice", 3, null]]}`,                      // null scalar
		`{"rows": [["nice", 3, {"a": 1}]]}`,                  // nested value
		`{"other": []}`,                                      // no rows
		`{"rows": [["nice", 3, "A"]`,                         // truncated
	}
	for _, src := range bad {
		if _, err := ParseJSON([]byte(src), tb, 0); err == nil {
			t.Fatalf("accepted %s", src)
		}
	}
}

// TestJSONNumberLiteralsSurvive: numbers keep their literal spelling all
// the way into the canonical CSV, so exponent forms parse to the same
// float a fresh upload would.
func TestJSONNumberLiteralsSurvive(t *testing.T) {
	tb := streamTestTable(t)
	b, err := ParseJSON([]byte(`[["nice", 1.5e3, "A"]]`), tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Records[0][1] != "1.5e3" {
		t.Fatalf("literal rewritten to %q", b.Records[0][1])
	}
}

// TestRoundTripMatchesConcatenatedDecode: the batch records must equal
// what a fresh decode of the concatenated CSV yields — including awkward
// values (quotes, delimiters, newlines inside fields).
func TestRoundTripMatchesConcatenatedDecode(t *testing.T) {
	tb := streamTestTable(t)
	baseCSV := "city,score,tier\nparis,1.5,A\nlyon,2,B"
	src := `[["st \"tropez\", with, commas", 9, "A\nB"]]`
	b, err := ParseJSON([]byte(src), tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := Concat([]byte(baseCSV), b.Raw)
	decoded, err := dataset.ReadCSV(bytes.NewReader(full), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if decoded.NumRows() != 3 {
		t.Fatalf("concatenated decode has %d rows", decoded.NumRows())
	}
	lastCity := decoded.Value(2, 0)
	if lastCity != b.Records[0][0] {
		t.Fatalf("record %q vs decoded %q", b.Records[0][0], lastCity)
	}
	lastTier := decoded.Value(2, 2)
	if lastTier != b.Records[0][2] {
		t.Fatalf("record %q vs decoded %q", b.Records[0][2], lastTier)
	}
}

func TestConcatNewlineJoin(t *testing.T) {
	got := Concat([]byte("a,b"), []byte("c,d\n"))
	if string(got) != "a,b\nc,d\n" {
		t.Fatalf("got %q", got)
	}
	got = Concat([]byte("a,b\n"), []byte("c,d\n"))
	if string(got) != "a,b\nc,d\n" {
		t.Fatalf("got %q", got)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{}
	if m.Decide(1000, 10) != ModeIncremental {
		t.Fatal("small batch should be incremental")
	}
	if m.Decide(1000, 250) != ModeRebuild {
		t.Fatal("quarter-size batch should rebuild at the default fraction")
	}
	if m.Decide(0, 1) != ModeRebuild {
		t.Fatal("empty base should rebuild")
	}
	if (CostModel{RebuildFraction: -1}).Decide(1000, 1) != ModeRebuild {
		t.Fatal("negative fraction should disable the incremental path")
	}
	if (CostModel{RebuildFraction: 0.5}).Decide(100, 40) != ModeIncremental {
		t.Fatal("custom fraction ignored")
	}
}
