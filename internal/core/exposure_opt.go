package core

import (
	"context"
	"sort"

	"rankfair/internal/pattern"
)

// ExposureBounds is the optimized incremental counterpart of IterTDExposure,
// built on the PROPBOUNDS skeleton (Algorithm 3): the exposure of a pattern
// changes only when the newly inserted tuple R(D)[k] satisfies it (it gains
// that position's weight), while its bound α·s_D(p)·E(k)/|D| grows with
// every k. Unbiased nodes are therefore scheduled at the critical k̃ where
// the growing bound overtakes their frozen exposure; per step only nodes
// satisfied by the new tuple and nodes whose k̃ is due are examined.
//
// Unlike the count measure, a matched biased node does not necessarily flip
// unbiased (position weights decay with k), so flips are re-checked rather
// than assumed.
func ExposureBounds(in *Input, params ExposureParams) (*Result, error) {
	return ExposureBoundsCtx(context.Background(), in, params, 1)
}

// ExposureBoundsCtx is ExposureBounds with cancellation and intra-search
// fan-out (see PropBoundsCtx): subtree builds and resumed expansions
// spread over workers goroutines with deterministic sink merge, a canceled
// ctx aborts mid-lattice with a CanceledError, and results are
// byte-identical to the serial path for every worker count.
func ExposureBoundsCtx(ctx context.Context, in *Input, params ExposureParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	if err := preflight(ctx); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &exposureState{
		in:      in,
		eng:     newEngine(in),
		pr:      &params,
		stats:   &res.Stats,
		n:       float64(len(in.Rows)),
		ctx:     ctx,
		workers: normWorkers(workers),
		front: newDomFrontier(
			func(nd *enode) pattern.Pattern { return nd.p },
			func(nd *enode) *string { return &nd.key }),
		buckets:  make([][]*enode, params.KMax+2),
		weightOf: make([]float64, len(in.Rows)),
		totalExp: make([]float64, params.KMax+1),
	}
	wByRank := make([]float64, params.KMax)
	for i := 0; i < params.KMax; i++ {
		w := PositionExposure(i + 1)
		st.weightOf[in.Ranking[i]] = w
		wByRank[i] = w
		st.totalExp[i+1] = st.totalExp[i] + w
	}
	// Wire the weights into the engine under both addressings: by row for
	// the lists engine, by rank position for the rank-space engine. Both
	// sum in ascending rank order, so exposures are bit-identical.
	st.eng.weightByRow = st.weightOf
	st.eng.weightByRank = wByRank
	st.search = st.eng.newSearchStats(st.workers)
	res.Search = st.search
	if !st.fullBuild(params.KMin) {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	groups, ok := st.snapshot()
	if !ok {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	res.Groups[0] = groups
	for k := params.KMin + 1; k <= params.KMax; k++ {
		if !st.step(k) {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		if groups, ok = st.snapshot(); !ok {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		res.Groups[k-params.KMin] = groups
	}
	return res, nil
}

// enode mirrors pnode with a float exposure in place of the integer count.
type enode struct {
	p        pattern.Pattern
	sD       int
	exposure float64
	biased   bool
	expanded bool
	children []*enode
	ktilde   int
	// key interns p.Key() on first snapshot use (sortNodesInterned).
	key string
}

// esink mirrors psink for the exposure measure.
type esink struct {
	cn     canceler
	sr     searcher
	stats  Stats
	search SearchStats
	biased []*enode
	sched  []*enode
}

type exposureState struct {
	in      *Input
	eng     *engine
	pr      *ExposureParams
	stats   *Stats
	n       float64
	ctx     context.Context
	workers int
	// search accumulates the run's SearchStats; nil when disabled.
	search *SearchStats

	roots []*enode
	// front holds the biased frontier with its Res/DRes split maintained
	// incrementally (see domFrontier).
	front    *domFrontier[enode]
	buckets  [][]*enode
	weightOf []float64
	totalExp []float64

	res  []Pattern
	dirt bool
}

func (s *exposureState) biasedAt(sD int, exposure float64, k int) bool {
	return exposure < s.pr.Alpha*float64(sD)*s.totalExp[k]/s.n
}

// computeKtilde finds the smallest k with biasedAt true. E(k) is strictly
// increasing in k, so the bound is monotone and a scan from a solved
// starting point terminates; exposure stays fixed between matches.
func (s *exposureState) computeKtilde(sD int, exposure float64) int {
	limit := s.pr.KMax + 1
	if sD == 0 {
		return limit
	}
	// Invert E(k) >= exposure·n/(α·sD) by scanning: E is concave and the
	// range is small, so binary search over totalExp keeps this O(log k).
	target := exposure * s.n / (s.pr.Alpha * float64(sD))
	kt := sort.SearchFloat64s(s.totalExp, target) // first k with E(k) >= target
	if kt < 1 {
		kt = 1
	}
	for kt > 1 && s.biasedAt(sD, exposure, kt-1) {
		kt--
	}
	for kt <= s.pr.KMax && !s.biasedAt(sD, exposure, kt) {
		kt++
	}
	if kt > s.pr.KMax {
		return limit
	}
	return kt
}

// scheduleInto records the node's k̃ and queues it on the sink (bucket
// insert at merge time; see propState.scheduleInto for why deferring is
// safe).
func (s *exposureState) scheduleInto(nd *enode, sk *esink) {
	nd.ktilde = s.computeKtilde(nd.sD, nd.exposure)
	if nd.ktilde <= s.pr.KMax {
		sk.sched = append(sk.sched, nd)
	}
}

// merge folds a sink into the shared state.
func (s *exposureState) merge(sk *esink) {
	s.stats.add(sk.stats)
	s.search.merge(&sk.search)
	// Frontier admissions use the sink's own canceler, so a halt during the
	// incremental domination update registers at the caller's existing
	// halted checks.
	for _, nd := range sk.biased {
		s.front.add(nd)
	}
	if len(sk.biased) > 0 {
		s.dirt = true
	}
	for _, nd := range sk.sched {
		s.buckets[nd.ktilde] = append(s.buckets[nd.ktilde], nd)
	}
}

// fullBuild mirrors propState.fullBuild: independent root subtrees build
// on the worker pool, sinks merge in subtree order. It reports false when
// the build was abandoned because the context was canceled.
func (s *exposureState) fullBuild(k int) bool {
	s.stats.FullSearches++
	units := s.eng.rootUnits(k)
	sinks := make([]esink, len(units))
	children := make([]*enode, len(units))
	fanOut(s.workers, len(units), func(i int) {
		u := &units[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		sk.stats.NodesExamined++
		sD := len(u.m.all)
		if sD < s.pr.MinSize {
			sk.sr.ss.prunedSize()
			return
		}
		child := &enode{p: u.p, sD: sD, exposure: s.eng.exposureOf(u.m, k)}
		children[i] = child
		if s.biasedAt(sD, child.exposure, k) {
			child.biased = true
			sk.sr.ss.prunedBound()
			sk.sr.ss.frontier(child.p)
			sk.biased = append(sk.biased, child)
			return
		}
		s.scheduleInto(child, sk)
		child.expanded = true
		sk.sr.ss.expanded()
		child.children = s.buildChildrenInto(child, u.m, k, sk)
	})
	halted := false
	for i := range units {
		if children[i] != nil {
			s.roots = append(s.roots, children[i])
		}
		s.merge(&sinks[i])
		halted = halted || sinks[i].cn.halted
	}
	s.dirt = true
	return !halted
}

func (s *exposureState) buildChildrenInto(parent *enode, m matchSet, k int, sk *esink) []*enode {
	var kids []*enode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, true)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return kids
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.pr.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &enode{p: parent.p.With(a, int32(v)), sD: sD, exposure: cs.exposure(v)}
			kids = append(kids, child)
			if s.biasedAt(sD, child.exposure, k) {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			s.scheduleInto(child, sk)
			child.expanded = true
			sk.sr.ss.expanded()
			child.children = s.buildChildrenInto(child, cs.at(v), k, sk)
		}
		sk.sr.release(mk)
	}
	parent.children = kids
	return kids
}

// step advances the state from k-1 to k. It reports false when the step
// was abandoned because the context was canceled.
func (s *exposureState) step(k int) bool {
	newRow := s.in.Rows[s.in.Ranking[k-1]]
	w := s.weightOf[s.in.Ranking[k-1]]

	ser := &esink{cn: canceler{ctx: s.ctx}}
	var freed []*enode
	var walk func(nd *enode)
	walk = func(nd *enode) {
		if ser.cn.stopped() || !nd.p.Matches(newRow) {
			return
		}
		ser.stats.NodesExamined++
		nd.exposure += w
		if nd.biased {
			if !s.biasedAt(nd.sD, nd.exposure, k) {
				nd.biased = false
				s.front.remove(nd)
				s.scheduleInto(nd, ser)
				freed = append(freed, nd)
				s.dirt = true
			}
		} else if s.biasedAt(nd.sD, nd.exposure, k) {
			// Late positions carry less weight than the bound's growth,
			// so a matched unbiased node can still cross into bias.
			nd.biased = true
			s.search.prunedBound()
			s.search.frontier(nd.p)
			s.front.add(nd)
			s.dirt = true
		} else {
			s.scheduleInto(nd, ser)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}

	for _, nd := range s.buckets[k] {
		if ser.cn.stopped() {
			break
		}
		if nd.biased || nd.ktilde != k {
			continue
		}
		ser.stats.NodesExamined++
		if s.biasedAt(nd.sD, nd.exposure, k) {
			nd.biased = true
			s.search.prunedBound()
			s.search.frontier(nd.p)
			s.front.add(nd)
			s.dirt = true
		} else {
			s.scheduleInto(nd, ser)
		}
	}
	s.buckets[k] = nil
	if ser.cn.halted {
		s.merge(ser)
		return false
	}

	var resumed []*enode
	for _, nd := range freed {
		if !nd.expanded {
			nd.expanded = true
			s.search.expanded()
			resumed = append(resumed, nd)
		}
	}
	sinks := make([]esink, len(resumed))
	fanOut(s.workers, len(resumed), func(i int) {
		nd := resumed[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		mk := sk.sr.mark()
		m := sk.sr.materialize(nd.p, k)
		s.expandWithInto(nd, m, k, sk)
		sk.sr.release(mk)
	})
	s.merge(ser)
	halted := false
	for i := range sinks {
		s.merge(&sinks[i])
		halted = halted || sinks[i].cn.halted
	}
	return !halted
}

func (s *exposureState) expandWithInto(nd *enode, m matchSet, k int, sk *esink) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, true)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.pr.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &enode{p: nd.p.With(a, int32(v)), sD: sD, exposure: cs.exposure(v)}
			nd.children = append(nd.children, child)
			if s.biasedAt(sD, child.exposure, k) {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			s.scheduleInto(child, sk)
			child.expanded = true
			sk.sr.ss.expanded()
			s.expandWithInto(child, cs.at(v), k, sk)
		}
		sk.sr.release(mk)
	}
}

// snapshot returns the most general biased patterns (see
// propState.snapshot): the first dirty snapshot bulk-seeds the domination
// frontier on the worker pool, later ones read the incrementally
// maintained split. ok is false when the seed was abandoned because the
// context was canceled.
func (s *exposureState) snapshot() (groups []Pattern, ok bool) {
	if !s.dirt {
		return s.res, true
	}
	if s.front.settle(s.ctx, s.workers) {
		return nil, false
	}
	s.search.addDominated(int64(s.front.ndom))
	s.dirt = false
	s.res = s.front.emit()
	return s.res, true
}
