package main

import (
	"os"
	"path/filepath"
	"testing"
)

func baseOptions() options {
	return options{
		demo: "running", measure: "global",
		kMin: 4, kMax: 5, tau: 4,
		alpha: 0.8, beta: 1.2,
		lBase: 2, lStep: 0, lWidth: 10, uConst: 2,
	}
}

func TestRunAllMeasuresOnDemo(t *testing.T) {
	for _, m := range []string{"global", "prop", "exposure", "global-upper", "prop-upper", "lower-specific", "upper-general"} {
		o := baseOptions()
		o.measure = m
		if err := run(o); err != nil {
			t.Errorf("measure %s: %v", m, err)
		}
	}
	o := baseOptions()
	o.summary = true
	if err := run(o); err != nil {
		t.Errorf("summary: %v", err)
	}
	o.summary = false
	o.baseline = true
	if err := run(o); err != nil {
		t.Errorf("baseline: %v", err)
	}
	o.measure = "prop"
	if err := run(o); err != nil {
		t.Errorf("prop baseline: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.measure = "bogus" },
		func(o *options) { o.demo = "bogus" },
		func(o *options) { o.demo = ""; o.input = "" },
		func(o *options) { o.kMax = 99 },
		func(o *options) { o.demo = ""; o.input = "/nonexistent/file.csv" },
	}
	for i, mutate := range cases {
		o := baseOptions()
		mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunFromCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	csv := "group,score\na,9\na,8\nb,7\nb,6\na,5\nb,4\na,3\nb,2\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions()
	o.demo = ""
	o.input = path
	o.rankBy = "score"
	o.kMin, o.kMax, o.tau = 2, 4, 2
	o.lBase, o.lStep = 1, 0
	if err := run(o); err != nil {
		t.Fatalf("csv run: %v", err)
	}
	// Missing -rank-by.
	o.rankBy = ""
	if err := run(o); err == nil {
		t.Error("missing rank-by should fail")
	}
}

func TestDemoBundleVariants(t *testing.T) {
	for _, name := range []string{"running", "student", "compas", "german"} {
		b, err := demoBundle(name, 80, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if b.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
	// Default row counts kick in for <= 0.
	b, err := demoBundle("student", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Table.NumRows() != 395 {
		t.Errorf("default student rows = %d", b.Table.NumRows())
	}
	if _, err := demoBundle("zzz", 10, 1); err == nil {
		t.Error("unknown demo should fail")
	}
}

func TestRunJSONOutput(t *testing.T) {
	o := baseOptions()
	o.asJSON = true
	if err := run(o); err != nil {
		t.Fatalf("json output: %v", err)
	}
}
