package rankfair

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Hand-rolled indented JSON encoder for ReportJSON. encoding/json walks
// the struct reflectively and grows a fresh buffer per call; report
// serialization is hot enough on the serving path (one encode per audit
// response) that the encoder here writes the fixed shape directly into a
// pooled buffer instead. The output is byte-for-byte what
// json.Encoder.SetIndent("", "  ") produces — same field order, sorted map
// keys, HTML escaping and float formatting — enforced by differential
// tests against encoding/json.

// encBuf pools encode buffers across WriteJSON calls.
var encBuf = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const encHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with encoding/json's
// escaping rules (escapeHTML variant): control characters, quotes and
// backslashes per RFC 8259, plus <, > and & as \u00XX, U+2028/U+2029
// escaped, and invalid UTF-8 replaced by U+FFFD.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', encHex[c>>4], encHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', encHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f with encoding/json's float formatting: the
// shortest representation, 'f' form except for very small or very large
// magnitudes, and exponents without a leading zero.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// indents holds precomputed "\n" + indentation runs for the fixed nesting
// depths of ReportJSON.
var indents = [...]string{
	"\n", "\n  ", "\n    ", "\n      ", "\n        ", "\n          ", "\n            ",
}

func nl(b []byte, depth int) []byte { return append(b, indents[depth]...) }

// appendReportJSON renders rj exactly as json.MarshalIndent(rj, "", "  ")
// would.
func appendReportJSON(b []byte, rj *ReportJSON) []byte {
	b = append(b, '{')
	b = nl(b, 1)
	b = append(b, `"measure": `...)
	b = appendJSONString(b, rj.Measure)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"kmin": `...)
	b = strconv.AppendInt(b, int64(rj.KMin), 10)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"kmax": `...)
	b = strconv.AppendInt(b, int64(rj.KMax), 10)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"attributes": `...)
	b = appendStringArray(b, rj.Attributes, 1)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"nodes_examined": `...)
	b = strconv.AppendInt(b, rj.NodesExamined, 10)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"full_searches": `...)
	b = strconv.AppendInt(b, int64(rj.FullSearches), 10)
	b = append(b, ',')
	b = nl(b, 1)
	b = append(b, `"results": `...)
	b = appendResults(b, rj.Results, 1)
	if rj.Stats != nil {
		b = append(b, ',')
		b = nl(b, 1)
		b = append(b, `"stats": `...)
		b = appendSearchStats(b, rj.Stats, 1)
	}
	b = nl(b, 0)
	return append(b, '}')
}

// appendSearchStats renders the optional stats object; omitempty members
// (frontier_by_level, phase_ms) are skipped exactly when encoding/json
// would skip them.
func appendSearchStats(b []byte, s *SearchStatsJSON, depth int) []byte {
	b = append(b, '{')
	b = nl(b, depth+1)
	b = append(b, `"strategy": `...)
	b = appendJSONString(b, s.Strategy)
	for _, f := range [...]struct {
		name string
		v    int64
	}{
		{"nodes_expanded", s.NodesExpanded},
		{"pruned_size", s.PrunedSize},
		{"pruned_bound", s.PrunedBound},
		{"pruned_dominated", s.PrunedDominated},
		{"posting_intersections", s.PostingIntersections},
		{"count_only_passes", s.CountOnlyPasses},
		{"lazy_scatters", s.LazyScatters},
		{"bitmap_passes", s.BitmapPasses},
		{"slice_passes", s.SlicePasses},
	} {
		b = append(b, ',')
		b = nl(b, depth+1)
		b = append(b, '"')
		b = append(b, f.name...)
		b = append(b, `": `...)
		b = strconv.AppendInt(b, f.v, 10)
	}
	if len(s.FrontierByLevel) > 0 {
		b = append(b, ',')
		b = nl(b, depth+1)
		b = append(b, `"frontier_by_level": `...)
		b = appendInt64Array(b, s.FrontierByLevel, depth+1)
	}
	if s.PhaseMS != nil {
		b = append(b, ',')
		b = nl(b, depth+1)
		b = append(b, `"phase_ms": `...)
		b = append(b, '{')
		b = nl(b, depth+2)
		b = append(b, `"analyst": `...)
		b = appendJSONFloat(b, s.PhaseMS.Analyst)
		b = append(b, ',')
		b = nl(b, depth+2)
		b = append(b, `"search": `...)
		b = appendJSONFloat(b, s.PhaseMS.Search)
		b = append(b, ',')
		b = nl(b, depth+2)
		b = append(b, `"serialize": `...)
		b = appendJSONFloat(b, s.PhaseMS.Serialize)
		b = nl(b, depth+1)
		b = append(b, '}')
	}
	b = nl(b, depth)
	return append(b, '}')
}

// appendInt64Array renders a non-empty []int64 at the given depth.
func appendInt64Array(b []byte, xs []int64, depth int) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = nl(b, depth+1)
		b = strconv.AppendInt(b, x, 10)
	}
	b = nl(b, depth)
	return append(b, ']')
}

// appendStringArray renders a []string at the given depth (nil → null,
// empty → []).
func appendStringArray(b []byte, ss []string, depth int) []byte {
	if ss == nil {
		return append(b, "null"...)
	}
	if len(ss) == 0 {
		return append(b, "[]"...)
	}
	b = append(b, '[')
	for i, s := range ss {
		if i > 0 {
			b = append(b, ',')
		}
		b = nl(b, depth+1)
		b = appendJSONString(b, s)
	}
	b = nl(b, depth)
	return append(b, ']')
}

func appendResults(b []byte, results []KGroupsJSON, depth int) []byte {
	if results == nil {
		return append(b, "null"...)
	}
	if len(results) == 0 {
		return append(b, "[]"...)
	}
	b = append(b, '[')
	for i := range results {
		if i > 0 {
			b = append(b, ',')
		}
		b = nl(b, depth+1)
		b = appendKGroups(b, &results[i], depth+1)
	}
	b = nl(b, depth)
	return append(b, ']')
}

func appendKGroups(b []byte, kg *KGroupsJSON, depth int) []byte {
	b = append(b, '{')
	b = nl(b, depth+1)
	b = append(b, `"k": `...)
	b = strconv.AppendInt(b, int64(kg.K), 10)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"groups": `...)
	if kg.Groups == nil {
		b = append(b, "null"...)
	} else if len(kg.Groups) == 0 {
		b = append(b, "[]"...)
	} else {
		b = append(b, '[')
		for i := range kg.Groups {
			if i > 0 {
				b = append(b, ',')
			}
			b = nl(b, depth+2)
			b = appendGroup(b, &kg.Groups[i], depth+2)
		}
		b = nl(b, depth+1)
		b = append(b, ']')
	}
	b = nl(b, depth)
	return append(b, '}')
}

func appendGroup(b []byte, g *GroupJSON, depth int) []byte {
	b = append(b, '{')
	b = nl(b, depth+1)
	b = append(b, `"pattern": `...)
	b = appendLabelMap(b, g.Pattern, depth+1)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"key": `...)
	b = appendJSONString(b, g.Key)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"size": `...)
	b = strconv.AppendInt(b, int64(g.Size), 10)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"top_k": `...)
	b = strconv.AppendInt(b, int64(g.TopK), 10)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"required": `...)
	b = appendJSONFloat(b, g.Required)
	b = append(b, ',')
	b = nl(b, depth+1)
	b = append(b, `"bias": `...)
	b = appendJSONFloat(b, g.Bias)
	b = nl(b, depth)
	return append(b, '}')
}

// appendLabelMap renders a map[string]string with keys in ascending byte
// order, exactly as encoding/json sorts map keys. Maps here hold one entry
// per bound attribute, so the insertion sort over a small stack-backed
// slice beats allocating and sorting a key slice per call.
func appendLabelMap(b []byte, m map[string]string, depth int) []byte {
	if m == nil {
		return append(b, "null"...)
	}
	if len(m) == 0 {
		return append(b, "{}"...)
	}
	var stack [16]string
	keys := stack[:0]
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = nl(b, depth+1)
		b = appendJSONString(b, k)
		b = append(b, `: `...)
		b = appendJSONString(b, m[k])
	}
	b = nl(b, depth)
	return append(b, '}')
}
