package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// OTLP/HTTP JSON export (https://opentelemetry.io/docs/specs/otlp/),
// hand-rolled against the proto3 JSON mapping so the daemon ships spans
// and metrics to any collector without pulling the OpenTelemetry SDK into
// the module. The mapping's sharp edges, encoded here so they are tested
// rather than remembered: trace/span IDs serialize as lowercase hex (the
// OTLP/JSON exception to proto3's base64 bytes rule), uint64 fields
// (unix nanos, bucket counts) serialize as decimal strings, and span kind
// / aggregation temporality are bare enum integers.

// OTLP span kinds and metric temporality (only the values we emit).
const (
	otlpKindInternal = 1
	otlpKindServer   = 2
	// cumulative: every point reports totals since exporter start, the
	// natural fit for monotone counters scraped from a live registry.
	otlpTemporalityCumulative = 2
	otlpStatusOK              = 1
	otlpStatusError           = 2
)

// ExporterCounters are the self-observation hooks: the service registers
// these series in its own registry (so the scrape documents the export
// pipeline) and hands them to the exporter. Any nil field is skipped.
type ExporterCounters struct {
	Dropped    *Counter    // traces discarded because the queue was full
	Retries    *Counter    // individual retry attempts after 429/5xx
	Exports    *CounterVec // successful POSTs by signal ("traces"/"metrics")
	Failures   *CounterVec // exhausted/permanent failures by signal
	QueueDepth *Gauge      // traces waiting in the queue
}

// ExporterConfig configures an Exporter. Endpoint is the collector base
// URL (the exporter appends /v1/traces and /v1/metrics); Registry, when
// set, is snapshotted every Interval and shipped as OTLP metrics.
type ExporterConfig struct {
	Endpoint      string
	Service       string        // resource service.name; default "rankfaird"
	Registry      *Registry     // optional metrics source
	Interval      time.Duration // metric export period; default 15s
	FlushInterval time.Duration // span batch flush period; default 2s
	QueueSize     int           // bounded trace queue; default 256
	BatchSize     int           // traces per POST; default 64
	MaxRetries    int           // retries after 429/5xx; default 3
	Counters      ExporterCounters
	Client        *http.Client            // default: 5s-timeout client
	Logger        *slog.Logger            // optional failure logging
	Now           func() time.Time        // test seam; default time.Now
	Backoff       func(int) time.Duration // test seam; default jittered exponential
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.Service == "" {
		c.Service = "rankfaird"
	}
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Backoff == nil {
		c.Backoff = func(attempt int) time.Duration {
			base := 100 * time.Millisecond << attempt
			return base + time.Duration(rand.Int63n(int64(base)))
		}
	}
	return c
}

// Exporter ships finished traces and periodic metric snapshots to an
// OTLP/HTTP collector from a single background goroutine. Enqueue never
// blocks: when the bounded queue is full the trace is dropped and
// counted, so a stalled collector can never stall an audit.
type Exporter struct {
	cfg   ExporterConfig
	queue chan *Trace
	stop  chan struct{}
	done  chan struct{}
	start time.Time
}

// NewExporter starts the export goroutine. Callers must Close it.
func NewExporter(cfg ExporterConfig) *Exporter {
	cfg = cfg.withDefaults()
	e := &Exporter{
		cfg:   cfg,
		queue: make(chan *Trace, cfg.QueueSize),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		start: cfg.Now(),
	}
	go e.run()
	return e
}

// EnqueueTrace hands a finished trace to the exporter without blocking.
// It reports false when the queue was full and the trace was dropped.
func (e *Exporter) EnqueueTrace(t *Trace) bool {
	select {
	case e.queue <- t:
		setGauge(e.cfg.Counters.QueueDepth, int64(len(e.queue)))
		return true
	default:
		incCounter(e.cfg.Counters.Dropped)
		return false
	}
}

// Close stops the exporter: it drains whatever the queue holds, ships the
// final span batch and one last metric snapshot, and waits for the
// goroutine to exit or the context to expire.
func (e *Exporter) Close(ctx context.Context) error {
	close(e.stop)
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Exporter) run() {
	defer close(e.done)
	flush := time.NewTicker(e.cfg.FlushInterval)
	defer flush.Stop()
	metrics := time.NewTicker(e.cfg.Interval)
	defer metrics.Stop()
	batch := make([]*Trace, 0, e.cfg.BatchSize)
	sendBatch := func() {
		if len(batch) == 0 {
			return
		}
		e.exportTraces(batch)
		batch = batch[:0]
	}
	for {
		select {
		case t := <-e.queue:
			setGauge(e.cfg.Counters.QueueDepth, int64(len(e.queue)))
			batch = append(batch, t)
			if len(batch) >= e.cfg.BatchSize {
				sendBatch()
			}
		case <-flush.C:
			sendBatch()
		case <-metrics.C:
			e.exportMetrics()
		case <-e.stop:
			for {
				select {
				case t := <-e.queue:
					batch = append(batch, t)
					if len(batch) >= e.cfg.BatchSize {
						sendBatch()
					}
					continue
				default:
				}
				break
			}
			sendBatch()
			e.exportMetrics()
			setGauge(e.cfg.Counters.QueueDepth, 0)
			return
		}
	}
}

func (e *Exporter) exportTraces(traces []*Trace) {
	body, err := OTLPTraceRequest(e.cfg.Service, traces)
	if err != nil {
		e.fail("traces", err)
		return
	}
	e.post("traces", "/v1/traces", body)
}

func (e *Exporter) exportMetrics() {
	if e.cfg.Registry == nil {
		return
	}
	body, err := OTLPMetricsRequest(e.cfg.Service, e.cfg.Registry.Snapshot(), e.start, e.cfg.Now())
	if err != nil {
		e.fail("metrics", err)
		return
	}
	e.post("metrics", "/v1/metrics", body)
}

// post ships one payload, retrying on 429 and 5xx with jittered backoff.
// Other statuses and transport errors fail immediately — resending a
// payload a collector has rejected as malformed only burns the queue.
func (e *Exporter) post(signal, path string, body []byte) {
	url := strings.TrimSuffix(e.cfg.Endpoint, "/") + path
	for attempt := 0; ; attempt++ {
		resp, err := e.cfg.Client.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code >= 200 && code < 300 {
				if v := e.cfg.Counters.Exports; v != nil {
					v.With(signal).Inc()
				}
				return
			}
			if code != http.StatusTooManyRequests && code < 500 {
				e.fail(signal, fmt.Errorf("collector returned %d", code))
				return
			}
			err = fmt.Errorf("collector returned %d", code)
		}
		if attempt >= e.cfg.MaxRetries {
			e.fail(signal, err)
			return
		}
		incCounter(e.cfg.Counters.Retries)
		select {
		case <-time.After(e.cfg.Backoff(attempt)):
		case <-e.stop:
			// Shutting down: one immediate final attempt, then give up.
			if attempt >= e.cfg.MaxRetries-1 {
				e.fail(signal, err)
				return
			}
		}
	}
}

func (e *Exporter) fail(signal string, err error) {
	if v := e.cfg.Counters.Failures; v != nil {
		v.With(signal).Inc()
	}
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn("otlp export failed", "signal", signal, "error", err)
	}
}

func incCounter(c *Counter) {
	if c != nil {
		c.Inc()
	}
}

func setGauge(g *Gauge, v int64) {
	if g != nil {
		g.Set(v)
	}
}

// --- OTLP JSON shapes -------------------------------------------------

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            *otlpStatus    `json:"status,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpTracePayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpNumberPoint struct {
	Attributes    []otlpKeyValue `json:"attributes,omitempty"`
	StartUnixNano string         `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano  string         `json:"timeUnixNano"`
	AsDouble      float64        `json:"asDouble"`
}

type otlpSum struct {
	DataPoints             []otlpNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpExemplar struct {
	TraceID      string  `json:"traceId,omitempty"`
	TimeUnixNano string  `json:"timeUnixNano"`
	AsDouble     float64 `json:"asDouble"`
}

type otlpHistogramPoint struct {
	Attributes     []otlpKeyValue `json:"attributes,omitempty"`
	StartUnixNano  string         `json:"startTimeUnixNano"`
	TimeUnixNano   string         `json:"timeUnixNano"`
	Count          string         `json:"count"`
	Sum            float64        `json:"sum"`
	BucketCounts   []string       `json:"bucketCounts"`
	ExplicitBounds []float64      `json:"explicitBounds"`
	Exemplars      []otlpExemplar `json:"exemplars,omitempty"`
}

type otlpHistogram struct {
	DataPoints             []otlpHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Sum         *otlpSum       `json:"sum,omitempty"`
	Gauge       *otlpGauge     `json:"gauge,omitempty"`
	Histogram   *otlpHistogram `json:"histogram,omitempty"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

type otlpMetricsPayload struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

const otlpScopeName = "rankfair/internal/obs"

func otlpResourceFor(service string) otlpResource {
	return otlpResource{Attributes: []otlpKeyValue{
		{Key: "service.name", Value: otlpAnyValue{StringValue: service}},
	}}
}

func unixNano(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// OTLPTraceRequest marshals finished traces as one ExportTraceServiceRequest.
// The root span exports as SERVER kind with a status derived from its
// outcome attribute; phase children export as INTERNAL.
func OTLPTraceRequest(service string, traces []*Trace) ([]byte, error) {
	spans := make([]otlpSpan, 0, len(traces)*4)
	for _, tr := range traces {
		traceID, recs := tr.Records()
		for _, rec := range recs {
			s := otlpSpan{
				TraceID:           traceID,
				SpanID:            rec.SpanID,
				ParentSpanID:      rec.ParentSpanID,
				Name:              rec.Name,
				Kind:              otlpKindInternal,
				StartTimeUnixNano: unixNano(rec.Start),
				EndTimeUnixNano:   unixNano(rec.End),
			}
			for _, a := range rec.Attrs {
				s.Attributes = append(s.Attributes, otlpKeyValue{Key: a.Key, Value: otlpAnyValue{StringValue: a.Value}})
			}
			if rec.Root {
				s.Kind = otlpKindServer
				switch outcome := attrValue(rec.Attrs, "outcome"); outcome {
				case "", "ok":
					s.Status = &otlpStatus{Code: otlpStatusOK}
				default:
					s.Status = &otlpStatus{Code: otlpStatusError, Message: outcome}
				}
			}
			spans = append(spans, s)
		}
	}
	payload := otlpTracePayload{ResourceSpans: []otlpResourceSpans{{
		Resource:   otlpResourceFor(service),
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: otlpScopeName}, Spans: spans}},
	}}}
	return json.Marshal(payload)
}

func attrValue(attrs []Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// OTLPMetricsRequest marshals one registry snapshot as an
// ExportMetricsServiceRequest: counters as cumulative monotone sums,
// gauges as gauges, histograms as cumulative histogram points carrying
// their per-bucket exemplars.
func OTLPMetricsRequest(service string, snaps []FamilySnapshot, start, now time.Time) ([]byte, error) {
	startNano, nowNano := unixNano(start), unixNano(now)
	metrics := make([]otlpMetric, 0, len(snaps))
	for _, f := range snaps {
		m := otlpMetric{Name: f.Name, Description: f.Help}
		switch f.Typ {
		case "counter":
			sum := &otlpSum{AggregationTemporality: otlpTemporalityCumulative, IsMonotonic: true}
			for _, p := range f.Points {
				sum.DataPoints = append(sum.DataPoints, otlpNumberPoint{
					Attributes:    pointAttrs(f.Label, p.Label),
					StartUnixNano: startNano,
					TimeUnixNano:  nowNano,
					AsDouble:      p.Value,
				})
			}
			m.Sum = sum
		case "gauge":
			g := &otlpGauge{}
			for _, p := range f.Points {
				g.DataPoints = append(g.DataPoints, otlpNumberPoint{
					Attributes:   pointAttrs(f.Label, p.Label),
					TimeUnixNano: nowNano,
					AsDouble:     p.Value,
				})
			}
			m.Gauge = g
		case "histogram":
			h := &otlpHistogram{AggregationTemporality: otlpTemporalityCumulative}
			for _, p := range f.Points {
				hp := otlpHistogramPoint{
					Attributes:     pointAttrs(f.Label, p.Label),
					StartUnixNano:  startNano,
					TimeUnixNano:   nowNano,
					Count:          strconv.FormatInt(p.Count, 10),
					Sum:            p.Sum,
					BucketCounts:   make([]string, len(p.Buckets)),
					ExplicitBounds: p.Bounds,
				}
				for i, n := range p.Buckets {
					hp.BucketCounts[i] = strconv.FormatInt(n, 10)
				}
				for _, ex := range p.Exemplars {
					if ex == nil {
						continue
					}
					hp.Exemplars = append(hp.Exemplars, otlpExemplar{
						TraceID:      ex.TraceID,
						TimeUnixNano: nowNano,
						AsDouble:     ex.Value,
					})
				}
				h.DataPoints = append(h.DataPoints, hp)
			}
			m.Histogram = h
		default:
			continue
		}
		metrics = append(metrics, m)
	}
	payload := otlpMetricsPayload{ResourceMetrics: []otlpResourceMetrics{{
		Resource:     otlpResourceFor(service),
		ScopeMetrics: []otlpScopeMetrics{{Scope: otlpScope{Name: otlpScopeName}, Metrics: metrics}},
	}}}
	return json.Marshal(payload)
}

func pointAttrs(label, value string) []otlpKeyValue {
	if label == "" {
		return nil
	}
	return []otlpKeyValue{{Key: label, Value: otlpAnyValue{StringValue: value}}}
}
