// Package rank implements the ranking substrate: the black-box Ranker
// interface consumed by the detection algorithms, and the concrete rankers
// used in the paper's experiments — attribute-score ranking (Student),
// normalized linear scoring with inverted attributes (COMPAS, following
// Asudeh et al. [4]), and externally supplied rankings (German Credit,
// which the paper takes from Yang & Stoyanovich [36]).
package rank

import (
	"errors"
	"fmt"
	"sort"

	"rankfair/internal/dataset"
)

// Ranker produces a total order over the tuples of a table. The detection
// algorithms treat it as a black box (the problems are model agnostic).
type Ranker interface {
	// Rank returns a permutation of the row indices of t, best first.
	Rank(t *dataset.Table) ([]int, error)
}

// ByColumns ranks rows lexicographically by a sequence of numeric column
// sort keys, mirroring the paper's running example ("rank students by their
// grades; in the case of similar grades, students with fewer failures are
// ranked higher"). Ties after all keys break by ascending row index so
// rankings are deterministic.
type ByColumns struct {
	Keys []ColumnKey
}

// ColumnKey is one lexicographic sort key of a ByColumns ranker.
type ColumnKey struct {
	// Column names a numeric column of the table.
	Column string
	// Descending ranks larger values first when true.
	Descending bool
}

// Rank implements Ranker.
func (r *ByColumns) Rank(t *dataset.Table) ([]int, error) {
	if len(r.Keys) == 0 {
		return nil, errors.New("rank: ByColumns needs at least one key")
	}
	cols := make([]*dataset.Column, len(r.Keys))
	for i, k := range r.Keys {
		c := t.ColumnByName(k.Column)
		if c == nil {
			return nil, fmt.Errorf("rank: no column %q", k.Column)
		}
		if c.Kind != dataset.Numeric {
			return nil, fmt.Errorf("rank: column %q is %s, want numeric", k.Column, c.Kind)
		}
		cols[i] = c
	}
	perm := identity(t.NumRows())
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		for i, k := range r.Keys {
			va, vb := cols[i].Floats[ia], cols[i].Floats[ib]
			if va == vb {
				continue
			}
			if k.Descending {
				return va > vb
			}
			return va < vb
		}
		return ia < ib
	})
	return perm, nil
}

// Linear ranks rows by a weighted sum of min-max normalized numeric
// attributes, the scheme the paper uses for COMPAS: "Values are normalized
// as (val-min)/(max-min). Higher values correspond to higher scores, except
// for age" (Sec. VI-A). Attributes listed in Inverted contribute 1-norm.
type Linear struct {
	// Columns are the numeric scoring attributes.
	Columns []string
	// Weights are per-column weights; nil means all 1.
	Weights []float64
	// Inverted lists columns whose normalized value is flipped (lower raw
	// value scores higher), e.g. age in the COMPAS ranking.
	Inverted []string
}

// Scores computes the per-row score of the ranker without sorting.
func (r *Linear) Scores(t *dataset.Table) ([]float64, error) {
	if len(r.Columns) == 0 {
		return nil, errors.New("rank: Linear needs at least one column")
	}
	if r.Weights != nil && len(r.Weights) != len(r.Columns) {
		return nil, fmt.Errorf("rank: %d weights for %d columns", len(r.Weights), len(r.Columns))
	}
	inv := make(map[string]bool, len(r.Inverted))
	for _, n := range r.Inverted {
		inv[n] = true
	}
	scores := make([]float64, t.NumRows())
	for j, name := range r.Columns {
		c := t.ColumnByName(name)
		if c == nil {
			return nil, fmt.Errorf("rank: no column %q", name)
		}
		if c.Kind != dataset.Numeric {
			return nil, fmt.Errorf("rank: column %q is %s, want numeric", name, c.Kind)
		}
		lo, hi := minMax(c.Floats)
		span := hi - lo
		w := 1.0
		if r.Weights != nil {
			w = r.Weights[j]
		}
		for i, v := range c.Floats {
			norm := 0.0
			if span > 0 {
				norm = (v - lo) / span
			}
			if inv[name] {
				norm = 1 - norm
			}
			scores[i] += w * norm
		}
	}
	return scores, nil
}

// Rank implements Ranker: tuples are ranked descending by score, ties by
// ascending row index.
func (r *Linear) Rank(t *dataset.Table) ([]int, error) {
	scores, err := r.Scores(t)
	if err != nil {
		return nil, err
	}
	return ByScoresDesc(scores), nil
}

// Fixed wraps an externally produced ranking (e.g. the creditworthiness
// ranking of [36] for German Credit). It validates that the permutation
// matches the table size.
type Fixed struct {
	Perm []int
}

// Rank implements Ranker.
func (r *Fixed) Rank(t *dataset.Table) ([]int, error) {
	if len(r.Perm) != t.NumRows() {
		return nil, fmt.Errorf("rank: fixed ranking has %d entries, table has %d rows", len(r.Perm), t.NumRows())
	}
	seen := make([]bool, len(r.Perm))
	for _, ri := range r.Perm {
		if ri < 0 || ri >= len(seen) || seen[ri] {
			return nil, fmt.Errorf("rank: fixed ranking is not a permutation (index %d)", ri)
		}
		seen[ri] = true
	}
	out := make([]int, len(r.Perm))
	copy(out, r.Perm)
	return out, nil
}

// ByScoresDesc returns the permutation of indices ordering scores
// descending, ties broken by ascending index.
func ByScoresDesc(scores []float64) []int {
	perm := identity(len(scores))
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return perm
}

// Positions inverts a ranking permutation: Positions(r)[row] is the
// 0-based rank of the row (0 = best).
func Positions(ranking []int) []int {
	pos := make([]int, len(ranking))
	for i, ri := range ranking {
		pos[ri] = i
	}
	return pos
}

func identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
