package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/pattern"
)

func testSpace() *pattern.Space {
	return &pattern.Space{Names: []string{"A", "B", "C"}, Cards: []int{2, 3, 2}}
}

func TestEncoder(t *testing.T) {
	enc := NewEncoder(testSpace())
	if enc.Width() != 7 {
		t.Fatalf("width = %d, want 7", enc.Width())
	}
	if enc.NumAttrs() != 3 {
		t.Fatalf("attrs = %d", enc.NumAttrs())
	}
	lo, hi := enc.AttrColumns(1)
	if lo != 2 || hi != 5 {
		t.Errorf("attr 1 columns = [%d,%d), want [2,5)", lo, hi)
	}
	x := make([]float64, enc.Width())
	enc.Encode([]int32{1, 2, 0}, x)
	want := []float64{0, 1, 0, 0, 1, 1, 0}
	for i, w := range want {
		if x[i] != w {
			t.Errorf("x[%d] = %v, want %v", i, x[i], w)
		}
	}
	X := enc.EncodeAll([][]int32{{0, 0, 0}, {1, 2, 1}})
	if len(X) != 2 || X[0][0] != 1 || X[1][6] != 1 {
		t.Errorf("EncodeAll wrong: %v", X)
	}
}

func TestRidgeRecoversLinearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	enc := NewEncoder(testSpace())
	n := 400
	rows := make([][]int32, n)
	y := make([]float64, n)
	// Ground truth: per-value effects.
	effA := []float64{0, 4}
	effB := []float64{-2, 0, 3}
	effC := []float64{1, -1}
	for i := range rows {
		r := []int32{int32(rng.Intn(2)), int32(rng.Intn(3)), int32(rng.Intn(2))}
		rows[i] = r
		y[i] = 10 + effA[r[0]] + effB[r[1]] + effC[r[2]]
	}
	X := enc.EncodeAll(rows)
	m, err := FitRidge(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range rows {
		e := math.Abs(m.Predict(X[i]) - y[i])
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Errorf("max prediction error %v on noiseless linear target", maxErr)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	enc := NewEncoder(&pattern.Space{Names: []string{"A"}, Cards: []int{2}})
	X := enc.EncodeAll([][]int32{{0}, {1}, {0}, {1}})
	y := []float64{0, 10, 0, 10}
	small, err := FitRidge(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	big, err := FitRidge(X, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if norm(big.Weights) >= norm(small.Weights) {
		t.Errorf("heavy regularization should shrink weights: %v vs %v", norm(big.Weights), norm(small.Weights))
	}
	// Heavily regularized model predicts near the mean.
	if math.Abs(big.Predict(X[0])-5) > 0.1 {
		t.Errorf("heavily regularized prediction %v, want ~5", big.Predict(X[0]))
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func TestRidgeErrors(t *testing.T) {
	if _, err := FitRidge(nil, nil, 1); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("zero lambda should fail")
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	X := [][]float64{}
	y := []float64{}
	for i := 0; i < 40; i++ {
		v := float64(i) / 40
		X = append(X, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 9)
		}
	}
	tr, err := FitTree(X, y, TreeParams{MaxDepth: 3, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0.1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Predict(0.1) = %v, want 1", got)
	}
	if got := tr.Predict([]float64{0.9}); math.Abs(got-9) > 1e-9 {
		t.Errorf("Predict(0.9) = %v, want 9", got)
	}
	if tr.NumNodes() < 3 {
		t.Errorf("tree too small: %d nodes", tr.NumNodes())
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 10, 10}
	tr, err := FitTree(X, y, TreeParams{MaxDepth: 5, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("MinLeaf=4 on 4 samples must yield a stump, got %d nodes", tr.NumNodes())
	}
	if got := tr.Predict([]float64{0}); math.Abs(got-5) > 1e-9 {
		t.Errorf("stump predicts %v, want mean 5", got)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}}
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 7
	}
	tr, err := FitTree(X, y, TreeParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("constant target should not split, got %d nodes", tr.NumNodes())
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeParams{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeParams{}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// TestQuickTreePredictionsWithinRange: tree predictions always lie within
// [min(y), max(y)] (leaf values are means of subsets).
func TestQuickTreePredictionsWithinRange(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.Float64()
			}
			y[i] = rng.NormFloat64() * 10
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		tr, err := FitTree(X, y, TreeParams{MaxDepth: 4, MinLeaf: 2})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = rng.Float64()
			}
			p := tr.Predict(x)
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRidgePredictionFiniteAndDeterministic: fitting the same data
// twice yields identical models with finite predictions.
func TestQuickRidgeDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		enc := NewEncoder(testSpace())
		n := 20 + rng.Intn(50)
		rows := make([][]int32, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []int32{int32(rng.Intn(2)), int32(rng.Intn(3)), int32(rng.Intn(2))}
			y[i] = rng.NormFloat64()
		}
		X := enc.EncodeAll(rows)
		m1, err := FitRidge(X, y, 0.5)
		if err != nil {
			return false
		}
		m2, err := FitRidge(X, y, 0.5)
		if err != nil {
			return false
		}
		for j := range m1.Weights {
			if m1.Weights[j] != m2.Weights[j] || math.IsNaN(m1.Weights[j]) {
				return false
			}
		}
		return m1.Intercept == m2.Intercept && !math.IsNaN(m1.Predict(X[0]))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
