package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.String()
}

func TestCounterRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "Things.")
	c.Inc()
	c.Add(4)
	out := render(t, r)
	want := "# HELP x_total Things.\n# TYPE x_total counter\nx_total 5\n"
	if out != want {
		t.Fatalf("render mismatch:\n got %q\nwant %q", out, want)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounterFunc("esc_total", "line one\nback\\slash", func() int64 { return 1 })
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total line one\nback\\slash`+"\n") {
		t.Fatalf("HELP not escaped: %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("escaped newline leaked into output: %q", out)
	}
}

func TestCounterVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("errs_total", "Errors by class.", "class")
	v.With("5xx").Add(2)
	v.With("4xx").Inc()
	out := render(t, r)
	// Label values render sorted, so scrapes are deterministic.
	i4, i5 := strings.Index(out, `errs_total{class="4xx"} 1`), strings.Index(out, `errs_total{class="5xx"} 2`)
	if i4 < 0 || i5 < 0 || i4 > i5 {
		t.Fatalf("vec rendering wrong:\n%s", out)
	}
	if v.With("4xx") != v.With("4xx") {
		t.Fatal("With not stable")
	}
}

// TestHistogramZeroObservations: an untouched histogram must still render
// a full, valid family — all buckets 0, sum 0, count 0.
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("lat_seconds", "Latency.", []float64{0.1, 1})
	out := render(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 0`,
		`lat_seconds_bucket{le="1"} 0`,
		`lat_seconds_bucket{le="+Inf"} 0`,
		"lat_seconds_sum 0",
		"lat_seconds_count 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramBoundaries: a value equal to a bucket bound belongs to that
// bucket (le is inclusive), and values beyond every bound land only in
// +Inf.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "H.", []float64{0.1, 1, 10})
	h.Observe(0.1) // exactly on the first bound: le="0.1" must include it
	h.Observe(0.5)
	h.Observe(10) // exactly on the last bound
	h.Observe(99) // overflow: +Inf only
	out := render(t, r)
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="10"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		"h_seconds_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got, want := h.Sum(), 0.1+0.5+10+99; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramConcurrent hammers one histogram from 8 goroutines; under
// -race this doubles as the data-race check for the CAS-maintained sum.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("c_seconds", "C.", []float64{1, 2, 4})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%5) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	// Each goroutine contributes perWorker*(w%5+0.5); all addends are
	// exactly representable, so the sum must be exact too.
	want := 0.0
	for w := 0; w < workers; w++ {
		want += perWorker * (float64(w%5) + 0.5)
	}
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("req_seconds", "Req.", "endpoint", []float64{1})
	v.With("GET /v1/x").Observe(0.5)
	v.With(`odd"label`).Observe(2)
	out := render(t, r)
	if !strings.Contains(out, `req_seconds_bucket{endpoint="GET /v1/x",le="1"} 1`+"\n") {
		t.Errorf("labeled bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `req_seconds_sum{endpoint="GET /v1/x"} 0.5`+"\n") {
		t.Errorf("labeled sum missing:\n%s", out)
	}
	if !strings.Contains(out, `req_seconds_bucket{endpoint="odd\"label",le="+Inf"} 1`+"\n") {
		t.Errorf("label escaping missing:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "A.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "B.")
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "app_")
	out := render(t, r)
	for _, name := range []string{"app_goroutines", "app_heap_alloc_bytes", "app_heap_objects", "app_gc_cycles_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("missing runtime gauge %s:\n%s", name, out)
		}
	}
}

func TestGaugeVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("inflight", "Inflight by class.", "class")
	v.With("audit").Add(3)
	v.With("read").Inc()
	v.With("audit").Dec()
	out := render(t, r)
	want := "# HELP inflight Inflight by class.\n# TYPE inflight gauge\n" +
		`inflight{class="audit"} 2` + "\n" + `inflight{class="read"} 1` + "\n"
	if out != want {
		t.Fatalf("render mismatch:\n got %q\nwant %q", out, want)
	}
}

func TestGaugeSet(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("level", "A level.")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("Value() = %d, want 5", g.Value())
	}
	if !strings.Contains(render(t, r), "level 5\n") {
		t.Fatal("gauge sample missing from render")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", q)
	}
	// 10 observations uniformly in (1,2]: the median interpolates to the
	// middle of that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if q := h.Quantile(0.5); q != 1.5 {
		t.Fatalf("single-bucket median = %v, want 1.5", q)
	}
	// Add 10 observations in (4,8]: p25 stays in the first bucket, p75
	// lands in the (4,8] bucket, p100 hits its upper bound.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.25); q < 1 || q > 2 {
		t.Fatalf("p25 = %v, want inside (1,2]", q)
	}
	if q := h.Quantile(0.75); q < 4 || q > 8 {
		t.Fatalf("p75 = %v, want inside (4,8]", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want 8", q)
	}
	// An observation beyond every bound caps at the top finite bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 with +Inf observation = %v, want top finite bound 8", q)
	}
}
