package rankfair

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"rankfair/internal/pattern"
)

// Measure names for AuditParams.Measure, matching the biasdetect CLI
// vocabulary and the rankfaird audit API.
const (
	MeasureGlobal      = "global"
	MeasureProp        = "prop"
	MeasureGlobalUpper = "global-upper"
	MeasurePropUpper   = "prop-upper"
	MeasureExposure    = "exposure"
)

// Measures lists every measure name accepted by AuditParams, in a stable
// order.
func Measures() []string {
	return []string{MeasureGlobal, MeasureProp, MeasureGlobalUpper, MeasurePropUpper, MeasureExposure}
}

// AuditParams is the measure-tagged, JSON-serializable union of the five
// detection parameter sets. It is the wire format shared by the rankfaird
// audit service and any tooling that persists or replays detection
// requests; Analyst.Detect dispatches it to the matching typed entry point.
type AuditParams struct {
	// Measure selects the fairness measure: one of Measures().
	Measure string `json:"measure"`
	// MinSize is the size threshold τs on s_D(p).
	MinSize int `json:"min_size"`
	// KMin, KMax delimit the inclusive range of k values.
	KMin int `json:"kmin"`
	KMax int `json:"kmax"`
	// Alpha is the proportional lower slack (prop, exposure).
	Alpha float64 `json:"alpha,omitempty"`
	// Beta is the proportional upper slack (prop-upper).
	Beta float64 `json:"beta,omitempty"`
	// Lower holds L_k per k, indexed k-KMin (global).
	Lower []int `json:"lower,omitempty"`
	// Upper holds U_k per k, indexed k-KMin (global-upper).
	Upper []int `json:"upper,omitempty"`
	// Baseline selects the ITERTD baseline over the optimized algorithm
	// where both exist (global, prop, exposure).
	Baseline bool `json:"baseline,omitempty"`
	// Workers caps the goroutines one detection run may fan its lattice
	// search out over: 0 defers to the caller's default (rankfaird
	// substitutes its configured per-audit default; direct library calls
	// run serially), 1 forces the serial path, and larger values enable
	// the parallel search, whose results are byte-identical to serial.
	// Because it never changes results — only wall clock — Workers is
	// deliberately excluded from CacheKey.
	Workers int `json:"workers,omitempty"`
}

// MaxWorkers bounds AuditParams.Workers; it exists so a malformed request
// cannot make the daemon spawn an absurd number of goroutines.
const MaxWorkers = 256

// Validate checks the parameter set for structural errors without touching
// a dataset, so servers can reject bad requests before queueing work.
func (p *AuditParams) Validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("rankfair: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("rankfair: negative size threshold %d", p.MinSize)
	}
	if p.Workers < 0 || p.Workers > MaxWorkers {
		return fmt.Errorf("rankfair: workers must be in [0,%d], got %d", MaxWorkers, p.Workers)
	}
	switch p.Measure {
	case MeasureGlobal:
		if len(p.Lower) != p.KMax-p.KMin+1 {
			return fmt.Errorf("rankfair: %d lower bounds for k range [%d,%d]", len(p.Lower), p.KMin, p.KMax)
		}
	case MeasureGlobalUpper:
		if len(p.Upper) != p.KMax-p.KMin+1 {
			return fmt.Errorf("rankfair: %d upper bounds for k range [%d,%d]", len(p.Upper), p.KMin, p.KMax)
		}
		if p.Baseline {
			return fmt.Errorf("rankfair: measure %q has no baseline variant", p.Measure)
		}
	case MeasureProp, MeasureExposure:
		if p.Alpha <= 0 {
			return fmt.Errorf("rankfair: alpha must be positive, got %v", p.Alpha)
		}
	case MeasurePropUpper:
		if p.Beta <= 0 {
			return fmt.Errorf("rankfair: beta must be positive, got %v", p.Beta)
		}
		if p.Baseline {
			return fmt.Errorf("rankfair: measure %q has no baseline variant", p.Measure)
		}
	default:
		return fmt.Errorf("rankfair: unknown measure %q (want %s)", p.Measure, strings.Join(Measures(), "|"))
	}
	return nil
}

// CacheKey renders the parameter set as a canonical string: equal keys iff
// the parameters select the same computation. Result caches combine it
// with a dataset content hash and a ranker key. Workers is intentionally
// absent: the parallel search returns byte-identical results, so audits
// differing only in fan-out must share one cache entry.
func (p *AuditParams) CacheKey() string {
	var b strings.Builder
	b.WriteString(p.Measure)
	b.WriteString("|ts=")
	b.WriteString(strconv.Itoa(p.MinSize))
	b.WriteString("|k=")
	b.WriteString(strconv.Itoa(p.KMin))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(p.KMax))
	switch p.Measure {
	case MeasureProp, MeasureExposure:
		b.WriteString("|a=")
		b.WriteString(strconv.FormatFloat(p.Alpha, 'g', -1, 64))
	case MeasurePropUpper:
		b.WriteString("|b=")
		b.WriteString(strconv.FormatFloat(p.Beta, 'g', -1, 64))
	case MeasureGlobal:
		b.WriteString("|L=")
		writeIntSeq(&b, p.Lower)
	case MeasureGlobalUpper:
		b.WriteString("|U=")
		writeIntSeq(&b, p.Upper)
	}
	if p.Baseline {
		b.WriteString("|base")
	}
	return b.String()
}

func writeIntSeq(b *strings.Builder, xs []int) {
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
}

// ReportJSON is the serialized form of a detection report, suitable for
// dashboards and downstream tooling. Groups carry both machine-readable
// keys and human-readable attribute/label maps, enriched with the sizes
// and bias magnitudes of InfoAt.
type ReportJSON struct {
	// Measure names the fairness measure that produced the report.
	Measure string `json:"measure"`
	// KMin, KMax delimit the examined range of k.
	KMin int `json:"kmin"`
	KMax int `json:"kmax"`
	// Attributes lists the pattern space, in order.
	Attributes []string `json:"attributes"`
	// NodesExamined and FullSearches mirror the work statistics.
	NodesExamined int64 `json:"nodes_examined"`
	FullSearches  int   `json:"full_searches"`
	// Results holds one entry per k with a non-empty (or changed) result
	// set; consumers index by K.
	Results []KGroupsJSON `json:"results"`
	// Stats carries the run's search observability counters and, when the
	// serving layer fills them in, per-phase wall-clock timings. Nil when
	// the run disabled stats collection; the key is then omitted, keeping
	// the rest of the document unchanged.
	Stats *SearchStatsJSON `json:"stats,omitempty"`
}

// SearchStatsJSON is the serialized form of core.SearchStats plus optional
// phase timings. Unlike NodesExamined/FullSearches these counters are
// engine-dependent by design, so equivalence comparisons across engines
// must strip the "stats" key before diffing documents. SearchStats.Workers
// is deliberately NOT serialized: every counter here is identical for
// every worker count, and keeping the document fan-out-independent is what
// lets audits differing only in Workers share one cache entry (the same
// reason AuditParams.CacheKey omits Workers). In-process consumers read
// the width from Report.Search.Workers.
type SearchStatsJSON struct {
	Strategy             string            `json:"strategy"`
	NodesExpanded        int64             `json:"nodes_expanded"`
	PrunedSize           int64             `json:"pruned_size"`
	PrunedBound          int64             `json:"pruned_bound"`
	PrunedDominated      int64             `json:"pruned_dominated"`
	PostingIntersections int64             `json:"posting_intersections"`
	CountOnlyPasses      int64             `json:"count_only_passes"`
	LazyScatters         int64             `json:"lazy_scatters"`
	BitmapPasses         int64             `json:"bitmap_passes"`
	SlicePasses          int64             `json:"slice_passes"`
	FrontierByLevel      []int64           `json:"frontier_by_level,omitempty"`
	PhaseMS              *PhaseTimingsJSON `json:"phase_ms,omitempty"`
}

// PhaseTimingsJSON holds per-phase wall-clock milliseconds of one audit,
// filled by the serving layer (the library leaves it nil).
type PhaseTimingsJSON struct {
	Analyst   float64 `json:"analyst"`
	Search    float64 `json:"search"`
	Serialize float64 `json:"serialize"`
}

// KGroupsJSON is one k's result set.
type KGroupsJSON struct {
	K      int         `json:"k"`
	Groups []GroupJSON `json:"groups"`
}

// GroupJSON is one detected group.
type GroupJSON struct {
	// Pattern maps attribute names to value labels (raw codes when the
	// analyst has no dictionaries).
	Pattern map[string]string `json:"pattern"`
	// Key is the canonical pattern encoding (pattern.ParseKey inverts it).
	Key string `json:"key"`
	// Size, TopK, Required and Bias mirror GroupInfo.
	Size     int     `json:"size"`
	TopK     int     `json:"top_k"`
	Required float64 `json:"required"`
	Bias     float64 `json:"bias"`
}

// measureName renders the report kind.
func (r *Report) measureName() string {
	switch r.kind {
	case kindGlobalLower:
		return "global-lower"
	case kindPropLower:
		return "proportional-lower"
	case kindGlobalUpper:
		return "global-upper"
	case kindPropUpper:
		return "proportional-upper"
	case kindExposure:
		return "exposure"
	default:
		return "unknown"
	}
}

// ToJSON converts the report to its serializable form. On the indexed path
// every per-group constant — canonical key, attribute→label map, size — is
// precomputed once per distinct group (see groupCounts), so a k level
// costs struct copies plus the per-k numbers; the naive path rebuilds
// everything per (group, k) and is kept as the differential baseline.
// Returned Pattern maps are independent copies, safe for callers to
// mutate, exactly as before the per-group precomputation.
func (r *Report) ToJSON() *ReportJSON {
	out := r.toJSONShared()
	// Unshare the cached label maps: one clone per (group, k) entry keeps
	// the public contract (mutating one entry affects nothing else) while
	// the hot internal path (WriteJSON) keeps the shared maps.
	for _, kg := range out.Results {
		for i := range kg.Groups {
			shared := kg.Groups[i].Pattern
			cloned := make(map[string]string, len(shared))
			for k, v := range shared {
				cloned[k] = v
			}
			kg.Groups[i].Pattern = cloned
		}
	}
	return out
}

// toJSONShared builds the serializable form with GroupJSON.Pattern
// aliasing the report's cached per-group label maps. Internal consumers
// (the streaming encoder) only read them.
func (r *Report) toJSONShared() *ReportJSON {
	out := &ReportJSON{
		Measure:       r.measureName(),
		KMin:          r.KMin,
		KMax:          r.KMax,
		Attributes:    append([]string(nil), r.analyst.in.Space.Names...),
		NodesExamined: r.Stats.NodesExamined,
		FullSearches:  r.Stats.FullSearches,
	}
	if s := r.Search; s != nil {
		out.Stats = &SearchStatsJSON{
			Strategy:             s.Strategy,
			NodesExpanded:        s.NodesExpanded,
			PrunedSize:           s.PrunedSize,
			PrunedBound:          s.PrunedBound,
			PrunedDominated:      s.PrunedDominated,
			PostingIntersections: s.PostingIntersections,
			CountOnlyPasses:      s.CountOnlyPasses,
			LazyScatters:         s.LazyScatters,
			BitmapPasses:         s.BitmapPasses,
			SlicePasses:          s.SlicePasses,
		}
		if len(s.FrontierByLevel) > 0 {
			out.Stats.FrontierByLevel = append([]int64(nil), s.FrontierByLevel...)
		}
	}
	for k := r.KMin; k <= r.KMax; k++ {
		var kg KGroupsJSON
		if r.naiveCounts {
			kg = r.kGroupsNaive(k)
		} else {
			items := r.enrichedAt(k)
			if len(items) == 0 {
				continue
			}
			kg = KGroupsJSON{K: k, Groups: make([]GroupJSON, len(items))}
			for i, it := range items {
				kg.Groups[i] = GroupJSON{
					Pattern:  it.le.gc.labels,
					Key:      it.le.key,
					Size:     it.info.Size,
					TopK:     it.info.TopK,
					Required: it.info.Required,
					Bias:     it.info.Bias,
				}
			}
		}
		if len(kg.Groups) == 0 {
			continue
		}
		out.Results = append(out.Results, kg)
	}
	return out
}

// kGroupsNaive is the pre-index per-k serialization, preserved verbatim as
// the differential baseline: label maps and keys rebuilt per (group, k).
func (r *Report) kGroupsNaive(k int) KGroupsJSON {
	infos := r.InfoAt(k)
	if len(infos) == 0 {
		return KGroupsJSON{}
	}
	kg := KGroupsJSON{K: k, Groups: make([]GroupJSON, len(infos))}
	for i, info := range infos {
		assigns := make(map[string]string, info.Pattern.NumAttrs())
		for _, a := range info.Pattern.Attrs() {
			label := strconv.Itoa(int(info.Pattern[a]))
			if r.analyst.dicts != nil && a < len(r.analyst.dicts) && int(info.Pattern[a]) < len(r.analyst.dicts[a]) {
				label = r.analyst.dicts[a][info.Pattern[a]]
			}
			assigns[r.analyst.in.Space.Names[a]] = label
		}
		kg.Groups[i] = GroupJSON{
			Pattern:  assigns,
			Key:      info.Pattern.Key(),
			Size:     info.Size,
			TopK:     info.TopK,
			Required: info.Required,
			Bias:     info.Bias,
		}
	}
	return kg
}

// WriteJSON writes the report as indented JSON: one pooled buffer, one
// Write. The hand-rolled encoder (appendReportJSON) produces output
// byte-identical to encoding/json's indented encoder — including HTML
// escaping, map-key ordering and float formatting — without reflection or
// per-call buffer growth; TestAppendReportJSONMatchesEncodingJSON holds it
// to that contract.
func (r *Report) WriteJSON(w io.Writer) error {
	buf := encBuf.Get().(*[]byte)
	out := appendReportJSON((*buf)[:0], r.toJSONShared())
	out = append(out, '\n') // json.Encoder.Encode terminates with a newline
	_, err := w.Write(out)
	*buf = out[:0]
	encBuf.Put(buf)
	return err
}

// ParseGroupKey decodes a GroupJSON key back into a Pattern over the
// analyst's space, validating width and value ranges.
func (a *Analyst) ParseGroupKey(key string) (Pattern, error) {
	p, err := pattern.ParseKey(key)
	if err != nil {
		return nil, err
	}
	if len(p) != a.in.Space.NumAttrs() {
		return nil, fmt.Errorf("rankfair: key has %d attributes, space has %d", len(p), a.in.Space.NumAttrs())
	}
	for i, v := range p {
		if v != Unbound && int(v) >= a.in.Space.Cards[i] {
			return nil, fmt.Errorf("rankfair: key binds attribute %q to out-of-domain value %d", a.in.Space.Names[i], v)
		}
	}
	return p, nil
}
