// Scholarship audit: the paper's motivating scenario at full scale. An
// excellence-scholarship committee ranks students by final grade; the
// award list should be diverse for every cutoff k, not just one. This
// example detects under-represented groups across the whole k range, then
// explains the most persistent one with Shapley values (Section V).
//
// Run with:
//
//	go run ./examples/scholarship
package main

import (
	"fmt"
	"log"

	"rankfair"
	"rankfair/internal/synth"
)

func main() {
	// A synthetic cohort with the schema of the UCI Student Performance
	// data (the paper's Student dataset).
	bundle := synth.Students(synth.DefaultStudentRows, 7)
	analyst, err := rankfair.New(bundle.Table, bundle.Ranker)
	check(err)

	// Scholarships are awarded down the list; positions matter for the
	// amount, so every prefix k in [10, 49] must be fair. A group of at
	// least 50 students is expected to hold at least its proportional
	// share of each prefix, with slack α = 0.8.
	report, err := analyst.DetectProportional(rankfair.PropParams{
		MinSize: 50,
		KMin:    10, KMax: 49,
		Alpha: 0.8,
	})
	check(err)

	// Summarize: how many prefixes is each group under-represented in?
	persistence := map[string]int{}
	var order []string
	var sample = map[string]rankfair.Pattern{}
	for k := 10; k <= 49; k++ {
		for _, g := range report.At(k) {
			key := report.Format(g)
			if persistence[key] == 0 {
				order = append(order, key)
				sample[key] = g
			}
			persistence[key]++
		}
	}
	fmt.Println("groups under-represented in the scholarship list (by #prefixes affected):")
	worst, worstKey := 0, ""
	for _, key := range order {
		fmt.Printf("  %-45s %2d of 40 prefixes\n", key, persistence[key])
		if persistence[key] > worst {
			worst, worstKey = persistence[key], key
		}
	}
	if worstKey == "" {
		fmt.Println("  (none — the ranking is proportionally fair for every k)")
		return
	}

	// Explain the most persistent group: which attributes drive its
	// members' rank positions?
	fmt.Printf("\nexplaining %s:\n", worstKey)
	expl, err := analyst.Explain(sample[worstKey], 49, rankfair.ExplainOptions{Seed: 7})
	check(err)
	fmt.Println("top attributes by aggregated Shapley value (positive pushes down the list):")
	for _, s := range expl.Shapley {
		fmt.Printf("  %-12s %+8.2f\n", s.Name, s.Value)
	}
	fmt.Println()
	fmt.Print(expl.Comparison.Render())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
