// Package store is the durability layer under the service: a
// dependency-free, content-addressed on-disk store that persists dataset
// generations as append chains — one blob per content (the seed CSV, then
// each batch's canonical CSV rendering), named by its SHA-256 hex and
// linked through the same Version/Parent hash chain the registry
// maintains in memory — plus, optionally, serialized audit results keyed
// by the service's (dataset hash | ranker | params) cache-key scheme.
//
// Layout under the root directory:
//
//	blobs/<hh>/<hash>  content blobs, <hh> the first two hex digits
//	MANIFEST           append-only JSON-lines WAL, fsync'd per record
//
// Every mutation follows the same two-step discipline: the blob is made
// durable first (written to a temp file, fsync'd, renamed into its
// content-hash name, directory fsync'd), and only then is the manifest
// record appended and fsync'd. A crash between the two leaves an orphan
// blob, which recovery ignores (and a later write of the same content
// silently adopts — content addressing makes the retry idempotent). A
// crash mid-record leaves a torn manifest tail, which recovery truncates.
// A record whose blob is missing or the wrong size — possible only if the
// filesystem reordered the rename past the manifest append — is dropped,
// and because every append names its parent, dropping one generation
// consistently drops everything chained after it: reboot always lands on
// a prefix of each dataset's generation chain.
//
// All disk access goes through a fault.FS seam (OpenFS): production uses
// the fault.OS passthrough, chaos tests substitute a fault.FaultFS to
// inject errors, latency, and torn writes. Failures caused by the
// filesystem — as opposed to logical rejections like a parent mismatch —
// are wrapped in IOError so the service's retry and circuit-breaker
// policies can tell the two apart.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"rankfair/internal/fault"
)

const (
	manifestName = "MANIFEST"
	blobDirName  = "blobs"
)

// Generation is one link of a dataset's persisted append chain. Hash is
// the content hash of the generation's full CSV (what the registry calls
// DatasetInfo.Hash); Blob names the content blob backing the *step* to
// this generation — the whole seed CSV for the first link, the appended
// batch's CSV rendering for every later one — so replaying the chain
// reads exactly the bytes each append carried, never the concatenation.
type Generation struct {
	// Hash is the generation's full-content hash (chain identity).
	Hash string `json:"hash"`
	// Parent is the previous generation's Hash; empty for the seed.
	Parent string `json:"parent,omitempty"`
	// Blob is the content-hash name of the backing blob.
	Blob string `json:"blob"`
	// Size is the blob's byte length, recorded so recovery can reject a
	// torn blob with one stat instead of a full read.
	Size int64 `json:"size"`
	// Meta is the owner's opaque record (the service persists the
	// generation's DatasetInfo plus the seed's decode options here).
	Meta json.RawMessage `json:"meta,omitempty"`
}

// walRecord is one manifest line.
type walRecord struct {
	// Op is "seed", "append", "evict" or "cache".
	Op      string          `json:"op"`
	Dataset string          `json:"dataset,omitempty"`
	Hash    string          `json:"hash,omitempty"`
	Parent  string          `json:"parent,omitempty"`
	Blob    string          `json:"blob,omitempty"`
	Size    int64           `json:"size,omitempty"`
	Meta    json.RawMessage `json:"meta,omitempty"`
	// Key is the result-cache key for "cache" records.
	Key string `json:"key,omitempty"`
}

// Stats is a point-in-time snapshot of the store's I/O counters.
type Stats struct {
	// BlobWrites and BlobWriteBytes count blobs made durable (deduplicated
	// rewrites of existing content are not counted).
	BlobWrites     int64
	BlobWriteBytes int64
	// BlobReads and BlobReadBytes count verified blob reads.
	BlobReads     int64
	BlobReadBytes int64
	// RecoveredRecords counts manifest records applied at Open;
	// DroppedRecords counts records Open discarded (torn tail, missing or
	// torn blob, broken parent chain).
	RecoveredRecords int64
	DroppedRecords   int64
}

// IOError marks a store failure caused by the underlying filesystem —
// as opposed to a logical rejection (unknown dataset, parent mismatch,
// duplicate chain). The service's resilience policy keys on it: only
// IOErrors count against the store circuit breaker, and only the
// transient ones (per an Unwrap chain exposing Transient() bool) are
// retried.
type IOError struct {
	// Op names the failing operation ("writing blob", "syncing manifest").
	Op  string
	Err error
}

func (e *IOError) Error() string { return "store: " + e.Op + ": " + e.Err.Error() }
func (e *IOError) Unwrap() error { return e.Err }

func ioErr(op string, err error) error { return &IOError{Op: op, Err: err} }

// Store is a content-addressed on-disk store. All methods are safe for
// concurrent use; chain mutations serialize on one mutex, so the caller's
// own per-dataset append ordering is preserved as WAL order.
type Store struct {
	dir string
	fs  fault.FS

	mu     sync.Mutex
	wal    fault.File
	chains map[string][]Generation
	cache  map[string]cacheRef

	// walOff is the manifest's last known-good length: the byte offset
	// after the last record that was fully written and fsync'd. A failed
	// or short record write can leave torn bytes past it; those are
	// truncated away immediately (or, if even the truncate fails, the
	// store is marked walDirty and every later append re-attempts the
	// heal first) so a later record never lands after a poisoned tail —
	// recovery drops everything after the first unparseable line, and an
	// acked record must never be in that shadow.
	walOff   int64
	walDirty bool

	blobWrites, blobWriteBytes atomic.Int64
	blobReads, blobReadBytes   atomic.Int64
	recovered, dropped         atomic.Int64
}

type cacheRef struct {
	blob string
	size int64
}

// Open opens (creating if needed) the store rooted at dir and recovers
// the surviving catalog from the manifest: a torn final record is
// truncated away, records whose blob is missing or the wrong size are
// dropped, and an append whose parent is not the current chain head is
// dropped — which transitively drops everything chained after a bad
// generation, so each dataset recovers to a consistent prefix.
func Open(dir string) (*Store, error) { return OpenFS(dir, fault.OS{}) }

// OpenFS is Open with an explicit filesystem; fault-injection harnesses
// pass a fault.FaultFS here.
func OpenFS(dir string, fsys fault.FS) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		return nil, ioErr("creating layout", err)
	}
	s := &Store{
		dir:    dir,
		fs:     fsys,
		chains: make(map[string][]Generation),
		cache:  make(map[string]cacheRef),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	wal, err := fsys.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, ioErr("opening manifest", err)
	}
	s.wal = wal
	if st, err := fsys.Stat(s.manifestPath()); err == nil {
		s.walOff = st.Size()
	} else {
		wal.Close()
		return nil, ioErr("sizing manifest", err)
	}
	return s, nil
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, manifestName) }

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.dir, blobDirName, hash[:2], hash)
}

// HashBytes returns the content-hash name the store assigns to raw bytes.
func HashBytes(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// recover replays the manifest into the in-memory catalog.
func (s *Store) recover() error {
	raw, err := s.fs.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return ioErr("reading manifest", err)
	}
	// Walk line by line, tracking the byte offset of the first record that
	// fails to parse: everything from there on is a torn or corrupt tail
	// and is truncated away so the reopened WAL appends cleanly.
	valid := 0
	for off := 0; off < len(raw); {
		nl := -1
		for i := off; i < len(raw); i++ {
			if raw[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 { // no terminator: torn tail
			s.dropped.Add(1)
			break
		}
		var rec walRecord
		if err := json.Unmarshal(raw[off:nl], &rec); err != nil {
			// A record that does not parse poisons everything after it:
			// order past this point is untrustworthy, so recovery stops
			// here (conservative consistent prefix).
			s.dropped.Add(1)
			break
		}
		s.applyRecovered(rec)
		valid = nl + 1
		off = nl + 1
	}
	if valid < len(raw) {
		if err := s.fs.Truncate(s.manifestPath(), int64(valid)); err != nil {
			return ioErr("truncating torn manifest tail", err)
		}
	}
	s.pruneMissingBlobs()
	return nil
}

// applyRecovered folds one manifest record into the catalog.
func (s *Store) applyRecovered(rec walRecord) {
	switch rec.Op {
	case "seed":
		// A seed for an existing chain resets it (re-upload after a
		// tombstone); chain state between the two is gone by definition.
		s.chains[rec.Dataset] = []Generation{{Hash: rec.Hash, Blob: rec.Blob, Size: rec.Size, Meta: rec.Meta}}
		s.recovered.Add(1)
	case "append":
		gens := s.chains[rec.Dataset]
		if len(gens) == 0 || gens[len(gens)-1].Hash != rec.Parent {
			s.dropped.Add(1) // parent not at head: chain already cut here
			return
		}
		s.chains[rec.Dataset] = append(gens, Generation{
			Hash: rec.Hash, Parent: rec.Parent, Blob: rec.Blob, Size: rec.Size, Meta: rec.Meta,
		})
		s.recovered.Add(1)
	case "evict":
		delete(s.chains, rec.Dataset)
		s.recovered.Add(1)
	case "cache":
		s.cache[rec.Key] = cacheRef{blob: rec.Blob, size: rec.Size}
		s.recovered.Add(1)
	default:
		s.dropped.Add(1)
	}
}

// pruneMissingBlobs cuts every chain at its first generation whose blob
// is absent or the wrong size (a torn blob from a crash mid-write, or a
// manifest record that outran its blob). Appends past the cut were
// already chained on the dropped hash, so the cut is a consistent prefix.
func (s *Store) pruneMissingBlobs() {
	for id, gens := range s.chains {
		keep := len(gens)
		for i, g := range gens {
			st, err := s.fs.Stat(s.blobPath(g.Blob))
			if err != nil || st.Size() != g.Size {
				keep = i
				break
			}
		}
		switch {
		case keep == 0:
			delete(s.chains, id)
			s.dropped.Add(int64(len(gens)))
		case keep < len(gens):
			s.chains[id] = gens[:keep:keep]
			s.dropped.Add(int64(len(gens) - keep))
		}
	}
	for key, ref := range s.cache {
		st, err := s.fs.Stat(s.blobPath(ref.blob))
		if err != nil || st.Size() != ref.size {
			delete(s.cache, key)
			s.dropped.Add(1)
		}
	}
}

// writeBlob makes raw durable under its content-hash name and returns
// that name. Existing content is adopted without a rewrite (a previous
// crash's orphan, or plain deduplication — same bytes, same name).
func (s *Store) writeBlob(raw []byte) (string, error) {
	hash := HashBytes(raw)
	path := s.blobPath(hash)
	if st, err := s.fs.Stat(path); err == nil && st.Size() == int64(len(raw)) {
		return hash, nil
	}
	dir := filepath.Dir(path)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return "", ioErr("blob dir", err)
	}
	tmp, err := s.fs.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return "", ioErr("blob temp", err)
	}
	defer s.fs.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return "", ioErr("writing blob", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", ioErr("syncing blob", err)
	}
	if err := tmp.Close(); err != nil {
		return "", ioErr("closing blob", err)
	}
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		return "", ioErr("publishing blob", err)
	}
	if err := syncDir(s.fs, dir); err != nil {
		return "", err
	}
	s.blobWrites.Add(1)
	s.blobWriteBytes.Add(int64(len(raw)))
	return hash, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(fsys fault.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return ioErr("opening dir for sync", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return ioErr("syncing dir", err)
	}
	return nil
}

// appendRecordLocked appends one fsync'd manifest line; callers hold s.mu.
func (s *Store) appendRecordLocked(rec walRecord) error {
	if s.walDirty {
		if err := s.healWALLocked(); err != nil {
			return ioErr("healing manifest tail", err)
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	line = append(line, '\n')
	n, werr := s.wal.Write(line)
	if werr == nil && n == len(line) {
		if serr := s.wal.Sync(); serr != nil {
			// Durability unknown: roll the record back out of the tail so
			// memory and disk agree it never happened (an unacked record
			// surviving on disk would make the next acked append look
			// parent-broken on recovery).
			s.rollbackWALLocked()
			return ioErr("syncing manifest", serr)
		}
		s.walOff += int64(len(line))
		return nil
	}
	if werr == nil {
		werr = io.ErrShortWrite
	}
	// The failed write may have left torn bytes after walOff; truncate
	// them away now rather than at next boot, because a *later* record
	// appended after torn bytes would be dropped by recovery along with
	// the tear — an acked-write loss, not just a lost error response.
	s.rollbackWALLocked()
	return ioErr("appending manifest", werr)
}

// rollbackWALLocked restores the manifest to its last known-good length.
// If the truncate itself fails the store is marked dirty and every
// subsequent append re-attempts the heal before writing.
func (s *Store) rollbackWALLocked() {
	if err := s.wal.Truncate(s.walOff); err != nil {
		s.walDirty = true
		return
	}
	s.walDirty = false
}

func (s *Store) healWALLocked() error {
	if err := s.wal.Truncate(s.walOff); err != nil {
		return err
	}
	s.walDirty = false
	return nil
}

// PutSeed persists a dataset's seed generation: raw is the seed CSV, hash
// its content hash (which is also the generation hash), meta the owner's
// record. Re-persisting an identical seed is a durable no-op; a seed for
// a live chain with a different head is rejected — the caller must
// Tombstone first.
func (s *Store) PutSeed(dataset, hash string, raw []byte, meta json.RawMessage) error {
	blob, err := s.writeBlob(raw)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if gens, ok := s.chains[dataset]; ok {
		if gens[0].Hash == hash {
			return nil // already durable
		}
		return fmt.Errorf("store: dataset %s already has a different chain", dataset)
	}
	rec := walRecord{Op: "seed", Dataset: dataset, Hash: hash, Blob: blob, Size: int64(len(raw)), Meta: meta}
	if err := s.appendRecordLocked(rec); err != nil {
		return err
	}
	s.chains[dataset] = []Generation{{Hash: hash, Blob: blob, Size: rec.Size, Meta: meta}}
	return nil
}

// PutAppend persists one append step: batchRaw is the batch's canonical
// CSV rendering (the step blob), hash the new generation's full-content
// hash, parent the current head's. A parent that is not the durable head
// is rejected, which keeps disk exactly one consistent chain per dataset
// no matter how the in-memory side crashes or races eviction.
func (s *Store) PutAppend(dataset, hash, parent string, batchRaw []byte, meta json.RawMessage) error {
	blob, err := s.writeBlob(batchRaw)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gens, ok := s.chains[dataset]
	if !ok {
		return fmt.Errorf("store: dataset %s has no chain", dataset)
	}
	if head := gens[len(gens)-1].Hash; head != parent {
		if head == hash {
			return nil // already durable (retry after a lost response)
		}
		return fmt.Errorf("store: append parent %.12s is not the chain head %.12s", parent, head)
	}
	rec := walRecord{Op: "append", Dataset: dataset, Hash: hash, Parent: parent, Blob: blob, Size: int64(len(batchRaw)), Meta: meta}
	if err := s.appendRecordLocked(rec); err != nil {
		return err
	}
	s.chains[dataset] = append(gens, Generation{Hash: hash, Parent: parent, Blob: blob, Size: rec.Size, Meta: meta})
	return nil
}

// Tombstone durably removes a dataset's chain; it reports whether a chain
// was present. The blobs stay on disk (content-addressed data may be
// shared and is reclaimed by an offline sweep, not the hot path).
func (s *Store) Tombstone(dataset string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chains[dataset]; !ok {
		return false, nil
	}
	if err := s.appendRecordLocked(walRecord{Op: "evict", Dataset: dataset}); err != nil {
		return false, err
	}
	delete(s.chains, dataset)
	return true, nil
}

// Truncate cuts a dataset's in-memory chain back to head (exclusive of
// everything after it), reporting whether anything was cut. The service
// calls it when replay hits a blob whose content no longer matches its
// name — the stat-level checks at Open cannot see same-size corruption —
// so the catalog keeps agreeing with what is actually servable. No WAL
// record is needed: the bad blob fails the same way on every boot.
func (s *Store) Truncate(dataset, head string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens, ok := s.chains[dataset]
	if !ok {
		return false
	}
	for i, g := range gens {
		if g.Hash == head {
			if i == len(gens)-1 {
				return false
			}
			s.chains[dataset] = gens[: i+1 : i+1]
			return true
		}
	}
	return false
}

// Datasets returns the IDs of every persisted chain, sorted.
func (s *Store) Datasets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.chains))
	for id := range s.chains {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Chain returns a copy of one dataset's generation chain, seed first.
func (s *Store) Chain(dataset string) ([]Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens, ok := s.chains[dataset]
	if !ok {
		return nil, false
	}
	out := make([]Generation, len(gens))
	copy(out, gens)
	return out, true
}

// Blob reads a blob and verifies its content against its name, so a
// corrupt blob can never be replayed into a dataset silently.
func (s *Store) Blob(hash string) ([]byte, error) {
	raw, err := s.fs.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, ioErr(fmt.Sprintf("reading blob %.12s", hash), err)
	}
	if got := HashBytes(raw); got != hash {
		return nil, fmt.Errorf("store: blob %.12s content hashes to %.12s (torn or corrupt)", hash, got)
	}
	s.blobReads.Add(1)
	s.blobReadBytes.Add(int64(len(raw)))
	return raw, nil
}

// PutCache persists one serialized result keyed by the owner's cache key.
// The key scheme embeds the dataset content hash, so entries never go
// stale — a later write under the same key simply re-points it.
func (s *Store) PutCache(key string, val []byte) error {
	blob, err := s.writeBlob(val)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ref, ok := s.cache[key]; ok && ref.blob == blob {
		return nil
	}
	rec := walRecord{Op: "cache", Key: key, Blob: blob, Size: int64(len(val))}
	if err := s.appendRecordLocked(rec); err != nil {
		return err
	}
	s.cache[key] = cacheRef{blob: blob, size: rec.Size}
	return nil
}

// CacheKeys returns every persisted result key, sorted.
func (s *Store) CacheKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.cache))
	for k := range s.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CacheValue reads one persisted result's bytes.
func (s *Store) CacheValue(key string) ([]byte, error) {
	s.mu.Lock()
	ref, ok := s.cache[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no cache entry %q", key)
	}
	return s.Blob(ref.blob)
}

// Stats snapshots the I/O counters.
func (s *Store) Stats() Stats {
	return Stats{
		BlobWrites:       s.blobWrites.Load(),
		BlobWriteBytes:   s.blobWriteBytes.Load(),
		BlobReads:        s.blobReads.Load(),
		BlobReadBytes:    s.blobReadBytes.Load(),
		RecoveredRecords: s.recovered.Load(),
		DroppedRecords:   s.dropped.Load(),
	}
}

// Len returns the number of persisted chains.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.chains)
}

// Close releases the manifest handle; the store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
