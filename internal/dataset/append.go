package dataset

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrSchemaDrift marks an append batch that is structurally valid but
// changes the table's decoded schema: a categorical value outside the
// column's existing dictionary, or a non-numeric value in a numeric column.
// Re-decoding the concatenated CSV from scratch would produce a different
// dictionary (or flip the column's kind), so the cheap in-place append
// cannot be byte-equivalent to a fresh upload — callers detect this
// sentinel with errors.Is and fall back to the full rebuild path, which
// handles drift correctly by construction.
var ErrSchemaDrift = errors.New("dataset: append changes the decoded schema")

// AppendRows returns a new table extending t with the given records (one
// string per column, in column order — the shape one CSV row decodes to).
// The receiver is never mutated: column code/float slices are copied with
// room for the batch, dictionaries are shared (they are immutable by
// convention and unchanged by a drift-free append). The resulting table is
// exactly what ReadCSV would decode from the original CSV plus the batch
// rows — same dictionaries, same codes, same floats — which is what lets
// the streaming layer maintain rankings and posting-list indexes
// incrementally instead of rebuilding them; batches that would change the
// schema return ErrSchemaDrift.
func (t *Table) AppendRows(records [][]string) (*Table, error) {
	for i, rec := range records {
		if len(rec) != t.NumCols() {
			return nil, fmt.Errorf("dataset: append row %d has %d fields, table has %d columns", i, len(rec), t.NumCols())
		}
	}
	out := New()
	for j, c := range t.cols {
		switch c.Kind {
		case Categorical:
			codes := make([]int32, len(c.Codes), len(c.Codes)+len(records))
			copy(codes, c.Codes)
			for i, rec := range records {
				code := c.Code(rec[j])
				if code < 0 {
					return nil, fmt.Errorf("%w: column %q row %d: new value %q", ErrSchemaDrift, c.Name, i, rec[j])
				}
				codes = append(codes, code)
			}
			nc := &Column{Name: c.Name, Kind: Categorical, Codes: codes, Dict: c.Dict}
			if err := out.addColumn(nc, len(codes)); err != nil {
				return nil, err
			}
		case Numeric:
			vals := make([]float64, len(c.Floats), len(c.Floats)+len(records))
			copy(vals, c.Floats)
			for i, rec := range records {
				f, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("%w: column %q row %d: non-numeric value %q", ErrSchemaDrift, c.Name, i, rec[j])
				}
				vals = append(vals, f)
			}
			nc := &Column{Name: c.Name, Kind: Numeric, Floats: vals}
			if err := out.addColumn(nc, len(vals)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dataset: column %q has invalid kind %d", c.Name, c.Kind)
		}
	}
	return out, nil
}

// CatRowsFrom materializes the categorical part of rows [from, NumRows) in
// row-major form, the same layout and attribute order as CatMatrix. The
// streaming append path uses it to encode only the batch: the prefix rows
// of an appended table are shared with the parent analyst's already
// materialized matrix instead of being re-copied.
func (t *Table) CatRowsFrom(from int) [][]int32 {
	catCols := t.CategoricalIndices()
	if from < 0 {
		from = 0
	}
	n := t.rows - from
	if n < 0 {
		n = 0
	}
	flat := make([]int32, n*len(catCols))
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i], flat = flat[:len(catCols):len(catCols)], flat[len(catCols):]
	}
	for j, ci := range catCols {
		codes := t.cols[ci].Codes
		for i := 0; i < n; i++ {
			rows[i][j] = codes[from+i]
		}
	}
	return rows
}
