// Hiring shortlist audit: the Section III motivation for global bounds.
// In an applicant pool dominated by men, proportional representation lets
// a shortlist stay "fair" while inviting almost no women — proportionality
// reproduces the input skew. Global lower bounds instead let the company
// state an absolute representation target for every shortlist length and
// discover every group that misses it.
//
// Run with:
//
//	go run ./examples/hiring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rankfair"
)

func main() {
	table, scores := applicantPool(600, 3)
	analyst, err := rankfair.New(table, &rankfair.ByColumns{Keys: []rankfair.ColumnKey{
		{Column: "score", Descending: true},
	}})
	check(err)
	_ = scores

	kMin, kMax := 10, 40

	// Proportional audit: groups should hold their overall share of each
	// shortlist prefix (α = 0.8).
	prop, err := analyst.DetectProportional(rankfair.PropParams{
		MinSize: 30, KMin: kMin, KMax: kMax, Alpha: 0.8,
	})
	check(err)
	fmt.Printf("proportional audit (α=0.8), k=%d: ", kMax)
	printGroups(prop, kMax)

	// Global audit: the company wants every substantial group to place at
	// least 5 members in the top 10-19 and 10 in the top 20-40 —
	// regardless of its share of the applicant pool.
	global, err := analyst.DetectGlobal(rankfair.GlobalParams{
		MinSize: 30, KMin: kMin, KMax: kMax,
		Lower: rankfair.StaircaseBounds(kMin, kMax, 5, 5, 10),
	})
	check(err)
	fmt.Printf("global audit (L=5 then 10), k=%d:   ", kMax)
	printGroups(global, kMax)

	fmt.Println("\nwhy they differ: women are ~18% of the pool, so proportionality")
	fmt.Println("expects few of them in the shortlist and stays silent; the global")
	fmt.Println("bound encodes the hiring target and flags the gap (Section III).")

	// The flip side: who exceeds the shortlist share? Upper-bound
	// detection reports the most specific over-represented groups.
	upper, err := analyst.DetectGlobalUpper(rankfair.GlobalUpperParams{
		MinSize: 30, KMin: kMax, KMax: kMax,
		Upper: rankfair.ConstantBounds(kMax, kMax, 30),
	})
	check(err)
	fmt.Printf("\nmost specific groups with more than 30 of the top %d:\n", kMax)
	for _, g := range upper.At(kMax) {
		fmt.Printf("  %s\n", upper.Format(g))
	}

	// Detection found the gap; repair closes it. Rebuild the shortlist
	// with the hiring target as an explicit constraint (the constrained
	// ranking of Celis et al., which the paper's detection complements).
	before := countWomen(analyst, analyst.Input().Ranking[:kMax])
	repaired, err := analyst.RepairTopK("gender", kMax, map[string]rankfair.FairTopKConstraint{
		"F": {Lower: 10},
	})
	check(err)
	after := countWomen(analyst, repaired)
	fmt.Printf("\nrepaired shortlist: women %d -> %d of %d (target 10);\n", before, after, kMax)
	fmt.Println("everyone else still enters in score order.")
}

func countWomen(a *rankfair.Analyst, rows []int) int {
	in := a.Input()
	women := 0
	for _, ri := range rows {
		if in.Rows[ri][0] == 0 { // gender is the first attribute; F = code 0
			women++
		}
	}
	return women
}

// applicantPool synthesizes a tech-hiring pool: women are a small fraction
// of applicants but the screening score is gender-blind, so the shortlist
// reproduces the pool's skew — proportionally "fair", absolutely sparse.
func applicantPool(n int, seed int64) (*rankfair.Dataset, []float64) {
	rng := rand.New(rand.NewSource(seed))
	gender := make([]string, n)
	degree := make([]string, n)
	referral := make([]string, n)
	experience := make([]string, n)
	score := make([]float64, n)
	for i := 0; i < n; i++ {
		female := rng.Float64() < 0.18
		if female {
			gender[i] = "F"
		} else {
			gender[i] = "M"
		}
		deg := rng.Intn(3) // 0=BSc 1=MSc 2=PhD
		degree[i] = []string{"BSc", "MSc", "PhD"}[deg]
		hasRef := rng.Float64() < 0.45
		if hasRef {
			referral[i] = "yes"
		} else {
			referral[i] = "no"
		}
		exp := rng.Intn(4)
		experience[i] = []string{"0-2y", "3-5y", "6-9y", "10y+"}[exp]
		score[i] = 50 + 8*float64(deg) + 5*float64(exp) + rng.NormFloat64()*6
		if hasRef {
			score[i] += 7
		}
	}
	t := rankfair.NewDataset()
	check(t.AddCategorical("gender", gender))
	check(t.AddCategorical("degree", degree))
	check(t.AddCategorical("referral", referral))
	check(t.AddCategorical("experience", experience))
	check(t.AddNumeric("score", score))
	return t, score
}

func printGroups(r *rankfair.Report, k int) {
	groups := r.At(k)
	if len(groups) == 0 {
		fmt.Println("(no biased groups)")
		return
	}
	for i, g := range groups {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(r.Format(g))
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
