package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"rankfair/internal/service"
)

// freeAddr reserves a port and releases it for the daemon to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunServesAndDrains boots the daemon on a real socket, probes
// /healthz, then delivers SIGTERM and expects a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	addr := freeAddr(t)
	errc := make(chan error, 1)
	go func() { errc <- run(addr, service.Config{Workers: 1}, 5*time.Second) }()

	url := "http://" + addr + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

func TestRunBindFailure(t *testing.T) {
	// Occupy a port so the daemon's bind fails immediately.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := run(l.Addr().String(), service.Config{Workers: 1}, time.Second); err == nil {
		t.Fatal("run should fail when the address is taken")
	}
}

// TestMainExitsNonZeroOnBadFlags exercises the main() error path in a
// subprocess.
func TestMainExitsNonZeroOnBadFlags(t *testing.T) {
	if os.Getenv("RANKFAIRD_TEST_MAIN") == "1" {
		// Bind to an invalid address: main should print and exit 1.
		os.Args = []string{"rankfaird", "-addr", "256.256.256.256:1"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], fmt.Sprintf("-test.run=%s", t.Name()))
	cmd.Env = append(os.Environ(), "RANKFAIRD_TEST_MAIN=1")
	err := cmd.Run()
	var exitErr *exec.ExitError
	if err == nil {
		t.Fatal("subprocess exited 0, want failure")
	} else if ok := isExitError(err, &exitErr); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("subprocess err = %v, want exit code 1", err)
	}
}

func isExitError(err error, target **exec.ExitError) bool {
	if e, ok := err.(*exec.ExitError); ok {
		*target = e
		return true
	}
	return false
}
