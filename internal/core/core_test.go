package core_test

import (
	"testing"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
	"rankfair/internal/synth"
)

// runningInput materializes the Figure 1 running example.
func runningInput(t *testing.T) *core.Input {
	t.Helper()
	in, err := synth.RunningExample().Input()
	if err != nil {
		t.Fatalf("running example input: %v", err)
	}
	return in
}

// mustParse builds a pattern over the 4-attribute running-example space
// (Gender, School, Address, Failures) from attribute=label pairs.
func mustParse(t *testing.T, in *core.Input, assigns map[string]int32) pattern.Pattern {
	t.Helper()
	p := pattern.Empty(in.Space.NumAttrs())
	for name, v := range assigns {
		found := false
		for i, n := range in.Space.Names {
			if n == name {
				p[i] = v
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no attribute %q in space %v", name, in.Space.Names)
		}
	}
	return p
}

// Running-example dictionary codes (sorted label order):
// Gender: F=0 M=1; School: GP=0 MS=1; Address: R=0 U=1; Failures: 0,1,2.

func TestRankingMatchesFigure1(t *testing.T) {
	in := runningInput(t)
	// Figure 1's Rank column, 1-based: rank r is tuple wantTuple[r-1].
	wantTuple := []int{12, 5, 2, 9, 14, 11, 13, 1, 16, 3, 7, 10, 8, 15, 6, 4}
	for r, tup := range wantTuple {
		if got := in.Ranking[r] + 1; got != tup {
			t.Errorf("rank %d: got tuple %d, want %d", r+1, got, tup)
		}
	}
}

func TestExample23PatternSizes(t *testing.T) {
	in := runningInput(t)
	p := mustParse(t, in, map[string]int32{"School": 0}) // {School=GP}
	if got := p.Count(in.Rows); got != 8 {
		t.Errorf("s_D({School=GP}) = %d, want 8", got)
	}
	if got := p.CountTopK(in.Rows, in.Ranking, 5); got != 1 {
		t.Errorf("s_R5({School=GP}) = %d, want 1", got)
	}
}

// expectGroups asserts that a result set equals the expected patterns
// (order-insensitive).
func expectGroups(t *testing.T, got []pattern.Pattern, want []pattern.Pattern, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d groups, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
		return
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g.Equal(w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: missing %v in %v", label, w, got)
		}
	}
}

// runningGlobalWant returns the exact most general biased sets for the
// Example 4.6 parameters (τs=4, k in [4,5], L4=L5=2), derived by hand from
// Figure 1 (see the enumeration in the test comments of the repository's
// DESIGN.md §5). The paper's Example 4.6 lists a subset of these
// ("among others").
func runningGlobalWant(t *testing.T, in *core.Input) (k4, k5 []pattern.Pattern) {
	k4 = []pattern.Pattern{
		mustParse(t, in, map[string]int32{"School": 0}),               // {School=GP}
		mustParse(t, in, map[string]int32{"Address": 1}),              // {Address=U}
		mustParse(t, in, map[string]int32{"Failures": 1}),             // {Failures=1}
		mustParse(t, in, map[string]int32{"Failures": 2}),             // {Failures=2}
		mustParse(t, in, map[string]int32{"Gender": 0, "School": 1}),  // {G=F,S=MS}
		mustParse(t, in, map[string]int32{"Gender": 0, "Address": 0}), // {G=F,A=R}
	}
	k5 = []pattern.Pattern{
		mustParse(t, in, map[string]int32{"School": 0}),
		mustParse(t, in, map[string]int32{"Failures": 2}),
		mustParse(t, in, map[string]int32{"Gender": 0, "School": 1}),
		mustParse(t, in, map[string]int32{"Gender": 0, "Address": 0}),
		mustParse(t, in, map[string]int32{"Gender": 0, "Address": 1}),   // promoted from DRes
		mustParse(t, in, map[string]int32{"Gender": 1, "Address": 1}),   // promoted from DRes
		mustParse(t, in, map[string]int32{"Gender": 0, "Failures": 1}),  // promoted from DRes
		mustParse(t, in, map[string]int32{"Address": 0, "Failures": 1}), // promoted from DRes
		mustParse(t, in, map[string]int32{"Address": 1, "Failures": 1}), // found by searchFromNode
	}
	return k4, k5
}

func TestExample46IterTDGlobal(t *testing.T) {
	in := runningInput(t)
	params := core.GlobalParams{MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2}}
	res, err := core.IterTDGlobal(in, params)
	if err != nil {
		t.Fatalf("IterTDGlobal: %v", err)
	}
	k4, k5 := runningGlobalWant(t, in)
	expectGroups(t, res.At(4), k4, "IterTD Res[4]")
	expectGroups(t, res.At(5), k5, "IterTD Res[5]")
}

func TestExample46GlobalBounds(t *testing.T) {
	in := runningInput(t)
	params := core.GlobalParams{MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2}}
	res, err := core.GlobalBounds(in, params)
	if err != nil {
		t.Fatalf("GlobalBounds: %v", err)
	}
	k4, k5 := runningGlobalWant(t, in)
	expectGroups(t, res.At(4), k4, "GlobalBounds Res[4]")
	expectGroups(t, res.At(5), k5, "GlobalBounds Res[5]")
}

func TestExample49PropBounds(t *testing.T) {
	in := runningInput(t)
	params := core.PropParams{MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9}
	k4 := []pattern.Pattern{
		mustParse(t, in, map[string]int32{"School": 0}),
		mustParse(t, in, map[string]int32{"Address": 1}),
		mustParse(t, in, map[string]int32{"Failures": 1}),
	}
	k5 := append([]pattern.Pattern{
		mustParse(t, in, map[string]int32{"Gender": 0}),
	}, k4...)
	for _, algo := range []struct {
		name string
		fn   func(*core.Input, core.PropParams) (*core.Result, error)
	}{
		{"IterTDProp", core.IterTDProp},
		{"PropBounds", core.PropBounds},
	} {
		res, err := algo.fn(in, params)
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		expectGroups(t, res.At(4), k4, algo.name+" Res[4]")
		expectGroups(t, res.At(5), k5, algo.name+" Res[5]")
	}
}

func TestExample46DResContents(t *testing.T) {
	// The paper's Example 4.6 lists four DRes members after the k=4
	// search; verify they are reached and dominated.
	in := runningInput(t)
	params := core.GlobalParams{MinSize: 4, KMin: 4, KMax: 4, Lower: []int{2}}
	res, err := core.IterTDGlobal(in, params)
	if err != nil {
		t.Fatalf("IterTDGlobal: %v", err)
	}
	want := []pattern.Pattern{
		mustParse(t, in, map[string]int32{"Gender": 0, "Address": 1}),
		mustParse(t, in, map[string]int32{"Gender": 1, "Address": 1}),
		mustParse(t, in, map[string]int32{"Gender": 0, "Failures": 1}),
		mustParse(t, in, map[string]int32{"Address": 0, "Failures": 1}),
	}
	// DRes members must be biased but dominated: not in Res, while some
	// proper subset is.
	for _, w := range want {
		if w.Count(in.Rows) < 4 {
			t.Errorf("%v below size threshold", w)
		}
		if got := w.CountTopK(in.Rows, in.Ranking, 4); got >= 2 {
			t.Errorf("%v not biased at k=4 (count %d)", w, got)
		}
		for _, g := range res.At(4) {
			if g.Equal(w) {
				t.Errorf("%v should be dominated (DRes), found in Res", w)
			}
		}
	}
}

func TestTheorem33WorstCase(t *testing.T) {
	// The Figure 2 construction: the result at k=n must contain exactly
	// C(n, n/2) patterns, each binding n/2 attributes to 0.
	const n = 8 // C(8,4) = 70
	b := synth.WorstCase(n)
	in, err := b.Input()
	if err != nil {
		t.Fatalf("worst case input: %v", err)
	}
	t.Run("global", func(t *testing.T) {
		params := core.GlobalParams{MinSize: 2, KMin: n, KMax: n, Lower: []int{n/2 + 1}}
		res, err := core.GlobalBounds(in, params)
		if err != nil {
			t.Fatalf("GlobalBounds: %v", err)
		}
		checkWorstCase(t, res.At(n), n)
	})
	t.Run("proportional", func(t *testing.T) {
		params := core.PropParams{MinSize: 2, KMin: n, KMax: n, Alpha: float64(n+3) / float64(n+4)}
		res, err := core.PropBounds(in, params)
		if err != nil {
			t.Fatalf("PropBounds: %v", err)
		}
		checkWorstCase(t, res.At(n), n)
	})
}

func checkWorstCase(t *testing.T, got []pattern.Pattern, n int) {
	t.Helper()
	want := binom(n, n/2)
	if len(got) != want {
		t.Fatalf("got %d most general patterns, want C(%d,%d)=%d", len(got), n, n/2, want)
	}
	for _, p := range got {
		if p.NumAttrs() != n/2 {
			t.Errorf("pattern %v binds %d attributes, want %d", p, p.NumAttrs(), n/2)
		}
		for _, a := range p.Attrs() {
			if p[a] != 0 {
				t.Errorf("pattern %v binds attribute %d to %d, want 0", p, a, p[a])
			}
		}
	}
}

func binom(n, k int) int {
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

func TestGlobalBoundsRejectsDecreasingBounds(t *testing.T) {
	in := runningInput(t)
	params := core.GlobalParams{MinSize: 4, KMin: 4, KMax: 5, Lower: []int{3, 2}}
	if _, err := core.GlobalBounds(in, params); err == nil {
		t.Fatal("want error for decreasing bounds")
	}
	// The baseline must accept the same bounds.
	if _, err := core.IterTDGlobal(in, params); err != nil {
		t.Fatalf("IterTDGlobal with decreasing bounds: %v", err)
	}
}

func TestParameterValidation(t *testing.T) {
	in := runningInput(t)
	cases := []struct {
		name string
		run  func() error
	}{
		{"kmax beyond dataset", func() error {
			_, err := core.IterTDGlobal(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 99, Lower: core.ConstantBounds(1, 99, 1)})
			return err
		}},
		{"bad k range", func() error {
			_, err := core.IterTDGlobal(in, core.GlobalParams{MinSize: 1, KMin: 5, KMax: 4, Lower: nil})
			return err
		}},
		{"bounds length mismatch", func() error {
			_, err := core.GlobalBounds(in, core.GlobalParams{MinSize: 1, KMin: 2, KMax: 5, Lower: []int{1}})
			return err
		}},
		{"negative threshold", func() error {
			_, err := core.IterTDProp(in, core.PropParams{MinSize: -1, KMin: 2, KMax: 5, Alpha: 0.5})
			return err
		}},
		{"non-positive alpha", func() error {
			_, err := core.PropBounds(in, core.PropParams{MinSize: 1, KMin: 2, KMax: 5, Alpha: 0})
			return err
		}},
		{"zero kmin", func() error {
			_, err := core.PropBounds(in, core.PropParams{MinSize: 1, KMin: 0, KMax: 5, Alpha: 0.5})
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestStaircaseBounds(t *testing.T) {
	got := core.StaircaseBounds(10, 49, 10, 10, 10)
	if len(got) != 40 {
		t.Fatalf("len = %d, want 40", len(got))
	}
	checks := map[int]int{10: 10, 19: 10, 20: 20, 29: 20, 30: 30, 39: 30, 40: 40, 49: 40}
	for k, want := range checks {
		if got[k-10] != want {
			t.Errorf("L_%d = %d, want %d", k, got[k-10], want)
		}
	}
	if core.StaircaseBounds(5, 4, 1, 1, 1) != nil {
		t.Error("invalid range should yield nil")
	}
	if core.StaircaseBounds(1, 5, 1, 1, 0) != nil {
		t.Error("zero width should yield nil")
	}
}

func TestResultAccessors(t *testing.T) {
	in := runningInput(t)
	params := core.GlobalParams{MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2}}
	res, err := core.GlobalBounds(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.At(3) != nil || res.At(6) != nil {
		t.Error("At outside range should be nil")
	}
	if got := res.TotalGroups(); got != len(res.At(4))+len(res.At(5)) {
		t.Errorf("TotalGroups = %d", got)
	}
	if res.Stats.NodesExamined == 0 || res.Stats.FullSearches == 0 {
		t.Error("stats should be populated")
	}
}
