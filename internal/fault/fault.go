// Package fault is a dependency-free fault-injection harness for the
// serving stack's robustness tests. An Injector holds a list of Rules,
// each matching an (operation, path) pair and describing what to break:
// return an error, sleep, or tear a write partway through. The store
// activates it through FaultFS (a filesystem wrapper, see fs.go); the
// job manager exposes test hooks that call Fire directly.
//
// Determinism: given a fixed seed and a fixed sequence of Fire calls,
// an Injector always makes the same decisions. Probabilistic rules
// (P > 0) draw from a seeded source; counted rules (Skip/Count) key on
// per-rule hit counters. Chaos tests rely on this to replay failures
// exactly.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Error is an injected failure. It wraps the rule's underlying error
// and carries the transience mark that retry policies key on.
type Error struct {
	Op          string
	Path        string
	Err         error
	IsTransient bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure on %s: %v", e.Op, e.Path, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Transient reports whether the failure should be treated as retryable.
// The store's retry helper discovers this via an
// interface{ Transient() bool } assertion, so injected transient errors
// exercise the same classification path as real EINTR/EAGAIN.
func (e *Error) Transient() bool { return e.IsTransient }

// Rule describes one injected behavior. The zero value of each field is
// permissive: an empty Op or Path matches everything, Skip 0 starts
// firing immediately, Count 0 never stops, P 0 fires deterministically.
type Rule struct {
	// Op is the operation key to match ("write", "sync", "readfile",
	// ...; see the FaultFS doc for the full set). Empty matches all.
	Op string
	// Path is matched as a substring of the operation's target path
	// (e.g. "MANIFEST" or "blobs"). Empty matches all.
	Path string
	// Skip is the number of matching calls passed through unharmed
	// before the rule starts firing.
	Skip int
	// Count bounds how many calls the rule fires on after Skip;
	// 0 means unlimited.
	Count int
	// P fires the rule with this probability inside its Skip/Count
	// window; 0 means always.
	P float64
	// Err is the error to inject; nil makes the rule latency/no-op only.
	Err error
	// Transient marks Err as retryable.
	Transient bool
	// Latency is slept before the operation proceeds (or fails).
	Latency time.Duration
	// Torn applies to write operations: the number of payload bytes
	// actually written to the underlying file before Err is returned.
	// 0 fails cleanly before writing anything.
	Torn int
}

type rule struct {
	Rule
	hits int
}

// Outcome is the injector's decision for one operation.
type Outcome struct {
	// Err is the injected failure; nil means proceed normally.
	Err error
	// Torn is the number of payload bytes a torn write lets through
	// before failing. Meaningful only when Err is non-nil.
	Torn int
}

// Injector evaluates rules against a stream of Fire calls.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*rule
	fired int64
}

// NewInjector returns an empty injector whose probabilistic rules draw
// from the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule. Rules are evaluated in insertion order; the
// first rule that decides to inject an error wins, but every matching
// rule's latency accumulates.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	in.rules = append(in.rules, &rule{Rule: r})
	in.mu.Unlock()
}

// Reset removes every rule, hit counts included. The seed sequence is
// not rewound.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Fired returns how many errors the injector has injected so far
// (latency-only firings are not counted).
func (in *Injector) Fired() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Fire consults the rules for one (op, path) call. Any injected latency
// is slept here, outside the injector lock, before the outcome is
// returned.
func (in *Injector) Fire(op, path string) Outcome {
	in.mu.Lock()
	var latency time.Duration
	var out Outcome
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.hits++
		if r.hits <= r.Skip {
			continue
		}
		if r.Count > 0 && r.hits > r.Skip+r.Count {
			continue
		}
		if r.P > 0 && in.rng.Float64() >= r.P {
			continue
		}
		latency += r.Latency
		if r.Err != nil && out.Err == nil {
			out.Err = &Error{Op: op, Path: path, Err: r.Err, IsTransient: r.Transient}
			out.Torn = r.Torn
			in.fired++
		}
	}
	in.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return out
}

// ParseSpec parses the command-line fault specification used by the
// daemon's -fault-store flag (and by CI's torn-write round trip).
// Rules are separated by ';', fields by ',', each field "key=value":
//
//	op=write,path=MANIFEST,skip=3,count=1,torn=10,err=eio
//
// Recognized error names: enospc, eio (permanent), eagain, eintr
// (transient by default), fail (generic permanent); an explicit
// transient=true/false overrides the default. latency takes a Go
// duration ("50ms"), p a float in (0,1].
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r Rule
		transientSet := false
		for _, field := range strings.Split(part, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("fault: field %q is not key=value", field)
			}
			var err error
			switch k {
			case "op":
				r.Op = v
			case "path":
				r.Path = v
			case "skip":
				r.Skip, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "torn":
				r.Torn, err = strconv.Atoi(v)
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
			case "latency":
				r.Latency, err = time.ParseDuration(v)
			case "transient":
				r.Transient, err = strconv.ParseBool(v)
				transientSet = true
			case "err":
				switch v {
				case "enospc":
					r.Err = syscall.ENOSPC
				case "eio":
					r.Err = syscall.EIO
				case "eagain":
					r.Err = syscall.EAGAIN
				case "eintr":
					r.Err = syscall.EINTR
				case "fail":
					r.Err = errors.New("injected failure")
				default:
					err = fmt.Errorf("unknown error name %q", v)
				}
				if err == nil && !transientSet {
					r.Transient = v == "eagain" || v == "eintr"
				}
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: parsing %q: %w", field, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
