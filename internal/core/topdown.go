package core

import (
	"rankfair/internal/pattern"
)

// measure abstracts the "biased below the lower bound" test shared by the
// two problem definitions. k is the current prefix length, sD the pattern's
// size in D and cnt its size in the top-k.
type measure interface {
	biased(sD, cnt, k int) bool
}

// globalMeasure implements Problem 3.1: cnt < L_k.
type globalMeasure struct{ params *GlobalParams }

func (m globalMeasure) biased(sD, cnt, k int) bool { return cnt < m.params.lowerAt(k) }

// propMeasure implements Problem 3.2: cnt < α·sD·k/|D|.
type propMeasure struct {
	alpha float64
	n     int
}

func (m propMeasure) biased(sD, cnt, k int) bool {
	return float64(cnt) < m.alpha*float64(sD)*float64(k)/float64(m.n)
}

// searchEntry is a frontier element of the breadth-first top-down search of
// Algorithm 1. matchAll and matchTop hold the row indices (into in.Rows)
// matching the pattern in D and in the top-k respectively, so children
// sizes are computed by filtering the parent's lists rather than rescanning
// the dataset.
type searchEntry struct {
	p        pattern.Pattern
	matchAll []int32
	matchTop []int32
}

// topDownSearch is Algorithm 1: a single top-down traversal of the search
// tree for one value of k, returning the most general biased patterns (Res)
// and the dominated biased patterns reached during the search (DRes).
// The traversal polls cn once per node and abandons the search when the
// caller's context is canceled (the partial result is then meaningless).
//
// The traversal is FIFO (level order), so when a biased pattern is reached,
// every more general biased pattern has already been classified; the
// update() check of the paper therefore only needs to scan Res.
func topDownSearch(cn *canceler, in *Input, minSize, k int, meas measure, stats *Stats) (res, dres []pattern.Pattern) {
	stats.FullSearches++
	n := in.Space.NumAttrs()

	all := make([]int32, len(in.Rows))
	for i := range all {
		all[i] = int32(i)
	}
	kk := k
	if kk > len(in.Ranking) {
		kk = len(in.Ranking)
	}
	top := make([]int32, kk)
	for i := 0; i < kk; i++ {
		top[i] = int32(in.Ranking[i])
	}

	queue := make([]searchEntry, 0, 64)
	queue = appendChildren(queue, in, searchEntry{p: pattern.Empty(n), matchAll: all, matchTop: top})

	for head := 0; head < len(queue); head++ {
		if cn.stopped() {
			return nil, nil
		}
		e := queue[head]
		queue[head] = searchEntry{} // release row lists of consumed entries
		stats.NodesExamined++
		sD := len(e.matchAll)
		if sD < minSize {
			continue
		}
		cnt := len(e.matchTop)
		if meas.biased(sD, cnt, k) {
			if hasProperSubset(res, e.p) {
				dres = append(dres, e.p)
			} else {
				res = append(res, e.p)
			}
			continue
		}
		queue = appendChildren(queue, in, e)
	}
	return res, dres
}

// appendChildren pushes the search-tree children (Definition 4.1) of e onto
// the queue, partitioning the parent's match lists per attribute value in a
// single pass per attribute.
func appendChildren(queue []searchEntry, in *Input, e searchEntry) []searchEntry {
	n := in.Space.NumAttrs()
	for a := e.p.MaxAttrIdx() + 1; a < n; a++ {
		card := in.Space.Cards[a]
		allBuckets := partitionByValue(in.Rows, e.matchAll, a, card)
		topBuckets := partitionByValue(in.Rows, e.matchTop, a, card)
		for v := 0; v < card; v++ {
			queue = append(queue, searchEntry{
				p:        e.p.With(a, int32(v)),
				matchAll: allBuckets[v],
				matchTop: topBuckets[v],
			})
		}
	}
	return queue
}

// partitionByValue splits idxs by the value of attribute attr.
func partitionByValue(rows [][]int32, idxs []int32, attr, card int) [][]int32 {
	counts := make([]int, card)
	for _, ri := range idxs {
		counts[rows[ri][attr]]++
	}
	flat := make([]int32, len(idxs))
	buckets := make([][]int32, card)
	off := 0
	for v := 0; v < card; v++ {
		buckets[v] = flat[off : off : off+counts[v]]
		off += counts[v]
	}
	for _, ri := range idxs {
		v := rows[ri][attr]
		buckets[v] = append(buckets[v], ri)
	}
	return buckets
}

// hasProperSubset reports whether any member of set is a proper subset of p.
func hasProperSubset(set []pattern.Pattern, p pattern.Pattern) bool {
	for _, q := range set {
		if q.ProperSubsetOf(p) {
			return true
		}
	}
	return false
}
