package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rankfair"
	"rankfair/internal/dataset"
)

// decodeEnvelope asserts a response body carries the typed error envelope
// — {"error":{"code":...,"message":...,"request_id":...}} — and never the
// legacy {"error":"<string>"} shape, then returns the decoded error.
func decodeEnvelope(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]json.RawMessage
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("error body is not JSON: %q: %v", raw, err)
	}
	errRaw, ok := generic["error"]
	if !ok {
		t.Fatalf("error body has no \"error\" key: %s", raw)
	}
	trimmed := bytes.TrimSpace(errRaw)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		t.Fatalf("legacy error shape (error is %s, want object): %s", trimmed, raw)
	}
	var e APIError
	if err := json.Unmarshal(errRaw, &e); err != nil {
		t.Fatalf("decoding error object %s: %v", errRaw, err)
	}
	if e.Code == "" {
		t.Errorf("error envelope missing code: %s", raw)
	}
	if e.Message == "" {
		t.Errorf("error envelope missing message: %s", raw)
	}
	if e.RequestID == "" {
		t.Errorf("error envelope missing request_id: %s", raw)
	} else if got := resp.Header.Get("X-Request-ID"); got != e.RequestID {
		t.Errorf("request_id %q != X-Request-ID header %q", e.RequestID, got)
	}
	return e
}

// TestErrorEnvelopeAllHandlers drives every error-producing path of the
// route table and asserts each one emits the typed envelope with its
// stable code — no handler may emit the legacy string shape.
func TestErrorEnvelopeAllHandlers(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4, QueueDepth: 32, MaxUploadBytes: 1 << 20})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	info := upload(t, ts, biasedCSV(40))

	auditJSON := func(ds string) string {
		return fmt.Sprintf(`{"dataset":%q,"ranker":{"columns":[{"column":"score","descending":true}]},"params":{"measure":"prop","min_size":5,"kmin":5,"kmax":20,"alpha":0.8}}`, ds)
	}

	for _, tc := range []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantCode    string
	}{
		{"upload-empty-body", "POST", "/v1/datasets", "text/csv", "", 400, CodeEmptyBody},
		{"upload-bad-csv", "POST", "/v1/datasets", "text/csv", "a,b\n1\n", 400, CodeInvalidRequest},
		{"upload-bad-comma", "POST", "/v1/datasets?comma=ab", "text/csv", tinyCSV, 400, CodeInvalidRequest},
		{"upload-too-large", "POST", "/v1/datasets", "text/csv", strings.Repeat("x", 2<<20), 413, CodeBodyTooLarge},
		{"dataset-get-missing", "GET", "/v1/datasets/ds-missing", "", "", 404, "dataset_not_found"},
		{"dataset-delete-missing", "DELETE", "/v1/datasets/ds-missing", "", "", 404, "dataset_not_found"},
		{"dataset-list-bad-limit", "GET", "/v1/datasets?limit=zero", "", "", 400, CodeInvalidRequest},
		{"dataset-list-bad-token", "GET", "/v1/datasets?page_token=%21%21", "", "", 400, CodeInvalidRequest},
		{"append-missing-dataset", "POST", "/v1/datasets/ds-missing/rows", "text/csv", "F,N,1\n", 404, "dataset_not_found"},
		{"append-empty-batch", "POST", "/v1/datasets/" + info.ID + "/rows", "text/csv", "", 400, CodeEmptyBody},
		{"append-bad-batch", "POST", "/v1/datasets/" + info.ID + "/rows", "text/csv", "too,many,cols,here\n", 400, CodeInvalidRequest},
		{"append-bad-content-type", "POST", "/v1/datasets/" + info.ID + "/rows", "application/xml", "<r/>", 400, CodeInvalidRequest},
		{"audit-malformed-json", "POST", "/v1/audits", "application/json", "{nope", 400, CodeInvalidJSON},
		{"audit-unknown-field", "POST", "/v1/audits", "application/json", `{"bogus":1}`, 400, CodeInvalidJSON},
		{"audit-missing-dataset", "POST", "/v1/audits", "application/json", auditJSON("ds-missing"), 404, "dataset_not_found"},
		{"audit-bad-params", "POST", "/v1/audits", "application/json", `{"dataset":"` + info.ID + `","ranker":{"columns":[{"column":"score"}]},"params":{"measure":"bogus"}}`, 400, CodeInvalidRequest},
		{"audit-get-missing", "GET", "/v1/audits/job-999999", "", "", 404, "audit_not_found"},
		{"audit-cancel-missing", "DELETE", "/v1/audits/job-999999", "", "", 404, "audit_not_found"},
		{"report-missing", "GET", "/v1/audits/job-999999/report", "", "", 404, "audit_not_found"},
		{"trace-missing", "GET", "/v1/audits/job-999999/trace", "", "", 404, "trace_not_found"},
		{"audits-bad-state", "GET", "/v1/audits?state=bogus", "", "", 400, CodeInvalidRequest},
		{"audits-bad-limit", "GET", "/v1/audits?limit=-3", "", "", 400, CodeInvalidRequest},
		{"repair-malformed-json", "POST", "/v1/repair", "application/json", "{nope", 400, CodeInvalidJSON},
		{"repair-missing-dataset", "POST", "/v1/repair", "application/json", `{"dataset":"ds-missing","ranker":{"columns":[{"column":"score"}]},"attr":"sex","k":5}`, 404, "dataset_not_found"},
		{"explain-malformed-json", "POST", "/v1/explain", "application/json", "{nope", 400, CodeInvalidJSON},
		{"explain-missing-group", "POST", "/v1/explain", "application/json", `{"dataset":"` + info.ID + `","ranker":{"columns":[{"column":"score"}]},"k":5}`, 400, CodeInvalidRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if e := decodeEnvelope(t, resp); e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
		})
	}
}

// TestErrorEnvelopeReportConflicts covers the 409 report codes by driving
// jobs into each non-done terminal and pre-terminal state directly.
func TestErrorEnvelopeReportConflicts(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})

	get := func(t *testing.T, path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 2, Alpha: 0.8}

	// A job parked on its context: running until canceled.
	parked, err := svc.Jobs().Submit("x", params, func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := get(t, "/v1/audits/"+parked.ID+"/report")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running report: status %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != CodeAuditNotReady {
		t.Errorf("running report code = %q, want %q", e.Code, CodeAuditNotReady)
	}
	resp.Body.Close()

	// Cancel it and the report flips to audit_canceled.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/audits/"+parked.ID, nil)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if _, err := svc.Jobs().Wait(context.Background(), parked.ID); err != nil {
		t.Fatal(err)
	}
	resp = get(t, "/v1/audits/"+parked.ID+"/report")
	if e := decodeEnvelope(t, resp); resp.StatusCode != http.StatusConflict || e.Code != CodeAuditCanceled {
		t.Errorf("canceled report: status %d code %q", resp.StatusCode, e.Code)
	}
	resp.Body.Close()

	// A job that fails.
	failed, err := svc.Jobs().Submit("x", params, func(context.Context) (*rankfair.ReportJSON, bool, error) {
		return nil, false, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Jobs().Wait(context.Background(), failed.ID); err != nil {
		t.Fatal(err)
	}
	resp = get(t, "/v1/audits/"+failed.ID+"/report")
	if e := decodeEnvelope(t, resp); resp.StatusCode != http.StatusConflict || e.Code != CodeAuditFailed {
		t.Errorf("failed report: status %d code %q", resp.StatusCode, e.Code)
	}
	resp.Body.Close()
}

// TestErrorEnvelopeQueueFull fills the worker and the queue with parked
// jobs, then submits over HTTP: the rejection must carry queue_full.
func TestErrorEnvelopeQueueFull(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	info := upload(t, ts, biasedCSV(20))

	park := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	}
	params := rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 1, KMin: 1, KMax: 2, Alpha: 0.8}
	for i := 0; i < 2; i++ { // one running, one queued
		if _, err := svc.Jobs().Submit("x", params, park); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/audits", "application/json",
		strings.NewReader(fmt.Sprintf(`{"dataset":%q,"ranker":{"columns":[{"column":"score","descending":true}]},"params":{"measure":"prop","min_size":5,"kmin":5,"kmax":10,"alpha":0.8}}`, info.ID)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != CodeQueueFull {
		t.Errorf("code = %q, want %q", e.Code, CodeQueueFull)
	}
}

// TestWriteErrMappings unit-tests the error-to-code table, including the
// defensive mappings no HTTP path can currently reach.
func TestWriteErrMappings(t *testing.T) {
	for _, tc := range []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"not-found", &NotFoundError{Resource: "dataset", ID: "x"}, 404, "dataset_not_found"},
		{"schema-drift", &BadRequestError{Err: fmt.Errorf("append: %w", dataset.ErrSchemaDrift)}, 400, CodeSchemaDrift},
		{"bad-request", &BadRequestError{Err: errors.New("nope")}, 400, CodeInvalidRequest},
		{"queue-full", fmt.Errorf("submit: %w", ErrQueueFull), 503, CodeQueueFull},
		{"storage", &StorageError{Err: errors.New("disk gone")}, 500, CodeStorageError},
		{"internal", errors.New("wat"), 500, CodeInternal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			rec.Header().Set("X-Request-ID", "req-test")
			writeErr(rec, tc.err)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			var env struct {
				Error APIError `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.wantCode || env.Error.RequestID != "req-test" {
				t.Errorf("envelope = %+v, want code %q", env.Error, tc.wantCode)
			}
		})
	}
}

// TestDatasetListPagination walks the dataset list with a small page size
// and asserts the cursor yields each record exactly once, in the
// deterministic (Created desc, ID asc) order.
func TestDatasetListPagination(t *testing.T) {
	_, ts := testServer(t)
	uploaded := make(map[string]bool)
	for i := 0; i < 5; i++ {
		info := upload(t, ts, biasedCSV(10+2*i))
		uploaded[info.ID] = true
	}

	var full DatasetList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &full); code != http.StatusOK {
		t.Fatalf("full list: status %d", code)
	}
	if len(full.Datasets) != 5 || full.NextPageToken != "" {
		t.Fatalf("full list: %d entries, token %q", len(full.Datasets), full.NextPageToken)
	}
	for i := 1; i < len(full.Datasets); i++ {
		prev, cur := full.Datasets[i-1], full.Datasets[i]
		if cur.Created.After(prev.Created) {
			t.Fatalf("list not Created-descending at %d", i)
		}
	}

	var walked []DatasetInfo
	token := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		url := ts.URL + "/v1/datasets?limit=2"
		if token != "" {
			url += "&page_token=" + token
		}
		var page DatasetList
		if code := doJSON(t, http.MethodGet, url, nil, &page); code != http.StatusOK {
			t.Fatalf("page: status %d", code)
		}
		if len(page.Datasets) > 2 {
			t.Fatalf("page overflow: %d entries", len(page.Datasets))
		}
		walked = append(walked, page.Datasets...)
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(walked) != 5 {
		t.Fatalf("walked %d records, want 5", len(walked))
	}
	for i, info := range walked {
		if !uploaded[info.ID] {
			t.Errorf("walked unknown dataset %s", info.ID)
		}
		if info.ID != full.Datasets[i].ID {
			t.Errorf("walk order diverges from full list at %d: %s vs %s", i, info.ID, full.Datasets[i].ID)
		}
	}
}

// TestAuditListPaginationAndFilter pages the audit list and filters by
// state.
func TestAuditListPaginationAndFilter(t *testing.T) {
	svc, ts := testServer(t)
	info := upload(t, ts, biasedCSV(30))

	var ids []string
	for i := 0; i < 5; i++ {
		var view JobView
		req := AuditRequest{Dataset: info.ID, Ranker: scoreRanker(), Params: rankfair.AuditParams{
			Measure: rankfair.MeasureProp, MinSize: 2, KMin: 2, KMax: 5 + i, Alpha: 0.8,
		}}
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &view); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids = append(ids, view.ID)
		awaitJob(t, svc, view.ID)
	}

	var walked []JobView
	token := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		url := ts.URL + "/v1/audits?limit=2"
		if token != "" {
			url += "&page_token=" + token
		}
		var page AuditList
		if code := doJSON(t, http.MethodGet, url, nil, &page); code != http.StatusOK {
			t.Fatalf("page: status %d", code)
		}
		if len(page.Audits) > 2 {
			t.Fatalf("page overflow: %d", len(page.Audits))
		}
		walked = append(walked, page.Audits...)
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if len(walked) != 5 {
		t.Fatalf("walked %d audits, want 5", len(walked))
	}
	for i := 1; i < len(walked); i++ {
		if walked[i-1].ID <= walked[i].ID {
			t.Fatalf("audit walk not ID-descending: %s then %s", walked[i-1].ID, walked[i].ID)
		}
	}

	var done AuditList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits?state=done", nil, &done); code != http.StatusOK {
		t.Fatalf("state filter: status %d", code)
	}
	if len(done.Audits) != len(ids) {
		t.Errorf("state=done returned %d audits, want %d", len(done.Audits), len(ids))
	}
	var queued AuditList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits?state=queued", nil, &queued); code != http.StatusOK {
		t.Fatalf("state filter: status %d", code)
	}
	if len(queued.Audits) != 0 {
		t.Errorf("state=queued returned %d audits, want 0", len(queued.Audits))
	}
}

// TestAppendLocationHeader: a successful append is a 201 whose Location
// names the advanced dataset.
func TestAppendLocationHeader(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(20))
	resp, err := http.Post(ts.URL+"/v1/datasets/"+info.ID+"/rows", "text/csv", strings.NewReader("F,N,42\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/"+info.ID {
		t.Errorf("Location = %q, want /v1/datasets/%s", loc, info.ID)
	}
}
