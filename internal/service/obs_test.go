package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/obs"
)

// submitAudit posts one audit request and returns the accepted job view.
func submitAudit(t *testing.T, ts *httptest.Server, dataset string, params rankfair.AuditParams) JobView {
	t.Helper()
	var view JobView
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
		Dataset: dataset, Ranker: scoreRanker(), Params: params,
	}, &view)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	return view
}

// TestAuditReportCarriesStats: every completed audit response carries the
// search statistics block, and identical audits served from the cache
// carry the same one (the stats describe the computation, not the serve).
func TestAuditReportCarriesStats(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(200))
	params := rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8}

	view := submitAudit(t, ts, info.ID, params)
	report := awaitReport(t, ts, view.ID)
	if report.Stats == nil {
		t.Fatal("completed audit report has no stats block")
	}
	if report.Stats.Strategy != "index" {
		t.Errorf("stats strategy = %q, want %q (analysts are admitted pre-warmed)", report.Stats.Strategy, "index")
	}
	work := report.Stats.NodesExpanded + report.Stats.PrunedSize + report.Stats.PrunedBound
	if work == 0 {
		t.Error("stats report zero lattice work for a non-trivial audit")
	}

	// A second identical audit is a cache hit and must carry identical stats.
	view2 := submitAudit(t, ts, info.ID, params)
	report2 := awaitReport(t, ts, view2.ID)
	a, _ := json.Marshal(report.Stats)
	b, _ := json.Marshal(report2.Stats)
	if !bytes.Equal(a, b) {
		t.Errorf("cache-hit stats differ:\n%s\n%s", a, b)
	}
}

// TestTraceEndpoint: a finished job's span tree is served from the trace
// ring, rooted at submission with queue and run phases, and the computing
// job's run span nests the analyst/search/serialize phases.
func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))
	view := submitAudit(t, ts, info.ID,
		rankfair.AuditParams{Measure: "global", MinSize: 10, KMin: 5, KMax: 20, Lower: constants(5, 20, 2)})
	awaitReport(t, ts, view.ID)

	var tree obs.TraceTree
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/"+view.ID+"/trace", nil, &tree); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if tree.ID != view.ID {
		t.Errorf("trace id = %q, want %q", tree.ID, view.ID)
	}
	if tree.Root.Name != "audit" {
		t.Errorf("root span = %q, want audit", tree.Root.Name)
	}
	phases := map[string]bool{}
	for _, c := range tree.Root.Children {
		phases[c.Name] = true
		if c.Name == "run" {
			for _, cc := range c.Children {
				phases[cc.Name] = true
			}
		}
	}
	for _, want := range []string{"queue", "run", "analyst", "search", "serialize"} {
		if !phases[want] {
			t.Errorf("trace is missing the %q phase; got %v", want, phases)
		}
	}

	// Unknown job IDs (and not-yet-finished ones) 404.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/job-999999/trace", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown trace: status %d, want 404", code)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9.eE+-]+$`)

// TestMetricsExposition: the scrape carries the histogram families in
// valid text format, the split error classes, the fleet-level search
// counters (counted once per computation, not per serve), and every
// response carries a correlation ID.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))
	params := rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8}
	awaitReport(t, ts, submitAudit(t, ts, info.ID, params).ID)
	awaitReport(t, ts, submitAudit(t, ts, info.ID, params).ID) // cache hit

	// One 4xx to populate the error class counter.
	resp404, err := http.Get(ts.URL + "/v1/datasets/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("probe: status %d, want 404", resp404.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response has no X-Request-ID header")
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	// Structural validity: every line is a comment or a sample, and every
	// sample's family was announced by HELP and TYPE lines before it.
	announced := map[string]bool{}
	histograms := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			announced[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if !announced[f[0]] {
				t.Errorf("TYPE before HELP for %s", f[0])
			}
			if f[1] == "histogram" {
				histograms[f[0]] = true
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bn, ok := strings.CutSuffix(name, suf); ok && announced[bn] {
				base = bn
				break
			}
		}
		if !announced[base] {
			t.Errorf("sample %q has no HELP/TYPE announcement", name)
		}
	}
	if len(histograms) < 3 {
		t.Errorf("scrape has %d histogram families, want >= 3: %v", len(histograms), histograms)
	}

	for _, want := range []string{
		`rankfaird_request_errors_total{class="4xx"} 1`,
		`rankfaird_request_duration_seconds_bucket{route="POST /v1/audits",le="+Inf"} 2`,
		`rankfaird_job_run_seconds_count 2`,
		`rankfaird_job_queue_wait_seconds_count 2`,
		`rankfaird_decode_seconds_count 1`,
		`rankfaird_search_total{strategy="index"} 1`, // second audit was a cache hit
		"rankfaird_search_nodes_expanded_total",
		"rankfaird_search_pruned_total{reason=",
		"rankfaird_analyst_index_bytes",
		"rankfaird_goroutines",
		"rankfaird_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// syncWriter is a mutex-guarded byte buffer usable as an slog sink from
// worker goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSlowAuditLogging: an audit running past the threshold logs a warn
// record carrying the span tree.
func TestSlowAuditLogging(t *testing.T) {
	var sink syncWriter
	logger := slog.New(slog.NewTextHandler(&sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	svc := mustNew(t, Config{Workers: 2, CacheEntries: 8, MaxDatasets: 4, Logger: logger, SlowAudit: time.Nanosecond})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})

	info := upload(t, ts, biasedCSV(120))
	view := submitAudit(t, ts, info.ID,
		rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8})
	awaitReport(t, ts, view.ID)

	out := sink.String()
	if !strings.Contains(out, "slow audit") {
		t.Fatalf("no slow-audit warning in log output:\n%s", out)
	}
	if !strings.Contains(out, `"name":"search"`) && !strings.Contains(out, `\"name\":\"search\"`) {
		t.Errorf("slow-audit record carries no span tree:\n%s", out)
	}
}
