package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"rankfair"
)

// metrics holds the request-level counters; job and cache counters live
// with their subsystems and are gathered at scrape time.
type metrics struct {
	requests      atomic.Int64
	requestErrors atomic.Int64
	uploads       atomic.Int64

	// Streaming append counters: accepted batches, rows they carried, the
	// incremental-vs-rebuild path split, and cached analysts warm-promoted
	// across generations instead of invalidated.
	streamAppends     atomic.Int64
	streamRows        atomic.Int64
	streamIncremental atomic.Int64
	streamRebuilds    atomic.Int64
	streamPromoted    atomic.Int64
}

// Handler returns the daemon's full route table as a stdlib handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetEvict)
	mux.HandleFunc("POST /v1/datasets/{id}/rows", s.handleDatasetAppend)
	mux.HandleFunc("POST /v1/audits", s.handleAuditSubmit)
	mux.HandleFunc("GET /v1/audits", s.handleAuditList)
	mux.HandleFunc("GET /v1/audits/{id}", s.handleAuditGet)
	mux.HandleFunc("DELETE /v1/audits/{id}", s.handleAuditCancel)
	mux.HandleFunc("GET /v1/audits/{id}/report", s.handleAuditReport)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.count(mux)
}

// statusWriter records the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// count wraps the mux with request/error accounting.
func (s *Service) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 400 {
			s.metrics.requestErrors.Add(1)
		}
	})
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeErr maps service errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	var nf *NotFoundError
	var br *BadRequestError
	switch {
	case errors.As(err, &nf):
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	case errors.As(err, &br):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

// handleDatasetUpload decodes a raw CSV body into the registry. Optional
// query parameters: name (label), categorical / numeric (comma-separated
// column lists forcing the kind), all_categorical=true, comma (single-rune
// field delimiter).
func (s *Service) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: fmt.Sprintf("reading upload: %v", err)})
		return
	}
	if len(raw) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "empty upload"})
		return
	}
	q := r.URL.Query()
	opts := rankfair.CSVOptions{
		AllCategorical: q.Get("all_categorical") == "true",
	}
	if v := q.Get("categorical"); v != "" {
		opts.CategoricalColumns = strings.Split(v, ",")
	}
	if v := q.Get("numeric"); v != "" {
		opts.NumericColumns = strings.Split(v, ",")
	}
	if v := q.Get("comma"); v != "" {
		runes := []rune(v)
		if len(runes) != 1 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("comma must be a single rune, got %q", v)})
			return
		}
		opts.Comma = runes[0]
	}
	info, err := s.registry.Add(q.Get("name"), raw, opts)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	s.metrics.uploads.Add(1)
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{Datasets: s.registry.List()})
}

func (s *Service) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, info, ok := s.registry.Get(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "dataset", ID: id})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleDatasetEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Evict(id) {
		writeErr(w, &NotFoundError{Resource: "dataset", ID: id})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDatasetAppend applies one row batch (CSV rows without a header,
// or JSON rows — see stream.ParseJSON for the accepted shapes) to a
// dataset, advancing it to a new versioned generation.
func (s *Service) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: fmt.Sprintf("reading batch: %v", err)})
		return
	}
	if len(raw) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "empty batch"})
		return
	}
	resp, err := s.AppendRows(r.PathValue("id"), r.Header.Get("Content-Type"), raw)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAuditSubmit(w http.ResponseWriter, r *http.Request) {
	var req AuditRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	view, err := s.SubmitAudit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/audits/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleAuditList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Audits []JobView `json:"audits"`
	}{Audits: s.jobs.List()})
}

func (s *Service) handleAuditGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.jobs.Get(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleAuditCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.jobs.Cancel(id) {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	view, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleAuditReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	report, view, ok := s.jobs.Report(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	switch view.Status {
	case JobDone:
		writeJSON(w, http.StatusOK, report)
	case JobFailed:
		writeJSON(w, http.StatusConflict, apiError{Error: "audit failed: " + view.Error})
	case JobCanceled:
		writeJSON(w, http.StatusConflict, apiError{Error: "audit canceled"})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("audit %s is %s", id, view.Status)})
	}
}

func (s *Service) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req RepairRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp, err := s.Repair(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp, err := s.Explain(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}{Status: "ok", Datasets: s.registry.Len()})
}

// handleMetrics emits the counters in the Prometheus text exposition
// format (no client library: the format is plain lines).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	js := s.jobs.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	writeMetric := func(name string, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			name, help, name, metricType(name), name, v)
	}
	writeMetric("rankfaird_requests_total", "HTTP requests served.", s.metrics.requests.Load())
	writeMetric("rankfaird_request_errors_total", "HTTP responses with status >= 400.", s.metrics.requestErrors.Load())
	writeMetric("rankfaird_dataset_uploads_total", "Accepted dataset uploads.", s.metrics.uploads.Load())
	writeMetric("rankfaird_datasets", "Datasets currently registered.", int64(s.registry.Len()))
	writeMetric("rankfaird_stream_appends_total", "Accepted streaming append batches.", s.metrics.streamAppends.Load())
	writeMetric("rankfaird_stream_rows_total", "Rows ingested through streaming appends.", s.metrics.streamRows.Load())
	writeMetric("rankfaird_stream_incremental_total", "Append batches applied incrementally (ranking merge-insert, copy-on-write posting maintenance).", s.metrics.streamIncremental.Load())
	writeMetric("rankfaird_stream_rebuild_total", "Append batches applied by full re-decode and rebuild (cost model or schema drift).", s.metrics.streamRebuilds.Load())
	writeMetric("rankfaird_stream_promoted_analysts_total", "Cached analysts warm-promoted to a new dataset generation.", s.metrics.streamPromoted.Load())
	writeMetric("rankfaird_jobs_submitted_total", "Audit jobs accepted.", js.Submitted)
	writeMetric("rankfaird_jobs_completed_total", "Audit jobs finished successfully.", js.Completed)
	writeMetric("rankfaird_jobs_failed_total", "Audit jobs that errored.", js.Failed)
	writeMetric("rankfaird_jobs_canceled_total", "Audit jobs canceled.", js.Canceled)
	writeMetric("rankfaird_jobs_queued", "Audit jobs waiting for a worker.", int64(js.Queued))
	writeMetric("rankfaird_jobs_running", "Audit jobs currently running.", int64(js.Running))
	writeMetric("rankfaird_cache_hits_total", "Audits served from the result cache (completed entries plus joined in-flight computations).", cs.Hits+cs.Shared)
	writeMetric("rankfaird_cache_entry_hits_total", "Audits served from a completed cache entry.", cs.Hits)
	writeMetric("rankfaird_cache_inflight_shared_total", "Audits that joined an identical in-flight computation.", cs.Shared)
	writeMetric("rankfaird_cache_misses_total", "Audits that ran the lattice search.", cs.Misses)
	writeMetric("rankfaird_cache_evictions_total", "Result cache LRU evictions.", cs.Evictions)
	writeMetric("rankfaird_cache_entries", "Result cache entries resident.", int64(cs.Entries))
	as := s.AnalystCacheStats()
	writeMetric("rankfaird_analyst_cache_hits_total", "Audits, repairs and explanations that reused a built analyst (completed entries plus joined in-flight builds).", as.Hits+as.Shared)
	writeMetric("rankfaird_analyst_cache_entry_hits_total", "Analyst reuses served from a completed cache entry.", as.Hits)
	writeMetric("rankfaird_analyst_cache_inflight_shared_total", "Analyst requests that joined an identical in-flight build.", as.Shared)
	writeMetric("rankfaird_analyst_cache_misses_total", "Analyst builds: dataset ranked and counting index constructed.", as.Misses)
	writeMetric("rankfaird_analyst_cache_evictions_total", "Analyst cache LRU evictions.", as.Evictions)
	writeMetric("rankfaird_analyst_cache_entries", "Built analysts resident.", int64(as.Entries))
	_, _ = io.WriteString(w, b.String())
}

// metricType classifies a metric name for the TYPE line.
func metricType(name string) string {
	if strings.HasSuffix(name, "_total") {
		return "counter"
	}
	return "gauge"
}

// decodeJSON strictly decodes one JSON body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}
