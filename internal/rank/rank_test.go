package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/dataset"
)

func scoreTable(t *testing.T, scores ...float64) *dataset.Table {
	t.Helper()
	tb := dataset.New()
	if err := tb.AddNumeric("s", scores); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestByColumnsDescending(t *testing.T) {
	tb := scoreTable(t, 3, 1, 2)
	r := &ByColumns{Keys: []ColumnKey{{Column: "s", Descending: true}}}
	perm, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 1}
	for i, w := range want {
		if perm[i] != w {
			t.Errorf("perm[%d] = %d, want %d", i, perm[i], w)
		}
	}
}

func TestByColumnsTieBreak(t *testing.T) {
	tb := dataset.New()
	_ = tb.AddNumeric("grade", []float64{10, 10, 10})
	_ = tb.AddNumeric("failures", []float64{2, 0, 1})
	r := &ByColumns{Keys: []ColumnKey{
		{Column: "grade", Descending: true},
		{Column: "failures", Descending: false},
	}}
	perm, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0} // fewer failures first
	for i, w := range want {
		if perm[i] != w {
			t.Errorf("perm[%d] = %d, want %d", i, perm[i], w)
		}
	}
}

func TestByColumnsErrors(t *testing.T) {
	tb := dataset.New()
	_ = tb.AddCategorical("c", []string{"a"})
	if _, err := (&ByColumns{}).Rank(tb); err == nil {
		t.Error("no keys should fail")
	}
	if _, err := (&ByColumns{Keys: []ColumnKey{{Column: "x"}}}).Rank(tb); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := (&ByColumns{Keys: []ColumnKey{{Column: "c"}}}).Rank(tb); err == nil {
		t.Error("categorical key should fail")
	}
}

func TestLinearNormalizationAndInversion(t *testing.T) {
	tb := dataset.New()
	_ = tb.AddNumeric("a", []float64{0, 5, 10})
	_ = tb.AddNumeric("b", []float64{10, 5, 0})
	// With b inverted, scores become: row0: 0+0=0? no: a norm {0,0.5,1}; b
	// norm {1,0.5,0} inverted {0,0.5,1}. Sum: {0,1,2} → ranking 2,1,0.
	r := &Linear{Columns: []string{"a", "b"}, Inverted: []string{"b"}}
	perm, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0}
	for i, w := range want {
		if perm[i] != w {
			t.Errorf("perm[%d] = %d, want %d", i, perm[i], w)
		}
	}
	scores, err := r.Scores(tb)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0 || scores[1] != 1 || scores[2] != 2 {
		t.Errorf("scores = %v", scores)
	}
}

func TestLinearWeightsAndErrors(t *testing.T) {
	tb := dataset.New()
	_ = tb.AddNumeric("a", []float64{0, 1})
	_ = tb.AddCategorical("c", []string{"x", "y"})
	r := &Linear{Columns: []string{"a"}, Weights: []float64{-1}}
	perm, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 {
		t.Error("negative weight should invert the order")
	}
	if _, err := (&Linear{}).Rank(tb); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := (&Linear{Columns: []string{"a"}, Weights: []float64{1, 2}}).Rank(tb); err == nil {
		t.Error("weight mismatch should fail")
	}
	if _, err := (&Linear{Columns: []string{"zz"}}).Rank(tb); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := (&Linear{Columns: []string{"c"}}).Rank(tb); err == nil {
		t.Error("categorical column should fail")
	}
}

func TestLinearConstantColumn(t *testing.T) {
	tb := dataset.New()
	_ = tb.AddNumeric("a", []float64{7, 7, 7})
	r := &Linear{Columns: []string{"a"}}
	scores, err := r.Scores(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s != 0 {
			t.Errorf("constant column should contribute 0, got %v", s)
		}
	}
}

func TestFixed(t *testing.T) {
	tb := scoreTable(t, 1, 2, 3)
	r := &Fixed{Perm: []int{2, 0, 1}}
	perm, err := r.Rank(tb)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 2 {
		t.Error("fixed perm not honored")
	}
	perm[0] = 99 // callers must not be able to corrupt the ranker
	perm2, _ := r.Rank(tb)
	if perm2[0] != 2 {
		t.Error("Fixed must copy its permutation")
	}
	if _, err := (&Fixed{Perm: []int{0}}).Rank(tb); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := (&Fixed{Perm: []int{0, 0, 1}}).Rank(tb); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := (&Fixed{Perm: []int{0, 1, 5}}).Rank(tb); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestPositionsInverse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		perm := rng.Perm(n)
		pos := Positions(perm)
		for i, ri := range perm {
			if pos[ri] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestByScoresDescStableTies(t *testing.T) {
	perm := ByScoresDesc([]float64{1, 3, 3, 2})
	want := []int{1, 2, 3, 0}
	for i, w := range want {
		if perm[i] != w {
			t.Errorf("perm[%d] = %d, want %d", i, perm[i], w)
		}
	}
}
