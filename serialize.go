package rankfair

import (
	"encoding/json"
	"fmt"
	"io"

	"rankfair/internal/pattern"
)

// ReportJSON is the serialized form of a detection report, suitable for
// dashboards and downstream tooling. Groups carry both machine-readable
// keys and human-readable attribute/label maps, enriched with the sizes
// and bias magnitudes of InfoAt.
type ReportJSON struct {
	// Measure names the fairness measure that produced the report.
	Measure string `json:"measure"`
	// KMin, KMax delimit the examined range of k.
	KMin int `json:"kmin"`
	KMax int `json:"kmax"`
	// Attributes lists the pattern space, in order.
	Attributes []string `json:"attributes"`
	// NodesExamined and FullSearches mirror the work statistics.
	NodesExamined int64 `json:"nodes_examined"`
	FullSearches  int   `json:"full_searches"`
	// Results holds one entry per k with a non-empty (or changed) result
	// set; consumers index by K.
	Results []KGroupsJSON `json:"results"`
}

// KGroupsJSON is one k's result set.
type KGroupsJSON struct {
	K      int         `json:"k"`
	Groups []GroupJSON `json:"groups"`
}

// GroupJSON is one detected group.
type GroupJSON struct {
	// Pattern maps attribute names to value labels (raw codes when the
	// analyst has no dictionaries).
	Pattern map[string]string `json:"pattern"`
	// Key is the canonical pattern encoding (pattern.ParseKey inverts it).
	Key string `json:"key"`
	// Size, TopK, Required and Bias mirror GroupInfo.
	Size     int     `json:"size"`
	TopK     int     `json:"top_k"`
	Required float64 `json:"required"`
	Bias     float64 `json:"bias"`
}

// measureName renders the report kind.
func (r *Report) measureName() string {
	switch r.kind {
	case kindGlobalLower:
		return "global-lower"
	case kindPropLower:
		return "proportional-lower"
	case kindGlobalUpper:
		return "global-upper"
	case kindPropUpper:
		return "proportional-upper"
	case kindExposure:
		return "exposure"
	default:
		return "unknown"
	}
}

// ToJSON converts the report to its serializable form.
func (r *Report) ToJSON() *ReportJSON {
	out := &ReportJSON{
		Measure:       r.measureName(),
		KMin:          r.KMin,
		KMax:          r.KMax,
		Attributes:    append([]string(nil), r.analyst.in.Space.Names...),
		NodesExamined: r.Stats.NodesExamined,
		FullSearches:  r.Stats.FullSearches,
	}
	for k := r.KMin; k <= r.KMax; k++ {
		infos := r.InfoAt(k)
		if len(infos) == 0 {
			continue
		}
		kg := KGroupsJSON{K: k, Groups: make([]GroupJSON, len(infos))}
		for i, info := range infos {
			assigns := make(map[string]string, info.Pattern.NumAttrs())
			for _, a := range info.Pattern.Attrs() {
				label := fmt.Sprintf("%d", info.Pattern[a])
				if r.analyst.dicts != nil && a < len(r.analyst.dicts) && int(info.Pattern[a]) < len(r.analyst.dicts[a]) {
					label = r.analyst.dicts[a][info.Pattern[a]]
				}
				assigns[r.analyst.in.Space.Names[a]] = label
			}
			kg.Groups[i] = GroupJSON{
				Pattern:  assigns,
				Key:      info.Pattern.Key(),
				Size:     info.Size,
				TopK:     info.TopK,
				Required: info.Required,
				Bias:     info.Bias,
			}
		}
		out.Results = append(out.Results, kg)
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.ToJSON())
}

// ParseGroupKey decodes a GroupJSON key back into a Pattern over the
// analyst's space, validating width and value ranges.
func (a *Analyst) ParseGroupKey(key string) (Pattern, error) {
	p, err := pattern.ParseKey(key)
	if err != nil {
		return nil, err
	}
	if len(p) != a.in.Space.NumAttrs() {
		return nil, fmt.Errorf("rankfair: key has %d attributes, space has %d", len(p), a.in.Space.NumAttrs())
	}
	for i, v := range p {
		if v != Unbound && int(v) >= a.in.Space.Cards[i] {
			return nil, fmt.Errorf("rankfair: key binds attribute %q to out-of-domain value %d", a.in.Space.Names[i], v)
		}
	}
	return p, nil
}
