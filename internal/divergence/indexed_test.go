package divergence

import (
	"math/rand"
	"testing"

	"rankfair/internal/core"
	"rankfair/internal/count"
	"rankfair/internal/pattern"
)

// randInput builds a random space, row matrix and ranking.
func randInput(rng *rand.Rand, nRows, nAttrs, maxCard int) *core.Input {
	space := &pattern.Space{
		Names: make([]string, nAttrs),
		Cards: make([]int, nAttrs),
	}
	for a := 0; a < nAttrs; a++ {
		space.Names[a] = string(rune('A' + a))
		space.Cards[a] = 1 + rng.Intn(maxCard)
	}
	rows := make([][]int32, nRows)
	for i := range rows {
		rows[i] = make([]int32, nAttrs)
		for a := 0; a < nAttrs; a++ {
			rows[i][a] = int32(rng.Intn(space.Cards[a]))
		}
	}
	return &core.Input{Rows: rows, Space: space, Ranking: rng.Perm(nRows)}
}

// TestFindIndexedMatchesNaive proves the rank-space search returns the
// exact report of the scanning implementation: same groups in the same
// order with identical sizes, outcomes, divergences and t statistics.
func TestFindIndexedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		in := randInput(rng, 30+rng.Intn(120), 1+rng.Intn(4), 4)
		ix := count.Build(in.Rows, in.Space, in.Ranking)
		params := Params{
			MinSupport: []float64{0, 0.05, 0.13, 0.3}[rng.Intn(4)],
			K:          1 + rng.Intn(len(in.Rows)),
		}
		want, err := Find(in, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FindIndexed(in, ix, params)
		if err != nil {
			t.Fatal(err)
		}
		if got.DatasetOutcome != want.DatasetOutcome {
			t.Fatalf("trial %d: dataset outcome %v != %v", trial, got.DatasetOutcome, want.DatasetOutcome)
		}
		if len(got.Groups) != len(want.Groups) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got.Groups), len(want.Groups))
		}
		for i := range want.Groups {
			g, w := got.Groups[i], want.Groups[i]
			if !g.Pattern.Equal(w.Pattern) || g.Size != w.Size || g.Support != w.Support ||
				g.Outcome != w.Outcome || g.Divergence != w.Divergence || g.TStat != w.TStat {
				t.Fatalf("trial %d group %d: %+v != %+v", trial, i, g, w)
			}
		}
	}
}

// TestFindIndexedValidation mirrors Find's input validation.
func TestFindIndexedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randInput(rng, 20, 2, 3)
	ix := count.Build(in.Rows, in.Space, in.Ranking)
	if _, err := FindIndexed(in, ix, Params{MinSupport: -0.1, K: 5}); err == nil {
		t.Error("negative support should fail")
	}
	if _, err := FindIndexed(in, ix, Params{MinSupport: 0.1, K: 0}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FindIndexed(in, ix, Params{MinSupport: 0.1, K: 21}); err == nil {
		t.Error("k beyond dataset should fail")
	}
}
