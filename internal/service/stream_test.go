package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rankfair"
)

// appendBatchCSV builds b rows matching biasedCSV's schema with scores low
// enough to land at the bottom of the ranking (the common streaming shape).
func appendBatchCSV(b int) []byte {
	var buf bytes.Buffer
	regions := []string{"N", "S", "E", "W"}
	for i := 0; i < b; i++ {
		fmt.Fprintf(&buf, "F,%s,%d\n", regions[i%4], 100+i)
	}
	return buf.Bytes()
}

// postAppend posts a batch to the append endpoint.
func postAppend(t *testing.T, ts *httptest.Server, id, contentType string, body []byte) (AppendResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/rows", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out AppendResponse
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding append response %q: %v", raw, err)
		}
	}
	return out, resp.StatusCode
}

// streamAuditParams is a small proportional audit over the biasedCSV shape.
func streamAuditParams() rankfair.AuditParams {
	return rankfair.AuditParams{Measure: rankfair.MeasureProp, MinSize: 5, KMin: 5, KMax: 20, Alpha: 0.8}
}

// runAuditReport submits one audit and returns the raw report bytes.
func runAuditReport(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	var view JobView
	req := AuditRequest{Dataset: id, Ranker: scoreRanker(), Params: streamAuditParams()}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &view); code != http.StatusAccepted {
		t.Fatalf("submit audit: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v JobView
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/"+view.ID, nil, &v); code != http.StatusOK {
			t.Fatalf("poll audit: status %d", code)
		}
		switch v.Status {
		case JobDone:
			resp, err := http.Get(ts.URL + "/v1/audits/" + view.ID + "/report")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("report: status %d: %s", resp.StatusCode, raw)
			}
			return raw
		case JobFailed, JobCanceled:
			t.Fatalf("audit ended %s: %s", v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("audit did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAppendEndToEnd drives the full streaming path over HTTP: a CSV batch
// appended to a dataset advances its generation, the content hash chain
// matches a fresh upload of the concatenated CSV, and the post-append
// audit is byte-identical to the fresh-upload audit.
func TestAppendEndToEnd(t *testing.T) {
	base := biasedCSV(60)
	batch := appendBatchCSV(6)

	_, ts := testServer(t)
	info := upload(t, ts, base)
	if info.Version != 1 || info.Parent != "" {
		t.Fatalf("seed generation: version=%d parent=%q", info.Version, info.Parent)
	}

	resp, code := postAppend(t, ts, info.ID, "text/csv", batch)
	if code != http.StatusCreated {
		t.Fatalf("append: status %d", code)
	}
	if resp.Mode != "incremental" {
		t.Fatalf("append mode = %q, want incremental", resp.Mode)
	}
	if resp.Appended != 6 || resp.Dataset.Rows != 66 {
		t.Fatalf("appended=%d rows=%d", resp.Appended, resp.Dataset.Rows)
	}
	if resp.Dataset.Version != 2 || resp.Dataset.Parent != info.Hash || resp.Dataset.ID != info.ID {
		t.Fatalf("generation chain broken: %+v", resp.Dataset)
	}

	// The advanced generation's hash equals a fresh upload of the
	// concatenated CSV — the two routes literally share cache keys.
	concatenated := append(append([]byte{}, base...), batch...)
	_, ts2 := testServer(t)
	fresh := upload(t, ts2, concatenated)
	if fresh.Hash != resp.Dataset.Hash {
		t.Fatalf("appended hash %s != fresh-upload hash %s", resp.Dataset.Hash, fresh.Hash)
	}

	got := runAuditReport(t, ts, info.ID)
	want := runAuditReport(t, ts2, fresh.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("append-then-audit differs from fresh-upload-then-audit\nappend: %.300s\nfresh:  %.300s", got, want)
	}

	// A second append chains onto the new generation.
	resp2, code := postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(2))
	if code != http.StatusCreated || resp2.Dataset.Version != 3 || resp2.Dataset.Parent != resp.Dataset.Hash {
		t.Fatalf("second append: status %d, %+v", code, resp2.Dataset)
	}
}

// TestAppendJSONBatch: the JSON wire shapes land on the same canonical
// generation as the equivalent CSV batch.
func TestAppendJSONBatch(t *testing.T) {
	base := biasedCSV(40)
	_, ts := testServer(t)
	info := upload(t, ts, base)
	body := []byte(`{"rows": [{"sex": "F", "region": "N", "score": 101}, ["F", "S", 102]]}`)
	resp, code := postAppend(t, ts, info.ID, "application/json", body)
	if code != http.StatusCreated {
		t.Fatalf("json append: status %d", code)
	}
	if resp.Appended != 2 || resp.Dataset.Rows != 42 {
		t.Fatalf("json append: %+v", resp)
	}

	_, ts2 := testServer(t)
	info2 := upload(t, ts2, base)
	resp2, code := postAppend(t, ts2, info2.ID, "text/csv", []byte("F,N,101\nF,S,102\n"))
	if code != http.StatusCreated {
		t.Fatalf("csv append: status %d", code)
	}
	if resp.Dataset.Hash != resp2.Dataset.Hash {
		t.Fatal("JSON and CSV batches produced different generations")
	}
}

// TestAppendSchemaDriftRebuilds: a batch introducing a new categorical
// label cannot apply incrementally; the service falls back to a rebuild
// and the result still matches a fresh upload exactly.
func TestAppendSchemaDriftRebuilds(t *testing.T) {
	base := biasedCSV(40)
	batch := []byte("F,X,101\nM,X,9999\n") // region X is a new label
	_, ts := testServer(t)
	info := upload(t, ts, base)
	resp, code := postAppend(t, ts, info.ID, "text/csv", batch)
	if code != http.StatusCreated {
		t.Fatalf("append: status %d", code)
	}
	if resp.Mode != "rebuild" {
		t.Fatalf("mode = %q, want rebuild", resp.Mode)
	}

	concatenated := append(append([]byte{}, base...), batch...)
	_, ts2 := testServer(t)
	fresh := upload(t, ts2, concatenated)
	if fresh.Hash != resp.Dataset.Hash {
		t.Fatal("rebuild generation hash mismatch")
	}
	got := runAuditReport(t, ts, info.ID)
	want := runAuditReport(t, ts2, fresh.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("rebuild append audit differs from fresh upload audit")
	}
}

// TestAppendCostModel: batches at or above the configured fraction of the
// dataset rebuild even without drift.
func TestAppendCostModel(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, StreamRebuildFraction: 0.1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	info := upload(t, ts, biasedCSV(40))
	resp, code := postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(6)) // 6 >= 0.1*40
	if code != http.StatusCreated || resp.Mode != "rebuild" {
		t.Fatalf("status %d mode %q, want rebuild", code, resp.Mode)
	}
	resp, code = postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(2)) // 2 < 0.1*46
	if code != http.StatusCreated || resp.Mode != "incremental" {
		t.Fatalf("status %d mode %q, want incremental", code, resp.Mode)
	}
}

// TestAppendSnapshotIsolation parks an audit mid-flight on the v1 analyst
// build, lands an append (v2), then releases the audit: it must complete
// against the v1 snapshot it was admitted with, byte-identical to a v1
// audit on an untouched server.
func TestAppendSnapshotIsolation(t *testing.T) {
	base := biasedCSV(60)
	svc, ts := testServer(t)
	info := upload(t, ts, base)

	// Capture the v1 table now; the append below swaps the registry entry.
	v1table, _, ok := svc.registry.Get(info.ID)
	if !ok {
		t.Fatal("dataset missing")
	}
	spec := scoreRanker()
	ranker, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	key := analystCacheKey(info.Hash, &spec)

	// Own the analyst flight for (v1 hash, ranker): the audit submitted
	// next joins it and parks deterministically until we release it.
	release := make(chan struct{})
	flightDone := make(chan struct{})
	go func() {
		defer close(flightDone)
		_, _, err := svc.analysts.Do(context.Background(), key, func() (any, error) {
			<-release
			a, err := rankfair.New(v1table, ranker)
			if err != nil {
				return nil, err
			}
			a.Warm()
			return &analystEntry{analyst: a, ranker: ranker}, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { return svc.analysts.Stats().Misses >= 1 })

	var view JobView
	req := AuditRequest{Dataset: info.ID, Ranker: spec, Params: streamAuditParams()}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &view); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// The audit is parked once it joins the flight.
	waitFor(t, func() bool { return svc.analysts.Stats().Shared >= 1 })

	// The append lands while the v1 audit is in flight.
	resp, code := postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(6))
	if code != http.StatusCreated || resp.Dataset.Version != 2 {
		t.Fatalf("append during in-flight audit: status %d %+v", code, resp)
	}

	close(release)
	<-flightDone
	got := awaitReport(t, ts, view.ID)

	// Reference: the same audit against a server that only ever saw v1.
	_, ts2 := testServer(t)
	info2 := upload(t, ts2, base)
	want := runAuditReport(t, ts2, info2.ID)
	var gotBuf bytes.Buffer
	enc := json.NewEncoder(&gotBuf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(got); err != nil {
		t.Fatal(err)
	}
	if gotBuf.String() != string(want) {
		t.Fatalf("in-flight audit saw the appended generation\ngot:  %.300s\nwant: %.300s", gotBuf.String(), want)
	}
}

// waitFor polls cond with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAppendCacheReconciliation: an append warm-promotes the mutated
// dataset's cached analysts to the new generation and invalidates its old
// keys, while other datasets' cached analysts survive untouched.
func TestAppendCacheReconciliation(t *testing.T) {
	svc, ts := testServer(t)
	infoA := upload(t, ts, biasedCSV(60))
	infoB := upload(t, ts, biasedCSV(44)) // different content, own analyst

	// Warm both analysts.
	runAuditReport(t, ts, infoA.ID)
	runAuditReport(t, ts, infoB.ID)
	baseStats := svc.AnalystCacheStats()
	if baseStats.Entries != 2 {
		t.Fatalf("expected 2 cached analysts, have %d", baseStats.Entries)
	}

	resp, code := postAppend(t, ts, infoA.ID, "text/csv", appendBatchCSV(4))
	if code != http.StatusCreated || resp.Mode != "incremental" {
		t.Fatalf("append: status %d mode %q", code, resp.Mode)
	}
	if resp.PromotedAnalysts != 1 {
		t.Fatalf("promoted %d analysts, want 1", resp.PromotedAnalysts)
	}
	// Old generation's key gone, promoted key in, B untouched → still 2.
	if got := svc.AnalystCacheStats().Entries; got != 2 {
		t.Fatalf("after append: %d cached analysts, want 2", got)
	}
	spec := scoreRanker()
	if _, ok := svc.analysts.Get(analystCacheKey(infoA.Hash, &spec)); ok {
		t.Fatal("old generation analyst key survived the append")
	}
	if _, ok := svc.analysts.Get(analystCacheKey(resp.Dataset.Hash, &spec)); !ok {
		t.Fatal("promoted analyst missing under the new generation key")
	}
	if _, ok := svc.analysts.Get(analystCacheKey(infoB.Hash, &spec)); !ok {
		t.Fatal("append purged another dataset's analyst")
	}

	// The promoted analyst serves A's next audit as a cache hit: no new
	// analyst build (Misses unchanged).
	runAuditReport(t, ts, infoA.ID)
	after := svc.AnalystCacheStats()
	if after.Misses != baseStats.Misses {
		t.Fatalf("post-append audit rebuilt an analyst: misses %d → %d", baseStats.Misses, after.Misses)
	}
	if after.Hits <= baseStats.Hits {
		t.Fatal("post-append audit did not hit the promoted analyst")
	}

	// Result-cache entries for A's old generation are invalidated; B's
	// survive. (Keys embed the content hash.)
	if n := svc.cache.EntriesPrefix(infoA.Hash + "|"); len(n) != 0 {
		t.Fatalf("%d stale result entries for the old generation", len(n))
	}
	if n := svc.cache.EntriesPrefix(infoB.Hash + "|"); len(n) == 0 {
		t.Fatal("append purged another dataset's results")
	}
}

// TestAppendErrors covers the endpoint's failure paths.
func TestAppendErrors(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MaxUploadBytes: 2048})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	info := upload(t, ts, biasedCSV(30))

	if _, code := postAppend(t, ts, "ds-missing", "text/csv", []byte("F,N,1\n")); code != http.StatusNotFound {
		t.Fatalf("missing dataset: status %d", code)
	}
	if _, code := postAppend(t, ts, info.ID, "text/csv", nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if _, code := postAppend(t, ts, info.ID, "text/csv", []byte("F,N\n")); code != http.StatusBadRequest {
		t.Fatalf("short record: status %d", code)
	}
	if _, code := postAppend(t, ts, info.ID, "application/xml", []byte("<rows/>")); code != http.StatusBadRequest {
		t.Fatalf("bad content type: status %d", code)
	}
	if _, code := postAppend(t, ts, info.ID, "application/json", []byte(`{"rows": [`)); code != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", code)
	}
	// A batch that is itself under the limit but pushes the generation's
	// total raw size past it is rejected: the dataset can never grow past
	// what a fresh upload could have delivered.
	big := appendBatchCSV(230) // just under the 2 KiB cap alone, over it with the base
	if len(big) >= 2048 {
		t.Fatalf("test batch too large to exercise the total bound: %d bytes", len(big))
	}
	if _, code := postAppend(t, ts, info.ID, "text/csv", big); code != http.StatusBadRequest {
		t.Fatalf("oversized generation: status %d", code)
	}
}

// TestAppendMetrics: the stream counters appear on /metrics and advance.
func TestAppendMetrics(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(40))
	if _, code := postAppend(t, ts, info.ID, "text/csv", appendBatchCSV(3)); code != http.StatusCreated {
		t.Fatalf("append: status %d", code)
	}
	if _, code := postAppend(t, ts, info.ID, "text/csv", []byte("F,X,1\n")); code != http.StatusCreated {
		t.Fatalf("drift append: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"rankfaird_stream_appends_total 2",
		"rankfaird_stream_rows_total 4",
		"rankfaird_stream_incremental_total 1",
		"rankfaird_stream_rebuild_total 1",
		"rankfaird_stream_promoted_analysts_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
