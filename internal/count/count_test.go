package count

import (
	"math/rand"
	"testing"

	"rankfair/internal/pattern"
)

// randInput builds a random space, row matrix and ranking permutation.
func randInput(rng *rand.Rand, nRows, nAttrs, maxCard int) ([][]int32, *pattern.Space, []int) {
	space := &pattern.Space{
		Names: make([]string, nAttrs),
		Cards: make([]int, nAttrs),
	}
	for a := 0; a < nAttrs; a++ {
		space.Names[a] = string(rune('A' + a))
		space.Cards[a] = 1 + rng.Intn(maxCard)
	}
	rows := make([][]int32, nRows)
	for i := range rows {
		rows[i] = make([]int32, nAttrs)
		for a := 0; a < nAttrs; a++ {
			rows[i][a] = int32(rng.Intn(space.Cards[a]))
		}
	}
	return rows, space, rng.Perm(nRows)
}

// randPattern draws a pattern binding each attribute with probability pBind.
func randPattern(rng *rand.Rand, space *pattern.Space, pBind float64) pattern.Pattern {
	p := pattern.Empty(space.NumAttrs())
	for a := 0; a < space.NumAttrs(); a++ {
		if rng.Float64() < pBind {
			p[a] = int32(rng.Intn(space.Cards[a]))
		}
	}
	return p
}

// TestIndexMatchesNaive is the differential test the tentpole rests on:
// indexed Count/CountTopK/MatchRanks must equal the naive scans on random
// spaces, rows and rankings, for patterns of every arity.
func TestIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nRows := 1 + rng.Intn(120)
		nAttrs := 1 + rng.Intn(5)
		rows, space, ranking := randInput(rng, nRows, nAttrs, 4)
		ix := Build(rows, space, ranking)

		for pi := 0; pi < 40; pi++ {
			p := randPattern(rng, space, 0.5)
			if got, want := ix.Count(p), p.Count(rows); got != want {
				t.Fatalf("trial %d: Count(%v) = %d, naive %d", trial, p, got, want)
			}
			for _, k := range []int{0, 1, nRows / 2, nRows, nRows + 5} {
				got := ix.CountTopK(p, k)
				want := p.CountTopK(rows, ranking, max(k, 0))
				if k <= 0 {
					want = 0
				}
				if got != want {
					t.Fatalf("trial %d: CountTopK(%v, %d) = %d, naive %d", trial, p, k, got, want)
				}
			}
			// MatchRanks must be ascending and consistent with CountTopK at
			// every cut.
			ranks := ix.MatchRanks(p)
			for i := 1; i < len(ranks); i++ {
				if ranks[i] <= ranks[i-1] {
					t.Fatalf("trial %d: MatchRanks(%v) not strictly ascending: %v", trial, p, ranks)
				}
			}
			if len(ranks) != ix.Count(p) {
				t.Fatalf("trial %d: MatchRanks length %d != Count %d", trial, len(ranks), ix.Count(p))
			}
			for _, rk := range ranks {
				if !p.Matches(rows[ranking[rk]]) {
					t.Fatalf("trial %d: MatchRanks(%v) includes non-matching rank %d", trial, p, rk)
				}
			}
		}
	}
}

// TestMatchRowsOrder proves MatchRows reproduces the iteration order of a
// naive dataset scan (ascending row index).
func TestMatchRowsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, space, ranking := randInput(rng, 80, 4, 3)
	ix := Build(rows, space, ranking)
	for trial := 0; trial < 30; trial++ {
		p := randPattern(rng, space, 0.5)
		var want []int
		for i, row := range rows {
			if p.Matches(row) {
				want = append(want, i)
			}
		}
		got := ix.MatchRows(p)
		if len(got) != len(want) {
			t.Fatalf("MatchRows(%v) length %d, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatchRows(%v) = %v, want %v", p, got, want)
			}
		}
	}
}

// TestCountsOver checks the one-pass per-k materialization against per-k
// binary searches.
func TestCountsOver(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, space, ranking := randInput(rng, 100, 3, 3)
	ix := Build(rows, space, ranking)
	for trial := 0; trial < 30; trial++ {
		p := randPattern(rng, space, 0.6)
		ranks := ix.MatchRanks(p)
		kMin, kMax := 1+rng.Intn(50), 0
		kMax = kMin + rng.Intn(100-kMin)
		vec := CountsOver(ranks, kMin, kMax)
		for k := kMin; k <= kMax; k++ {
			if got, want := int(vec[k-kMin]), ix.CountTopK(p, k); got != want {
				t.Fatalf("CountsOver(%v)[k=%d] = %d, want %d", p, k, got, want)
			}
		}
	}
}

// TestExposuresOver checks the one-pass exposure materialization against a
// naive weighted prefix scan, requiring exact float equality (same
// summation order).
func TestExposuresOver(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, space, ranking := randInput(rng, 90, 3, 3)
	ix := Build(rows, space, ranking)
	w := make([]float64, len(rows))
	for i := range w {
		w[i] = rng.Float64()
	}
	for trial := 0; trial < 20; trial++ {
		p := randPattern(rng, space, 0.6)
		ranks := ix.MatchRanks(p)
		kMin, kMax := 1+rng.Intn(40), 0
		kMax = kMin + rng.Intn(90-kMin)
		vec := ExposuresOver(ranks, w, kMin, kMax)
		for k := kMin; k <= kMax; k++ {
			want := 0.0
			for i := 0; i < k; i++ {
				if p.Matches(rows[ranking[i]]) {
					want += w[i]
				}
			}
			if got := vec[k-kMin]; got != want {
				t.Fatalf("ExposuresOver(%v)[k=%d] = %v, want %v", p, k, got, want)
			}
		}
	}
}

// TestEmptyPattern covers the no-bound fast paths.
func TestEmptyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows, space, ranking := randInput(rng, 40, 3, 3)
	ix := Build(rows, space, ranking)
	p := pattern.Empty(space.NumAttrs())
	if got := ix.Count(p); got != 40 {
		t.Fatalf("Count(empty) = %d", got)
	}
	if got := ix.CountTopK(p, 17); got != 17 {
		t.Fatalf("CountTopK(empty, 17) = %d", got)
	}
	if got := ix.CountTopK(p, 99); got != 40 {
		t.Fatalf("CountTopK(empty, 99) = %d", got)
	}
	if got := len(ix.MatchRanks(p)); got != 40 {
		t.Fatalf("MatchRanks(empty) length %d", got)
	}
}

// TestOutOfDomainValues pins the naive-scan semantics for patterns that
// bind values outside an attribute's dictionary: they match nothing (and
// must not panic on a posting-list lookup that does not exist).
func TestOutOfDomainValues(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows, space, ranking := randInput(rng, 40, 3, 3)
	ix := Build(rows, space, ranking)
	for _, bad := range []int32{int32(space.Cards[0]), 99, -2} {
		p := pattern.Empty(space.NumAttrs()).With(0, bad)
		if got, want := ix.Count(p), p.Count(rows); got != 0 || got != want {
			t.Fatalf("Count(v=%d) = %d, naive %d", bad, got, want)
		}
		if got, want := ix.CountTopK(p, 20), p.CountTopK(rows, ranking, 20); got != 0 || got != want {
			t.Fatalf("CountTopK(v=%d) = %d, naive %d", bad, got, want)
		}
		if got := ix.MatchRanks(p); got != nil {
			t.Fatalf("MatchRanks(v=%d) = %v, want nil", bad, got)
		}
		// Mixed with an in-domain binding on another attribute.
		q := p.With(1, 0)
		if got := ix.Count(q); got != 0 {
			t.Fatalf("Count(mixed out-of-domain) = %d", got)
		}
	}
}

// TestRankOf checks the inverse permutation.
func TestRankOf(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, space, ranking := randInput(rng, 50, 2, 3)
	ix := Build(rows, space, ranking)
	for rank, ri := range ranking {
		if got := ix.RankOf(ri); got != rank {
			t.Fatalf("RankOf(%d) = %d, want %d", ri, got, rank)
		}
	}
}
