package service

import (
	"container/list"
	"context"
	"sort"
	"strings"
	"sync"
)

// Cache is an LRU result cache with in-flight deduplication: concurrent
// Do calls for the same key share one computation (the singleflight
// pattern), and completed values are retained up to a capacity with
// least-recently-used eviction. It is the reason repeated audits of an
// unchanged dataset cost one lattice search total, not one per request.
type Cache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element holding *cacheItem
	inflight map[string]*flight

	// Counters, guarded by mu; see CacheStats.
	hits, misses, shared, evictions int64
}

type cacheItem struct {
	key string
	val any
}

// flight is one in-progress computation awaited by >= 1 callers.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts Do calls served from a completed entry.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that ran the computation.
	Misses int64 `json:"misses"`
	// Shared counts Do calls that joined another caller's in-flight
	// computation — the concurrent-duplicate case.
	Shared int64 `json:"shared"`
	// Evictions counts LRU evictions.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
}

// NewCache returns a cache retaining up to capacity values (<= 0 means 128).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 128
	}
	return &Cache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the value for key, computing it with compute on a miss.
// Exactly one caller computes per key at a time; concurrent callers block
// until the computation finishes and share its result. hit reports whether
// the value came from the cache or a shared flight rather than this
// caller's own computation.
//
// Errors are returned to every waiting caller and are not cached, so a
// failed computation can be retried. ctx bounds only the *waiting* — a
// compute already running is owned by the caller that started it, and its
// closure is responsible for honoring cancellation internally.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*cacheItem).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Get returns the cached value without computing, marking it used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// insertLocked stores a value and evicts beyond capacity.
func (c *Cache) insertLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Put stores a value directly, marking it most recently used and evicting
// beyond capacity. The streaming append path uses it to admit
// warm-promoted analysts under their new generation's keys without a
// flight.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val)
}

// KV is one completed cache entry, as returned by EntriesPrefix.
type KV struct {
	Key string
	Val any
}

// EntriesPrefix snapshots the completed entries whose keys start with
// prefix, sorted by key for deterministic iteration. In-flight
// computations are not included. The streaming append path enumerates a
// mutated dataset's cached analysts through this to warm-promote them to
// the new generation.
func (c *Cache) EntriesPrefix(prefix string) []KV {
	c.mu.Lock()
	out := make([]KV, 0, 4)
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			out = append(out, KV{Key: key, Val: el.Value.(*cacheItem).val})
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// RemovePrefix drops every completed entry whose key starts with prefix,
// returning the number removed. In-flight computations are untouched:
// they complete and insert, bounded by the cache's own LRU. The service
// uses this to release analysts whose dataset left the registry.
func (c *Cache) RemovePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			removed++
		}
	}
	return removed
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
	}
}
