package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/core"
)

// TestQuickGlobalUpperBoundsMatchesIterTD: the incremental upper-bound
// algorithm agrees with the per-k baseline, including across bound changes
// (both increases and decreases trigger rebuilds).
func TestQuickGlobalUpperBoundsMatchesIterTD(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 1 + rng.Intn(5)
		kMax := kMin + rng.Intn(15)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(4)
		upper := make([]int, kMax-kMin+1)
		u := 1 + rng.Intn(4)
		for i := range upper {
			if rng.Intn(5) == 0 {
				u += rng.Intn(3) - 1 // wander up and down
				if u < 1 {
					u = 1
				}
			}
			upper[i] = u
		}
		params := core.GlobalUpperParams{MinSize: minSize, KMin: kMin, KMax: kMax, Upper: upper}
		base, err := core.IterTDGlobalUpper(in, params)
		if err != nil {
			t.Logf("IterTDGlobalUpper: %v", err)
			return false
		}
		opt, err := core.GlobalUpperBounds(in, params)
		if err != nil {
			t.Logf("GlobalUpperBounds: %v", err)
			return false
		}
		for k := kMin; k <= kMax; k++ {
			if !sameGroups(base.At(k), opt.At(k)) {
				t.Logf("seed %d k=%d: base %v != opt %v (U=%d τs=%d)", seed, k, base.At(k), opt.At(k), upper[k-kMin], minSize)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(47)); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalUpperBoundsExaminesFewerNodes: within a constant-bound segment
// the incremental algorithm saves work relative to re-searching per k.
func TestGlobalUpperBoundsExaminesFewerNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	in := randomInput(rng)
	n := len(in.Rows)
	kMax := 18
	if kMax > n {
		kMax = n
	}
	params := core.GlobalUpperParams{MinSize: 1, KMin: 2, KMax: kMax, Upper: core.ConstantBounds(2, kMax, 2)}
	base, err := core.IterTDGlobalUpper(in, params)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.GlobalUpperBounds(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.NodesExamined >= base.Stats.NodesExamined {
		t.Errorf("optimized examined %d nodes, baseline %d", opt.Stats.NodesExamined, base.Stats.NodesExamined)
	}
	if opt.Stats.FullSearches != 1 {
		t.Errorf("constant bound should rebuild once, got %d", opt.Stats.FullSearches)
	}
}

func TestGlobalUpperBoundsRunningExample(t *testing.T) {
	in := runningInput(t)
	params := core.GlobalUpperParams{MinSize: 4, KMin: 4, KMax: 8, Upper: core.ConstantBounds(4, 8, 2)}
	base, err := core.IterTDGlobalUpper(in, params)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.GlobalUpperBounds(in, params)
	if err != nil {
		t.Fatal(err)
	}
	for k := 4; k <= 8; k++ {
		if !sameGroups(base.At(k), opt.At(k)) {
			t.Errorf("k=%d: %v != %v", k, base.At(k), opt.At(k))
		}
	}
}
