// Command biasdetect runs the paper's detection algorithms over a CSV file
// (or a built-in synthetic dataset) and prints, for each k, the most
// general groups with biased representation in the top-k.
//
// Usage:
//
//	biasdetect -demo student -measure prop -kmin 10 -kmax 49 -tau 50 -alpha 0.8
//	biasdetect -input applicants.csv -rank-by score \
//	    -measure global -kmin 10 -kmax 49 -tau 50 -lbase 10 -lstep 10 -lwidth 10
//	biasdetect -demo compas -measure global-upper -kmin 20 -kmax 40 -uconst 15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rankfair"
	"rankfair/internal/synth"
)

func main() {
	var (
		input    = flag.String("input", "", "CSV file to analyze (header row required)")
		demo     = flag.String("demo", "", "built-in dataset instead of -input: running|student|compas|german")
		rows     = flag.Int("rows", 0, "row count for -demo generators (0 = paper default)")
		seed     = flag.Int64("seed", 1, "seed for -demo generators")
		rankBy   = flag.String("rank-by", "", "numeric column to rank by, descending (for -input)")
		measure  = flag.String("measure", "global", "fairness measure: global|prop|exposure|global-upper|prop-upper|lower-specific|upper-general")
		kMin     = flag.Int("kmin", 10, "smallest k")
		kMax     = flag.Int("kmax", 49, "largest k")
		tau      = flag.Int("tau", 50, "size threshold τs on the group size in the dataset")
		alpha    = flag.Float64("alpha", 0.8, "proportional lower slack α")
		beta     = flag.Float64("beta", 1.25, "proportional upper slack β")
		lBase    = flag.Int("lbase", 10, "global lower bound staircase: base")
		lStep    = flag.Int("lstep", 10, "global lower bound staircase: step")
		lWidth   = flag.Int("lwidth", 10, "global lower bound staircase: width in k")
		uConst   = flag.Int("uconst", 20, "global upper bound (constant over k)")
		summary  = flag.Bool("summary", false, "print one line per group with its k ranges instead of per-k listings")
		baseline = flag.Bool("baseline", false, "use the ITERTD baseline instead of the optimized algorithms")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON instead of text")
	)
	flag.Parse()

	if err := run(options{
		input: *input, demo: *demo, rows: *rows, seed: *seed, rankBy: *rankBy,
		measure: *measure, kMin: *kMin, kMax: *kMax, tau: *tau,
		alpha: *alpha, beta: *beta,
		lBase: *lBase, lStep: *lStep, lWidth: *lWidth, uConst: *uConst,
		summary: *summary, baseline: *baseline, asJSON: *asJSON,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "biasdetect:", err)
		os.Exit(1)
	}
}

type options struct {
	input, demo, rankBy, measure string
	rows                         int
	seed                         int64
	kMin, kMax, tau              int
	alpha, beta                  float64
	lBase, lStep, lWidth, uConst int
	summary, baseline, asJSON    bool
}

func run(o options) error {
	a, err := buildAnalyst(o)
	if err != nil {
		return err
	}
	n := len(a.Input().Rows)
	if o.kMax > n {
		return fmt.Errorf("kmax=%d exceeds dataset size %d", o.kMax, n)
	}

	var report *rankfair.Report
	switch o.measure {
	case "global":
		params := rankfair.GlobalParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax,
			Lower: rankfair.StaircaseBounds(o.kMin, o.kMax, o.lBase, o.lStep, o.lWidth),
		}
		if o.baseline {
			report, err = a.DetectGlobalBaseline(params)
		} else {
			report, err = a.DetectGlobal(params)
		}
	case "prop":
		params := rankfair.PropParams{MinSize: o.tau, KMin: o.kMin, KMax: o.kMax, Alpha: o.alpha}
		if o.baseline {
			report, err = a.DetectProportionalBaseline(params)
		} else {
			report, err = a.DetectProportional(params)
		}
	case "global-upper":
		report, err = a.DetectGlobalUpper(rankfair.GlobalUpperParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax,
			Upper: rankfair.ConstantBounds(o.kMin, o.kMax, o.uConst),
		})
	case "prop-upper":
		report, err = a.DetectProportionalUpper(rankfair.PropUpperParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax, Beta: o.beta,
		})
	case "exposure":
		report, err = a.DetectExposure(rankfair.ExposureParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax, Alpha: o.alpha,
		})
	case "lower-specific":
		report, err = a.DetectGlobalLowerMostSpecific(rankfair.GlobalParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax,
			Lower: rankfair.StaircaseBounds(o.kMin, o.kMax, o.lBase, o.lStep, o.lWidth),
		})
	case "upper-general":
		report, err = a.DetectGlobalUpperMostGeneral(rankfair.GlobalUpperParams{
			MinSize: o.tau, KMin: o.kMin, KMax: o.kMax,
			Upper: rankfair.ConstantBounds(o.kMin, o.kMax, o.uConst),
		})
	default:
		return fmt.Errorf("unknown measure %q (want global|prop|exposure|global-upper|prop-upper|lower-specific|upper-general)", o.measure)
	}
	if err != nil {
		return err
	}

	if o.asJSON {
		return report.WriteJSON(os.Stdout)
	}

	fmt.Printf("dataset: %d tuples, %d attributes; measure: %s; k∈[%d,%d]; τs=%d\n",
		n, a.Space().NumAttrs(), o.measure, o.kMin, o.kMax, o.tau)
	fmt.Printf("examined %d pattern nodes in %d full searches; %d group reports total\n\n",
		report.Stats.NodesExamined, report.Stats.FullSearches, report.TotalGroups())

	if o.summary {
		printSummary(report, o.kMin, o.kMax)
		return nil
	}
	prev := ""
	for k := o.kMin; k <= o.kMax; k++ {
		groups := report.At(k)
		var parts []string
		for _, g := range groups {
			parts = append(parts, report.Format(g))
		}
		line := strings.Join(parts, " ")
		if line == prev {
			continue // only print ks where the result set changes
		}
		prev = line
		if line == "" {
			line = "(none)"
		}
		fmt.Printf("k=%-4d %s\n", k, line)
	}
	return nil
}

// printSummary prints one line per distinct group with the k intervals it
// is reported in, most persistent groups first.
func printSummary(report *rankfair.Report, kMin, kMax int) {
	type span struct{ lo, hi int }
	spans := map[string][]span{}
	order := []string{}
	for k := kMin; k <= kMax; k++ {
		for _, g := range report.At(k) {
			key := report.Format(g)
			s := spans[key]
			if s == nil {
				order = append(order, key)
			}
			if len(s) > 0 && s[len(s)-1].hi == k-1 {
				s[len(s)-1].hi = k
			} else {
				s = append(s, span{k, k})
			}
			spans[key] = s
		}
	}
	for _, key := range order {
		var parts []string
		total := 0
		for _, s := range spans[key] {
			if s.lo == s.hi {
				parts = append(parts, fmt.Sprintf("k=%d", s.lo))
			} else {
				parts = append(parts, fmt.Sprintf("k=%d..%d", s.lo, s.hi))
			}
			total += s.hi - s.lo + 1
		}
		fmt.Printf("%-50s %3d ks: %s\n", key, total, strings.Join(parts, ", "))
	}
}

func buildAnalyst(o options) (*rankfair.Analyst, error) {
	if o.demo != "" {
		b, err := demoBundle(o.demo, o.rows, o.seed)
		if err != nil {
			return nil, err
		}
		return rankfair.New(b.Table, b.Ranker)
	}
	if o.input == "" {
		return nil, fmt.Errorf("need -input or -demo (try -demo student)")
	}
	f, err := os.Open(o.input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	table, err := rankfair.ReadCSV(f, rankfair.CSVOptions{})
	if err != nil {
		return nil, err
	}
	if o.rankBy == "" {
		return nil, fmt.Errorf("-input requires -rank-by <numeric column>")
	}
	return rankfair.New(table, &rankfair.ByColumns{Keys: []rankfair.ColumnKey{
		{Column: o.rankBy, Descending: true},
	}})
}

func demoBundle(name string, rows int, seed int64) (*synth.Bundle, error) {
	switch name {
	case "running":
		return synth.RunningExample(), nil
	case "student":
		if rows <= 0 {
			rows = synth.DefaultStudentRows
		}
		return synth.Students(rows, seed), nil
	case "compas":
		if rows <= 0 {
			rows = synth.DefaultCOMPASRows
		}
		return synth.COMPAS(rows, seed), nil
	case "german":
		if rows <= 0 {
			rows = synth.DefaultGermanRows
		}
		return synth.GermanCredit(rows, seed), nil
	default:
		return nil, fmt.Errorf("unknown demo dataset %q (want running|student|compas|german)", name)
	}
}
