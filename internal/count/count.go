// Package count is the shared counting engine behind every layer that asks
// "how large is group p, and how much of it sits in the top k?". The two
// primitives — s_D(p) and s_{R_k(D)}(p) of Definition 2.3 — are what report
// serialization, repair, Shapley explanations and the divergence comparator
// all previously answered with full dataset scans, O(n·attrs) per query.
//
// The engine replaces the scans with a rank-indexed inverted index: for each
// (attribute, value) pair a posting list of *rank positions* (0-based
// positions in the black-box ranking, ascending). Because the ranking is a
// permutation of all rows, one structure answers both primitives:
//
//   - s_D(p) for a single-attribute pattern is a list length;
//   - s_{R_k(D)}(p) for a single-attribute pattern is a binary search
//     (entries with rank < k form a prefix of the sorted list);
//   - multi-attribute patterns probe the shortest bound posting list and
//     verify the remaining bound attributes per candidate, O(shortest·attrs)
//     instead of O(n·attrs) — in practice a tiny fraction of the dataset.
//
// CountsOver and ExposuresOver are the per-report materialization
// primitives: one pass over a pattern's match ranks yields its full per-k
// count (or exposure) vector for an entire [KMin, KMax] range, so counts at
// k+1 derive from counts at k instead of being recomputed from scratch.
package count

import (
	"sort"

	"rankfair/internal/pattern"
)

// Index is the rank-ordered posting-list index over one (rows, ranking)
// pair. It is immutable after Build and safe for concurrent readers, which
// is what lets one index hang off a cached Analyst and serve every report,
// repair, explanation and divergence query against that dataset.
type Index struct {
	rows    [][]int32
	ranking []int
	space   *pattern.Space
	// rankOf[row] is the 0-based position of row in the ranking.
	rankOf []int32
	// rowAt[rank] is the encoded row at that rank position — the rank-major
	// view of the dataset. Consumers that walk rank lists (the rank-space
	// lattice search, the multi-attribute probes below) read attribute
	// values as rowAt[r][a], one indirection instead of the
	// rows[ranking[r]] double hop.
	rowAt [][]int32
	// postings[a][v] holds the rank positions of rows with row[a] == v,
	// ascending. The per-(a,v) lists partition [0, n).
	postings [][][]int32
	// bitmaps[a][v] is the roaring-style bitmap form of postings[a][v],
	// built for lists at or above the bitmapMinLen cost-model cut and nil
	// below it. Bitmaps are derived data: always in sync with the posting
	// lists, shared copy-on-write by Extend exactly when the list is.
	bitmaps [][]*Bitmap
}

// Build constructs the index in one O(n·attrs) pass. ranking must be a
// permutation of row indices, best first (core.Input.Validate enforces
// this upstream).
func Build(rows [][]int32, space *pattern.Space, ranking []int) *Index {
	ix := &Index{
		rows:     rows,
		ranking:  ranking,
		space:    space,
		rankOf:   make([]int32, len(rows)),
		rowAt:    make([][]int32, len(rows)),
		postings: make([][][]int32, space.NumAttrs()),
	}
	// Size the posting lists exactly before filling them, so Build does no
	// append-regrowth copying.
	counts := make([][]int32, space.NumAttrs())
	for a, card := range space.Cards {
		counts[a] = make([]int32, card)
	}
	for _, row := range rows {
		for a, v := range row {
			counts[a][v]++
		}
	}
	for a, card := range space.Cards {
		ix.postings[a] = make([][]int32, card)
		for v := 0; v < card; v++ {
			ix.postings[a][v] = make([]int32, 0, counts[a][v])
		}
	}
	for rank, ri := range ranking {
		ix.rankOf[ri] = int32(rank)
		ix.rowAt[rank] = rows[ri]
		for a, v := range rows[ri] {
			ix.postings[a][v] = append(ix.postings[a][v], int32(rank))
		}
	}
	ix.bitmaps = buildBitmaps(ix.postings)
	return ix
}

// NumRows returns the number of indexed rows.
func (ix *Index) NumRows() int { return len(ix.rows) }

// RankOf returns the 0-based rank position of a row.
func (ix *Index) RankOf(row int) int { return int(ix.rankOf[row]) }

// RowsByRank exposes the rank-major row view: element r is the encoded row
// at rank position r. Callers must not mutate it. The rank-space lattice
// search partitions posting lists by attribute value through this view.
func (ix *Index) RowsByRank() [][]int32 { return ix.rowAt }

// Postings returns the posting list of (attr, value): the ascending rank
// positions of the rows holding that value. Callers must not mutate it.
func (ix *Index) Postings(attr int, val int32) []int32 { return ix.postings[attr][val] }

// Bitmap returns the bitmap form of the (attr, value) posting list, or nil
// when the list sits below the bitmap cost-model cut (callers fall back to
// the slice walk). Callers must not mutate it.
func (ix *Index) Bitmap(attr int, val int32) *Bitmap {
	if attr < 0 || attr >= len(ix.bitmaps) {
		return nil
	}
	bs := ix.bitmaps[attr]
	if val < 0 || int(val) >= len(bs) {
		return nil
	}
	return bs[val]
}

// SizeBytes estimates the heap footprint of the index's owned structures:
// the rank map, the rank-major row view headers, and the posting lists
// (counting capacity, since extended indexes share list backing arrays
// copy-on-write). Rows and ranking are excluded — the index aliases the
// caller's slices. The estimate feeds observability gauges; it is not an
// exact allocator accounting.
func (ix *Index) SizeBytes() int64 {
	const sliceHeader = 24
	size := int64(len(ix.rankOf))*4 + int64(len(ix.rowAt))*sliceHeader
	for _, lists := range ix.postings {
		size += int64(len(lists)) * sliceHeader
		for _, l := range lists {
			size += int64(cap(l)) * 4
		}
	}
	for _, bms := range ix.bitmaps {
		size += int64(len(bms)) * sliceHeader
		for _, bm := range bms {
			if bm != nil {
				size += bm.SizeBytes()
			}
		}
	}
	return size
}

// upperBound returns the number of entries of ranks strictly below k.
// Because ranks is ascending, that is the index of the first entry >= k.
func upperBound(ranks []int32, k int) int {
	// Fast paths: the whole list is inside (or outside) the prefix.
	if m := len(ranks); m == 0 || int(ranks[m-1]) < k {
		return m
	}
	if int(ranks[0]) >= k {
		return 0
	}
	return sort.Search(len(ranks), func(i int) bool { return int(ranks[i]) >= k })
}

// PrefixCount returns the number of entries of an ascending rank list that
// fall strictly below k — s_{R_k(D)} for any materialized match list.
func PrefixCount(ranks []int32, k int) int { return upperBound(ranks, k) }

// shortestBound returns the bound attribute of p with the shortest posting
// list, and whether p binds any attribute at all. empty reports that p
// binds a value outside its attribute's domain: such a pattern matches no
// row (the naive scan compares codes and never finds it), so callers must
// answer 0 / nil rather than index a posting list that does not exist.
func (ix *Index) shortestBound(p pattern.Pattern) (attr int, empty, bound bool) {
	best, bestLen := -1, -1
	for a, v := range p {
		if v == pattern.Unbound {
			continue
		}
		if v < 0 || int(v) >= len(ix.postings[a]) {
			return 0, true, true
		}
		if l := len(ix.postings[a][v]); best < 0 || l < bestLen {
			best, bestLen = a, l
		}
	}
	return best, false, best >= 0
}

// matchesExcept reports whether row satisfies every bound attribute of p
// other than skip (already known to match via the posting list probed).
func matchesExcept(p pattern.Pattern, row []int32, skip int) bool {
	for a, v := range p {
		if a != skip && v != pattern.Unbound && row[a] != v {
			return false
		}
	}
	return true
}

// Count returns s_D(p), the number of rows matching p.
func (ix *Index) Count(p pattern.Pattern) int {
	probe, empty, ok := ix.shortestBound(p)
	if !ok {
		return len(ix.rows)
	}
	if empty {
		return 0
	}
	list := ix.postings[probe][p[probe]]
	if p.NumAttrs() == 1 {
		return len(list)
	}
	if len(list) >= bitmapProbeMin {
		if bms, ok := ix.patternBitmaps(p); ok {
			return andCardinalityAll(bms, -1)
		}
	}
	n := 0
	for _, rk := range list {
		if matchesExcept(p, ix.rowAt[rk], probe) {
			n++
		}
	}
	return n
}

// CountTopK returns s_{R_k(D)}(p), the number of rows among the top k of
// the ranking that match p. k beyond the dataset size is clamped.
func (ix *Index) CountTopK(p pattern.Pattern, k int) int {
	if k > len(ix.rows) {
		k = len(ix.rows)
	}
	if k <= 0 {
		return 0
	}
	probe, empty, ok := ix.shortestBound(p)
	if !ok {
		return k
	}
	if empty {
		return 0
	}
	list := ix.postings[probe][p[probe]]
	cut := upperBound(list, k)
	if p.NumAttrs() == 1 {
		return cut
	}
	if cut >= bitmapProbeMin {
		if bms, ok := ix.patternBitmaps(p); ok {
			return andCardinalityAll(bms, k)
		}
	}
	n := 0
	for _, rk := range list[:cut] {
		if matchesExcept(p, ix.rowAt[rk], probe) {
			n++
		}
	}
	return n
}

// MatchRanks returns the ascending rank positions of every row matching p.
// Single-attribute patterns alias the posting list directly; callers must
// treat the result as read-only.
func (ix *Index) MatchRanks(p pattern.Pattern) []int32 {
	probe, empty, ok := ix.shortestBound(p)
	if !ok {
		all := make([]int32, len(ix.rows))
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	if empty {
		return nil
	}
	list := ix.postings[probe][p[probe]]
	if p.NumAttrs() == 1 {
		return list
	}
	out := make([]int32, 0, len(list))
	for _, rk := range list {
		if matchesExcept(p, ix.rowAt[rk], probe) {
			out = append(out, rk)
		}
	}
	return out
}

// MatchRows returns the row indices matching p in ascending row order —
// the iteration order of a naive dataset scan, preserved so downstream
// consumers (e.g. seeded Shapley sampling) stay byte-identical with the
// scanning implementation they replace.
func (ix *Index) MatchRows(p pattern.Pattern) []int {
	ranks := ix.MatchRanks(p)
	out := make([]int, len(ranks))
	for i, rk := range ranks {
		out[i] = ix.ranking[rk]
	}
	sort.Ints(out)
	return out
}

// CountsOver materializes a pattern's per-k count vector: out[k-kMin] is
// the number of entries of ranks strictly below k, for every k in
// [kMin, kMax]. One pass over ranks: the count at k+1 derives from the
// count at k by advancing a cursor, never rescanning.
func CountsOver(ranks []int32, kMin, kMax int) []int32 {
	out := make([]int32, kMax-kMin+1)
	cur := upperBound(ranks, kMin)
	out[0] = int32(cur)
	for k := kMin + 1; k <= kMax; k++ {
		// Ranks equal to k-1 enter the prefix at k.
		for cur < len(ranks) && int(ranks[cur]) < k {
			cur++
		}
		out[k-kMin] = int32(cur)
	}
	return out
}

// ExposuresOver materializes a pattern's per-k exposure vector: out[k-kMin]
// is the sum of w[r] over entries r of ranks strictly below k. Weights are
// accumulated in ascending rank order — the same float summation order as a
// naive prefix scan, so results are bit-identical to it.
func ExposuresOver(ranks []int32, w []float64, kMin, kMax int) []float64 {
	out := make([]float64, kMax-kMin+1)
	cur, sum := 0, 0.0
	for cur < len(ranks) && int(ranks[cur]) < kMin {
		sum += w[ranks[cur]]
		cur++
	}
	out[0] = sum
	for k := kMin + 1; k <= kMax; k++ {
		for cur < len(ranks) && int(ranks[cur]) < k {
			sum += w[ranks[cur]]
			cur++
		}
		out[k-kMin] = sum
	}
	return out
}
