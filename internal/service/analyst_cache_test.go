package service

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rankfair"
)

// auditParams builds a distinct proportional audit per alpha.
func analystTestAudit(dataset string, alpha float64) AuditRequest {
	return AuditRequest{
		Dataset: dataset,
		Ranker:  RankerSpec{Columns: []ColumnKeySpec{{Column: "score", Descending: true}}},
		Params: rankfair.AuditParams{
			Measure: rankfair.MeasureProp, MinSize: 4, KMin: 4, KMax: 10, Alpha: alpha,
		},
	}
}

func waitDone(t *testing.T, svc *Service, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
}

// TestAnalystReuse proves the ROADMAP "Analyst reuse" item: audits with
// distinct parameters but a shared (dataset, ranker) miss the result cache
// yet reuse one built analyst — the dataset is ranked and indexed once.
func TestAnalystReuse(t *testing.T) {
	svc, _ := testServer(t)
	info, _, err := svc.Registry().Add("bias", biasedCSV(64), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{0.5, 0.6, 0.7, 0.8}
	for _, alpha := range alphas {
		view, err := svc.SubmitAudit(analystTestAudit(info.ID, alpha))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, svc, view.ID)
	}
	rs := svc.Cache().Stats()
	if rs.Misses != int64(len(alphas)) {
		t.Fatalf("result cache misses = %d, want %d (distinct params)", rs.Misses, len(alphas))
	}
	as := svc.AnalystCacheStats()
	if as.Misses != 1 {
		t.Fatalf("analyst cache misses = %d, want 1 (one build per (dataset, ranker))", as.Misses)
	}
	if as.Hits+as.Shared != int64(len(alphas)-1) {
		t.Fatalf("analyst cache hits+shared = %d, want %d", as.Hits+as.Shared, len(alphas)-1)
	}

	// Repair and explain share the same analyst entry instead of
	// re-ranking.
	if _, err := svc.Repair(context.Background(), RepairRequest{
		Dataset: info.ID,
		Ranker:  RankerSpec{Columns: []ColumnKeySpec{{Column: "score", Descending: true}}},
		Attr:    "sex", K: 8,
		Constraints: map[string]rankfair.FairTopKConstraint{"F": {Lower: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	after := svc.AnalystCacheStats()
	if after.Misses != 1 {
		t.Fatalf("repair rebuilt the analyst: misses = %d", after.Misses)
	}
	if after.Hits+after.Shared != as.Hits+as.Shared+1 {
		t.Fatalf("repair did not reuse the analyst: hits+shared = %d", after.Hits+after.Shared)
	}
}

// TestAnalystEvictedWithDataset proves registry eviction releases the
// dataset's cached analyst (ranking + counting index) instead of pinning
// it until the analyst LRU turns over — the MaxDatasets memory bound must
// hold for derived state too.
func TestAnalystEvictedWithDataset(t *testing.T) {
	svc, _ := testServer(t)
	info, _, err := svc.Registry().Add("bias", biasedCSV(64), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := svc.SubmitAudit(analystTestAudit(info.ID, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, view.ID)
	if got := svc.AnalystCacheStats().Entries; got != 1 {
		t.Fatalf("analyst entries = %d, want 1", got)
	}
	if !svc.Registry().Evict(info.ID) {
		t.Fatal("evict failed")
	}
	if got := svc.AnalystCacheStats().Entries; got != 0 {
		t.Fatalf("analyst entries after dataset eviction = %d, want 0", got)
	}

	// LRU eviction (capacity overflow) must fire the hook too.
	small := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 4, MaxDatasets: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		small.Shutdown(ctx)
	})
	first, _, err := small.Registry().Add("a", biasedCSV(32), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := small.SubmitAudit(analystTestAudit(first.ID, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, small, v.ID)
	if _, _, err := small.Registry().Add("b", biasedCSV(48), rankfair.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := small.AnalystCacheStats().Entries; got != 0 {
		t.Fatalf("analyst entries after LRU dataset eviction = %d, want 0", got)
	}
}

// TestAnalystCacheDisabled pins the negative-entries escape hatch: every
// audit builds a fresh analyst and the stats stay zero.
func TestAnalystCacheDisabled(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, QueueDepth: 8, CacheEntries: 8, MaxDatasets: 4, AnalystCacheEntries: -1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	info, _, err := svc.Registry().Add("bias", biasedCSV(32), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.5, 0.6} {
		view, err := svc.SubmitAudit(analystTestAudit(info.ID, alpha))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, svc, view.ID)
	}
	if got := svc.AnalystCacheStats(); got != (CacheStats{}) {
		t.Fatalf("disabled analyst cache reported stats %+v", got)
	}
}

// TestMetricsAnalystCounters checks the new /metrics lines exist alongside
// the result-cache ones.
func TestMetricsAnalystCounters(t *testing.T) {
	svc, ts := testServer(t)
	info, _, err := svc.Registry().Add("bias", biasedCSV(32), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := svc.SubmitAudit(analystTestAudit(info.ID, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, view.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"rankfaird_analyst_cache_hits_total",
		"rankfaird_analyst_cache_misses_total 1",
		"rankfaird_analyst_cache_evictions_total",
		"rankfaird_analyst_cache_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
