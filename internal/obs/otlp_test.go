package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds the reference audit trace: fixed timestamps, an
// adopted client identity, phase children and terminal attributes — every
// derived ID is a pure function of these inputs, so the exported JSON is
// reproducible byte for byte.
func goldenTrace() *Trace {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := NewTrace("job-000042", "audit", base)
	tr.AdoptIdentity("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7")
	tr.Root().SetAttr("outcome", "ok")
	tr.Root().SetAttr("cache", "miss")
	tr.Root().ChildAt("queue", base, base.Add(5*time.Millisecond))
	run := tr.Root().ChildAt("run", base.Add(5*time.Millisecond), base.Add(105*time.Millisecond))
	run.ChildAt("search", base.Add(10*time.Millisecond), base.Add(95*time.Millisecond))
	run.ChildAt("serialize", base.Add(95*time.Millisecond), base.Add(104*time.Millisecond))
	tr.Root().FinishAt(base.Add(110 * time.Millisecond))
	return tr
}

// TestOTLPTraceGolden pins the exact OTLP/HTTP JSON wire shape for a
// real audit span tree: hex IDs, string unix nanos, SERVER root with
// status, INTERNAL children with parent links, attributes in order.
func TestOTLPTraceGolden(t *testing.T) {
	body, err := OTLPTraceRequest("rankfaird", []*Trace{goldenTrace()})
	if err != nil {
		t.Fatalf("OTLPTraceRequest: %v", err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, body, "", "  "); err != nil {
		t.Fatalf("invalid JSON produced: %v", err)
	}
	pretty.WriteByte('\n')
	path := filepath.Join("testdata", "otlp_trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, pretty.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Fatalf("OTLP trace JSON drifted from golden:\n got:\n%s\nwant:\n%s", pretty.Bytes(), want)
	}
}

// TestOTLPTraceStructure walks the decoded payload and checks the
// structural invariants the golden file can't articulate: parent/child
// ID linkage, kind assignment, duration arithmetic, outcome status.
func TestOTLPTraceStructure(t *testing.T) {
	body, err := OTLPTraceRequest("rankfaird", []*Trace{goldenTrace()})
	if err != nil {
		t.Fatalf("OTLPTraceRequest: %v", err)
	}
	var payload otlpTracePayload
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	spans := payload.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byName := map[string]otlpSpan{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("span %s trace ID = %s, want adopted client ID", s.Name, s.TraceID)
		}
		if len(s.SpanID) != 16 {
			t.Errorf("span %s ID %q not 16 hex chars", s.Name, s.SpanID)
		}
	}
	root := byName["audit"]
	if root.Kind != otlpKindServer {
		t.Errorf("root kind = %d, want SERVER", root.Kind)
	}
	if root.ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want adopted client span", root.ParentSpanID)
	}
	if root.Status == nil || root.Status.Code != otlpStatusOK {
		t.Errorf("root status = %+v, want OK", root.Status)
	}
	if got := attrOf(t, root, "cache"); got != "miss" {
		t.Errorf("root cache attr = %q, want miss", got)
	}
	for _, name := range []string{"queue", "run"} {
		if byName[name].ParentSpanID != root.SpanID {
			t.Errorf("%s parent = %s, want root %s", name, byName[name].ParentSpanID, root.SpanID)
		}
		if byName[name].Kind != otlpKindInternal {
			t.Errorf("%s kind = %d, want INTERNAL", name, byName[name].Kind)
		}
	}
	for _, name := range []string{"search", "serialize"} {
		if byName[name].ParentSpanID != byName["run"].SpanID {
			t.Errorf("%s parent = %s, want run %s", name, byName[name].ParentSpanID, byName["run"].SpanID)
		}
	}
	// Duration check: run spans 5ms..105ms — exactly 100ms apart.
	if run := byName["run"]; run.StartTimeUnixNano != "1767323045005000000" || run.EndTimeUnixNano != "1767323045105000000" {
		t.Errorf("run endpoints = %s..%s, want 1767323045005000000..1767323045105000000", run.StartTimeUnixNano, run.EndTimeUnixNano)
	}
}

func attrOf(t *testing.T, s otlpSpan, key string) string {
	t.Helper()
	for _, kv := range s.Attributes {
		if kv.Key == key {
			return kv.Value.StringValue
		}
	}
	return ""
}

// TestOTLPTraceErrorStatus: a non-ok outcome maps to STATUS_CODE_ERROR
// with the outcome as the message, so backends can filter shed/timeout.
func TestOTLPTraceErrorStatus(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := NewTrace("job-shed", "audit", base)
	tr.Root().SetAttr("outcome", "shed")
	tr.Root().FinishAt(base.Add(time.Millisecond))
	body, err := OTLPTraceRequest("rankfaird", []*Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	var payload otlpTracePayload
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	st := payload.ResourceSpans[0].ScopeSpans[0].Spans[0].Status
	if st == nil || st.Code != otlpStatusError || st.Message != "shed" {
		t.Fatalf("status = %+v, want ERROR/shed", st)
	}
}

// TestOTLPMetricsShape checks the proto3 JSON mapping for all three
// metric kinds: sums cumulative+monotonic, uint64s as strings, exemplars
// attached to histogram points.
func TestOTLPMetricsShape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	c.Add(3)
	g := r.NewGaugeVec("inflight", "Inflight.", "class")
	g.With("audit").Set(2)
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.ObserveExemplar(0.25, "4bf92f3577b34da6a3ce929d0e0e4736")
	start := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	now := start.Add(15 * time.Second)
	body, err := OTLPMetricsRequest("rankfaird", r.Snapshot(), start, now)
	if err != nil {
		t.Fatalf("OTLPMetricsRequest: %v", err)
	}
	s := string(body)
	for _, want := range []string{
		`"name":"jobs_total"`,
		`"aggregationTemporality":2`,
		`"isMonotonic":true`,
		`"startTimeUnixNano":"1767322800000000000"`,
		`"timeUnixNano":"1767322815000000000"`,
		`"attributes":[{"key":"class","value":{"stringValue":"audit"}}]`,
		`"count":"1"`,
		`"bucketCounts":["1","0","0"]`,
		`"explicitBounds":[0.5,1]`,
		`"exemplars":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","timeUnixNano":"1767322815000000000","asDouble":0.25}]`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics payload missing %s:\n%s", want, s)
		}
	}
}

// collectorFake records every POST body by path and can be stalled or
// told to fail a number of times.
type collectorFake struct {
	mu       sync.Mutex
	bodies   map[string][][]byte
	failures int // respond 500 this many times before succeeding
	status   int // non-zero: always respond with this status
	stall    chan struct{}
	requests int
	srv      *httptest.Server
}

func newCollectorFake() *collectorFake {
	c := &collectorFake{bodies: make(map[string][][]byte)}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		c.requests++
		stall := c.stall
		fail := c.failures > 0
		if fail {
			c.failures--
		}
		status := c.status
		c.mu.Unlock()
		if stall != nil {
			<-stall
		}
		if fail {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if status != 0 {
			w.WriteHeader(status)
			return
		}
		c.mu.Lock()
		c.bodies[r.URL.Path] = append(c.bodies[r.URL.Path], body)
		c.mu.Unlock()
	}))
	return c
}

func (c *collectorFake) got(path string) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.bodies[path]))
	copy(out, c.bodies[path])
	return out
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within 5s")
}

func testCounters(r *Registry) ExporterCounters {
	return ExporterCounters{
		Dropped:    r.NewCounter("otlp_dropped_total", "D."),
		Retries:    r.NewCounter("otlp_retries_total", "R."),
		Exports:    r.NewCounterVec("otlp_exports_total", "E.", "signal"),
		Failures:   r.NewCounterVec("otlp_export_failures_total", "F.", "signal"),
		QueueDepth: r.NewGauge("otlp_queue_depth", "Q."),
	}
}

// TestExporterShipsTraces: enqueued traces arrive at the collector inside
// the flush interval and the success counter moves.
func TestExporterShipsTraces(t *testing.T) {
	col := newCollectorFake()
	defer col.srv.Close()
	reg := NewRegistry()
	counters := testCounters(reg)
	e := NewExporter(ExporterConfig{
		Endpoint:      col.srv.URL,
		FlushInterval: 5 * time.Millisecond,
		Counters:      counters,
	})
	e.EnqueueTrace(goldenTrace())
	waitFor(t, func() bool { return len(col.got("/v1/traces")) > 0 })
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	body := col.got("/v1/traces")[0]
	if !bytes.Contains(body, []byte(`"name":"audit"`)) {
		t.Fatalf("trace payload missing audit span:\n%s", body)
	}
	if counters.Exports.With("traces").Value() == 0 {
		t.Fatal("exports counter did not move")
	}
}

// TestExporterRetries: 429/5xx responses are retried with backoff until
// the collector recovers; each retry is counted.
func TestExporterRetries(t *testing.T) {
	col := newCollectorFake()
	defer col.srv.Close()
	col.failures = 2
	reg := NewRegistry()
	counters := testCounters(reg)
	e := NewExporter(ExporterConfig{
		Endpoint:      col.srv.URL,
		FlushInterval: 5 * time.Millisecond,
		Counters:      counters,
		Backoff:       func(int) time.Duration { return 0 },
	})
	e.EnqueueTrace(goldenTrace())
	waitFor(t, func() bool { return len(col.got("/v1/traces")) > 0 })
	e.Close(context.Background())
	if got := counters.Retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if counters.Failures.With("traces").Value() != 0 {
		t.Fatal("transient failure counted as permanent")
	}
}

// TestExporterPermanentFailure: a 4xx is not retried — the payload is
// counted failed and the queue moves on.
func TestExporterPermanentFailure(t *testing.T) {
	col := newCollectorFake()
	defer col.srv.Close()
	col.status = http.StatusBadRequest
	reg := NewRegistry()
	counters := testCounters(reg)
	e := NewExporter(ExporterConfig{
		Endpoint:      col.srv.URL,
		FlushInterval: 5 * time.Millisecond,
		Counters:      counters,
	})
	e.EnqueueTrace(goldenTrace())
	waitFor(t, func() bool { return counters.Failures.With("traces").Value() == 1 })
	e.Close(context.Background())
	if counters.Retries.Value() != 0 {
		t.Fatal("4xx was retried")
	}
}

// TestExporterBackpressure: with the collector stalled, enqueues beyond
// the queue bound return false immediately instead of blocking, and every
// drop is counted. This is the guarantee that a dead collector cannot
// block an audit.
func TestExporterBackpressure(t *testing.T) {
	col := newCollectorFake()
	defer col.srv.Close()
	release := make(chan struct{})
	col.stall = release
	reg := NewRegistry()
	counters := testCounters(reg)
	e := NewExporter(ExporterConfig{
		Endpoint:      col.srv.URL,
		FlushInterval: time.Millisecond,
		QueueSize:     2,
		BatchSize:     1,
		Counters:      counters,
	})
	// Let the first batch reach the stalled collector so the export
	// goroutine is provably wedged mid-POST.
	e.EnqueueTrace(goldenTrace())
	waitFor(t, func() bool {
		col.mu.Lock()
		defer col.mu.Unlock()
		return col.requests > 0
	})
	dropped := 0
	for i := 0; i < 10; i++ {
		start := time.Now()
		if !e.EnqueueTrace(goldenTrace()) {
			dropped++
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("EnqueueTrace blocked for %v with stalled collector", d)
		}
	}
	if dropped == 0 {
		t.Fatal("no enqueue was dropped despite stalled collector and full queue")
	}
	if counters.Dropped.Value() != int64(dropped) {
		t.Fatalf("dropped counter = %d, want %d", counters.Dropped.Value(), dropped)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close after release: %v", err)
	}
}

// TestExporterDrainOnClose: traces still queued at shutdown are shipped
// before Close returns, and a registry-backed exporter sends one final
// metric snapshot.
func TestExporterDrainOnClose(t *testing.T) {
	col := newCollectorFake()
	defer col.srv.Close()
	reg := NewRegistry()
	reg.NewCounter("final_total", "F.").Add(7)
	e := NewExporter(ExporterConfig{
		Endpoint:      col.srv.URL,
		Registry:      reg,
		Interval:      time.Hour, // only the shutdown snapshot fires
		FlushInterval: time.Hour, // only the shutdown drain sends spans
	})
	for i := 0; i < 3; i++ {
		if !e.EnqueueTrace(goldenTrace()) {
			t.Fatal("enqueue failed with empty queue")
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	traces := col.got("/v1/traces")
	total := 0
	for _, b := range traces {
		total += bytes.Count(b, []byte(`"name":"audit"`))
	}
	if total != 3 {
		t.Fatalf("drained %d audit spans, want 3", total)
	}
	mets := col.got("/v1/metrics")
	if len(mets) != 1 || !bytes.Contains(mets[0], []byte(`"name":"final_total"`)) {
		t.Fatalf("final metric snapshot missing: %v", mets)
	}
}
