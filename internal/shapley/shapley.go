// Package shapley computes Shapley values of attributes for a regression
// model over categorical tuples, as used by the paper's result analysis
// (Section V): the contribution of each attribute to the model's output for
// one tuple, measured against a background distribution, and aggregated
// over all tuples of a detected group.
//
// Two estimators are provided: exact subset enumeration (feasible for small
// attribute counts) and the permutation-sampling approximation of Štrumbelj
// & Kononenko, which the paper's experiments rely on.
package shapley

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"rankfair/internal/pattern"
	"rankfair/internal/regress"
)

// MaxExactAttrs bounds the subset enumeration of the exact estimator.
const MaxExactAttrs = 16

// Explainer computes per-attribute Shapley values for a model simulating a
// ranking algorithm. The coalition value of an attribute subset S for tuple
// t is v(S) = E_b[M(t_S ⊕ b_\S)]: the expected model output when t's values
// for S are composed with background values elsewhere.
type Explainer struct {
	model      regress.Model
	enc        *regress.Encoder
	background [][]int32
}

// NewExplainer builds an explainer over the given background sample. The
// background must be non-empty; a uniform sample of the dataset is the
// usual choice.
func NewExplainer(model regress.Model, enc *regress.Encoder, background [][]int32) (*Explainer, error) {
	if model == nil || enc == nil {
		return nil, errors.New("shapley: nil model or encoder")
	}
	if len(background) == 0 {
		return nil, errors.New("shapley: empty background sample")
	}
	for i, b := range background {
		if len(b) != enc.NumAttrs() {
			return nil, fmt.Errorf("shapley: background row %d has %d attributes, want %d", i, len(b), enc.NumAttrs())
		}
	}
	return &Explainer{model: model, enc: enc, background: background}, nil
}

// predictRow encodes and evaluates one categorical tuple.
func (e *Explainer) predictRow(row []int32, buf []float64) float64 {
	e.enc.Encode(row, buf)
	return e.model.Predict(buf)
}

// Exact computes the exact Shapley value of every attribute for tuple row
// by enumerating all attribute subsets. It fails for more than
// MaxExactAttrs attributes.
func (e *Explainer) Exact(row []int32) ([]float64, error) {
	n := e.enc.NumAttrs()
	if len(row) != n {
		return nil, fmt.Errorf("shapley: row has %d attributes, want %d", len(row), n)
	}
	if n > MaxExactAttrs {
		return nil, fmt.Errorf("shapley: %d attributes exceed exact limit %d (use Sampled)", n, MaxExactAttrs)
	}
	// v[mask] = mean over background of M(row on mask, background off mask).
	v := make([]float64, 1<<uint(n))
	buf := make([]float64, e.enc.Width())
	mixed := make([]int32, n)
	for mask := 0; mask < len(v); mask++ {
		total := 0.0
		for _, b := range e.background {
			for a := 0; a < n; a++ {
				if mask&(1<<uint(a)) != 0 {
					mixed[a] = row[a]
				} else {
					mixed[a] = b[a]
				}
			}
			total += e.predictRow(mixed, buf)
		}
		v[mask] = total / float64(len(e.background))
	}
	// φ_i = Σ_S |S|!(n-|S|-1)!/n! (v(S∪{i}) - v(S)).
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	phi := make([]float64, n)
	for mask := 0; mask < len(v); mask++ {
		s := bits.OnesCount(uint(mask))
		for a := 0; a < n; a++ {
			if mask&(1<<uint(a)) != 0 {
				continue
			}
			weight := fact[s] * fact[n-s-1] / fact[n]
			phi[a] += weight * (v[mask|1<<uint(a)] - v[mask])
		}
	}
	return phi, nil
}

// Sampled estimates Shapley values with perms random permutations, pairing
// each with one background draw (the sampling estimator of Štrumbelj &
// Kononenko). The estimate is unbiased; variance shrinks as 1/perms.
func (e *Explainer) Sampled(row []int32, perms int, rng *rand.Rand) ([]float64, error) {
	n := e.enc.NumAttrs()
	if len(row) != n {
		return nil, fmt.Errorf("shapley: row has %d attributes, want %d", len(row), n)
	}
	if perms < 1 {
		return nil, fmt.Errorf("shapley: need at least 1 permutation, got %d", perms)
	}
	if rng == nil {
		return nil, errors.New("shapley: nil rng (pass a seeded *rand.Rand for reproducibility)")
	}
	phi := make([]float64, n)
	buf := make([]float64, e.enc.Width())
	mixed := make([]int32, n)
	for it := 0; it < perms; it++ {
		b := e.background[rng.Intn(len(e.background))]
		copy(mixed, b)
		prev := e.predictRow(mixed, buf)
		for _, a := range rng.Perm(n) {
			mixed[a] = row[a]
			cur := e.predictRow(mixed, buf)
			phi[a] += cur - prev
			prev = cur
		}
	}
	for a := range phi {
		phi[a] /= float64(perms)
	}
	return phi, nil
}

// AggregateGroup computes the paper's aggregated Shapley vector for a
// pattern: the mean of per-tuple Shapley vectors over every tuple in rows
// that satisfies p, using the sampling estimator with perms permutations
// per tuple. It returns the aggregate and the group size.
func (e *Explainer) AggregateGroup(rows [][]int32, p pattern.Pattern, perms int, rng *rand.Rand) ([]float64, int, error) {
	return e.AggregateRows(groupMembers(rows, p), p, perms, rng)
}

// AggregateRows is AggregateGroup over a pre-gathered member list (e.g.
// from a counting index), avoiding the full-dataset membership scan.
// members must be in dataset row order: the sampling estimator draws one
// permutation stream from rng across the whole group, so member order
// determines which draws land on which tuple. p is used only for error
// reporting.
func (e *Explainer) AggregateRows(members [][]int32, p pattern.Pattern, perms int, rng *rand.Rand) ([]float64, int, error) {
	n := e.enc.NumAttrs()
	agg := make([]float64, n)
	for _, row := range members {
		phi, err := e.Sampled(row, perms, rng)
		if err != nil {
			return nil, 0, err
		}
		for a := range agg {
			agg[a] += phi[a]
		}
	}
	if len(members) == 0 {
		return nil, 0, fmt.Errorf("shapley: no tuple satisfies %v", p)
	}
	for a := range agg {
		agg[a] /= float64(len(members))
	}
	return agg, len(members), nil
}

// AggregateGroupExact is AggregateGroup with the exact estimator: the mean
// of exact per-tuple Shapley vectors over the group. It inherits Exact's
// attribute-count limit.
func (e *Explainer) AggregateGroupExact(rows [][]int32, p pattern.Pattern) ([]float64, int, error) {
	return e.AggregateRowsExact(groupMembers(rows, p), p)
}

// AggregateRowsExact is AggregateGroupExact over a pre-gathered member
// list; see AggregateRows for the contract.
func (e *Explainer) AggregateRowsExact(members [][]int32, p pattern.Pattern) ([]float64, int, error) {
	n := e.enc.NumAttrs()
	agg := make([]float64, n)
	for _, row := range members {
		phi, err := e.Exact(row)
		if err != nil {
			return nil, 0, err
		}
		for a := range agg {
			agg[a] += phi[a]
		}
	}
	if len(members) == 0 {
		return nil, 0, fmt.Errorf("shapley: no tuple satisfies %v", p)
	}
	for a := range agg {
		agg[a] /= float64(len(members))
	}
	return agg, len(members), nil
}

// groupMembers scans rows for the tuples satisfying p, in row order.
func groupMembers(rows [][]int32, p pattern.Pattern) [][]int32 {
	var members [][]int32
	for _, row := range rows {
		if p.Matches(row) {
			members = append(members, row)
		}
	}
	return members
}
