package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rankfair"
	"rankfair/internal/dataset"
	"rankfair/internal/obs"
)

// metrics holds the request-level counters; job and cache counters live
// with their subsystems and are gathered at scrape time. Error counting
// moved to obsState.requestErrors, which splits by status class.
type metrics struct {
	requests atomic.Int64
	uploads  atomic.Int64

	// Streaming append counters: accepted batches, rows they carried, the
	// incremental-vs-rebuild path split, and cached analysts warm-promoted
	// across generations instead of invalidated.
	streamAppends     atomic.Int64
	streamRows        atomic.Int64
	streamIncremental atomic.Int64
	streamRebuilds    atomic.Int64
	streamPromoted    atomic.Int64

	// Durable-store counters: datasets paged in from disk, generations
	// replayed through the incremental append path vs rebuilt by
	// re-decode, and persisted-result-cache traffic. The replayed/rebuilt
	// split is the restart-warm proof: a healthy warm restart shows
	// replays > 0 with rebuilds == 0.
	storeLoads          atomic.Int64
	storeReplayed       atomic.Int64
	storeRebuilds       atomic.Int64
	storeCachePersisted atomic.Int64
	storeCacheLoaded    atomic.Int64
}

// obsState bundles the observability core wired through the service: the
// metrics registry behind /metrics, per-phase latency histograms, the
// aggregated lattice-search counters fed by recordSearch, and the trace
// ring behind GET /v1/audits/{id}/trace. Every rankfaird_* series name is
// registered in this file — the CI metrics-lint step greps server.go and
// fails when a name here is missing from the README metric catalog.
type obsState struct {
	reg    *obs.Registry
	traces *obs.TraceStore
	reqSeq atomic.Int64 // X-Request-ID generator

	requestErrors *obs.CounterVec   // by status class: 4xx, 5xx, canceled
	reqLatency    *obs.HistogramVec // by route pattern
	decode        *obs.Histogram
	queueWait     *obs.Histogram
	runLatency    *obs.Histogram

	// Overload and store-resilience families: admitted-inflight and shed
	// counts by request class, store retry/rejection counters, and the
	// circuit breaker's transition log.
	inflightGauge      *obs.GaugeVec   // by request class
	shedRequests       *obs.CounterVec // by request class
	storeRetries       *obs.Counter
	storeRejected      *obs.Counter
	breakerTransitions *obs.CounterVec // by state entered

	// OTLP export pipeline self-observation: traces dropped at the
	// bounded queue, retry attempts, successful exports and exhausted
	// failures by signal, and the current queue depth.
	otlpDropped    *obs.Counter
	otlpRetries    *obs.Counter
	otlpExports    *obs.CounterVec // by signal: traces, metrics
	otlpFailures   *obs.CounterVec // by signal: traces, metrics
	otlpQueueDepth *obs.Gauge

	searchRuns          *obs.CounterVec // by counting strategy: lists, index, bitmap
	searchStrategy      *obs.CounterVec // resolved strategy selections, same labels
	searchExpanded      *obs.Counter
	searchPruned        *obs.CounterVec // by reason: size, bound, dominated
	searchIntersections *obs.Counter
	searchBitmapPasses  *obs.Counter
	searchSlicePasses   *obs.Counter
	searchCountOnly     *obs.Counter
	searchLazy          *obs.Counter
}

// newObsState builds the registry. Families registered earliest are the
// pre-existing scrape series, in their historical order, bridged to the
// counters their subsystems already maintain; the histogram and search
// families follow, then the runtime gauges.
func newObsState(s *Service, traceEntries int) *obsState {
	o := &obsState{reg: obs.NewRegistry(), traces: obs.NewTraceStore(traceEntries)}
	r := o.reg
	m := s.metrics
	r.NewCounterFunc("rankfaird_requests_total", "HTTP requests served.", m.requests.Load)
	o.requestErrors = r.NewCounterVec("rankfaird_request_errors_total", "HTTP responses with status >= 400, by status class.", "class")
	r.NewCounterFunc("rankfaird_dataset_uploads_total", "Accepted dataset uploads.", m.uploads.Load)
	r.NewGaugeFunc("rankfaird_datasets", "Datasets currently registered.", func() int64 { return int64(s.registry.Len()) })
	r.NewCounterFunc("rankfaird_stream_appends_total", "Accepted streaming append batches.", m.streamAppends.Load)
	r.NewCounterFunc("rankfaird_stream_rows_total", "Rows ingested through streaming appends.", m.streamRows.Load)
	r.NewCounterFunc("rankfaird_stream_incremental_total", "Append batches applied incrementally (ranking merge-insert, copy-on-write posting maintenance).", m.streamIncremental.Load)
	r.NewCounterFunc("rankfaird_stream_rebuild_total", "Append batches applied by full re-decode and rebuild (cost model or schema drift).", m.streamRebuilds.Load)
	r.NewCounterFunc("rankfaird_stream_promoted_analysts_total", "Cached analysts warm-promoted to a new dataset generation.", m.streamPromoted.Load)
	r.NewGaugeFunc("rankfaird_store_datasets", "Dataset generation chains resident in the durable store (0 when no -data-dir).", func() int64 {
		if s.store == nil {
			return 0
		}
		return int64(s.store.Len())
	})
	r.NewCounterFunc("rankfaird_store_blob_writes_total", "Content blobs made durable (deduplicated rewrites excluded).", func() int64 { return s.storeStats().BlobWrites })
	r.NewCounterFunc("rankfaird_store_blob_write_bytes_total", "Bytes written into durable content blobs.", func() int64 { return s.storeStats().BlobWriteBytes })
	r.NewCounterFunc("rankfaird_store_blob_reads_total", "Content blobs read and hash-verified from the durable store.", func() int64 { return s.storeStats().BlobReads })
	r.NewCounterFunc("rankfaird_store_blob_read_bytes_total", "Bytes read from durable content blobs.", func() int64 { return s.storeStats().BlobReadBytes })
	r.NewCounterFunc("rankfaird_store_dataset_loads_total", "Datasets paged in from the durable store (restart warm-up and post-LRU page-ins).", m.storeLoads.Load)
	r.NewCounterFunc("rankfaird_store_replayed_generations_total", "Persisted generations replayed through the incremental append path during page-in.", m.storeReplayed.Load)
	r.NewCounterFunc("rankfaird_store_replay_rebuilds_total", "Persisted generations applied by full re-decode during page-in (schema drift or undecodable batch).", m.storeRebuilds.Load)
	r.NewCounterFunc("rankfaird_store_cache_persisted_total", "Computed audit results written through to the durable store.", m.storeCachePersisted.Load)
	r.NewCounterFunc("rankfaird_store_cache_loaded_total", "Persisted audit results loaded into the result cache at boot.", m.storeCacheLoaded.Load)
	r.NewCounterFunc("rankfaird_store_recovery_records_total", "Manifest records applied while recovering the durable store at boot.", func() int64 { return s.storeStats().RecoveredRecords })
	r.NewCounterFunc("rankfaird_store_recovery_dropped_total", "Manifest records discarded during recovery (torn tail, missing blob, broken chain).", func() int64 { return s.storeStats().DroppedRecords })
	o.storeRetries = r.NewCounter("rankfaird_store_retries_total", "Transient durable-store errors retried in place with jittered backoff.")
	o.storeRejected = r.NewCounter("rankfaird_store_write_rejections_total", "Durable-store writes refused because the circuit breaker was open.")
	o.breakerTransitions = r.NewCounterVec("rankfaird_store_breaker_transitions_total", "Store circuit breaker state transitions, by state entered.", "state")
	r.NewGaugeFunc("rankfaird_store_breaker_state", "Store circuit breaker state: 0 closed, 1 half-open, 2 open.", func() int64 { return int64(s.breaker.State()) })
	o.inflightGauge = r.NewGaugeVec("rankfaird_inflight_requests", "HTTP requests currently admitted, by request class (audit, append, read).", "class")
	o.shedRequests = r.NewCounterVec("rankfaird_requests_shed_total", "HTTP requests refused by admission control, by request class.", "class")
	r.NewCounterFunc("rankfaird_jobs_submitted_total", "Audit jobs accepted.", func() int64 { return s.jobs.Stats().Submitted })
	r.NewCounterFunc("rankfaird_jobs_completed_total", "Audit jobs finished successfully.", func() int64 { return s.jobs.Stats().Completed })
	r.NewCounterFunc("rankfaird_jobs_failed_total", "Audit jobs that errored.", func() int64 { return s.jobs.Stats().Failed })
	r.NewCounterFunc("rankfaird_jobs_canceled_total", "Audit jobs canceled.", func() int64 { return s.jobs.Stats().Canceled })
	r.NewCounterFunc("rankfaird_jobs_shed_total", "Audit jobs shed before running (queue wait exceeded the admission budget).", func() int64 { return s.jobs.Stats().Shed })
	r.NewCounterFunc("rankfaird_jobs_deadline_exceeded_total", "Audit jobs whose time budget expired mid-run.", func() int64 { return s.jobs.Stats().DeadlineExceeded })
	r.NewGaugeFunc("rankfaird_jobs_queued", "Audit jobs waiting for a worker.", func() int64 { return int64(s.jobs.Stats().Queued) })
	r.NewGaugeFunc("rankfaird_jobs_running", "Audit jobs currently running.", func() int64 { return int64(s.jobs.Stats().Running) })
	r.NewCounterFunc("rankfaird_cache_hits_total", "Audits served from the result cache (completed entries plus joined in-flight computations).", func() int64 {
		cs := s.cache.Stats()
		return cs.Hits + cs.Shared
	})
	r.NewCounterFunc("rankfaird_cache_entry_hits_total", "Audits served from a completed cache entry.", func() int64 { return s.cache.Stats().Hits })
	r.NewCounterFunc("rankfaird_cache_inflight_shared_total", "Audits that joined an identical in-flight computation.", func() int64 { return s.cache.Stats().Shared })
	r.NewCounterFunc("rankfaird_cache_misses_total", "Audits that ran the lattice search.", func() int64 { return s.cache.Stats().Misses })
	r.NewCounterFunc("rankfaird_cache_evictions_total", "Result cache LRU evictions.", func() int64 { return s.cache.Stats().Evictions })
	r.NewGaugeFunc("rankfaird_cache_entries", "Result cache entries resident.", func() int64 { return int64(s.cache.Stats().Entries) })
	r.NewCounterFunc("rankfaird_analyst_cache_hits_total", "Audits, repairs and explanations that reused a built analyst (completed entries plus joined in-flight builds).", func() int64 {
		as := s.AnalystCacheStats()
		return as.Hits + as.Shared
	})
	r.NewCounterFunc("rankfaird_analyst_cache_entry_hits_total", "Analyst reuses served from a completed cache entry.", func() int64 { return s.AnalystCacheStats().Hits })
	r.NewCounterFunc("rankfaird_analyst_cache_inflight_shared_total", "Analyst requests that joined an identical in-flight build.", func() int64 { return s.AnalystCacheStats().Shared })
	r.NewCounterFunc("rankfaird_analyst_cache_misses_total", "Analyst builds: dataset ranked and counting index constructed.", func() int64 { return s.AnalystCacheStats().Misses })
	r.NewCounterFunc("rankfaird_analyst_cache_evictions_total", "Analyst cache LRU evictions.", func() int64 { return s.AnalystCacheStats().Evictions })
	r.NewGaugeFunc("rankfaird_analyst_cache_entries", "Built analysts resident.", func() int64 { return int64(s.AnalystCacheStats().Entries) })
	o.otlpDropped = r.NewCounter("rankfaird_otlp_dropped_total", "Finished traces dropped because the OTLP export queue was full.")
	o.otlpRetries = r.NewCounter("rankfaird_otlp_retries_total", "OTLP export POSTs retried after a 429 or 5xx collector response.")
	o.otlpExports = r.NewCounterVec("rankfaird_otlp_exports_total", "OTLP payloads accepted by the collector, by signal (traces, metrics).", "signal")
	o.otlpFailures = r.NewCounterVec("rankfaird_otlp_export_failures_total", "OTLP payloads abandoned after exhausting retries or a permanent collector rejection, by signal.", "signal")
	o.otlpQueueDepth = r.NewGauge("rankfaird_otlp_queue_depth", "Finished traces waiting in the OTLP export queue.")
	o.reqLatency = r.NewHistogramVec("rankfaird_request_duration_seconds", "HTTP request latency by route pattern.", "route", nil)
	o.decode = r.NewHistogram("rankfaird_decode_seconds", "Dataset decode latency: CSV uploads and streaming append batches.", nil)
	o.queueWait = r.NewHistogram("rankfaird_job_queue_wait_seconds", "Time audit jobs spend queued before a worker picks them up.", nil)
	o.runLatency = r.NewHistogram("rankfaird_job_run_seconds", "Audit job run time, queue wait excluded.", nil)
	o.searchRuns = r.NewCounterVec("rankfaird_search_total", "Lattice searches computed (cache misses), by counting strategy.", "strategy")
	o.searchStrategy = r.NewCounterVec("rankfaird_search_strategy_total", "Match-set strategy selections resolved for computed searches (explicit overrides and cost-model picks), by strategy.", "strategy")
	o.searchExpanded = r.NewCounter("rankfaird_search_nodes_expanded_total", "Lattice nodes expanded across all searches.")
	o.searchPruned = r.NewCounterVec("rankfaird_search_pruned_total", "Lattice nodes pruned without expansion, by reason.", "reason")
	o.searchIntersections = r.NewCounter("rankfaird_search_posting_intersections_total", "Posting-list intersections materialized during searches.")
	o.searchBitmapPasses = r.NewCounter("rankfaird_search_bitmap_passes_total", "Posting intersections carried by word-wise bitmap AND + popcount passes.")
	o.searchSlicePasses = r.NewCounter("rankfaird_search_slice_passes_total", "Posting intersections carried by galloping slice-merge passes.")
	o.searchCountOnly = r.NewCounter("rankfaird_search_count_only_passes_total", "Count-only posting passes that avoided materializing a match list.")
	o.searchLazy = r.NewCounter("rankfaird_search_lazy_scatters_total", "Lazy rank-partition scatters performed on first touch.")
	r.NewGaugeFunc("rankfaird_analyst_index_bytes", "Estimated heap bytes held by cached analysts' counting indexes.", func() int64 {
		if s.analysts == nil {
			return 0
		}
		var total int64
		for _, kv := range s.analysts.EntriesPrefix("") {
			if e, ok := kv.Val.(*analystEntry); ok {
				total += e.analyst.IndexFootprint()
			}
		}
		return total
	})
	obs.RegisterRuntime(r, "rankfaird_")
	return o
}

// Handler returns the daemon's full route table as a stdlib handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetGet)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetEvict)
	mux.HandleFunc("POST /v1/datasets/{id}/rows", s.handleDatasetAppend)
	mux.HandleFunc("POST /v1/audits", s.handleAuditSubmit)
	mux.HandleFunc("GET /v1/audits", s.handleAuditList)
	mux.HandleFunc("GET /v1/audits/{id}", s.handleAuditGet)
	mux.HandleFunc("DELETE /v1/audits/{id}", s.handleAuditCancel)
	mux.HandleFunc("GET /v1/audits/{id}/report", s.handleAuditReport)
	mux.HandleFunc("GET /v1/audits/{id}/trace", s.handleAuditTrace)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.count(mux)
}

// statusWriter records the response code for the request counters, and
// whether anything was written at all — a handler that went silent
// because its client disconnected writes nothing, which the error
// classifier must not read as a successful 200.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// traceIdentity is the W3C identity the count middleware resolves for a
// request: the trace ID (adopted from an incoming traceparent header, or
// derived from the X-Request-ID otherwise), the caller's span ID when one
// arrived on the wire, and the correlation request ID. It rides the
// request context into SubmitAuditCtx so the audit's exported spans
// stitch under the caller's trace.
type traceIdentity struct {
	RequestID  string
	TraceID    string
	ParentSpan string // incoming caller's span ID; "" when locally rooted
}

type traceIdentityKey struct{}

// traceIdentityFrom returns the identity the middleware attached, or the
// zero value for contexts that never passed through it (direct service
// calls in tests, CLI embedding).
func traceIdentityFrom(ctx context.Context) traceIdentity {
	id, _ := ctx.Value(traceIdentityKey{}).(traceIdentity)
	return id
}

// count wraps the mux with request accounting and admission control:
// total and per-class error counters, a per-route latency histogram, an
// X-Request-ID correlation header (honoring a client-supplied one), W3C
// trace identity (parsing an incoming traceparent, deriving one from the
// request ID otherwise, echoing it on every response — errors included),
// and a debug-level access log. The route label comes from mux.Handler,
// which reports the matched pattern without serving — bounding the label
// cardinality to the route table instead of the raw URL space. The route
// is resolved before serving so admission can shed by request class:
// over the inflight limit for a class, the request is refused with a
// fast 503 (code shed) and a Retry-After hint instead of being served.
func (s *Service) count(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(1)
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%06d", s.obs.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", reqID)
		// A well-formed incoming traceparent wins outright — its IDs are
		// adopted verbatim so this request's spans stitch under the
		// caller's trace. Anything else (absent, malformed, version ff)
		// falls back to identity derived from the request ID, so every
		// response carries a valid traceparent either way. The span ID on
		// the response is derived per request: a proxy hop forwarding it
		// downstream parents cleanly even when one trace ID covers
		// several requests.
		traceID, parentSpan, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			traceID, parentSpan = obs.DeriveTraceID(reqID), ""
		}
		w.Header().Set("Traceparent", obs.FormatTraceparent(traceID, obs.DeriveSpanID(traceID, "req:"+reqID)))
		r = r.WithContext(context.WithValue(r.Context(), traceIdentityKey{},
			traceIdentity{RequestID: reqID, TraceID: traceID, ParentSpan: parentSpan}))
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		class := requestClass(route)
		if release, ok := s.admit(class); ok {
			mux.ServeHTTP(sw, r)
			release()
		} else {
			s.obs.shedRequests.With(class).Inc()
			sw.Header().Set("Retry-After", retryAfterValue(s.retryAfterHint()))
			writeAPIError(sw, http.StatusServiceUnavailable, CodeShed,
				fmt.Sprintf("server over capacity for %s requests, retry later", class))
		}
		elapsed := time.Since(start)
		s.obs.reqLatency.With(route).ObserveExemplar(elapsed.Seconds(), traceID)
		switch {
		case r.Context().Err() != nil && (!sw.wrote || sw.status >= 400):
			// The client hung up mid-request: whatever error status (or
			// silence) the handler produced never reached anyone, so
			// count the disconnect rather than blaming the server (5xx)
			// or the request (4xx). A response fully written before the
			// disconnect still counts as what it was.
			s.obs.requestErrors.With("canceled").Inc()
		case sw.status >= 500:
			s.obs.requestErrors.With("5xx").Inc()
		case sw.status >= 400:
			s.obs.requestErrors.With("4xx").Inc()
		}
		s.logger.Debug("http request",
			"id", reqID, "method", r.Method, "route", route, "status", sw.status,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	})
}

// writeJSON emits one JSON response. The value is marshaled before any
// header is written, so an encoding failure still produces a well-formed
// 500 envelope instead of a truncated 200 body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, CodeInternal, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

// APIError is the machine-readable error body every non-2xx response
// carries, wrapped as {"error": {...}}. Code is a stable identifier
// clients can switch on; Message is human prose and not part of the
// contract; RequestID echoes the response's X-Request-ID header so an
// error can be correlated with the server log line for its request.
type APIError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
	// TraceID echoes the response's traceparent trace ID so a failed
	// request is traceable end to end: the same ID keys the exported
	// OTLP spans and the exemplars on /metrics.
	TraceID string `json:"trace_id,omitempty"`
}

// errorEnvelope nests the error object under the "error" key.
type errorEnvelope struct {
	Error APIError `json:"error"`
}

// Stable API error codes. Not-found errors use "<resource>_not_found"
// (dataset_not_found, audit_not_found, trace_not_found), derived from the
// NotFoundError resource in writeErr.
const (
	CodeInvalidRequest = "invalid_request"
	CodeInvalidJSON    = "invalid_json"
	CodeEmptyBody      = "empty_body"
	CodeBodyTooLarge   = "body_too_large"
	CodeSchemaDrift    = "schema_drift"
	CodeQueueFull      = "queue_full"
	CodeStorageError   = "storage_error"
	CodeAuditNotReady  = "audit_not_ready"
	CodeAuditFailed    = "audit_failed"
	CodeAuditCanceled  = "audit_canceled"
	CodeInternal       = "internal"

	// Overload and degraded-mode codes. shed: the request was refused to
	// protect the server (admission cap or queue-wait budget) — retry
	// after the hinted backoff. deadline_exceeded: the audit's time
	// budget expired mid-search; the partial-work message reports how far
	// the lattice traversal got. store_unavailable: the durable store's
	// circuit breaker is open; writes are refused while reads keep
	// serving (degraded mode).
	CodeShed             = "shed"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeStoreUnavailable = "store_unavailable"
)

// writeAPIError emits the uniform error envelope. The request ID and
// trace ID come from the response headers the count middleware set
// before routing, so every handler's errors correlate for free — the
// traceparent header itself also rides every error response.
func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	traceID, _, _ := obs.ParseTraceparent(w.Header().Get("Traceparent"))
	writeJSON(w, status, errorEnvelope{Error: APIError{
		Code:      code,
		Message:   message,
		RequestID: w.Header().Get("X-Request-ID"),
		TraceID:   traceID,
	}})
}

// writeErr maps service errors onto HTTP statuses and stable codes.
func writeErr(w http.ResponseWriter, err error) {
	var nf *NotFoundError
	var br *BadRequestError
	var se *StorageError
	var ue *UnavailableError
	switch {
	case errors.As(err, &nf):
		writeAPIError(w, http.StatusNotFound, nf.Resource+"_not_found", err.Error())
	case errors.Is(err, dataset.ErrSchemaDrift):
		writeAPIError(w, http.StatusBadRequest, CodeSchemaDrift, err.Error())
	case errors.As(err, &br):
		writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
	case errors.Is(err, ErrQueueFull):
		writeAPIError(w, http.StatusServiceUnavailable, CodeQueueFull, err.Error())
	case errors.As(err, &ue):
		w.Header().Set("Retry-After", retryAfterValue(ue.RetryAfter))
		writeAPIError(w, http.StatusServiceUnavailable, ue.Code, err.Error())
	case errors.As(err, &se):
		writeAPIError(w, http.StatusInternalServerError, CodeStorageError, err.Error())
	default:
		writeAPIError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// readBody drains a size-capped request body, translating failures into
// envelope errors; ok reports whether the handler should proceed.
func (s *Service) readBody(w http.ResponseWriter, r *http.Request, what string) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeAPIError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("%s exceeds the %d byte limit", what, mbe.Limit))
			return nil, false
		}
		writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("reading %s: %v", what, err))
		return nil, false
	}
	if len(raw) == 0 {
		writeAPIError(w, http.StatusBadRequest, CodeEmptyBody, "empty "+what)
		return nil, false
	}
	return raw, true
}

// handleDatasetUpload decodes a raw CSV body into the registry. Optional
// query parameters: name (label), categorical / numeric (comma-separated
// column lists forcing the kind), all_categorical=true, comma (single-rune
// field delimiter).
func (s *Service) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r, "upload")
	if !ok {
		return
	}
	q := r.URL.Query()
	opts := rankfair.CSVOptions{
		AllCategorical: q.Get("all_categorical") == "true",
	}
	if v := q.Get("categorical"); v != "" {
		opts.CategoricalColumns = strings.Split(v, ",")
	}
	if v := q.Get("numeric"); v != "" {
		opts.NumericColumns = strings.Split(v, ",")
	}
	if v := q.Get("comma"); v != "" {
		runes := []rune(v)
		if len(runes) != 1 {
			writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("comma must be a single rune, got %q", v))
			return
		}
		opts.Comma = runes[0]
	}

	// A seed upload addresses the dataset by its content hash, so if the
	// store already holds a chain for this ID — possibly advanced past the
	// seed by persisted appends — page it in first. registry.Add then
	// reports it resident, and the response carries the chain's real head
	// instead of forking a fresh v1 in memory that disagrees with disk.
	if s.store != nil {
		s.getDataset(idFromHash(HashCSV(raw)))
	}

	t0 := time.Now()
	info, created, err := s.registry.Add(q.Get("name"), raw, opts)
	s.obs.decode.Observe(time.Since(t0).Seconds())
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	if created {
		if err := s.persistSeed(info, raw, opts); err != nil {
			writeErr(w, err)
			return
		}
	}
	s.metrics.uploads.Add(1)
	writeJSON(w, http.StatusCreated, info)
}

// DatasetList is the GET /v1/datasets response: one page of dataset
// records, most recently created first (ID as tiebreak), with the cursor
// for the next page when one exists.
type DatasetList struct {
	Datasets      []DatasetInfo `json:"datasets"`
	NextPageToken string        `json:"next_page_token,omitempty"`
}

// AuditList is the GET /v1/audits response: one page of job snapshots,
// newest job ID first, with the cursor for the next page when one exists.
type AuditList struct {
	Audits        []JobView `json:"audits"`
	NextPageToken string    `json:"next_page_token,omitempty"`
}

// parseLimit reads the limit query parameter (default 100, capped at
// 1000); ok reports whether the handler should proceed.
func parseLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return defaultPageLimit, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("limit must be a positive integer, got %q", v))
		return 0, false
	}
	return min(n, maxPageLimit), true
}

const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// datasetCursor encodes a list position as an opaque page token. The
// token pins the (created, id) sort key of the last returned record, so
// pagination stays stable under concurrent inserts: new datasets sort
// before the cursor and simply don't appear mid-walk.
func datasetCursor(info DatasetInfo) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("%d~%s", info.Created.UnixNano(), info.ID)))
}

func decodeDatasetCursor(token string) (int64, string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return 0, "", err
	}
	nanos, id, ok := strings.Cut(string(raw), "~")
	if !ok {
		return 0, "", fmt.Errorf("malformed cursor")
	}
	n, err := strconv.ParseInt(nanos, 10, 64)
	if err != nil {
		return 0, "", err
	}
	return n, id, nil
}

func (s *Service) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r)
	if !ok {
		return
	}
	infos := s.listDatasets()
	if token := r.URL.Query().Get("page_token"); token != "" {
		nanos, id, err := decodeDatasetCursor(token)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid page_token")
			return
		}
		// Keep records strictly after the cursor in (Created desc, ID asc)
		// order.
		kept := infos[:0]
		for _, info := range infos {
			created := info.Created.UnixNano()
			if created < nanos || (created == nanos && info.ID > id) {
				kept = append(kept, info)
			}
		}
		infos = kept
	}
	resp := DatasetList{Datasets: infos}
	if len(infos) > limit {
		resp.Datasets = infos[:limit]
		resp.NextPageToken = datasetCursor(infos[limit-1])
	}
	if resp.Datasets == nil {
		resp.Datasets = []DatasetInfo{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, info, ok := s.getDataset(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "dataset", ID: id})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetEvict deletes a dataset. With a durable store this is a
// tombstone, not a page-out: the append chain is dead on disk and the ID
// 404s after restart. Either tier having held the dataset makes the
// delete a 204 — the registry may have paged it out already, or the chain
// may predate this process.
func (s *Service) handleDatasetEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tombstoned := false
	if s.store != nil {
		err := s.storeWrite("tombstone", func() error {
			var terr error
			tombstoned, terr = s.store.Tombstone(id)
			return terr
		})
		if err != nil {
			writeErr(w, storageErr(err))
			return
		}
	}
	if !s.registry.Evict(id) && !tombstoned {
		writeErr(w, &NotFoundError{Resource: "dataset", ID: id})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDatasetAppend applies one row batch (CSV rows without a header,
// or JSON rows — see stream.ParseJSON for the accepted shapes) to a
// dataset, advancing it to a new versioned generation. The 201 names the
// created resource: the new generation, addressed by the dataset URL.
func (s *Service) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r, "batch")
	if !ok {
		return
	}
	resp, err := s.AppendRows(r.PathValue("id"), r.Header.Get("Content-Type"), raw)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/datasets/"+resp.Dataset.ID)
	writeJSON(w, http.StatusCreated, resp)
}

// handleAuditSubmit queues an audit. The time budget comes from the
// body's deadline_ms or, when that is absent, the X-Deadline-Ms header.
// ?wait=true blocks until the job reaches a terminal state (bounded by
// the request context) and returns the final snapshot; a client that
// disconnects while waiting cancels the job it was waiting on.
func (s *Service) handleAuditSubmit(w http.ResponseWriter, r *http.Request) {
	var req AuditRequest
	if err := decodeJSON(r, &req); err != nil {
		writeAPIError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if h := r.Header.Get("X-Deadline-Ms"); h != "" && req.DeadlineMS == 0 {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms < 0 {
			writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("X-Deadline-Ms must be a non-negative integer, got %q", h))
			return
		}
		req.DeadlineMS = ms
	}
	view, err := s.SubmitAuditCtx(r.Context(), req)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", retryAfterValue(s.retryAfterHint()))
		}
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		final, werr := s.jobs.Wait(r.Context(), view.ID)
		if werr != nil {
			if r.Context().Err() != nil {
				// The waiting client hung up: nobody is polling for this
				// job's result anymore, so stop paying for it.
				s.jobs.Cancel(view.ID)
				return
			}
			writeErr(w, werr)
			return
		}
		view = final
	}
	w.Header().Set("Location", "/v1/audits/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// handleAuditList pages through job snapshots, newest first. state=
// filters on job status (queued, running, done, failed, canceled); the
// page token is the last returned job ID — job IDs are zero-padded
// sequence numbers, so the ID ordering is the submission ordering.
func (s *Service) handleAuditList(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r)
	if !ok {
		return
	}
	state := r.URL.Query().Get("state")
	switch JobStatus(state) {
	case "", JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
	default:
		writeAPIError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("unknown state %q (want queued, running, done, failed or canceled)", state))
		return
	}
	token := r.URL.Query().Get("page_token")
	views := s.jobs.List()
	kept := views[:0]
	for _, v := range views {
		if state != "" && v.Status != JobStatus(state) {
			continue
		}
		if token != "" && v.ID >= token {
			continue // at or before the cursor in the ID-descending walk
		}
		kept = append(kept, v)
	}
	resp := AuditList{Audits: kept}
	if len(kept) > limit {
		resp.Audits = kept[:limit]
		resp.NextPageToken = kept[limit-1].ID
	}
	if resp.Audits == nil {
		resp.Audits = []JobView{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAuditGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.jobs.Get(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleAuditCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.jobs.Cancel(id) {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	view, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleAuditReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	report, view, ok := s.jobs.Report(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "audit", ID: id})
		return
	}
	switch view.Status {
	case JobDone:
		writeJSON(w, http.StatusOK, report)
	case JobFailed:
		// Overload failures keep their typed envelope: a shed job is a
		// retryable 503, an expired budget is a gateway timeout whose
		// message carries the partial-work progress.
		switch view.ErrorCode {
		case CodeShed:
			w.Header().Set("Retry-After", retryAfterValue(s.retryAfterHint()))
			writeAPIError(w, http.StatusServiceUnavailable, CodeShed, "audit shed: "+view.Error)
		case CodeDeadlineExceeded:
			writeAPIError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "audit deadline exceeded: "+view.Error)
		default:
			writeAPIError(w, http.StatusConflict, CodeAuditFailed, "audit failed: "+view.Error)
		}
	case JobCanceled:
		writeAPIError(w, http.StatusConflict, CodeAuditCanceled, "audit canceled")
	default:
		// The poll-again hint tracks the observed median run time instead
		// of a hardcoded second, so clients of slow corpora back off
		// proportionally.
		w.Header().Set("Retry-After", retryAfterValue(s.notReadyHint()))
		writeAPIError(w, http.StatusConflict, CodeAuditNotReady, fmt.Sprintf("audit %s is %s", id, view.Status))
	}
}

func (s *Service) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req RepairRequest
	if err := decodeJSON(r, &req); err != nil {
		writeAPIError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	resp, err := s.Repair(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeAPIError(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	resp, err := s.Explain(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus the degraded-mode signal: when the
// store circuit breaker is not closed, status becomes "degraded" (still
// 200 — the process serves reads and should not be restarted) and the
// store field names the breaker state.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, breaker := "ok", ""
	if s.store != nil {
		breaker = breakerStateName(s.breaker.State())
		if breaker != "closed" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
		Store    string `json:"store,omitempty"`
	}{Status: status, Datasets: s.registry.Len(), Store: breaker})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format (no client library: obs.Registry writes the format directly).
// A scraper that offers application/openmetrics-text in Accept gets the
// OpenMetrics 1.0 rendering instead — same families, same values, plus
// trace-ID exemplars on histogram buckets and the # EOF terminator. The
// default 0.0.4 body is byte-stable: existing scrape configs see exactly
// the pre-exemplar output.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		_, _ = s.obs.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.obs.reg.WriteTo(w)
}

// handleAuditTrace serves the span tree of a finished audit from the
// bounded trace ring. Traces are recorded when a job reaches a terminal
// state, so a queued or running audit 404s until it finishes; very old
// audits 404 again once the ring evicts them.
func (s *Service) handleAuditTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.obs.traces.Get(id)
	if !ok {
		writeErr(w, &NotFoundError{Resource: "trace", ID: id})
		return
	}
	writeJSON(w, http.StatusOK, tr.Tree())
}

// decodeJSON strictly decodes one JSON body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}
