// Package obs is the dependency-free observability core shared by the
// serving layer: a metrics registry rendering the Prometheus text
// exposition format (counters, gauges, fixed-bucket histograms, labeled
// variants), lightweight phase spans carried on context.Context with a
// bounded in-memory trace ring, and runtime gauges. Everything is built on
// the standard library only — sync/atomic counters, a CAS loop for the
// histogram's float sum — so the package can be imported from any layer
// without pulling a client library into the module.
package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout in seconds, spanning
// sub-millisecond cache hits to multi-second cold lattice searches.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families in registration order and renders them as
// Prometheus text exposition format 0.0.4. Registration happens at service
// construction; rendering and metric updates are safe concurrently.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]bool
}

// family is one registered metric family: fixed name/help/type plus a
// render hook appending its Prometheus 0.0.4 sample lines (without
// HELP/TYPE headers) and a snap hook producing the structured snapshot
// the OpenMetrics renderer and the OTLP exporter share.
type family struct {
	name, help, typ string
	render          func(b []byte) []byte
	snap            func() FamilySnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(name, help, typ string, render func(b []byte) []byte, snap func() FamilySnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic("obs: duplicate metric registration: " + name)
	}
	r.byName[name] = true
	r.fams = append(r.fams, &family{name: name, help: help, typ: typ, render: render, snap: snap})
}

// Exemplar ties one observation to the trace that produced it: the
// OpenMetrics scrape renders it as a `# {trace_id="..."} value` suffix
// and the OTLP export attaches it to the histogram data point, so an
// operator can jump from a slow latency bucket to the specific audit
// trace that landed in it.
type Exemplar struct {
	TraceID string
	Value   float64
}

// MetricPoint is one sample in a family snapshot. Counter and gauge
// points use Value; histogram points carry the bucket layout, per-bucket
// counts (non-cumulative, with the +Inf overflow last) and the optional
// per-bucket exemplars.
type MetricPoint struct {
	Label     string // label value; "" when the family is unlabeled
	Value     float64
	Bounds    []float64
	Buckets   []int64
	Count     int64
	Sum       float64
	Exemplars []*Exemplar // parallel to Buckets; nil entries have none
}

// FamilySnapshot is the structured form of one metric family, in
// registration order from Registry.Snapshot. Label is the label *name*
// for vector families ("" otherwise); points are sorted by label value.
type FamilySnapshot struct {
	Name, Help, Typ, Label string
	Points                 []MetricPoint
}

// Snapshot captures every family's current state in registration order —
// the shared source for the OpenMetrics renderer and the OTLP metrics
// export, so the two wire formats can never disagree about a value's
// identity.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	out := make([]FamilySnapshot, len(fams))
	for i, f := range fams {
		out[i] = f.snap()
		out[i].Name, out[i].Help, out[i].Typ = f.name, f.help, f.typ
	}
	return out
}

// WriteTo renders every family in registration order: HELP (escaped per
// the exposition format), TYPE, then the family's samples.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	b := make([]byte, 0, 4096)
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		b = f.render(b)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// appendEscapedHelp escapes a HELP docstring: backslash and newline, per
// the Prometheus text format.
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedLabel escapes a label value: backslash, double quote and
// newline.
func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendFloat renders a sample value; integral floats render without an
// exponent ("1", "0.005", "2.5").
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the rendered series to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// singleValueSnap builds the snap hook shared by every unlabeled
// counter/gauge family: one point whose value is read at snapshot time.
func singleValueSnap(fn func() int64) func() FamilySnapshot {
	return func() FamilySnapshot {
		return FamilySnapshot{Points: []MetricPoint{{Value: float64(fn())}}}
	}
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(b []byte) []byte {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, c.Value(), 10)
		return append(b, '\n')
	}, singleValueSnap(c.Value))
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters owned by another subsystem (job manager,
// caches) that already maintains them under its own lock.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", func(b []byte) []byte {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, fn(), 10)
		return append(b, '\n')
	}, singleValueSnap(fn))
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. Values are integral (entry counts, bytes, goroutines).
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, "gauge", func(b []byte) []byte {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, fn(), 10)
		return append(b, '\n')
	}, singleValueSnap(fn))
}

// Gauge is a settable level (inflight requests, queue depths) owned by
// the instrumented code itself rather than read through a func.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers and returns a settable gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(b []byte) []byte {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, g.Value(), 10)
		return append(b, '\n')
	}, singleValueSnap(g.Value))
	return g
}

// GaugeVec is a family of gauges keyed by one label's value, created
// lazily on first With. Rendering sorts by label value so scrapes are
// deterministic.
type GaugeVec struct {
	name, label string
	mu          sync.Mutex
	vals        map[string]*Gauge
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.vals[value]
	if !ok {
		g = &Gauge{}
		v.vals[value] = g
	}
	return g
}

func (v *GaugeVec) snapshot() ([]string, []*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	gs := make([]*Gauge, len(keys))
	for i, k := range keys {
		gs[i] = v.vals[k]
	}
	return keys, gs
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, label: label, vals: make(map[string]*Gauge)}
	r.register(name, help, "gauge", func(b []byte) []byte {
		keys, gs := v.snapshot()
		for i, k := range keys {
			b = append(b, name...)
			b = append(b, '{')
			b = append(b, v.label...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, k)
			b = append(b, '"', '}', ' ')
			b = strconv.AppendInt(b, gs[i].Value(), 10)
			b = append(b, '\n')
		}
		return b
	}, func() FamilySnapshot {
		keys, gs := v.snapshot()
		points := make([]MetricPoint, len(keys))
		for i, k := range keys {
			points[i] = MetricPoint{Label: k, Value: float64(gs[i].Value())}
		}
		return FamilySnapshot{Label: v.label, Points: points}
	})
	return v
}

// CounterVec is a family of counters keyed by one label's value, created
// lazily on first With. Rendering sorts by label value so scrapes are
// deterministic.
type CounterVec struct {
	name, label string
	mu          sync.Mutex
	vals        map[string]*Counter
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[value]
	if !ok {
		c = &Counter{}
		v.vals[value] = c
	}
	return c
}

func (v *CounterVec) snapshot() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cs := make([]*Counter, len(keys))
	for i, k := range keys {
		cs[i] = v.vals[k]
	}
	return keys, cs
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, label: label, vals: make(map[string]*Counter)}
	r.register(name, help, "counter", func(b []byte) []byte {
		keys, cs := v.snapshot()
		for i, k := range keys {
			b = append(b, name...)
			b = append(b, '{')
			b = append(b, label...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, k)
			b = append(b, '"', '}', ' ')
			b = strconv.AppendInt(b, cs[i].Value(), 10)
			b = append(b, '\n')
		}
		return b
	}, func() FamilySnapshot {
		keys, cs := v.snapshot()
		points := make([]MetricPoint, len(keys))
		for i, k := range keys {
			points[i] = MetricPoint{Label: k, Value: float64(cs[i].Value())}
		}
		return FamilySnapshot{Label: label, Points: points}
	})
	return v
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic counts,
// an atomic observation count, and a float64 sum maintained with a CAS
// loop so concurrent Observe calls never lose updates. Bucket semantics
// follow Prometheus: bucket i counts observations <= bounds[i], rendered
// cumulatively with a trailing +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last slot is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	// ex holds the last exemplar observed per bucket (len(bounds)+1).
	// Stored behind atomic pointers so ObserveExemplar costs one pointer
	// swap beyond Observe and never blocks a concurrent scrape; plain
	// Observe never touches the slots, keeping the hot path identical to
	// the pre-exemplar layout.
	ex []atomic.Pointer[Exemplar]
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// replaces the landing bucket's exemplar so the OpenMetrics scrape and
// the OTLP export can point at the most recent trace that hit the bucket.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.observe(v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// observe updates the counters and returns the landing bucket index.
func (h *Histogram) observe(v float64) int {
	// First bound >= v: v lands in that bucket (le is inclusive); beyond
	// every bound it lands in the +Inf slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nxt) {
			return i
		}
	}
}

// snapshotPoint captures the histogram as one MetricPoint.
func (h *Histogram) snapshotPoint(label string) MetricPoint {
	p := MetricPoint{
		Label:     label,
		Bounds:    h.bounds,
		Buckets:   make([]int64, len(h.counts)),
		Count:     h.Count(),
		Sum:       h.Sum(),
		Exemplars: make([]*Exemplar, len(h.counts)),
	}
	for i := range h.counts {
		p.Buckets[i] = h.counts[i].Load()
		p.Exemplars[i] = h.ex[i].Load()
	}
	return p
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the target bucket, the same estimate
// Prometheus's histogram_quantile computes server-side. The admission
// layer uses the p50 run time to compute Retry-After hints. With no
// observations it returns 0; a target rank landing in the +Inf bucket
// returns the highest finite bound (the histogram cannot say more).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if n == 0 {
				return bound
			}
			return lower + (bound-lower)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// renderInto appends the bucket/sum/count sample lines. extraLabels is
// either empty or a pre-rendered `name="value",` prefix for the le label
// and a `{name="value"}` block on _sum/_count.
func (h *Histogram) renderInto(b []byte, name, labelPrefix string) []byte {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket{"...)
		b = append(b, labelPrefix...)
		b = append(b, `le="`...)
		b = appendFloat(b, bound)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_bucket{"...)
	b = append(b, labelPrefix...)
	b = append(b, `le="+Inf"} `...)
	b = strconv.AppendInt(b, h.Count(), 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = appendLabelBlock(b, labelPrefix)
	b = append(b, ' ')
	b = appendFloat(b, h.Sum())
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = appendLabelBlock(b, labelPrefix)
	b = append(b, ' ')
	b = strconv.AppendInt(b, h.Count(), 10)
	return append(b, '\n')
}

// appendLabelBlock renders `{labels}` from a `labels,` prefix, or nothing.
func appendLabelBlock(b []byte, labelPrefix string) []byte {
	if labelPrefix == "" {
		return b
	}
	b = append(b, '{')
	b = append(b, labelPrefix[:len(labelPrefix)-1]...) // drop trailing comma
	return append(b, '}')
}

// NewHistogram registers and returns a histogram. Nil bounds select
// DefBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func(b []byte) []byte {
		return h.renderInto(b, name, "")
	}, func() FamilySnapshot {
		return FamilySnapshot{Points: []MetricPoint{h.snapshotPoint("")}}
	})
	return h
}

// HistogramVec is a family of histograms keyed by one label's value (e.g.
// per-endpoint request latency), created lazily on first With.
type HistogramVec struct {
	name, label string
	bounds      []float64
	mu          sync.Mutex
	vals        map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.vals[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.vals[value] = h
	}
	return h
}

// NewHistogramVec registers and returns a labeled histogram family. Nil
// bounds select DefBuckets.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	v := &HistogramVec{name: name, label: label, bounds: cloneBounds(bounds), vals: make(map[string]*Histogram)}
	r.register(name, help, "histogram", func(b []byte) []byte {
		keys, hs := v.snapshot()
		for i, k := range keys {
			prefix := make([]byte, 0, len(v.label)+len(k)+4)
			prefix = append(prefix, v.label...)
			prefix = append(prefix, '=', '"')
			prefix = appendEscapedLabel(prefix, k)
			prefix = append(prefix, '"', ',')
			b = hs[i].renderInto(b, name, string(prefix))
		}
		return b
	}, func() FamilySnapshot {
		keys, hs := v.snapshot()
		points := make([]MetricPoint, len(keys))
		for i, k := range keys {
			points[i] = hs[i].snapshotPoint(k)
		}
		return FamilySnapshot{Label: label, Points: points}
	})
	return v
}

func (v *HistogramVec) snapshot() ([]string, []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = v.vals[k]
	}
	return keys, hs
}

func cloneBounds(bounds []float64) []float64 {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return bs
}
