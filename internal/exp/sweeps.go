package exp

import (
	"fmt"

	"rankfair/internal/core"
	"rankfair/internal/synth"
)

// pairAt runs baseline and optimized detection on one input and parameter
// setting, for the selected fairness measure.
func (c Config) pairAt(in *core.Input, tau, kMin, kMax int, proportional bool) (base, opt Measurement) {
	if proportional {
		params := core.PropParams{MinSize: tau, KMin: kMin, KMax: kMax, Alpha: c.Alpha}
		base = runDetector("IterTD", c.Timeout, func() (*core.Result, error) { return core.IterTDProp(in, params) })
		opt = runDetector("PropBounds", c.Timeout, func() (*core.Result, error) { return core.PropBounds(in, params) })
		return base, opt
	}
	params := core.GlobalParams{MinSize: tau, KMin: kMin, KMax: kMax, Lower: c.lower(kMin, kMax)}
	base = runDetector("IterTD", c.Timeout, func() (*core.Result, error) { return core.IterTDGlobal(in, params) })
	opt = runDetector("GlobalBounds", c.Timeout, func() (*core.Result, error) { return core.GlobalBounds(in, params) })
	return base, opt
}

func measureName(proportional bool) string {
	if proportional {
		return "proportional representation"
	}
	return "global bounds"
}

func optName(proportional bool) string {
	if proportional {
		return "PropBounds"
	}
	return "GlobalBounds"
}

// AttrSweep reproduces Figures 4 (global) and 5 (proportional): runtime as
// a function of the number of attributes, from 3 up to the dataset's
// attribute count (or maxAttrs if smaller).
func (c Config) AttrSweep(b *synth.Bundle, proportional bool, maxAttrs int) (*Figure, error) {
	total := b.NumCatAttrs()
	if maxAttrs > 0 && maxAttrs < total {
		total = maxAttrs
	}
	figNo := 4
	if proportional {
		figNo = 5
	}
	fig := &Figure{
		Title: fmt.Sprintf("Fig. %d (%s): runtime vs number of attributes — %s (τs=%d, k∈[%d,%d])",
			figNo, b.Name, measureName(proportional), c.Tau, c.KMin, c.KMax),
		Header: []string{"attrs", "IterTD", optName(proportional), "speedup", "IterTD nodes", "opt nodes", "groups"},
	}
	for m := 3; m <= total; m++ {
		in, err := b.InputAttrs(m)
		if err != nil {
			return nil, err
		}
		base, opt := c.pairAt(in, c.Tau, c.KMin, c.KMax, proportional)
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", m),
			fmtDur(base), fmtDur(opt), speedup(base, opt),
			fmtNodes(base), fmtNodes(opt), fmtGroups(opt),
		})
		if base.TimedOut && opt.TimedOut {
			break // both sides censored: larger settings only get worse
		}
	}
	return fig, nil
}

// ThresholdSweep reproduces Figures 6 (global) and 7 (proportional):
// runtime as a function of the size threshold τs from 10 to 100.
func (c Config) ThresholdSweep(b *synth.Bundle, proportional bool, attrs int) (*Figure, error) {
	in, err := b.InputAttrs(attrs)
	if err != nil {
		return nil, err
	}
	figNo := 6
	if proportional {
		figNo = 7
	}
	fig := &Figure{
		Title: fmt.Sprintf("Fig. %d (%s): runtime vs size threshold τs — %s (attrs=%d, k∈[%d,%d])",
			figNo, b.Name, measureName(proportional), attrs, c.KMin, c.KMax),
		Header: []string{"τs", "IterTD", optName(proportional), "speedup", "IterTD nodes", "opt nodes", "groups"},
	}
	for tau := 10; tau <= 100; tau += 10 {
		base, opt := c.pairAt(in, tau, c.KMin, c.KMax, proportional)
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", tau),
			fmtDur(base), fmtDur(opt), speedup(base, opt),
			fmtNodes(base), fmtNodes(opt), fmtGroups(opt),
		})
	}
	return fig, nil
}

// KRangeSweep reproduces Figures 8 (global) and 9 (proportional): runtime
// as a function of the k range, kmin fixed at the configured value and kmax
// swept across kMaxes (the paper uses up to 1000 for COMPAS and up to 350
// for Student and German Credit).
func (c Config) KRangeSweep(b *synth.Bundle, proportional bool, attrs int, kMaxes []int) (*Figure, error) {
	in, err := b.InputAttrs(attrs)
	if err != nil {
		return nil, err
	}
	figNo := 8
	if proportional {
		figNo = 9
	}
	fig := &Figure{
		Title: fmt.Sprintf("Fig. %d (%s): runtime vs range of k — %s (attrs=%d, τs=%d, kmin=%d)",
			figNo, b.Name, measureName(proportional), attrs, c.Tau, c.KMin),
		Header: []string{"kmax", "IterTD", optName(proportional), "speedup", "IterTD nodes", "opt nodes", "groups"},
	}
	for _, kMax := range kMaxes {
		if kMax > b.Table.NumRows() {
			break
		}
		base, opt := c.pairAt(in, c.Tau, c.KMin, kMax, proportional)
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", kMax),
			fmtDur(base), fmtDur(opt), speedup(base, opt),
			fmtNodes(base), fmtNodes(opt), fmtGroups(opt),
		})
	}
	return fig, nil
}

// NodesExamined reproduces the Section VI-B text comparison: the percentage
// reduction in patterns examined by the optimized algorithms relative to
// ITERTD at the default parameters (the paper reports gains of up to
// 39.35%/56.87%/29.27% for global bounds and 39.60%/20.49%/56.83% for
// proportional representation on COMPAS/Student/German Credit).
func (c Config) NodesExamined(bundles []*synth.Bundle, attrs int) (*Figure, error) {
	fig := &Figure{
		Title:  fmt.Sprintf("Sec. VI-B: patterns examined, baseline vs optimized (attrs=%d, τs=%d, k∈[%d,%d], α=%.2f)", attrs, c.Tau, c.KMin, c.KMax, c.Alpha),
		Header: []string{"dataset", "measure", "IterTD nodes", "optimized nodes", "reduction"},
	}
	for _, b := range bundles {
		in, err := b.InputAttrs(min(attrs, b.NumCatAttrs()))
		if err != nil {
			return nil, err
		}
		for _, proportional := range []bool{false, true} {
			base, opt := c.pairAt(in, c.Tau, c.KMin, c.KMax, proportional)
			red := "-"
			if !base.TimedOut && !opt.TimedOut && base.Nodes > 0 {
				red = fmt.Sprintf("%.2f%%", 100*float64(base.Nodes-opt.Nodes)/float64(base.Nodes))
			}
			fig.Rows = append(fig.Rows, []string{
				b.Name, measureName(proportional), fmtNodes(base), fmtNodes(opt), red,
			})
		}
	}
	return fig, nil
}

// ResultSizeSurvey backs the Section III observation that in 97.58% of the
// examined settings the number of reported groups per k stays below 100.
// It sweeps a parameter grid and reports the fraction of per-k result sets
// under the threshold.
func (c Config) ResultSizeSurvey(bundles []*synth.Bundle, attrs int) (*Figure, error) {
	fig := &Figure{
		Title:  "Sec. III: fraction of per-k result sets with fewer than 100 groups",
		Header: []string{"dataset", "measure", "settings", "k-slices", "<100 groups", "fraction"},
	}
	taus := []int{25, 50, 100}
	alphas := []float64{0.6, 0.8, 1.0}
	for _, b := range bundles {
		in, err := b.InputAttrs(min(attrs, b.NumCatAttrs()))
		if err != nil {
			return nil, err
		}
		var gSlices, gSmall, gSettings int
		for _, tau := range taus {
			params := core.GlobalParams{MinSize: tau, KMin: c.KMin, KMax: c.KMax, Lower: c.lower(c.KMin, c.KMax)}
			res, err := core.GlobalBounds(in, params)
			if err != nil {
				return nil, err
			}
			gSettings++
			for _, groups := range res.Groups {
				gSlices++
				if len(groups) < 100 {
					gSmall++
				}
			}
		}
		fig.Rows = append(fig.Rows, []string{
			b.Name, "global bounds", fmt.Sprintf("%d", gSettings),
			fmt.Sprintf("%d", gSlices), fmt.Sprintf("%d", gSmall),
			fmt.Sprintf("%.2f%%", 100*float64(gSmall)/float64(max(gSlices, 1))),
		})
		var pSlices, pSmall, pSettings int
		for _, alpha := range alphas {
			params := core.PropParams{MinSize: c.Tau, KMin: c.KMin, KMax: c.KMax, Alpha: alpha}
			res, err := core.PropBounds(in, params)
			if err != nil {
				return nil, err
			}
			pSettings++
			for _, groups := range res.Groups {
				pSlices++
				if len(groups) < 100 {
					pSmall++
				}
			}
		}
		fig.Rows = append(fig.Rows, []string{
			b.Name, "proportional", fmt.Sprintf("%d", pSettings),
			fmt.Sprintf("%d", pSlices), fmt.Sprintf("%d", pSmall),
			fmt.Sprintf("%.2f%%", 100*float64(pSmall)/float64(max(pSlices, 1))),
		})
	}
	return fig, nil
}
