package core

import (
	"context"
	"fmt"

	"rankfair/internal/pattern"
)

// gnode is a node of the persistent search tree maintained by GLOBALBOUNDS
// across consecutive k values.
type gnode struct {
	p        pattern.Pattern
	sD       int      // size in D (never changes)
	cnt      int      // size in the current top-k
	biased   bool     // cnt < L_k
	expanded bool     // children have been generated
	children []*gnode // explored children with sD >= minSize
	// key interns p.Key() on first snapshot use (sortNodesInterned): the
	// node persists across the staircase's per-k snapshots, so the
	// canonical key is built once per node, not once per snapshot.
	key string
}

// gsink collects the side effects of one subtree build: the biased
// frontier nodes it reached and the work it did. Every worker of a fan-out
// owns one — including a searcher with its pooled partition scratch; the
// sinks are merged into the shared state in deterministic order after the
// fan-out completes.
type gsink struct {
	cn     canceler
	sr     searcher
	stats  Stats
	search SearchStats
	biased []*gnode
}

// globalState holds the incremental search state of Algorithm 2.
type globalState struct {
	in      *Input
	eng     *engine
	params  *GlobalParams
	stats   *Stats
	ctx     context.Context
	workers int
	// search accumulates the run's SearchStats; nil when disabled. Serial
	// phases count into it directly, fan-out workers into their sink's
	// local copy, merged at the same points as the sinks' Stats.
	search *SearchStats

	roots []*gnode
	// front is the biased frontier (Res ∪ DRes of the paper) with its
	// Res/DRes split maintained incrementally: full builds bulk-seed it,
	// steps feed it the flipped nodes only.
	front *domFrontier[gnode]
}

// GlobalBounds is Algorithm 2 (GLOBALBOUNDS): detection of groups with
// biased representation under global lower bounds, computed incrementally
// across k. When L_k = L_{k-1}, the search for k starts from the endpoint of
// the search for k-1: only frontier patterns satisfied by the newly inserted
// tuple R(D)[k] can change status, and a frontier pattern whose count rises
// to the bound resumes the search in its unexplored subtree
// (searchFromNode). When L_k increases, a fresh top-down search is performed
// (the paper's rule; it requires a non-decreasing bound sequence).
func GlobalBounds(in *Input, params GlobalParams) (*Result, error) {
	return GlobalBoundsCtx(context.Background(), in, params, 1)
}

// GlobalBoundsCtx is GlobalBounds with cancellation and intra-search
// fan-out. The incremental algorithm is sequential in k, so unlike the
// ITERTD baselines the parallelism lives inside one step: the independent
// subtrees of a full build, the resumed subtrees of freed frontier nodes,
// and the per-pattern domination filter spread over workers goroutines
// (<= 0 means GOMAXPROCS, 1 is serial). Per-worker sinks are merged in
// deterministic order, so results are byte-identical to the serial path.
// A canceled ctx stops the traversal within a bounded number of node
// expansions and returns a CanceledError.
func GlobalBoundsCtx(ctx context.Context, in *Input, params GlobalParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	for i := 1; i < len(params.Lower); i++ {
		if params.Lower[i] < params.Lower[i-1] {
			return nil, fmt.Errorf("core: GlobalBounds requires non-decreasing lower bounds, got L=%d after L=%d (use IterTDGlobal for arbitrary bounds)",
				params.Lower[i], params.Lower[i-1])
		}
	}
	if err := preflight(ctx); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &globalState{in: in, eng: newEngine(in), params: &params, stats: &res.Stats, ctx: ctx, workers: normWorkers(workers)}
	st.search = st.eng.newSearchStats(st.workers)
	res.Search = st.search

	if !st.fullBuild(params.KMin) {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	res.Groups[0] = st.snapshot()
	for k := params.KMin + 1; k <= params.KMax; k++ {
		if params.lowerAt(k) > params.lowerAt(k-1) {
			if !st.fullBuild(k) {
				return nil, canceledErr(ctx, res.Stats.NodesExamined)
			}
			res.Groups[k-params.KMin] = st.snapshot()
			continue
		}
		changed, ok := st.step(k)
		if !ok {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		if changed {
			res.Groups[k-params.KMin] = st.snapshot()
		} else {
			res.Groups[k-params.KMin] = res.Groups[k-params.KMin-1]
		}
	}
	return res, nil
}

// fullBuild runs a complete top-down search at k, building the persistent
// node tree (the paper's TopDownSearch with DRes maintenance). The root's
// subtrees are independent, so they build on the worker pool, each into its
// own sink; the merge walks the sinks in subtree order. On the rank-space
// engine the root units alias the counting index's posting lists, so a
// warm index starts the build with zero dataset scans. It reports false
// when the build was abandoned because the context was canceled.
func (s *globalState) fullBuild(k int) bool {
	s.stats.FullSearches++
	s.roots = nil
	// A bound increase rebuilds the tree, so the frontier restarts from
	// scratch and re-seeds at the normalize below.
	s.front = newDomFrontier(
		func(nd *gnode) pattern.Pattern { return nd.p },
		func(nd *gnode) *string { return &nd.key })

	L := s.params.lowerAt(k)
	units := s.eng.rootUnits(k)
	sinks := make([]gsink, len(units))
	children := make([]*gnode, len(units))
	fanOut(s.workers, len(units), func(i int) {
		u := &units[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		sk.stats.NodesExamined++
		sD := len(u.m.all)
		if sD < s.params.MinSize {
			sk.sr.ss.prunedSize()
			return
		}
		child := &gnode{p: u.p, sD: sD, cnt: s.eng.topCount(u.m, k)}
		children[i] = child
		if child.cnt < L {
			child.biased = true
			sk.sr.ss.prunedBound()
			sk.sr.ss.frontier(child.p)
			sk.biased = append(sk.biased, child)
			return
		}
		child.expanded = true
		sk.sr.ss.expanded()
		child.children = s.buildChildrenInto(child, u.m, k, L, sk)
	})
	halted := false
	for i := range units {
		if children[i] != nil {
			s.roots = append(s.roots, children[i])
		}
		s.stats.add(sinks[i].stats)
		s.search.merge(&sinks[i].search)
		for _, nd := range sinks[i].biased {
			s.front.add(nd)
		}
		halted = halted || sinks[i].cn.halted
	}
	if halted {
		return false
	}
	return s.normalize()
}

// buildChildrenInto recursively materializes the explored subtree below
// parent given its match set, returning the explored children. All side
// effects (stats, biased frontier) go to the caller's sink, so concurrent
// builds of disjoint subtrees never touch shared state; partitions live in
// the sink's arena, released per attribute as the recursion unwinds.
func (s *globalState) buildChildrenInto(parent *gnode, m matchSet, k, L int, sk *gsink) []*gnode {
	var kids []*gnode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return kids
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.params.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &gnode{p: parent.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			kids = append(kids, child)
			if child.cnt < L {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			child.expanded = true
			sk.sr.ss.expanded()
			child.children = s.buildChildrenInto(child, cs.at(v), k, L, sk)
		}
		sk.sr.release(mk)
	}
	parent.children = kids
	return kids
}

// step advances the state from k-1 to k with an unchanged bound. It returns
// whether the result set changed, and false in ok when the step was
// abandoned mid-traversal because the context was canceled.
func (s *globalState) step(k int) (changed, ok bool) {
	L := s.params.lowerAt(k)
	newRow := s.in.Rows[s.in.Ranking[k-1]]

	cn := canceler{ctx: s.ctx}
	var freed []*gnode
	var walk func(nd *gnode)
	walk = func(nd *gnode) {
		if cn.stopped() || !nd.p.Matches(newRow) {
			return
		}
		s.stats.NodesExamined++
		nd.cnt++
		if nd.biased && nd.cnt >= L {
			nd.biased = false
			freed = append(freed, nd)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}
	if cn.halted {
		return false, false
	}
	if len(freed) == 0 {
		return false, true
	}

	for _, nd := range freed {
		s.front.remove(nd)
	}
	// searchFromNode: resume the search in the unexplored subtrees of the
	// freed frontier nodes. Freed nodes were frontier nodes, so their
	// subtrees are disjoint and expand independently on the worker pool.
	sinks := make([]gsink, len(freed))
	fanOut(s.workers, len(freed), func(i int) {
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		s.expandInto(freed[i], k, L, sk)
	})
	halted := false
	for i := range sinks {
		s.stats.add(sinks[i].stats)
		s.search.merge(&sinks[i].search)
		for _, nd := range sinks[i].biased {
			s.front.add(nd)
		}
		halted = halted || sinks[i].cn.halted
	}
	if halted {
		return false, false
	}
	// The frontier absorbed the flips incrementally (freed removals above,
	// new biased discoveries per sink); normalize only folds the updated
	// domination tally into the stats.
	if !s.normalize() {
		return false, false
	}
	return true, true
}

// expandInto resumes the top-down search below a node whose count rose to
// the bound: the node's match set is re-materialized — a galloping
// posting-list intersection on the rank-space engine, dataset scans on the
// lists engine — and its subtree explored from there.
func (s *globalState) expandInto(nd *gnode, k, L int, sk *gsink) {
	if nd.expanded {
		return
	}
	nd.expanded = true
	sk.sr.ss.expanded()
	mk := sk.sr.mark()
	m := sk.sr.materialize(nd.p, k)
	s.expandWithInto(nd, m, k, L, sk)
	sk.sr.release(mk)
}

func (s *globalState) expandWithInto(nd *gnode, m matchSet, k, L int, sk *gsink) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.params.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &gnode{p: nd.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			nd.children = append(nd.children, child)
			if child.cnt < L {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			child.expanded = true
			sk.sr.ss.expanded()
			s.expandWithInto(child, cs.at(v), k, L, sk)
		}
		sk.sr.release(mk)
	}
}

// normalize settles the Res/DRes split of the biased frontier: the first
// call after a full build bulk-seeds the domination frontier through the
// level-parallel markDominatedWitness pass (on adversarial inputs with
// huge incomparable result sets that filter, not the tree walk, is the
// dominant cost); later calls find the split already maintained and only
// fold the domination tally into the stats — the same per-pass accounting
// the full recompute used to report. It reports false when the seed was
// abandoned because the context was canceled.
func (s *globalState) normalize() bool {
	if s.front.settle(s.ctx, s.workers) {
		return false
	}
	s.search.addDominated(int64(s.front.ndom))
	return true
}

// snapshot renders the current Res as a sorted pattern slice straight off
// the frontier's maintained order.
func (s *globalState) snapshot() []Pattern {
	return s.front.emit()
}

// matchingRows returns the indices of rows matching p. If base is non-nil
// only those indices are considered.
func matchingRows(rows [][]int32, p pattern.Pattern, base []int32) []int32 {
	var out []int32
	if base == nil {
		for i, r := range rows {
			if p.Matches(r) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, ri := range base {
		if p.Matches(rows[ri]) {
			out = append(out, ri)
		}
	}
	return out
}

// matchingTopK returns the indices of top-k rows matching p.
func matchingTopK(rows [][]int32, ranking []int, p pattern.Pattern, k int) []int32 {
	if k > len(ranking) {
		k = len(ranking)
	}
	var out []int32
	for _, ri := range ranking[:k] {
		if p.Matches(rows[ri]) {
			out = append(out, int32(ri))
		}
	}
	return out
}
