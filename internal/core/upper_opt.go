package core

import (
	"context"

	"rankfair/internal/pattern"
)

// GlobalUpperBounds is the incremental counterpart of IterTDGlobalUpper,
// adapting the Algorithm 2 idea to the upper-bound problem. Within a
// segment of constant U_k, counts only grow with k, so the candidate set
// (substantial patterns exceeding the bound — a downward-closed family)
// only grows; per step the search touches only explored nodes satisfied by
// the newly inserted tuple, and a frontier node crossing the bound resumes
// the search below it. The most specific (maximal) candidates are
// maintained incrementally: a new candidate starts maximal and de-maximizes
// its pattern-graph parents. When U_k changes, a fresh search runs (the
// analogue of the paper's rebuild on bound change).
func GlobalUpperBounds(in *Input, params GlobalUpperParams) (*Result, error) {
	return GlobalUpperBoundsCtx(context.Background(), in, params, 1)
}

// GlobalUpperBoundsCtx is GlobalUpperBounds with cancellation and
// intra-search fan-out: independent subtrees build on workers goroutines
// (<= 0 means GOMAXPROCS, 1 is serial), each collecting its candidates in
// traversal order into a sink; the merge admits them in the serial order,
// so the maximality bookkeeping — and therefore the result — is
// byte-identical to the serial path. A canceled ctx aborts mid-lattice
// with a CanceledError.
func GlobalUpperBoundsCtx(ctx context.Context, in *Input, params GlobalUpperParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	if err := preflight(ctx); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &upperState{in: in, eng: newEngine(in), params: &params, stats: &res.Stats, ctx: ctx, workers: normWorkers(workers)}
	st.search = st.eng.newSearchStats(st.workers)
	res.Search = st.search

	if !st.fullBuild(params.KMin) {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	res.Groups[0] = st.snapshot()
	for k := params.KMin + 1; k <= params.KMax; k++ {
		if params.Upper[k-params.KMin] != params.Upper[k-params.KMin-1] {
			if !st.fullBuild(k) {
				return nil, canceledErr(ctx, res.Stats.NodesExamined)
			}
			res.Groups[k-params.KMin] = st.snapshot()
			continue
		}
		changed, ok := st.step(k)
		if !ok {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		if changed {
			res.Groups[k-params.KMin] = st.snapshot()
		} else {
			res.Groups[k-params.KMin] = res.Groups[k-params.KMin-1]
		}
	}
	return res, nil
}

// unode is a node of the persistent tree maintained by GlobalUpperBounds.
type unode struct {
	p         pattern.Pattern
	sD        int
	cnt       int
	candidate bool // substantial and cnt > U
	expanded  bool
	children  []*unode
}

// usink collects one subtree build's candidates (in traversal order) and
// work accounting; candidates are admitted at merge time so the maximality
// maps are only touched serially.
type usink struct {
	cn     canceler
	sr     searcher
	stats  Stats
	search SearchStats
	cands  []*unode
}

type upperState struct {
	in      *Input
	eng     *engine
	params  *GlobalUpperParams
	stats   *Stats
	ctx     context.Context
	workers int
	// search accumulates the run's SearchStats; nil when disabled.
	search *SearchStats

	roots []*unode
	// candidates maps pattern keys of all current candidates; maximal
	// tracks the most specific ones (no candidate pattern-graph child).
	candidates map[string]*unode
	maximal    map[*unode]struct{}
}

func (s *upperState) upperAt(k int) int { return s.params.Upper[k-s.params.KMin] }

// fullBuild runs a complete search at k: candidates are explored, frontier
// nodes (substantial, not exceeding) stop the descent. Root subtrees build
// independently on the worker pool; the merge admits candidates in subtree
// order, reproducing the serial admission sequence. It reports false when
// the build was abandoned because the context was canceled.
func (s *upperState) fullBuild(k int) bool {
	s.stats.FullSearches++
	s.roots = nil
	s.candidates = make(map[string]*unode)
	s.maximal = make(map[*unode]struct{})

	u := s.upperAt(k)
	units := s.eng.rootUnits(k)
	sinks := make([]usink, len(units))
	children := make([]*unode, len(units))
	fanOut(s.workers, len(units), func(i int) {
		un := &units[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		sk.stats.NodesExamined++
		sD := len(un.m.all)
		if sD < s.params.MinSize {
			sk.sr.ss.prunedSize()
			return
		}
		child := &unode{p: un.p, sD: sD, cnt: s.eng.topCount(un.m, k)}
		children[i] = child
		if child.cnt > u {
			sk.sr.ss.frontier(child.p)
			sk.sr.ss.expanded()
			sk.cands = append(sk.cands, child)
			child.expanded = true
			child.children = s.buildChildrenInto(child, un.m, k, u, sk)
		} else {
			sk.sr.ss.prunedBound()
		}
	})
	halted := false
	for i := range units {
		if children[i] != nil {
			s.roots = append(s.roots, children[i])
		}
		s.stats.add(sinks[i].stats)
		s.search.merge(&sinks[i].search)
		for _, nd := range sinks[i].cands {
			s.admit(nd)
		}
		halted = halted || sinks[i].cn.halted
	}
	return !halted
}

func (s *upperState) buildChildrenInto(parent *unode, m matchSet, k, u int, sk *usink) []*unode {
	var kids []*unode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return kids
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.params.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &unode{p: parent.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			kids = append(kids, child)
			if child.cnt > u {
				sk.sr.ss.frontier(child.p)
				sk.sr.ss.expanded()
				sk.cands = append(sk.cands, child)
				child.expanded = true
				child.children = s.buildChildrenInto(child, cs.at(v), k, u, sk)
			} else {
				sk.sr.ss.prunedBound()
			}
		}
		sk.sr.release(mk)
	}
	parent.children = kids
	return kids
}

// admit registers a node as a candidate, keeping the maximal set correct
// for any insertion order within a step: the node is maximal unless one of
// its pattern-graph children is already a candidate, and its candidate
// pattern-graph parents stop being maximal.
func (s *upperState) admit(nd *unode) {
	nd.candidate = true
	s.candidates[nd.p.Key()] = nd
	hasCandChild := false
scan:
	for a := 0; a < s.in.Space.NumAttrs(); a++ {
		if nd.p[a] != pattern.Unbound {
			continue
		}
		for v := 0; v < s.in.Space.Cards[a]; v++ {
			if _, ok := s.candidates[nd.p.With(a, int32(v)).Key()]; ok {
				hasCandChild = true
				break scan
			}
		}
	}
	if !hasCandChild {
		s.maximal[nd] = struct{}{}
	}
	for _, parent := range nd.p.GraphParents() {
		if parent.NumAttrs() == 0 {
			continue
		}
		if pn, ok := s.candidates[parent.Key()]; ok {
			delete(s.maximal, pn)
		}
	}
}

// step advances from k-1 to k with an unchanged bound. It returns whether
// the candidate set changed, and false in ok when the step was abandoned
// because the context was canceled.
func (s *upperState) step(k int) (changed, ok bool) {
	u := s.upperAt(k)
	newRow := s.in.Rows[s.in.Ranking[k-1]]
	cn := canceler{ctx: s.ctx}
	var crossed []*unode
	var walk func(nd *unode)
	walk = func(nd *unode) {
		if cn.stopped() || !nd.p.Matches(newRow) {
			return
		}
		s.stats.NodesExamined++
		nd.cnt++
		if !nd.candidate && nd.cnt > u {
			s.search.frontier(nd.p)
			crossed = append(crossed, nd)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}
	if cn.halted {
		return false, false
	}
	if len(crossed) == 0 {
		return false, true
	}
	// Admit in generality order so graph-parent bookkeeping sees parents
	// before children (a crossing node's crossing parent must already be
	// a candidate when the child de-maximizes it).
	sortUnodes(crossed)
	for _, nd := range crossed {
		s.admit(nd)
	}
	// Resume the search below the newly admitted candidates. Crossed nodes
	// were unexplored frontier nodes, so their subtrees are disjoint and
	// expand independently; each sink's candidates are admitted at merge,
	// in the same order the serial expansion would have produced.
	var resumed []*unode
	for _, nd := range crossed {
		if !nd.expanded {
			nd.expanded = true
			s.search.expanded()
			resumed = append(resumed, nd)
		}
	}
	sinks := make([]usink, len(resumed))
	fanOut(s.workers, len(resumed), func(i int) {
		nd := resumed[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		mk := sk.sr.mark()
		m := sk.sr.materialize(nd.p, k)
		nd.children = append(nd.children, s.expandWithInto(nd, m, k, u, sk)...)
		sk.sr.release(mk)
	})
	halted := false
	for i := range sinks {
		s.stats.add(sinks[i].stats)
		s.search.merge(&sinks[i].search)
		for _, nd := range sinks[i].cands {
			s.admit(nd)
		}
		halted = halted || sinks[i].cn.halted
	}
	return true, !halted
}

// expandWithInto mirrors buildChildrenInto for step-time expansion,
// returning the new children of nd.
func (s *upperState) expandWithInto(nd *unode, m matchSet, k, u int, sk *usink) []*unode {
	var kids []*unode
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return kids
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.params.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &unode{p: nd.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			kids = append(kids, child)
			if child.cnt > u {
				sk.sr.ss.frontier(child.p)
				sk.sr.ss.expanded()
				sk.cands = append(sk.cands, child)
				child.expanded = true
				child.children = s.buildChildrenInto(child, cs.at(v), k, u, sk)
			} else {
				sk.sr.ss.prunedBound()
			}
		}
		sk.sr.release(mk)
	}
	return kids
}

func (s *upperState) snapshot() []Pattern {
	out := make([]Pattern, 0, len(s.maximal))
	for nd := range s.maximal {
		out = append(out, nd.p)
	}
	sortPatterns(out)
	return out
}

func sortUnodes(nodes []*unode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && lessUnode(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func lessUnode(a, b *unode) bool {
	na, nb := a.p.NumAttrs(), b.p.NumAttrs()
	if na != nb {
		return na < nb
	}
	return a.p.Key() < b.p.Key()
}
