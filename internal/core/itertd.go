package core

import "fmt"

// IterTDGlobal is the ITERTD baseline of Section IV-A for global bounds
// (Problem 3.1): it re-runs the top-down search of Algorithm 1 from scratch
// for every k in [KMin, KMax]. Unlike GLOBALBOUNDS it accepts arbitrary
// (including non-monotone) lower-bound sequences.
func IterTDGlobal(in *Input, params GlobalParams) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	meas := globalMeasure{params: &params}
	for k := params.KMin; k <= params.KMax; k++ {
		groups, _ := topDownSearch(in, params.MinSize, k, meas, &res.Stats)
		sortPatterns(groups)
		res.Groups[k-params.KMin] = groups
	}
	return res, nil
}

// IterTDProp is the ITERTD baseline for proportional representation
// (Problem 3.2): Algorithm 1 with the proportional lower bound, re-run from
// scratch for every k in [KMin, KMax].
func IterTDProp(in *Input, params PropParams) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	meas := propMeasure{alpha: params.Alpha, n: len(in.Rows)}
	for k := params.KMin; k <= params.KMax; k++ {
		groups, _ := topDownSearch(in, params.MinSize, k, meas, &res.Stats)
		sortPatterns(groups)
		res.Groups[k-params.KMin] = groups
	}
	return res, nil
}

// prepare validates the input and parameter combination shared by all
// detection entry points.
func prepare(in *Input, kMax int, paramErr error) error {
	if paramErr != nil {
		return paramErr
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if kMax > len(in.Rows) {
		return fmt.Errorf("core: kMax=%d exceeds dataset size %d", kMax, len(in.Rows))
	}
	return nil
}
