package explain

import (
	"testing"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
	"rankfair/internal/rank"
	"rankfair/internal/regress"
	"rankfair/internal/synth"
)

// TestBlackBoxModelRankerRecovered is the hardest version of the Section
// VI-C claim: the ranker is itself a *learned model* (a CART tree trained
// to imitate the grade order), and the explanation pipeline — which sees
// only the final permutation — must still surface the attributes the model
// ranks by.
func TestBlackBoxModelRankerRecovered(t *testing.T) {
	b := synth.Students(220, 29)
	in, err := b.Input()
	if err != nil {
		t.Fatal(err)
	}
	// Train a tree on (categorical tuple -> grade) and use it as R.
	enc := regress.NewEncoder(in.Space)
	X := enc.EncodeAll(in.Rows)
	grade := b.Table.ColumnByName("G3_score").Floats
	model, err := regress.FitTree(X, grade, regress.TreeParams{MaxDepth: 6, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	ranker := &rank.FromModel{Model: model, Encoder: enc}
	ranking, err := ranker.Rank(b.Table)
	if err != nil {
		t.Fatal(err)
	}
	blackbox := &core.Input{Rows: in.Rows, Space: in.Space, Ranking: ranking}
	if err := blackbox.Validate(); err != nil {
		t.Fatal(err)
	}

	// Explain an arbitrary substantial group against the model ranker.
	var p pattern.Pattern
	for i, n := range in.Space.Names {
		if n == "sex" {
			p = pattern.Empty(in.Space.NumAttrs()).With(i, 0)
		}
	}
	expl, err := Explain(blackbox, b.Table.CatDicts(), p, 40, Options{
		Seed: 1, Permutations: 16, BackgroundSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tree ranks via the grade buckets (the only strong predictors of
	// G3_score); a grade attribute must top the Shapley report.
	top := expl.Shapley[0].Name
	if top != "G3" && top != "G2" && top != "G1" {
		t.Errorf("top attribute %q, want a grade attribute; report: %v", top, expl.Shapley)
	}
	if expl.Fidelity.Spearman < 0.8 {
		t.Errorf("surrogate should track a categorical model ranker closely, Spearman=%v", expl.Fidelity.Spearman)
	}
}

// TestFromModelErrors covers the ranker's failure modes.
func TestFromModelErrors(t *testing.T) {
	b := synth.RunningExample()
	if _, err := (&rank.FromModel{}).Rank(b.Table); err == nil {
		t.Error("nil model should fail")
	}
}
