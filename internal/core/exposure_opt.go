package core

import (
	"sort"

	"rankfair/internal/pattern"
)

// ExposureBounds is the optimized incremental counterpart of IterTDExposure,
// built on the PROPBOUNDS skeleton (Algorithm 3): the exposure of a pattern
// changes only when the newly inserted tuple R(D)[k] satisfies it (it gains
// that position's weight), while its bound α·s_D(p)·E(k)/|D| grows with
// every k. Unbiased nodes are therefore scheduled at the critical k̃ where
// the growing bound overtakes their frozen exposure; per step only nodes
// satisfied by the new tuple and nodes whose k̃ is due are examined.
//
// Unlike the count measure, a matched biased node does not necessarily flip
// unbiased (position weights decay with k), so flips are re-checked rather
// than assumed.
func ExposureBounds(in *Input, params ExposureParams) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &exposureState{
		in:        in,
		pr:        &params,
		stats:     &res.Stats,
		n:         float64(len(in.Rows)),
		biasedSet: make(map[*enode]struct{}),
		buckets:   make([][]*enode, params.KMax+2),
		weightOf:  make([]float64, len(in.Rows)),
		totalExp:  make([]float64, params.KMax+1),
	}
	for i := 0; i < params.KMax; i++ {
		w := PositionExposure(i + 1)
		st.weightOf[in.Ranking[i]] = w
		st.totalExp[i+1] = st.totalExp[i] + w
	}
	st.fullBuild(params.KMin)
	res.Groups[0] = st.snapshot()
	for k := params.KMin + 1; k <= params.KMax; k++ {
		st.step(k)
		res.Groups[k-params.KMin] = st.snapshot()
	}
	return res, nil
}

// enode mirrors pnode with a float exposure in place of the integer count.
type enode struct {
	p        pattern.Pattern
	sD       int
	exposure float64
	biased   bool
	expanded bool
	children []*enode
	ktilde   int
}

type exposureState struct {
	in    *Input
	pr    *ExposureParams
	stats *Stats
	n     float64

	roots     []*enode
	biasedSet map[*enode]struct{}
	buckets   [][]*enode
	weightOf  []float64
	totalExp  []float64

	res  []Pattern
	dirt bool
}

func (s *exposureState) biasedAt(sD int, exposure float64, k int) bool {
	return exposure < s.pr.Alpha*float64(sD)*s.totalExp[k]/s.n
}

// computeKtilde finds the smallest k with biasedAt true. E(k) is strictly
// increasing in k, so the bound is monotone and a scan from a solved
// starting point terminates; exposure stays fixed between matches.
func (s *exposureState) computeKtilde(sD int, exposure float64) int {
	limit := s.pr.KMax + 1
	if sD == 0 {
		return limit
	}
	// Invert E(k) >= exposure·n/(α·sD) by scanning: E is concave and the
	// range is small, so binary search over totalExp keeps this O(log k).
	target := exposure * s.n / (s.pr.Alpha * float64(sD))
	kt := sort.SearchFloat64s(s.totalExp, target) // first k with E(k) >= target
	if kt < 1 {
		kt = 1
	}
	for kt > 1 && s.biasedAt(sD, exposure, kt-1) {
		kt--
	}
	for kt <= s.pr.KMax && !s.biasedAt(sD, exposure, kt) {
		kt++
	}
	if kt > s.pr.KMax {
		return limit
	}
	return kt
}

func (s *exposureState) schedule(nd *enode) {
	nd.ktilde = s.computeKtilde(nd.sD, nd.exposure)
	if nd.ktilde <= s.pr.KMax {
		s.buckets[nd.ktilde] = append(s.buckets[nd.ktilde], nd)
	}
}

func (s *exposureState) fullBuild(k int) {
	s.stats.FullSearches++
	n := s.in.Space.NumAttrs()
	all := make([]int32, len(s.in.Rows))
	for i := range all {
		all[i] = int32(i)
	}
	top := make([]int32, k)
	for i := 0; i < k; i++ {
		top[i] = int32(s.in.Ranking[i])
	}
	root := &enode{p: pattern.Empty(n), sD: len(all), exposure: s.totalExp[k], expanded: true}
	s.roots = s.buildChildren(root, all, top, k)
	s.dirt = true
}

func (s *exposureState) buildChildren(parent *enode, matchAll, matchTop []int32, k int) []*enode {
	var kids []*enode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.pr.MinSize {
				continue
			}
			child := &enode{p: parent.p.With(a, int32(v)), sD: sD, exposure: s.sumWeights(topBuckets[v])}
			kids = append(kids, child)
			if s.biasedAt(sD, child.exposure, k) {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				continue
			}
			s.schedule(child)
			child.expanded = true
			child.children = s.buildChildren(child, allBuckets[v], topBuckets[v], k)
		}
	}
	parent.children = kids
	return kids
}

func (s *exposureState) sumWeights(rows []int32) float64 {
	total := 0.0
	for _, ri := range rows {
		total += s.weightOf[ri]
	}
	return total
}

func (s *exposureState) step(k int) {
	newRow := s.in.Rows[s.in.Ranking[k-1]]
	w := s.weightOf[s.in.Ranking[k-1]]

	var freed []*enode
	var walk func(nd *enode)
	walk = func(nd *enode) {
		if !nd.p.Matches(newRow) {
			return
		}
		s.stats.NodesExamined++
		nd.exposure += w
		if nd.biased {
			if !s.biasedAt(nd.sD, nd.exposure, k) {
				nd.biased = false
				delete(s.biasedSet, nd)
				s.schedule(nd)
				freed = append(freed, nd)
				s.dirt = true
			}
		} else if s.biasedAt(nd.sD, nd.exposure, k) {
			// Late positions carry less weight than the bound's growth,
			// so a matched unbiased node can still cross into bias.
			nd.biased = true
			s.biasedSet[nd] = struct{}{}
			s.dirt = true
		} else {
			s.schedule(nd)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}

	for _, nd := range s.buckets[k] {
		if nd.biased || nd.ktilde != k {
			continue
		}
		s.stats.NodesExamined++
		if s.biasedAt(nd.sD, nd.exposure, k) {
			nd.biased = true
			s.biasedSet[nd] = struct{}{}
			s.dirt = true
		} else {
			s.schedule(nd)
		}
	}
	s.buckets[k] = nil

	for _, nd := range freed {
		if !nd.expanded {
			nd.expanded = true
			matchAll := matchingRows(s.in.Rows, nd.p, nil)
			matchTop := matchingTopK(s.in.Rows, s.in.Ranking, nd.p, k)
			s.expandWith(nd, matchAll, matchTop, k)
		}
	}
}

func (s *exposureState) expandWith(nd *enode, matchAll, matchTop []int32, k int) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.pr.MinSize {
				continue
			}
			child := &enode{p: nd.p.With(a, int32(v)), sD: sD, exposure: s.sumWeights(topBuckets[v])}
			nd.children = append(nd.children, child)
			if s.biasedAt(sD, child.exposure, k) {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				s.dirt = true
				continue
			}
			s.schedule(child)
			child.expanded = true
			s.expandWith(child, allBuckets[v], topBuckets[v], k)
		}
	}
}

func (s *exposureState) snapshot() []Pattern {
	if !s.dirt {
		return s.res
	}
	s.dirt = false
	nodes := make([]*enode, 0, len(s.biasedSet))
	for nd := range s.biasedSet {
		nodes = append(nodes, nd)
	}
	sort.Slice(nodes, func(i, j int) bool {
		ni, nj := nodes[i].p.NumAttrs(), nodes[j].p.NumAttrs()
		if ni != nj {
			return ni < nj
		}
		return nodes[i].p.Key() < nodes[j].p.Key()
	})
	res := make([]Pattern, 0, len(nodes))
	for _, nd := range nodes {
		dominated := false
		for _, q := range res {
			if q.ProperSubsetOf(nd.p) {
				dominated = true
				break
			}
		}
		if !dominated {
			res = append(res, nd.p)
		}
	}
	s.res = res
	return res
}
