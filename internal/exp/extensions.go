package exp

import (
	"fmt"

	"rankfair/internal/core"
	"rankfair/internal/synth"
)

// ExtensionSweep benchmarks the extension algorithms beyond the paper's
// body (DESIGN.md §7): the incremental exposure detector and the
// incremental upper-bound detector, each against its per-k baseline, as a
// function of the k range — the dimension where incremental search pays off
// most (Figures 8-9's shape).
func (c Config) ExtensionSweep(b *synth.Bundle, attrs int, kMaxes []int) (*Figure, error) {
	in, err := b.InputAttrs(min(attrs, b.NumCatAttrs()))
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Title: fmt.Sprintf("Extensions (%s): incremental vs per-k baseline across the k range (attrs=%d, τs=%d)",
			b.Name, min(attrs, b.NumCatAttrs()), c.Tau),
		Header: []string{"kmax", "measure", "baseline", "incremental", "speedup", "baseline nodes", "incr nodes"},
	}
	for _, kMax := range kMaxes {
		if kMax > b.Table.NumRows() {
			break
		}
		expParams := core.ExposureParams{MinSize: c.Tau, KMin: c.KMin, KMax: kMax, Alpha: c.Alpha}
		base := runDetector("IterTDExposure", c.Timeout, func() (*core.Result, error) { return core.IterTDExposure(in, expParams) })
		opt := runDetector("ExposureBounds", c.Timeout, func() (*core.Result, error) { return core.ExposureBounds(in, expParams) })
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", kMax), "exposure",
			fmtDur(base), fmtDur(opt), speedup(base, opt), fmtNodes(base), fmtNodes(opt),
		})

		upParams := core.GlobalUpperParams{MinSize: c.Tau, KMin: c.KMin, KMax: kMax, Upper: core.ConstantBounds(c.KMin, kMax, c.LowerBase)}
		ubase := runDetector("IterTDGlobalUpper", c.Timeout, func() (*core.Result, error) { return core.IterTDGlobalUpper(in, upParams) })
		uopt := runDetector("GlobalUpperBounds", c.Timeout, func() (*core.Result, error) { return core.GlobalUpperBounds(in, upParams) })
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprintf("%d", kMax), "global-upper",
			fmtDur(ubase), fmtDur(uopt), speedup(ubase, uopt), fmtNodes(ubase), fmtNodes(uopt),
		})
	}
	return fig, nil
}
