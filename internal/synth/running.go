package synth

import (
	"rankfair/internal/dataset"
	"rankfair/internal/rank"
)

// RunningExample returns the 16-student dataset of Figure 1 with the
// paper's ranking algorithm: students are ranked by grade descending, ties
// broken by fewer past failures. The categorical attributes are Gender,
// School, Address, and Failures (in that order, matching the search-tree
// attribute order of Example 4.2); Grade and FailuresNum are numeric
// ranking columns.
func RunningExample() *Bundle {
	type student struct {
		gender, school, address, failures string
		grade                             float64
	}
	rowsData := []student{
		{"F", "MS", "R", "1", 11},
		{"M", "MS", "R", "1", 15},
		{"M", "GP", "U", "1", 8},
		{"M", "GP", "U", "2", 4},
		{"M", "MS", "R", "0", 19},
		{"F", "MS", "U", "1", 4},
		{"F", "GP", "R", "1", 7},
		{"M", "GP", "R", "1", 6},
		{"F", "MS", "R", "0", 14},
		{"F", "MS", "R", "2", 7},
		{"M", "MS", "R", "2", 13},
		{"F", "GP", "U", "0", 20},
		{"F", "GP", "U", "2", 12},
		{"M", "MS", "U", "1", 13},
		{"F", "GP", "U", "1", 5},
		{"M", "GP", "U", "0", 9},
	}
	n := len(rowsData)
	gender := make([]string, n)
	school := make([]string, n)
	address := make([]string, n)
	failures := make([]string, n)
	grade := make([]float64, n)
	failNum := make([]float64, n)
	for i, s := range rowsData {
		gender[i] = s.gender
		school[i] = s.school
		address[i] = s.address
		failures[i] = s.failures
		grade[i] = s.grade
		failNum[i] = float64(s.failures[0] - '0')
	}
	t := dataset.New()
	mustAddCat(t, "Gender", gender)
	mustAddCat(t, "School", school)
	mustAddCat(t, "Address", address)
	mustAddCat(t, "Failures", failures)
	mustAddNum(t, "Grade", grade)
	mustAddNum(t, "FailuresNum", failNum)
	return &Bundle{
		Name:  "running-example",
		Table: t,
		Ranker: &rank.ByColumns{Keys: []rank.ColumnKey{
			{Column: "Grade", Descending: true},
			{Column: "FailuresNum", Descending: false},
		}},
	}
}
