// Package synth generates the datasets of the paper's experimental study.
//
// The paper evaluates on three real datasets (COMPAS, Student Performance,
// German Credit) that are not redistributable here; per the reproduction
// plan (DESIGN.md §3) this package generates synthetic datasets with the
// same schema, cardinalities, row counts and correlation structure, so the
// detection algorithms see search spaces and top-k compositions of the same
// shape. It also provides the paper's running example (Figure 1) and the
// worst-case construction of Theorem 3.3 (Figure 2) verbatim.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"rankfair/internal/core"
	"rankfair/internal/dataset"
	"rankfair/internal/pattern"
	"rankfair/internal/rank"
)

// Bundle pairs a generated table with the ranking algorithm the paper uses
// for it.
type Bundle struct {
	// Name identifies the dataset ("compas", "student", "german", ...).
	Name string
	// Table holds the generated relation: categorical columns form the
	// pattern space; numeric columns feed the ranker.
	Table *dataset.Table
	// Ranker is the black-box ranking algorithm R of the experiments.
	Ranker rank.Ranker
}

// Input materializes the detection-algorithm view of the bundle: the
// categorical matrix, attribute space, and the ranking permutation.
func (b *Bundle) Input() (*core.Input, error) {
	return b.InputAttrs(-1)
}

// InputAttrs is Input restricted to the first m categorical attributes
// (m < 0 means all), as used by the number-of-attributes sweeps of
// Figures 4-5.
func (b *Bundle) InputAttrs(m int) (*core.Input, error) {
	rows, names, cards := b.Table.CatMatrix()
	if m >= 0 {
		if m > len(names) {
			return nil, fmt.Errorf("synth: %d attributes requested, dataset %q has %d", m, b.Name, len(names))
		}
		names = names[:m]
		cards = cards[:m]
		trimmed := make([][]int32, len(rows))
		for i, r := range rows {
			trimmed[i] = r[:m]
		}
		rows = trimmed
	}
	ranking, err := b.Ranker.Rank(b.Table)
	if err != nil {
		return nil, fmt.Errorf("synth: ranking %q: %w", b.Name, err)
	}
	in := &core.Input{
		Rows:    rows,
		Space:   &pattern.Space{Names: names, Cards: cards},
		Ranking: ranking,
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %q: %w", b.Name, err)
	}
	return in, nil
}

// NumCatAttrs returns the number of categorical attributes of the bundle.
func (b *Bundle) NumCatAttrs() int { return len(b.Table.CategoricalIndices()) }

// gen wraps the seeded random source with the distribution helpers the
// generators need.
type gen struct{ r *rand.Rand }

func newGen(seed int64) *gen { return &gen{r: rand.New(rand.NewSource(seed))} }

// normal draws from N(mean, sd).
func (g *gen) normal(mean, sd float64) float64 { return mean + sd*g.r.NormFloat64() }

// uniform draws from [lo, hi).
func (g *gen) uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// choice draws index i with probability weights[i]/sum(weights).
func (g *gen) choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// bern draws true with probability p.
func (g *gen) bern(p float64) bool { return g.r.Float64() < p }

// poissonish draws a small non-negative count with the given mean, clamped
// to max (a cheap Poisson stand-in adequate for count attributes).
func (g *gen) poissonish(mean float64, max int) int {
	v := int(math.Round(math.Abs(g.normal(mean, math.Sqrt(mean+0.5)))))
	if v > max {
		v = max
	}
	return v
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ordinalLabels renders 0..n-1 as strings ("0", "1", ...), the encoding
// used for ordinal categorical attributes.
func ordinalLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// mustAddCat panics on AddCategorical failure; generators construct columns
// with statically correct shapes, so a failure is a programming error.
func mustAddCat(t *dataset.Table, name string, values []string) {
	if err := t.AddCategorical(name, values); err != nil {
		panic(err)
	}
}

// mustAddCatCodes panics on AddCategoricalCodes failure.
func mustAddCatCodes(t *dataset.Table, name string, codes []int32, dict []string) {
	if err := t.AddCategoricalCodes(name, codes, dict); err != nil {
		panic(err)
	}
}

// mustAddNum panics on AddNumeric failure.
func mustAddNum(t *dataset.Table, name string, values []float64) {
	if err := t.AddNumeric(name, values); err != nil {
		panic(err)
	}
}
