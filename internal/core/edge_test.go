package core_test

import (
	"testing"

	"rankfair/internal/core"
	"rankfair/internal/pattern"
)

// edgeInput builds a tiny input with explicit rows and an identity ranking.
func edgeInput(t *testing.T, cards []int, rows [][]int32) *core.Input {
	t.Helper()
	names := make([]string, len(cards))
	for i := range names {
		names[i] = "A"
	}
	ranking := make([]int, len(rows))
	for i := range ranking {
		ranking[i] = i
	}
	in := &core.Input{Rows: rows, Space: &pattern.Space{Names: names, Cards: cards}, Ranking: ranking}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSingleAttributeSingleValue(t *testing.T) {
	// One attribute with cardinality 1: the only pattern is {A=0}, which
	// covers everything — never below a bound it can reach.
	in := edgeInput(t, []int{1}, [][]int32{{0}, {0}, {0}})
	res, err := core.GlobalBounds(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 3, Lower: []int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if len(res.At(k)) != 0 {
			t.Errorf("k=%d: %v", k, res.At(k))
		}
	}
	// An unattainable bound flags the pattern at every k.
	res, err = core.GlobalBounds(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 3, Lower: []int{5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if len(res.At(k)) != 1 || res.At(k)[0].NumAttrs() != 1 {
			t.Errorf("k=%d: %v", k, res.At(k))
		}
	}
}

func TestZeroLowerBoundNeverBiased(t *testing.T) {
	in := edgeInput(t, []int{2, 2}, [][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	res, err := core.GlobalBounds(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 4, Lower: []int{0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGroups() != 0 {
		t.Errorf("L=0 should flag nothing, got %d", res.TotalGroups())
	}
}

func TestZeroSizeThreshold(t *testing.T) {
	// τs=0 admits every pattern, including those with no tuples at all.
	in := edgeInput(t, []int{2}, [][]int32{{0}, {0}})
	res, err := core.IterTDGlobal(in, core.GlobalParams{MinSize: 0, KMin: 1, KMax: 1, Lower: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// {A=1} has s_D = 0 and 0 < 1 in the top-1: biased (vacuously).
	found := false
	for _, g := range res.At(1) {
		if g[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("empty-but-admitted pattern missing: %v", res.At(1))
	}
	opt, err := core.GlobalBounds(in, core.GlobalParams{MinSize: 0, KMin: 1, KMax: 1, Lower: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGroups(res.At(1), opt.At(1)) {
		t.Errorf("baseline and optimized disagree at τs=0: %v vs %v", res.At(1), opt.At(1))
	}
}

func TestDuplicateRows(t *testing.T) {
	// All rows identical: every matching pattern has full support.
	rows := make([][]int32, 6)
	for i := range rows {
		rows[i] = []int32{1, 0}
	}
	in := edgeInput(t, []int{2, 2}, rows)
	res, err := core.PropBounds(in, core.PropParams{MinSize: 1, KMin: 2, KMax: 4, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Patterns matching the duplicated row are perfectly represented;
	// patterns matching nothing have s_D = 0 < τs... with τs=1 they are
	// pruned. Nothing is biased.
	if res.TotalGroups() != 0 {
		t.Errorf("duplicated rows: %d groups", res.TotalGroups())
	}
}

func TestKEqualsDatasetSize(t *testing.T) {
	// k = |D|: the top-k is the whole dataset, so representation equals
	// dataset share and proportional bias vanishes for α <= 1.
	in := edgeInput(t, []int{3}, [][]int32{{0}, {1}, {2}, {0}, {1}, {2}})
	res, err := core.PropBounds(in, core.PropParams{MinSize: 1, KMin: 6, KMax: 6, Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.At(6)) != 0 {
		t.Errorf("full prefix cannot be proportionally biased: %v", res.At(6))
	}
}

func TestKMinEqualsOne(t *testing.T) {
	in := edgeInput(t, []int{2, 2}, [][]int32{{0, 0}, {1, 1}, {0, 1}, {1, 0}})
	base, err := core.IterTDGlobal(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 4, Lower: []int{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.GlobalBounds(in, core.GlobalParams{MinSize: 1, KMin: 1, KMax: 4, Lower: []int{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		if !sameGroups(base.At(k), opt.At(k)) {
			t.Errorf("k=%d: %v vs %v", k, base.At(k), opt.At(k))
		}
	}
}

func TestInputValidationErrors(t *testing.T) {
	good := edgeInput(t, []int{2}, [][]int32{{0}, {1}})
	cases := []struct {
		name string
		in   *core.Input
	}{
		{"nil space", &core.Input{Rows: good.Rows, Ranking: good.Ranking}},
		{"no attributes", &core.Input{Rows: [][]int32{{}}, Space: &pattern.Space{}, Ranking: []int{0}}},
		{"name mismatch", &core.Input{Rows: good.Rows, Space: &pattern.Space{Names: []string{"A", "B"}, Cards: []int{2}}, Ranking: good.Ranking}},
		{"zero cardinality", &core.Input{Rows: good.Rows, Space: &pattern.Space{Names: []string{"A"}, Cards: []int{0}}, Ranking: good.Ranking}},
		{"short row", &core.Input{Rows: [][]int32{{0}, {}}, Space: good.Space, Ranking: good.Ranking}},
		{"value out of domain", &core.Input{Rows: [][]int32{{0}, {7}}, Space: good.Space, Ranking: good.Ranking}},
		{"short ranking", &core.Input{Rows: good.Rows, Space: good.Space, Ranking: []int{0}}},
		{"duplicate in ranking", &core.Input{Rows: good.Rows, Space: good.Space, Ranking: []int{0, 0}}},
		{"negative index", &core.Input{Rows: good.Rows, Space: good.Space, Ranking: []int{-1, 1}}},
	}
	for _, c := range cases {
		if err := c.in.Validate(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	var nilIn *core.Input
	if err := nilIn.Validate(); err == nil {
		t.Error("nil input should fail")
	}
}

// TestHighCardinalityAttribute exercises domains larger than two values,
// where Proposition 4.3's sibling argument generalizes.
func TestHighCardinalityAttribute(t *testing.T) {
	rows := make([][]int32, 24)
	for i := range rows {
		rows[i] = []int32{int32(i % 6), int32(i % 2)}
	}
	in := edgeInput(t, []int{6, 2}, rows)
	params := core.GlobalParams{MinSize: 2, KMin: 3, KMax: 12, Lower: core.ConstantBounds(3, 12, 2)}
	base, err := core.IterTDGlobal(in, params)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.GlobalBounds(in, params)
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k <= 12; k++ {
		if !sameGroups(base.At(k), opt.At(k)) {
			t.Errorf("k=%d mismatch", k)
		}
	}
}
