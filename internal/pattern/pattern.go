// Package pattern implements the group-description substrate of the paper:
// patterns (value assignments to attribute subsets, Definition 2.2), the
// pattern graph of Asudeh et al. (ICDE'19), and the spanning search tree of
// Definition 4.1 used by all detection algorithms.
package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// Unbound marks an attribute that a pattern does not constrain.
const Unbound int32 = -1

// Space describes the categorical attribute universe of a dataset: the
// attribute names (ordered; the order defines the search tree of
// Definition 4.1) and per-attribute cardinalities.
type Space struct {
	Names []string
	Cards []int
}

// NumAttrs returns the number of attributes in the space.
func (s *Space) NumAttrs() int { return len(s.Cards) }

// NumPatterns returns the number of non-empty patterns over the space:
// prod(card_i + 1) - 1. It saturates at math.MaxInt64 on overflow.
func (s *Space) NumPatterns() int64 {
	total := int64(1)
	for _, c := range s.Cards {
		next := total * int64(c+1)
		if next/int64(c+1) != total {
			return 1<<63 - 1
		}
		total = next
	}
	return total - 1
}

// Pattern is a value assignment to a subset of attributes: element i is
// either Unbound or a dictionary code of attribute i. A Pattern's length
// always equals the number of attributes in its Space.
type Pattern []int32

// Empty returns the most general pattern (no attribute bound) over n
// attributes.
func Empty(n int) Pattern {
	p := make(Pattern, n)
	for i := range p {
		p[i] = Unbound
	}
	return p
}

// Clone returns an independent copy of p.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// With returns a copy of p with attribute attr bound to val.
func (p Pattern) With(attr int, val int32) Pattern {
	q := p.Clone()
	q[attr] = val
	return q
}

// Without returns a copy of p with attribute attr unbound.
func (p Pattern) Without(attr int) Pattern {
	q := p.Clone()
	q[attr] = Unbound
	return q
}

// NumAttrs returns |Attr(p)|, the number of bound attributes.
func (p Pattern) NumAttrs() int {
	n := 0
	for _, v := range p {
		if v != Unbound {
			n++
		}
	}
	return n
}

// MaxAttrIdx returns idx(Attr(p)): the maximal index of a bound attribute,
// or -1 for the empty pattern.
func (p Pattern) MaxAttrIdx() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != Unbound {
			return i
		}
	}
	return -1
}

// Attrs returns the indices of the bound attributes in increasing order.
func (p Pattern) Attrs() []int {
	var idx []int
	for i, v := range p {
		if v != Unbound {
			idx = append(idx, i)
		}
	}
	return idx
}

// Matches reports whether tuple row satisfies p (Definition 2.2: the tuple
// agrees with every bound attribute).
func (p Pattern) Matches(row []int32) bool {
	for i, v := range p {
		if v != Unbound && row[i] != v {
			return false
		}
	}
	return true
}

// SubsetOf reports whether p ⊆ q as sets of attribute-value pairs, i.e. p
// is equal to or more general than q.
func (p Pattern) SubsetOf(q Pattern) bool {
	for i, v := range p {
		if v != Unbound && q[i] != v {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether p ⊊ q: p is strictly more general than q.
func (p Pattern) ProperSubsetOf(q Pattern) bool {
	proper := false
	for i, v := range p {
		switch {
		case v == Unbound && q[i] != Unbound:
			proper = true
		case v == Unbound:
		case q[i] != v:
			return false
		}
	}
	return proper
}

// Equal reports whether p and q bind the same attributes to the same values.
func (p Pattern) Equal(q Pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Key returns a compact canonical encoding of p, usable as a map key.
func (p Pattern) Key() string {
	var b strings.Builder
	b.Grow(len(p) * 3)
	for i, v := range p {
		if i > 0 {
			b.WriteByte('|')
		}
		if v == Unbound {
			b.WriteByte('*')
		} else {
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	return b.String()
}

// AppendKey appends Key's canonical encoding to dst and returns the
// extended slice — the allocation-free form for callers that key many
// patterns into a shared buffer (byte comparison of appended keys orders
// exactly like string comparison of Key results).
func (p Pattern) AppendKey(dst []byte) []byte {
	for i, v := range p {
		if i > 0 {
			dst = append(dst, '|')
		}
		if v == Unbound {
			dst = append(dst, '*')
		} else {
			dst = strconv.AppendInt(dst, int64(v), 10)
		}
	}
	return dst
}

// ParseKey decodes a pattern previously produced by Key.
func ParseKey(key string) (Pattern, error) {
	parts := strings.Split(key, "|")
	p := make(Pattern, len(parts))
	for i, s := range parts {
		if s == "*" {
			p[i] = Unbound
			continue
		}
		// ParseInt with bitSize 32 rejects values that would silently
		// overflow the int32 code (found by FuzzParseKey).
		v, err := strconv.ParseInt(s, 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("pattern: invalid key segment %q", s)
		}
		p[i] = int32(v)
	}
	return p, nil
}

// Format renders p using the attribute names and dictionaries of a space,
// e.g. "{Gender=F, School=GP}". dicts may be nil, in which case raw codes
// are printed.
func (p Pattern) Format(space *Space, dicts [][]string) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range p {
		if v == Unbound {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(space.Names[i])
		b.WriteByte('=')
		if dicts != nil && i < len(dicts) && int(v) < len(dicts[i]) {
			b.WriteString(dicts[i][v])
		} else {
			b.WriteString(strconv.Itoa(int(v)))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// String implements fmt.Stringer with raw codes, e.g. "{A1=0, A3=2}".
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range p {
		if v == Unbound {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "A%d=%d", i+1, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Children generates the children of p in the search tree of Definition
// 4.1: p extended with a single attribute-value pair whose attribute index
// is strictly greater than MaxAttrIdx(p). The traversal of these children
// from the empty pattern visits every pattern exactly once.
func (p Pattern) Children(space *Space) []Pattern {
	start := p.MaxAttrIdx() + 1
	var kids []Pattern
	for a := start; a < space.NumAttrs(); a++ {
		for v := 0; v < space.Cards[a]; v++ {
			kids = append(kids, p.With(a, int32(v)))
		}
	}
	return kids
}

// GraphParents returns the parents of p in the pattern graph: every pattern
// obtained by unbinding exactly one bound attribute.
func (p Pattern) GraphParents() []Pattern {
	var parents []Pattern
	for i, v := range p {
		if v != Unbound {
			parents = append(parents, p.Without(i))
		}
	}
	return parents
}

// TreeParent returns the unique parent of p in the search tree (unbinding
// the maximal bound attribute), or nil for the empty pattern.
func (p Pattern) TreeParent() Pattern {
	m := p.MaxAttrIdx()
	if m < 0 {
		return nil
	}
	return p.Without(m)
}

// Count returns s_D(p): the number of rows matching p.
func (p Pattern) Count(rows [][]int32) int {
	n := 0
	for _, r := range rows {
		if p.Matches(r) {
			n++
		}
	}
	return n
}

// CountTopK returns s_{R_k(D)}(p): the number of tuples among the top k of
// ranking (a permutation of row indices, best first) that match p.
func (p Pattern) CountTopK(rows [][]int32, ranking []int, k int) int {
	if k > len(ranking) {
		k = len(ranking)
	}
	n := 0
	for _, ri := range ranking[:k] {
		if p.Matches(rows[ri]) {
			n++
		}
	}
	return n
}
