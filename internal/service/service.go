package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"rankfair"
	"rankfair/internal/fault"
	"rankfair/internal/obs"
	"rankfair/internal/store"
)

// Config sizes the service's pools and caches. The zero value selects
// defaults suitable for an interactive daemon.
type Config struct {
	// Workers is the audit worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-job queue; <= 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache; <= 0 means 128.
	CacheEntries int
	// MaxDatasets bounds the registry; <= 0 means 64.
	MaxDatasets int
	// MaxUploadBytes bounds one CSV upload; <= 0 means 32 MiB.
	MaxUploadBytes int64
	// AuditWorkers is the per-audit lattice fan-out substituted when a
	// request leaves params.workers at 0; <= 0 means 1 (serial). It is
	// independent of Workers, which sizes the pool of concurrent audits.
	AuditWorkers int
	// AnalystCacheEntries bounds the built-Analyst cache, keyed by
	// (dataset content hash, ranker key): a hit skips re-ranking the
	// dataset and reuses the rank-indexed counting engine hanging off the
	// analyst, so cache-miss audits sharing a ranker pay only the lattice
	// search. 0 means 32; negative disables the cache (every request
	// builds a fresh analyst — the pre-reuse behavior, kept for
	// benchmarking true cold audits).
	AnalystCacheEntries int
	// StreamRebuildFraction is the append cost model's cut-over: a batch
	// of b rows against an n-row dataset takes the incremental path
	// (ranking merge-insert, copy-on-write posting maintenance, warm
	// analyst promotion) when b < fraction·n, and the full-rebuild path
	// otherwise. 0 selects stream.DefaultRebuildFraction; negative
	// disables the incremental path entirely (every append rebuilds).
	StreamRebuildFraction float64
	// Logger receives structured request and job logs (requests and job
	// completions at debug level, slow audits at warn). Nil selects
	// slog.Default(), whose default info level keeps the routine records
	// quiet.
	Logger *slog.Logger
	// SlowAudit is the warn-level threshold for audit run time; a job that
	// runs at least this long logs its full span tree. 0 disables slow
	// logging.
	SlowAudit time.Duration
	// TraceEntries bounds the finished-trace ring behind
	// GET /v1/audits/{id}/trace; <= 0 means 256.
	TraceEntries int
	// DataDir roots the durable content-addressed store. Empty keeps the
	// service fully in-memory (the pre-PR-7 behavior); set, every accepted
	// upload and append is made durable before it is acknowledged, and a
	// restarted service pages datasets back in by replaying their
	// persisted append chains through the incremental ingestion path.
	DataDir string
	// PersistCache additionally persists every computed audit result under
	// its (dataset hash | ranker | params) cache key and reloads the set on
	// boot, so repeated audits survive restarts without re-searching.
	// Ignored when DataDir is empty.
	PersistCache bool
	// AuditDeadline is the default per-audit time budget applied when a
	// request carries none (no deadline_ms field, no X-Deadline-Ms
	// header). 0 means unbounded.
	AuditDeadline time.Duration
	// MaxDeadline clamps every audit budget, requested or default; 0
	// means 5 minutes.
	MaxDeadline time.Duration
	// QueueWaitBudget sheds jobs without an explicit deadline whose queue
	// wait exceeds it (CoDel-style admission at the worker pool): a job
	// that waited this long is served a fast 503-shaped failure instead
	// of burning a worker on an answer nobody is still polling for.
	// 0 disables queue-wait shedding.
	QueueWaitBudget time.Duration
	// MaxInflight caps concurrently served HTTP requests. Heavier request
	// classes shed earlier: audits at 3/4 of the cap, appends at 7/8,
	// reads at the full cap; /healthz and /metrics are exempt. 0 means
	// 256; negative disables admission control.
	MaxInflight int
	// StoreRetries bounds in-place retries of transient durable-store
	// errors (attempts beyond the first). 0 means 2; negative disables.
	StoreRetries int
	// StoreBackoff is the base of the jittered exponential backoff
	// between store retries; 0 means 5ms.
	StoreBackoff time.Duration
	// BreakerThreshold is the consecutive-infra-failure count that opens
	// the store circuit breaker. 0 means 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// a half-open probe write; 0 means 5s.
	BreakerCooldown time.Duration
	// StoreFS overrides the durable store's filesystem seam — the
	// fault-injection hook behind -fault-store. Nil means the real OS.
	StoreFS fault.FS
	// OTLPEndpoint, when set, ships finished audit span trees and
	// periodic metric snapshots to an OTLP/HTTP collector at
	// <endpoint>/v1/traces and /v1/metrics. Export is strictly
	// best-effort: the enqueue is non-blocking and drops (counted by
	// rankfaird_otlp_dropped_total) rather than ever stalling an audit.
	// Empty disables export entirely.
	OTLPEndpoint string
	// OTLPInterval is the metric snapshot export period; 0 means 15s.
	OTLPInterval time.Duration
	// OTLPQueue bounds the exporter's pending-trace queue; 0 means 256.
	OTLPQueue int
	// AuditLog, when set, receives one wide-event record per terminal
	// audit (correlation IDs, dataset coordinates, phase durations,
	// search stats, outcome) independent of Logger's level filtering.
	AuditLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxDatasets <= 0 {
		c.MaxDatasets = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.AuditWorkers <= 0 {
		c.AuditWorkers = 1
	}
	// Clamp rather than error: the substituted default bypasses the
	// request-level Validate (which ran with workers=0), so an oversized
	// operator setting would otherwise fail every audit at run time.
	if c.AuditWorkers > rankfair.MaxWorkers {
		c.AuditWorkers = rankfair.MaxWorkers
	}
	if c.AnalystCacheEntries == 0 {
		c.AnalystCacheEntries = 32
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.StoreRetries == 0 {
		c.StoreRetries = 2
	}
	if c.StoreBackoff <= 0 {
		c.StoreBackoff = 5 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.StoreFS == nil {
		c.StoreFS = fault.OS{}
	}
	return c
}

// Service is the audit engine behind cmd/rankfaird: a dataset registry, a
// job manager, and a result cache, plus request counters for /metrics.
type Service struct {
	cfg      Config
	registry *Registry
	cache    *Cache
	analysts *Cache // nil when Config.AnalystCacheEntries < 0
	jobs     *Manager
	metrics  *metrics
	obs      *obsState
	logger   *slog.Logger

	// store is the durable tier; nil when Config.DataDir is empty.
	// loads deduplicates concurrent page-ins of the same dataset.
	store  *store.Store
	loadMu sync.Mutex
	loads  map[string]*loadFlight

	// breaker gates durable-store writes (nil when disabled: every
	// breaker method is nil-safe). admission is the HTTP inflight cap
	// (nil when disabled).
	breaker   *breaker
	admission *admissionState

	// exporter ships traces and metric snapshots over OTLP/HTTP; nil
	// when Config.OTLPEndpoint is empty.
	exporter *obs.Exporter
}

// New builds a started service; callers must Shutdown it. The only error
// source is opening the durable store (Config.DataDir), so a fully
// in-memory configuration never fails.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatasets),
		cache:    NewCache(cfg.CacheEntries),
		jobs:     NewManager(cfg.Workers, cfg.QueueDepth),
		metrics:  &metrics{},
		loads:    make(map[string]*loadFlight),
	}
	if cfg.AnalystCacheEntries > 0 {
		s.analysts = NewCache(cfg.AnalystCacheEntries)
		// Without this hook, analysts for registry-evicted datasets would
		// pin their materialized rows + counting index until the analyst
		// LRU pushed them out, defeating the MaxDatasets memory bound.
		// Result-cache entries survive by design (small JSON, validity
		// pinned by the content hash), analysts do not.
		s.registry.SetEvictHook(func(info DatasetInfo) {
			s.analysts.RemovePrefix(analystKeyPrefix(info.Hash))
		})
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	// The breaker must exist before newObsState: the breaker-state gauge
	// registered there reads it at scrape time.
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.MaxInflight > 0 {
		s.admission = newAdmissionState(cfg.MaxInflight)
	}
	s.jobs.SetQueueWaitBudget(cfg.QueueWaitBudget)
	s.obs = newObsState(s, cfg.TraceEntries)
	if s.breaker != nil {
		s.breaker.onTransition = func(to string) {
			s.obs.breakerTransitions.With(to).Inc()
			s.logger.Warn("store circuit breaker transition", "state", to)
		}
	}
	if cfg.OTLPEndpoint != "" {
		s.exporter = obs.NewExporter(obs.ExporterConfig{
			Endpoint:  cfg.OTLPEndpoint,
			Registry:  s.obs.reg,
			Interval:  cfg.OTLPInterval,
			QueueSize: cfg.OTLPQueue,
			Logger:    s.logger,
			Counters: obs.ExporterCounters{
				Dropped:    s.obs.otlpDropped,
				Retries:    s.obs.otlpRetries,
				Exports:    s.obs.otlpExports,
				Failures:   s.obs.otlpFailures,
				QueueDepth: s.obs.otlpQueueDepth,
			},
		})
	}
	observer := &JobObserver{
		QueueWait: s.obs.queueWait,
		Run:       s.obs.runLatency,
		Traces:    s.obs.traces,
		AuditLog:  cfg.AuditLog,
		Logger:    s.logger,
		SlowAudit: cfg.SlowAudit,
	}
	if s.exporter != nil {
		observer.Export = func(tr *obs.Trace) { s.exporter.EnqueueTrace(tr) }
	}
	s.jobs.SetObserver(observer)
	if cfg.DataDir != "" {
		st, err := store.OpenFS(cfg.DataDir, cfg.StoreFS)
		if err != nil {
			s.jobs.Shutdown(context.Background())
			return nil, err
		}
		s.store = st
		if cfg.PersistCache {
			s.loadPersistedResults()
		}
		s.logger.Info("durable store open",
			"dir", cfg.DataDir, "datasets", st.Len(), "persist_cache", cfg.PersistCache)
	}
	return s, nil
}

// Registry exposes the dataset registry.
func (s *Service) Registry() *Registry { return s.registry }

// Cache exposes the result cache.
func (s *Service) Cache() *Cache { return s.cache }

// Jobs exposes the job manager.
func (s *Service) Jobs() *Manager { return s.jobs }

// Shutdown cancels outstanding jobs, waits for workers to drain, and
// releases the durable store's manifest handle. Every store mutation is
// fsync'd at write time, so shutdown performs no flushing — an abrupt
// kill loses nothing that was acknowledged.
func (s *Service) Shutdown(ctx context.Context) error {
	err := s.jobs.Shutdown(ctx)
	if s.exporter != nil {
		// After jobs drain, so the final batch carries every trace the
		// terminal transitions enqueued.
		err = errors.Join(err, s.exporter.Close(ctx))
	}
	if s.store != nil {
		err = errors.Join(err, s.store.Close())
	}
	return err
}

// RankerSpec is the wire description of the black-box ranker an audit
// binds to its dataset: either numeric sort keys or an explicit
// permutation. The zero value is invalid.
type RankerSpec struct {
	// Columns ranks lexicographically by numeric sort keys (rank.ByColumns).
	Columns []ColumnKeySpec `json:"columns,omitempty"`
	// Ranking supplies an externally produced permutation of row indices,
	// best first (rank.Fixed).
	Ranking []int `json:"ranking,omitempty"`
}

// ColumnKeySpec is one sort key of RankerSpec.Columns.
type ColumnKeySpec struct {
	Column     string `json:"column"`
	Descending bool   `json:"descending"`
}

// Build materializes the ranker.
func (r *RankerSpec) Build() (rankfair.Ranker, error) {
	switch {
	case len(r.Columns) > 0 && len(r.Ranking) > 0:
		return nil, fmt.Errorf("service: ranker: set columns or ranking, not both")
	case len(r.Columns) > 0:
		keys := make([]rankfair.ColumnKey, len(r.Columns))
		for i, c := range r.Columns {
			if c.Column == "" {
				return nil, fmt.Errorf("service: ranker: column %d has no name", i)
			}
			keys[i] = rankfair.ColumnKey{Column: c.Column, Descending: c.Descending}
		}
		return &rankfair.ByColumns{Keys: keys}, nil
	case len(r.Ranking) > 0:
		return &rankfair.Fixed{Perm: r.Ranking}, nil
	default:
		return nil, fmt.Errorf("service: ranker: need columns or ranking")
	}
}

// CacheKey renders the spec canonically for result-cache keys. Explicit
// permutations are content-hashed so the key stays short.
func (r *RankerSpec) CacheKey() string {
	var b strings.Builder
	if len(r.Ranking) > 0 {
		b.WriteString("perm:")
		raw := make([]byte, 0, len(r.Ranking)*4)
		for _, v := range r.Ranking {
			raw = strconv.AppendInt(raw, int64(v), 10)
			raw = append(raw, ',')
		}
		b.WriteString(HashCSV(raw)[:16])
		return b.String()
	}
	b.WriteString("cols:")
	for _, c := range r.Columns {
		// Length-prefix the name so column names containing the
		// delimiters cannot collide with a different key list.
		fmt.Fprintf(&b, "%d:%s:%t;", len(c.Column), c.Column, c.Descending)
	}
	return b.String()
}

// AuditRequest is the POST /v1/audits body.
type AuditRequest struct {
	// Dataset is the registry ID of an uploaded dataset.
	Dataset string `json:"dataset"`
	// Ranker binds the black-box ranking algorithm.
	Ranker RankerSpec `json:"ranker"`
	// Params selects the measure and its thresholds.
	Params rankfair.AuditParams `json:"params"`
	// DeadlineMS is the audit's time budget in milliseconds, measured
	// from submission (queue wait included). The X-Deadline-Ms request
	// header sets it when the body leaves it 0. Clamped to
	// Config.MaxDeadline; 0 falls back to Config.AuditDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SubmitAudit validates an audit request and queues it on the worker
// pool. Identical requests against identical data share one computation
// through the result cache.
func (s *Service) SubmitAudit(req AuditRequest) (JobView, error) {
	return s.SubmitAuditCtx(context.Background(), req)
}

// SubmitAuditCtx is SubmitAudit carrying the submitting request's
// context: the trace identity the HTTP layer parsed from traceparent (or
// derived from the request ID) rides into the job's metadata, so the
// exported root span joins the caller's distributed trace and the
// wide-event audit record carries the correlation IDs. The context is
// read for identity only — it does not bound the job, whose lifetime is
// governed by its deadline budget.
func (s *Service) SubmitAuditCtx(ctx context.Context, req AuditRequest) (JobView, error) {
	table, info, ok := s.getDataset(req.Dataset)
	if !ok {
		return JobView{}, &NotFoundError{Resource: "dataset", ID: req.Dataset}
	}
	if err := req.Params.Validate(); err != nil {
		return JobView{}, &BadRequestError{Err: err}
	}
	if req.Params.KMax > info.Rows {
		return JobView{}, &BadRequestError{Err: fmt.Errorf("kmax=%d exceeds dataset size %d", req.Params.KMax, info.Rows)}
	}
	ranker, err := req.Ranker.Build()
	if err != nil {
		return JobView{}, &BadRequestError{Err: err}
	}
	if req.DeadlineMS < 0 {
		return JobView{}, &BadRequestError{Err: fmt.Errorf("deadline_ms must be >= 0, got %d", req.DeadlineMS)}
	}
	budget := time.Duration(req.DeadlineMS) * time.Millisecond
	if budget == 0 {
		budget = s.cfg.AuditDeadline
	}
	if budget > s.cfg.MaxDeadline {
		budget = s.cfg.MaxDeadline
	}

	// The cache key ignores Workers (fan-out never changes results), so
	// audits differing only in worker count still share one computation.
	key := info.Hash + "|" + req.Ranker.CacheKey() + "|" + req.Params.CacheKey()
	params := req.Params
	if params.Workers == 0 {
		params.Workers = s.cfg.AuditWorkers
	}
	// The analyst key is (dataset content hash, ranker key): the built
	// analyst depends on nothing else, so cache-miss audits that share a
	// ranker skip re-ranking the dataset and reuse the rank-indexed
	// counting engine already hanging off the cached analyst.
	analystKey := analystCacheKey(info.Hash, &req.Ranker)
	run := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		for {
			val, hit, err := s.cache.Do(ctx, key, func() (any, error) {
				// Phase spans land on the computing job's trace; audits that
				// join this flight show a bare run span, which is accurate —
				// they did no phase work. Note the report itself stays free
				// of wall-clock fields: cached entries are shared across
				// requests and byte-compared against independently computed
				// reports (append-vs-fresh-upload equivalence), so timings
				// belong on the trace, not in the report.
				actx, sp := obs.StartSpan(ctx, "analyst")
				analyst, err := s.analystFor(actx, analystKey, table, ranker)
				sp.Finish()
				if err != nil {
					return nil, err
				}
				// The job's context flows into the lattice search, so a
				// canceled job stops mid-traversal instead of completing
				// a doomed audit and discarding it.
				_, sp = obs.StartSpan(ctx, "search")
				report, err := analyst.DetectCtx(ctx, params)
				sp.Finish()
				if err != nil {
					return nil, err
				}
				_, sp = obs.StartSpan(ctx, "serialize")
				rj := report.ToJSON()
				sp.Finish()
				// Aggregate inside the compute function only: cache hits
				// re-serve the same search, and counting it again would
				// overstate the lattice work the daemon actually did.
				s.recordSearch(rj.Stats)
				// Same placement for durability: only computed results are
				// persisted, under the same key, so a restarted daemon
				// re-serves them without re-searching.
				s.persistResult(key, rj)
				return rj, nil
			})
			if err != nil {
				// A canceled compute owner hands its error to every job
				// that joined its flight: a CanceledError from the lattice
				// search, or a plain context error when the owner was
				// canceled while waiting on the analyst-cache flight
				// inside its closure. If *this* job is still live, the
				// cancellation belonged to someone else: retry, electing
				// ourselves the new compute owner.
				var cerr *rankfair.CanceledError
				canceledShape := errors.As(err, &cerr) ||
					errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
				if canceledShape && ctx.Err() == nil {
					continue
				}
				return nil, false, err
			}
			return val.(*rankfair.ReportJSON), hit, nil
		}
	}
	id := traceIdentityFrom(ctx)
	view, err := s.jobs.Submit(req.Dataset, params, run, WithBudget(budget), WithMeta(JobMeta{
		RequestID:      id.RequestID,
		TraceID:        id.TraceID,
		ParentSpan:     id.ParentSpan,
		DatasetHash:    info.Hash,
		DatasetVersion: info.Version,
	}))
	if err != nil {
		return JobView{}, err
	}
	return view, nil
}

// RepairRequest is the POST /v1/repair body: a constrained top-k
// selection over one protected attribute (Analyst.RepairTopK).
type RepairRequest struct {
	Dataset string     `json:"dataset"`
	Ranker  RankerSpec `json:"ranker"`
	// Attr is the protected categorical attribute.
	Attr string `json:"attr"`
	// K is the selection size.
	K int `json:"k"`
	// Constraints maps the attribute's value labels to count bounds;
	// absent values are unconstrained.
	Constraints map[string]rankfair.FairTopKConstraint `json:"constraints"`
}

// RepairResponse is the repaired prefix, best first.
type RepairResponse struct {
	Dataset  string `json:"dataset"`
	Attr     string `json:"attr"`
	K        int    `json:"k"`
	Selected []int  `json:"selected"`
}

// Repair runs the constrained top-k selection synchronously (it is a
// greedy pass over the ranking, cheap next to a lattice search). ctx
// bounds any wait on an in-flight analyst build for the same
// (dataset, ranker).
func (s *Service) Repair(ctx context.Context, req RepairRequest) (*RepairResponse, error) {
	analyst, err := s.bindAnalyst(ctx, req.Dataset, req.Ranker)
	if err != nil {
		return nil, err
	}
	selected, err := analyst.RepairTopK(req.Attr, req.K, req.Constraints)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	return &RepairResponse{Dataset: req.Dataset, Attr: req.Attr, K: req.K, Selected: selected}, nil
}

// ExplainRequest is the POST /v1/explain body: the Section V Shapley
// pipeline for one detected group.
type ExplainRequest struct {
	Dataset string     `json:"dataset"`
	Ranker  RankerSpec `json:"ranker"`
	// Group binds attributes to value labels, e.g. {"sex": "F"}.
	// Alternatively Key supplies a canonical pattern key from a report.
	Group map[string]string `json:"group,omitempty"`
	Key   string            `json:"key,omitempty"`
	// K is the prefix length the group was detected at.
	K int `json:"k"`
	// Options tunes the pipeline; the zero value uses library defaults.
	Options rankfair.ExplainOptions `json:"options"`
}

// ExplainResponse pairs the explanation with the rendered group.
type ExplainResponse struct {
	Dataset string `json:"dataset"`
	Group   string `json:"group"`
	K       int    `json:"k"`
	*rankfair.Explanation
}

// Explain runs the explanation pipeline synchronously; ctx bounds any
// wait on an in-flight analyst build.
func (s *Service) Explain(ctx context.Context, req ExplainRequest) (*ExplainResponse, error) {
	analyst, err := s.bindAnalyst(ctx, req.Dataset, req.Ranker)
	if err != nil {
		return nil, err
	}
	var p rankfair.Pattern
	switch {
	case req.Key != "" && len(req.Group) > 0:
		return nil, &BadRequestError{Err: fmt.Errorf("set group or key, not both")}
	case req.Key != "":
		p, err = analyst.ParseGroupKey(req.Key)
		if err != nil {
			return nil, &BadRequestError{Err: err}
		}
	case len(req.Group) > 0:
		p = analyst.EmptyPattern()
		for attr, label := range req.Group {
			p, err = analyst.Bind(p, attr, label)
			if err != nil {
				return nil, &BadRequestError{Err: err}
			}
		}
	default:
		return nil, &BadRequestError{Err: fmt.Errorf("need group or key")}
	}
	exp, err := analyst.Explain(p, req.K, req.Options)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	return &ExplainResponse{
		Dataset:     req.Dataset,
		Group:       analyst.Format(p),
		K:           req.K,
		Explanation: exp,
	}, nil
}

// bindAnalyst resolves a dataset and builds (or reuses) an analyst over
// it; ctx (the caller's request context) bounds a wait on another
// request's in-flight build, so a disconnected client does not leave a
// handler goroutine blocked behind a slow build it no longer wants.
func (s *Service) bindAnalyst(ctx context.Context, datasetID string, spec RankerSpec) (*rankfair.Analyst, error) {
	table, info, ok := s.getDataset(datasetID)
	if !ok {
		return nil, &NotFoundError{Resource: "dataset", ID: datasetID}
	}
	ranker, err := spec.Build()
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	analyst, err := s.analystFor(ctx, analystCacheKey(info.Hash, &spec), table, ranker)
	if err != nil {
		// A canceled wait on an in-flight build is the caller hanging up,
		// not bad input — don't misclassify it as a 400.
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, &BadRequestError{Err: err}
	}
	return analyst, nil
}

// analystKeyPrefix is the analyst-cache key prefix covering every ranker
// over one dataset; the registry evict hook purges by it, so the key
// scheme must only ever change here and in analystCacheKey together.
func analystKeyPrefix(hash string) string { return hash + "|" }

// analystCacheKey addresses one built analyst: the dataset content hash
// plus the ranker's canonical key.
func analystCacheKey(hash string, spec *RankerSpec) string {
	return analystKeyPrefix(hash) + spec.CacheKey()
}

// analystEntry is what the analyst cache stores: the built analyst plus
// the ranker it was built with. Keeping the ranker is what enables the
// streaming append path to warm-promote a cached analyst to the next
// dataset generation (Analyst.Append needs the ranker to place the new
// rows) instead of merely invalidating it.
type analystEntry struct {
	analyst *rankfair.Analyst
	ranker  rankfair.Ranker
}

// analystFor returns the built analyst for (dataset hash, ranker key),
// going through the analyst cache when it is enabled. The analyst — and
// the counting index that builds lazily on it — is immutable, so sharing
// one instance across concurrent audits, repairs and explanations is safe.
// Cached analysts are admitted pre-warmed (Analyst.Warm builds the rank
// index inside the singleflight), so every audit they serve — including
// the admitting one — runs its lattice search in rank space over the
// posting lists with zero setup scans.
func (s *Service) analystFor(ctx context.Context, key string, table *rankfair.Dataset, ranker rankfair.Ranker) (*rankfair.Analyst, error) {
	if s.analysts == nil {
		return rankfair.New(table, ranker)
	}
	val, _, err := s.analysts.Do(ctx, key, func() (any, error) {
		_, sp := obs.StartSpan(ctx, "rank")
		a, err := rankfair.New(table, ranker)
		sp.Finish()
		if err != nil {
			return nil, err
		}
		_, sp = obs.StartSpan(ctx, "index")
		a.Warm()
		sp.Finish()
		return &analystEntry{analyst: a, ranker: ranker}, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*analystEntry).analyst, nil
}

// recordSearch folds one computed audit's search statistics into the
// fleet-level counters on /metrics. Called from the cache compute path
// only, so the aggregates count lattice work performed, not responses
// served.
func (s *Service) recordSearch(st *rankfair.SearchStatsJSON) {
	if st == nil || s.obs == nil {
		return
	}
	o := s.obs
	o.searchRuns.With(st.Strategy).Inc()
	o.searchStrategy.With(st.Strategy).Inc()
	o.searchExpanded.Add(st.NodesExpanded)
	o.searchPruned.With("size").Add(st.PrunedSize)
	o.searchPruned.With("bound").Add(st.PrunedBound)
	o.searchPruned.With("dominated").Add(st.PrunedDominated)
	o.searchIntersections.Add(st.PostingIntersections)
	o.searchBitmapPasses.Add(st.BitmapPasses)
	o.searchSlicePasses.Add(st.SlicePasses)
	o.searchCountOnly.Add(st.CountOnlyPasses)
	o.searchLazy.Add(st.LazyScatters)
}

// storeStats snapshots the durable store's counters; the zero value is
// returned when no store is configured, so the metric families scrape as
// constant zeros instead of being conditionally absent.
func (s *Service) storeStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// AnalystCacheStats snapshots the analyst-cache counters; the zero value
// is returned when the cache is disabled.
func (s *Service) AnalystCacheStats() CacheStats {
	if s.analysts == nil {
		return CacheStats{}
	}
	return s.analysts.Stats()
}

// NotFoundError marks a missing resource; handlers map it to 404.
type NotFoundError struct {
	Resource string
	ID       string
}

func (e *NotFoundError) Error() string { return fmt.Sprintf("no %s %q", e.Resource, e.ID) }

// BadRequestError marks an invalid request; handlers map it to 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// StorageError marks a durable-store failure on a write the service could
// not acknowledge without; handlers map it to 500 with code
// "storage_error" so clients can tell a retryable infrastructure fault
// from bad input.
type StorageError struct{ Err error }

func (e *StorageError) Error() string { return "storage: " + e.Err.Error() }
func (e *StorageError) Unwrap() error { return e.Err }
