package core

import (
	"context"

	"rankfair/internal/pattern"
)

// Section III sketches two further report semantics beyond the ones the
// paper's body develops ("our solutions can be adjusted to support such
// problem definition (and other definitions such as most general for upper
// bound, and the most specific for lower bound)"). This file implements
// both for the global measure.
//
// Their structure follows from count monotonicity (specializing a pattern
// never increases its count):
//
//   - exceeding an upper bound is downward closed, so the most *general*
//     exceeding patterns bind a single attribute;
//   - falling below a lower bound is upward closed among substantial
//     patterns, so a below pattern is most *specific* exactly when none of
//     its pattern-graph children clears the size threshold.

// IterTDGlobalUpperMostGeneral reports, for each k, the most general
// patterns with size >= τs whose top-k count exceeds U_k. Because every
// subset of an exceeding pattern also exceeds, the result consists of
// single-attribute patterns; the function computes it generically (collect
// the downward-closed candidate set, filter to its most general members) so
// it stays correct for any future measure plugged into the same skeleton.
func IterTDGlobalUpperMostGeneral(in *Input, params GlobalUpperParams) (*Result, error) {
	return IterTDGlobalUpperMostGeneralCtx(context.Background(), in, params, 1)
}

// IterTDGlobalUpperMostGeneralCtx is IterTDGlobalUpperMostGeneral with
// cancellation and per-k fan-out (see IterTDGlobalCtx).
func IterTDGlobalUpperMostGeneralCtx(ctx context.Context, in *Input, params GlobalUpperParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		u := params.Upper[k-params.KMin]
		cands := collectExceeding(cn, eng, params.MinSize, k, st, ss, func(sD, cnt int) (candidate, descend bool) {
			c := cnt > u
			return c, c
		})
		groups := pattern.MostGeneral(cands)
		sortPatterns(groups)
		return groups
	})
}

// IterTDGlobalLowerMostSpecific reports, for each k, the most specific
// substantial patterns whose top-k count falls below L_k: below patterns p
// with s_D(p) >= τs none of whose pattern-graph children is substantial
// (any substantial child is automatically below as well, by count
// monotonicity, so it would always dominate p).
func IterTDGlobalLowerMostSpecific(in *Input, params GlobalParams) (*Result, error) {
	return IterTDGlobalLowerMostSpecificCtx(context.Background(), in, params, 1)
}

// IterTDGlobalLowerMostSpecificCtx is IterTDGlobalLowerMostSpecific with
// cancellation and per-k fan-out (see IterTDGlobalCtx).
func IterTDGlobalLowerMostSpecificCtx(ctx context.Context, in *Input, params GlobalParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		l := params.lowerAt(k)
		// Traverse every substantial pattern: below-ness is not prunable
		// top-down (an above-bound parent can have below children), so
		// only the size threshold prunes.
		substantial := make(map[string]bool)
		var below []Pattern
		st.FullSearches++
		q := eng.newBFS(k)
		defer q.close()
		for q.more() {
			if cn.stopped() {
				return nil
			}
			u := q.pop()
			st.NodesExamined++
			if len(u.m.all) < params.MinSize {
				ss.prunedSize()
				continue
			}
			p := q.pat(&u)
			substantial[p.Key()] = true
			if eng.topCount(u.m, k) < l {
				ss.frontier(p)
				below = append(below, p)
			}
			ss.expanded()
			q.expand(&u, p)
		}
		var groups []Pattern
		for _, p := range below {
			if !hasSubstantialChild(in.Space, p, substantial) {
				groups = append(groups, p)
			}
		}
		sortPatterns(groups)
		return groups
	})
}

// hasSubstantialChild reports whether any pattern-graph child of p (one
// extra attribute-value pair, any attribute) is in the substantial set.
func hasSubstantialChild(space *pattern.Space, p Pattern, substantial map[string]bool) bool {
	for a := 0; a < space.NumAttrs(); a++ {
		if p[a] != pattern.Unbound {
			continue
		}
		for v := 0; v < space.Cards[a]; v++ {
			if substantial[p.With(a, int32(v)).Key()] {
				return true
			}
		}
	}
	return false
}
