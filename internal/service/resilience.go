package service

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"syscall"
	"time"

	"rankfair/internal/store"
)

// UnavailableError marks a request refused for capacity or store-health
// reasons; handlers map it to 503 with the embedded code and a
// Retry-After header derived from RetryAfter.
type UnavailableError struct {
	Code       string
	RetryAfter time.Duration
	Err        error
}

func (e *UnavailableError) Error() string { return e.Err.Error() }
func (e *UnavailableError) Unwrap() error { return e.Err }

// Breaker states, in escalation order as exposed by
// rankfaird_store_breaker_state: 0 closed (healthy), 1 half-open
// (probing), 2 open (shedding writes).
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

func breakerStateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a three-state circuit breaker over durable-store writes.
// Consecutive infrastructure failures open it; while open, writes are
// rejected without touching the disk (a dying disk fails fast instead of
// stalling every append on its timeout). After a cooldown one probe
// write is admitted half-open: success closes the breaker, failure
// re-opens it for another cooldown. Reads are never gated — degraded
// mode keeps serving what is cached or already durable.
type breaker struct {
	mu        sync.Mutex
	state     int
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool

	// now is injectable for deterministic cooldown tests.
	now func() time.Time
	// onTransition observes state changes ("open", "half-open", "closed")
	// for the transition counter and log stream. Called outside mu? No —
	// called under mu; keep the hook non-reentrant.
	onTransition func(to string)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State returns the current state constant (a nil breaker is closed).
func (b *breaker) State() int {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		// Cooldown elapsed but no write has probed yet; report half-open
		// so health checks see the recovery window, not a stale open.
		return breakerHalfOpen
	}
	return b.state
}

// Allow reports whether a write may proceed. Every true return must be
// paired with exactly one Report call.
func (b *breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds one write outcome back. Only infrastructure failures
// (store.IOError) should be reported as failed — logical rejections
// prove the disk works.
func (b *breaker) Report(failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.state == breakerHalfOpen
	if wasProbe {
		b.probing = false
	}
	if failed {
		switch b.state {
		case breakerHalfOpen:
			b.openLocked()
		case breakerClosed:
			b.failures++
			if b.failures >= b.threshold {
				b.openLocked()
			}
		}
		return
	}
	b.failures = 0
	if wasProbe {
		b.setStateLocked(breakerClosed)
	}
}

func (b *breaker) openLocked() {
	b.openedAt = b.now()
	b.failures = 0
	b.setStateLocked(breakerOpen)
}

func (b *breaker) setStateLocked(state int) {
	if b.state == state {
		return
	}
	b.state = state
	if b.onTransition != nil {
		b.onTransition(breakerStateName(state))
	}
}

// RetryAfter estimates when a rejected write is worth retrying: the
// remaining cooldown, floored at one second.
func (b *breaker) RetryAfter() time.Duration {
	if b == nil {
		return time.Second
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return time.Second
	}
	remain := b.cooldown - b.now().Sub(b.openedAt)
	if remain < time.Second {
		return time.Second
	}
	return remain
}

// isTransient reports whether an error is worth retrying in place: an
// error chain exposing Transient() (the fault package's mark) decides
// directly; otherwise the interrupted/again errnos qualify.
func isTransient(err error) bool {
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// isInfraError reports whether a store failure was the filesystem's
// fault (counts against the breaker) rather than a logical rejection.
func isInfraError(err error) bool {
	var ioe *store.IOError
	return errors.As(err, &ioe)
}

// storeWrite runs one durable-store write under the resilience policy:
// breaker gate, bounded retry with jittered exponential backoff on
// transient errors, then outcome reporting. The returned error is the
// store's own (so callers keep their NotFound/StorageError mapping),
// except when the breaker rejects outright — that is an UnavailableError
// carrying code store_unavailable and a Retry-After hint.
func (s *Service) storeWrite(op string, fn func() error) error {
	if !s.breaker.Allow() {
		if s.obs != nil {
			s.obs.storeRejected.Inc()
		}
		return &UnavailableError{
			Code:       CodeStoreUnavailable,
			RetryAfter: s.breaker.RetryAfter(),
			Err:        fmt.Errorf("durable store unavailable (circuit breaker open, %s rejected)", op),
		}
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || attempt >= s.storeRetries() || !isTransient(err) {
			break
		}
		if s.obs != nil {
			s.obs.storeRetries.Inc()
		}
		sleepBackoff(s.cfg.StoreBackoff, attempt)
	}
	failed := err != nil && isInfraError(err)
	s.breaker.Report(failed)
	if failed {
		s.logger.Warn("durable store write failed", "op", op, "err", err)
	}
	return err
}

// storeBlob reads one blob under the same bounded transient retry as
// writes but with no breaker gate: reads are what degraded mode keeps
// serving, so an open breaker must not shed them.
func (s *Service) storeBlob(hash string) ([]byte, error) {
	var raw []byte
	var err error
	for attempt := 0; ; attempt++ {
		raw, err = s.store.Blob(hash)
		if err == nil || attempt >= s.storeRetries() || !isTransient(err) {
			return raw, err
		}
		if s.obs != nil {
			s.obs.storeRetries.Inc()
		}
		sleepBackoff(s.cfg.StoreBackoff, attempt)
	}
}

// storageErr shapes a store failure for the HTTP layer: breaker
// rejections keep their UnavailableError identity (503 with Retry-After)
// while everything else becomes a StorageError (500).
func storageErr(err error) error {
	var ue *UnavailableError
	if errors.As(err, &ue) {
		return err
	}
	return &StorageError{Err: err}
}

// storeRetries is the bounded retry count for transient store errors
// (attempts beyond the first); Config.StoreRetries < 0 disables.
func (s *Service) storeRetries() int {
	if s.cfg.StoreRetries < 0 {
		return 0
	}
	return s.cfg.StoreRetries
}

// sleepBackoff sleeps one jittered exponential step: base<<attempt plus
// up to half of itself again, capped at 200ms so a request never stalls
// long behind a persistently sick disk.
func sleepBackoff(base time.Duration, attempt int) {
	d := base << min(attempt, 10)
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if d > 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	time.Sleep(d)
}

// retryAfterHint estimates when admission pressure will ease: the
// observed median audit run time times the queued-plus-running waves per
// worker, clamped to [1s, 60s]. Before any completed run it falls back
// to one second.
func (s *Service) retryAfterHint() time.Duration {
	p50 := time.Duration(s.obs.runLatency.Quantile(0.5) * float64(time.Second))
	if p50 <= 0 {
		return time.Second
	}
	st := s.jobs.Stats()
	waves := (st.Queued + st.Running + s.cfg.Workers) / s.cfg.Workers // ceiling-ish
	return clampDuration(time.Duration(waves)*p50, time.Second, 60*time.Second)
}

// notReadyHint is the poll-again hint for a still-running audit: the
// median run time, clamped to [1s, 10s].
func (s *Service) notReadyHint() time.Duration {
	p50 := time.Duration(s.obs.runLatency.Quantile(0.5) * float64(time.Second))
	return clampDuration(p50, time.Second, 10*time.Second)
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// retryAfterValue renders a duration as the whole-seconds Retry-After
// header value, rounding up so "almost a second" never renders as 0.
func retryAfterValue(d time.Duration) string {
	return strconv.FormatInt(int64(math.Ceil(d.Seconds())), 10)
}

// admissionState is the HTTP-layer inflight cap with per-class limits.
// Classes shed in priority order as the server fills: audits (the heavy
// lattice work) at 3/4 of capacity, appends at 7/8, reads only at the
// full cap — so under overload the daemon keeps answering cheap reads
// and health checks while new heavy work queues elsewhere.
type admissionState struct {
	cap      int64
	limits   map[string]int64
	inflight counter64
}

// counter64 is a tiny atomic wrapper kept separate so admissionState
// stays copy-free behind a pointer.
type counter64 struct {
	mu sync.Mutex
	n  int64
}

func (c *counter64) add(d int64) int64 {
	c.mu.Lock()
	c.n += d
	n := c.n
	c.mu.Unlock()
	return n
}

func newAdmissionState(capacity int) *admissionState {
	c := int64(capacity)
	return &admissionState{
		cap: c,
		limits: map[string]int64{
			"audit":  max64(1, c*3/4),
			"append": max64(1, c*7/8),
			"read":   c,
		},
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// requestClass buckets a route for admission control: audits (lattice
// work, shed first), appends (ingest writes), reads; "" exempts the
// operational endpoints — /healthz and /metrics must answer precisely
// when the server is drowning.
func requestClass(route string) string {
	switch route {
	case "GET /healthz", "GET /metrics", "unmatched":
		return ""
	case "POST /v1/audits", "POST /v1/repair", "POST /v1/explain":
		return "audit"
	case "POST /v1/datasets", "POST /v1/datasets/{id}/rows", "DELETE /v1/datasets/{id}":
		return "append"
	default:
		return "read"
	}
}

// admit reserves an inflight slot for one request; ok=false means the
// class is over its limit and the request should shed with 503. The
// release func must be called exactly once when ok.
func (s *Service) admit(class string) (release func(), ok bool) {
	a := s.admission
	if a == nil || class == "" {
		return func() {}, true
	}
	if cur := a.inflight.add(1); cur > a.limits[class] {
		a.inflight.add(-1)
		return nil, false
	}
	g := s.obs.inflightGauge.With(class)
	g.Inc()
	return func() {
		a.inflight.add(-1)
		g.Dec()
	}, true
}
