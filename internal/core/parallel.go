package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"rankfair/internal/pattern"
)

// Two independent axes of parallelism coexist in this package:
//
//   - Across k: the per-k searches of the ITERTD baselines are independent,
//     so runPerK fans the k values out over workers (the historical
//     IterTD*Parallel entry points).
//   - Inside one search: the incremental algorithms are inherently
//     sequential in k (each step consumes the previous frontier), but the
//     subtrees below the root of one build — and the resumed subtrees of
//     one step — are independent, as is the per-pattern domination filter.
//     fanOut and markDominated cover those; per-worker sinks collect side
//     effects which are merged in deterministic order, so parallel results
//     are byte-identical to the serial path.

// normWorkers maps the public workers knob onto a concrete fan-out width:
// <= 0 selects GOMAXPROCS, anything positive is used as given.
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// fanOut invokes run(i) for every i in [0, n), spreading the calls over at
// most workers goroutines. With workers <= 1 (or a single job) the calls
// run inline, so the serial and parallel paths share one code route. run
// must only write to per-i state; fanOut returns after every call finished.
func fanOut(workers, n int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// runPerK runs one independent search per k in [kMin, kMax] on up to
// workers goroutines, assembling the per-k group sets into a Result. Each
// worker owns a Stats and a canceler; group slices land in distinct per-k
// slots and the stats sum is order-independent, so the assembled result is
// identical to a serial run. When the context is canceled the workers stop
// mid-traversal and the partial result is discarded.
func runPerK(ctx context.Context, eng *engine, kMin, kMax, workers int, body func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern) (*Result, error) {
	if err := preflight(ctx); err != nil {
		return nil, err
	}
	workers = normWorkers(workers)
	span := kMax - kMin + 1
	if workers > span {
		workers = span
	}
	res := &Result{KMin: kMin, KMax: kMax, Groups: make([][]Pattern, span)}
	statsPer := make([]Stats, workers)
	var searchPer []SearchStats
	if eng != nil && !eng.statsOff {
		res.Search = eng.newSearchStats(workers)
		searchPer = make([]SearchStats, workers)
	}
	var next atomic.Int64
	next.Store(int64(kMin) - 1)
	work := func(w int) bool {
		cn := canceler{ctx: ctx}
		var ss *SearchStats
		if searchPer != nil {
			ss = &searchPer[w]
		}
		for !cn.halted {
			k := int(next.Add(1))
			if k > kMax {
				break
			}
			groups := body(&cn, &statsPer[w], ss, k)
			if cn.halted {
				break // partial per-k result: discard
			}
			res.Groups[k-kMin] = groups
		}
		return cn.halted
	}
	halted := false
	if workers <= 1 {
		halted = work(0)
	} else {
		haltedPer := make([]bool, workers)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				haltedPer[w] = work(w)
			}(w)
		}
		wg.Wait()
		for _, h := range haltedPer {
			halted = halted || h
		}
	}
	for _, s := range statsPer {
		res.Stats.add(s)
	}
	for i := range searchPer {
		res.Search.merge(&searchPer[i])
	}
	if halted {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	return res, nil
}

// markDominated computes, over patterns sorted by (NumAttrs, Key), which
// ones have a proper subset among the most general members of the same
// slice: mask[i] is true iff some non-dominated earlier pattern is a proper
// subset of ps[i]. Because a proper subset always has strictly fewer bound
// attributes, patterns within one generality level cannot dominate each
// other, so each level is checked against the accepted prefix concurrently.
// The scan reuses the subsetFilter attribute-bitmask prefilter: each
// pattern's bound-attribute set folds into one uint64 (attrMask), and a
// candidate only pays a ProperSubsetOf comparison against accepted patterns
// whose mask can nest inside its own — on the wide biased frontiers of the
// proportional staircase sweep this skips the vast majority of pairs with
// one AND-NOT each. This filter is the quadratic hot spot on adversarial
// workloads (the Theorem 3.3 construction yields C(n, n/2) mutually
// incomparable groups), which is why it fans out alongside the tree build —
// and why it polls ctx (per level, then every 64 scans and every 4096
// subset checks): the cancellation-latency bound must cover the dominant
// cost, not just the tree traversal. When canceled it reports halted=true
// and the partial mask is meaningless.
func markDominated(ctx context.Context, ps []pattern.Pattern, workers int) (mask []bool, halted bool) {
	wit, halted := markDominatedWitness(ctx, ps, workers)
	mask = make([]bool, len(ps))
	for i, w := range wit {
		mask[i] = w >= 0
	}
	return mask, halted
}

// markDominatedWitness is markDominated with witness recording: wit[i] is
// the ps-index of the accepted proper subset that proved ps[i] dominated,
// or -1 when ps[i] is most general. The witnesses are what lets the
// incremental domination frontier (domFrontier) bulk-seed from this pass
// and then maintain the split by membership deltas. When halted the
// partial wit slice is meaningless.
func markDominatedWitness(ctx context.Context, ps []pattern.Pattern, workers int) (wit []int32, halted bool) {
	wit = make([]int32, len(ps))
	for i := range wit {
		wit[i] = -1
	}
	pms := make([]uint64, len(ps))
	for i, p := range ps {
		pms[i] = attrMask(p)
	}
	var stop atomic.Bool
	var res []pattern.Pattern
	var resMasks []uint64
	var resIdx []int32
	for start := 0; start < len(ps); {
		if ctx != nil && ctx.Err() != nil {
			return wit, true
		}
		end := start
		lvl := ps[start].NumAttrs()
		for end < len(ps) && ps[end].NumAttrs() == lvl {
			end++
		}
		fanOut(workers, end-start, func(i int) {
			if stop.Load() {
				return
			}
			if i&63 == 0 && ctx != nil && ctx.Err() != nil {
				stop.Store(true)
				return
			}
			p := ps[start+i]
			pm := pms[start+i]
			for j, qm := range resMasks {
				if j&4095 == 4095 && stop.Load() {
					return
				}
				if qm&^pm == 0 && res[j].ProperSubsetOf(p) {
					wit[start+i] = resIdx[j]
					return
				}
			}
		})
		if stop.Load() {
			return wit, true
		}
		for i := start; i < end; i++ {
			if wit[i] < 0 {
				res = append(res, ps[i])
				resMasks = append(resMasks, pms[i])
				resIdx = append(resIdx, int32(i))
			}
		}
		start = end
	}
	return wit, false
}

// IterTDGlobalParallel is IterTDGlobal with the per-k searches fanned out
// over workers goroutines (<= 0 means GOMAXPROCS). Results are identical to
// the sequential baseline; Stats are summed across workers.
func IterTDGlobalParallel(in *Input, params GlobalParams, workers int) (*Result, error) {
	return IterTDGlobalCtx(context.Background(), in, params, workers)
}

// IterTDPropParallel is IterTDProp with the per-k searches fanned out over
// workers goroutines (<= 0 means GOMAXPROCS).
func IterTDPropParallel(in *Input, params PropParams, workers int) (*Result, error) {
	return IterTDPropCtx(context.Background(), in, params, workers)
}
