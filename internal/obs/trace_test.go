package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	tr := NewTrace("job-000001", "audit", base)
	tr.Root().ChildAt("queue", base, base.Add(5*time.Millisecond))
	run := tr.Root().ChildAt("run", base.Add(5*time.Millisecond), time.Time{})
	run.ChildAt("search", base.Add(6*time.Millisecond), base.Add(20*time.Millisecond))
	run.FinishAt(base.Add(25 * time.Millisecond))
	tr.Root().FinishAt(base.Add(25 * time.Millisecond))

	tree := tr.Tree()
	if tree.ID != "job-000001" || tree.Root.Name != "audit" {
		t.Fatalf("tree header wrong: %+v", tree)
	}
	if tree.DurationMS != 25 {
		t.Errorf("root duration = %v, want 25", tree.DurationMS)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("want 2 children, got %+v", tree.Root.Children)
	}
	runT := tree.Root.Children[1]
	if runT.Name != "run" || runT.StartMS != 5 || runT.DurationMS != 20 {
		t.Errorf("run span wrong: %+v", runT)
	}
	if len(runT.Children) != 1 || runT.Children[0].Name != "search" || runT.Children[0].DurationMS != 14 {
		t.Errorf("search span wrong: %+v", runT.Children)
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "phase")
	if sp != nil {
		t.Fatal("expected nil span without a trace on the context")
	}
	sp.Finish() // must not panic
	if SpanFromContext(ctx) != nil {
		t.Fatal("no-op StartSpan must not attach a span")
	}
}

func TestStartSpanAttachesChildren(t *testing.T) {
	tr := NewTrace("id", "root", time.Now())
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx2, sp := StartSpan(ctx, "outer")
	if sp == nil {
		t.Fatal("expected a live span")
	}
	_, inner := StartSpan(ctx2, "inner")
	inner.Finish()
	sp.Finish()
	tree := tr.Tree()
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "outer" {
		t.Fatalf("outer span missing: %+v", tree.Root.Children)
	}
	if kids := tree.Root.Children[0].Children; len(kids) != 1 || kids[0].Name != "inner" {
		t.Fatalf("inner span not nested under outer: %+v", tree.Root.Children)
	}
}

func TestTraceStoreRing(t *testing.T) {
	ts := NewTraceStore(3)
	now := time.Now()
	for i := 0; i < 5; i++ {
		ts.Put(NewTrace(fmt.Sprintf("job-%d", i), "audit", now))
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := ts.Get(fmt.Sprintf("job-%d", i)); ok {
			t.Errorf("job-%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := ts.Get(fmt.Sprintf("job-%d", i)); !ok {
			t.Errorf("job-%d missing", i)
		}
	}
	// Replacing an existing ID must not consume a ring slot.
	ts.Put(NewTrace("job-4", "audit", now))
	if ts.Len() != 3 {
		t.Fatalf("Len after replace = %d, want 3", ts.Len())
	}
	if _, ok := ts.Get("job-2"); !ok {
		t.Error("replace evicted an unrelated trace")
	}
}
