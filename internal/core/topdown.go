package core

import (
	"rankfair/internal/pattern"
)

// measure abstracts the "biased below the lower bound" test shared by the
// two problem definitions. k is the current prefix length, sD the pattern's
// size in D and cnt its size in the top-k.
type measure interface {
	biased(sD, cnt, k int) bool
}

// globalMeasure implements Problem 3.1: cnt < L_k.
type globalMeasure struct{ params *GlobalParams }

func (m globalMeasure) biased(sD, cnt, k int) bool { return cnt < m.params.lowerAt(k) }

// propMeasure implements Problem 3.2: cnt < α·sD·k/|D|.
type propMeasure struct {
	alpha float64
	n     int
}

func (m propMeasure) biased(sD, cnt, k int) bool {
	return float64(cnt) < m.alpha*float64(sD)*float64(k)/float64(m.n)
}

// topDownSearch is Algorithm 1: a single top-down traversal of the search
// tree for one value of k, returning the most general biased patterns (Res)
// and the dominated biased patterns reached during the search (DRes).
// The traversal polls cn once per node and abandons the search when the
// caller's context is canceled (the partial result is then meaningless).
//
// The traversal is FIFO (level order), so when a biased pattern is reached,
// every more general biased pattern has already been classified; the
// update() check of the paper therefore only needs to scan Res — through a
// subsetFilter, whose attribute bitmasks skip patterns over disjoint
// attribute sets without comparing values. Frontier match sets live in
// the traversal's ring arena (see bfs.go): pop reclaims the blocks of
// already-consumed entries, and size-pruned entries never materialize a
// Pattern.
func topDownSearch(cn *canceler, eng *engine, minSize, k int, meas measure, stats *Stats, ss *SearchStats) (res, dres []pattern.Pattern) {
	stats.FullSearches++

	q := eng.newBFS(k)
	defer q.close()
	filt := newSubsetFilter()

	for q.more() {
		if cn.stopped() {
			return nil, nil
		}
		u := q.pop()
		stats.NodesExamined++
		sD := len(u.m.all)
		if sD < minSize {
			ss.prunedSize()
			continue
		}
		cnt := eng.topCount(u.m, k)
		if meas.biased(sD, cnt, k) {
			p := q.pat(&u)
			ss.prunedBound()
			if filt.dominated(p) {
				ss.addDominated(1)
				dres = append(dres, p)
			} else {
				ss.frontier(p)
				filt.add(p)
			}
			continue
		}
		ss.expanded()
		q.expand(&u, q.pat(&u))
	}
	return filt.res, dres
}

// partitionByValue splits idxs by the value of attribute attr.
func partitionByValue(rows [][]int32, idxs []int32, attr, card int) [][]int32 {
	counts := make([]int, card)
	for _, ri := range idxs {
		counts[rows[ri][attr]]++
	}
	flat := make([]int32, len(idxs))
	buckets := make([][]int32, card)
	off := 0
	for v := 0; v < card; v++ {
		buckets[v] = flat[off : off : off+counts[v]]
		off += counts[v]
	}
	for _, ri := range idxs {
		v := rows[ri][attr]
		buckets[v] = append(buckets[v], ri)
	}
	return buckets
}

// attrMask folds a pattern's bound-attribute set into a 64-bit mask (bit
// a mod 64). q ⊆ p requires attrs(q) ⊆ attrs(p); on the folded masks a bit
// set for q but clear for p proves some attribute bound in q is unbound in
// every attribute of p's residue class — so qMask &^ pMask != 0 soundly
// rules the subset out for any attribute count, and the full comparison
// only runs on mask-compatible pairs.
func attrMask(p pattern.Pattern) uint64 {
	var m uint64
	for a, v := range p {
		if v != pattern.Unbound {
			m |= 1 << (uint(a) & 63)
		}
	}
	return m
}

// subsetFilter maintains a result set of mutually incomparable patterns
// with an attribute-bitmask prefilter over the proper-subset scan: the
// linear pass over Res compares one uint64 per candidate and only falls
// through to ProperSubsetOf when the attribute sets can nest.
type subsetFilter struct {
	res   []pattern.Pattern
	masks []uint64
}

// dominated reports whether any member of the filter is a proper subset
// of p.
func (f *subsetFilter) dominated(p pattern.Pattern) bool {
	pm := attrMask(p)
	for i, qm := range f.masks {
		if qm&^pm == 0 && f.res[i].ProperSubsetOf(p) {
			return true
		}
	}
	return false
}

// add admits p into the result set.
func (f *subsetFilter) add(p pattern.Pattern) {
	f.res = append(f.res, p)
	f.masks = append(f.masks, attrMask(p))
}

// newSubsetFilter returns a filter presized for a typical biased frontier,
// so the per-k searches of a staircase sweep admit their first patterns
// without append-growth reallocations. The result slice escapes into the
// search's return value, so the backing arrays are per-search allocations
// by design — presizing just collapses the doubling ladder into one carve.
func newSubsetFilter() subsetFilter {
	const hint = 64
	return subsetFilter{
		res:   make([]pattern.Pattern, 0, hint),
		masks: make([]uint64, 0, hint),
	}
}

// hasProperSubset reports whether any member of set is a proper subset of
// p — the unfiltered scan, kept for small ad-hoc sets and as the oracle
// for subsetFilter.
func hasProperSubset(set []pattern.Pattern, p pattern.Pattern) bool {
	for _, q := range set {
		if q.ProperSubsetOf(p) {
			return true
		}
	}
	return false
}
