package core

import (
	"runtime"
	"sync"
)

// The per-k searches of the ITERTD baseline are independent, so they
// parallelize trivially across k. The incremental algorithms are inherently
// sequential in k (each step consumes the previous frontier), which is why
// the paper's optimized algorithms and this parallel baseline are
// complementary: on many-core machines the parallel baseline narrows the
// gap for small k ranges, while GLOBALBOUNDS/PROPBOUNDS win on long ones.

// IterTDGlobalParallel is IterTDGlobal with the per-k searches fanned out
// over workers goroutines (<= 0 means GOMAXPROCS). Results are identical to
// the sequential baseline; Stats are summed across workers.
func IterTDGlobalParallel(in *Input, params GlobalParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	meas := globalMeasure{params: &params}
	return parallelPerK(in, params.MinSize, params.KMin, params.KMax, workers, meas), nil
}

// IterTDPropParallel is IterTDProp with the per-k searches fanned out over
// workers goroutines (<= 0 means GOMAXPROCS).
func IterTDPropParallel(in *Input, params PropParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	meas := propMeasure{alpha: params.Alpha, n: len(in.Rows)}
	return parallelPerK(in, params.MinSize, params.KMin, params.KMax, workers, meas), nil
}

// parallelPerK runs one top-down search per k on a bounded worker pool.
func parallelPerK(in *Input, minSize, kMin, kMax, workers int, meas measure) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if span := kMax - kMin + 1; workers > span {
		workers = span
	}
	res := &Result{KMin: kMin, KMax: kMax, Groups: make([][]Pattern, kMax-kMin+1)}

	ks := make(chan int)
	statsPer := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := range ks {
				groups, _ := topDownSearch(in, minSize, k, meas, &statsPer[w])
				sortPatterns(groups)
				res.Groups[k-kMin] = groups // distinct slot per k: no race
			}
		}(w)
	}
	for k := kMin; k <= kMax; k++ {
		ks <- k
	}
	close(ks)
	wg.Wait()
	for _, s := range statsPer {
		res.Stats.add(s)
	}
	return res
}
