// Command rankfaird serves the rankfair detection pipelines as a
// long-lived HTTP daemon: upload a CSV once, then run audits, repairs and
// explanations against it over REST. Identical audits of an unchanged
// dataset are answered from a result cache instead of re-running the
// lattice search.
//
// Usage:
//
//	rankfaird -addr :8080
//
//	curl -X POST --data-binary @applicants.csv 'localhost:8080/v1/datasets?name=applicants'
//	curl -X POST -d '{"dataset":"ds-...","ranker":{"columns":[{"column":"score","descending":true}]},
//	                  "params":{"measure":"prop","min_size":50,"kmin":10,"kmax":49,"alpha":0.8}}' \
//	     localhost:8080/v1/audits
//	curl localhost:8080/v1/audits/job-000001/report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rankfair/internal/fault"
	"rankfair/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "audit worker pool size (0 = GOMAXPROCS)")
		auditW       = flag.Int("audit-workers", envInt("RANKFAIRD_WORKERS", 1), "lattice search goroutines per audit when the request leaves workers unset (1 = serial; default from RANKFAIRD_WORKERS)")
		queue        = flag.Int("queue", 64, "pending audit queue depth")
		cacheSize    = flag.Int("cache", 128, "result cache entries")
		analystSize  = flag.Int("analyst-cache", 32, "built-analyst cache entries per (dataset, ranker); 0 selects the default (32), negative disables analyst reuse")
		maxDatasets  = flag.Int("max-datasets", 64, "datasets held in memory before LRU eviction")
		maxUpload    = flag.Int64("max-upload", 32<<20, "maximum CSV upload size in bytes")
		streamFrac   = flag.Float64("stream-rebuild-fraction", 0, "append batches at or above this fraction of the dataset's rows rebuild instead of applying incrementally (0 = default 0.25, negative disables the incremental path)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
		slowAuditMS  = flag.Int("slow-audit-ms", 0, "log a warning with the full span tree for audits running at least this long (0 disables)")
		traceSize    = flag.Int("trace-entries", 0, "finished audit traces retained for GET /v1/audits/{id}/trace (0 = default 256)")
		dataDir      = flag.String("data-dir", "", "root of the durable dataset store (empty = fully in-memory); uploads and appends are fsync'd before acknowledgment and replayed on restart")
		persistCache = flag.Bool("persist-cache", false, "also persist computed audit results and reload them on restart (requires -data-dir)")
		verbose      = flag.Bool("v", false, "log every request and job completion (debug level)")

		auditDeadMS = flag.Int64("audit-deadline-ms", 0, "default audit time budget in milliseconds when the request carries none (0 = unbounded)")
		maxDeadMS   = flag.Int64("max-deadline-ms", 0, "clamp for requested and default audit deadlines in milliseconds (0 = default 5 minutes)")
		queueWaitMS = flag.Int64("queue-wait-ms", 0, "shed queued audits without an explicit deadline after this queue wait in milliseconds (0 disables)")
		maxInflight = flag.Int("max-inflight", 0, "concurrently served HTTP requests before admission control sheds by class (0 = default 256, negative disables)")
		storeRetry  = flag.Int("store-retries", 0, "in-place retries of transient durable-store errors (0 = default 2, negative disables)")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive store infrastructure failures that open the write circuit breaker (0 = default 5, negative disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long the open breaker rejects writes before probing half-open (0 = default 5s)")
		faultSpec   = flag.String("fault-store", "", "inject store faults from a spec like 'op=write,path=MANIFEST,skip=3,count=1,err=eio' (testing only)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for probabilistic fault injection rules")

		otlpEndpoint = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL (e.g. http://collector:4318); ships audit span trees to /v1/traces and metric snapshots to /v1/metrics (empty disables)")
		otlpInterval = flag.Duration("otlp-interval", 0, "metric snapshot export period (0 = default 15s)")
		otlpQueue    = flag.Int("otlp-queue", 0, "pending-trace export queue depth; full queues drop, never block audits (0 = default 256)")
		auditLogPath = flag.String("audit-log", "", "wide-event audit log destination: a file path, or 'stderr' (empty disables); one JSON record per terminal audit")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	cfg := service.Config{
		Workers:               *workers,
		AuditWorkers:          *auditW,
		QueueDepth:            *queue,
		CacheEntries:          *cacheSize,
		AnalystCacheEntries:   *analystSize,
		MaxDatasets:           *maxDatasets,
		MaxUploadBytes:        *maxUpload,
		StreamRebuildFraction: *streamFrac,
		Logger:                logger,
		SlowAudit:             time.Duration(*slowAuditMS) * time.Millisecond,
		TraceEntries:          *traceSize,
		DataDir:               *dataDir,
		PersistCache:          *persistCache,
		AuditDeadline:         time.Duration(*auditDeadMS) * time.Millisecond,
		MaxDeadline:           time.Duration(*maxDeadMS) * time.Millisecond,
		QueueWaitBudget:       time.Duration(*queueWaitMS) * time.Millisecond,
		MaxInflight:           *maxInflight,
		StoreRetries:          *storeRetry,
		BreakerThreshold:      *brkThresh,
		BreakerCooldown:       *brkCooldown,
		OTLPEndpoint:          *otlpEndpoint,
		OTLPInterval:          *otlpInterval,
		OTLPQueue:             *otlpQueue,
	}
	if *auditLogPath != "" {
		var dst *os.File
		if *auditLogPath == "stderr" {
			dst = os.Stderr
		} else {
			f, err := os.OpenFile(*auditLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rankfaird: -audit-log:", err)
				os.Exit(1)
			}
			dst = f
			defer f.Close()
		}
		// JSON regardless of the main log's text format: wide events are
		// for machines (grep/jq/ingest), not terminal scanning.
		cfg.AuditLog = slog.New(slog.NewJSONHandler(dst, nil))
	}
	if *persistCache && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "rankfaird: -persist-cache requires -data-dir")
		os.Exit(1)
	}
	if *faultSpec != "" {
		rules, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rankfaird: -fault-store:", err)
			os.Exit(1)
		}
		inj := fault.NewInjector(*faultSeed)
		for _, r := range rules {
			inj.Add(r)
		}
		cfg.StoreFS = fault.NewFaultFS(fault.OS{}, inj)
		logger.Warn("store fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, logger)
	}
	if err := run(*addr, cfg, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "rankfaird:", err)
		os.Exit(1)
	}
}

// serveDebug exposes the pprof handlers on their own listener, kept off
// the API mux so profiling endpoints never ride on the public address.
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof server", "err", err)
	}
}

// envInt reads an integer environment variable, falling back to def when
// the variable is unset or malformed.
func envInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests and
// audit workers within the drain timeout.
func run(addr string, cfg service.Config, drain time.Duration) error {
	svc, err := service.New(cfg)
	if err != nil {
		return fmt.Errorf("opening durable store: %w", err)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rankfaird listening on %s (workers=%d, audit-workers=%d, queue=%d, cache=%d)",
			addr, cfg.Workers, cfg.AuditWorkers, cfg.QueueDepth, cfg.CacheEntries)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure or unexpected close
	case <-ctx.Done():
	}

	log.Printf("rankfaird shutting down (drain %s)", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	errHTTP := srv.Shutdown(dctx)
	errJobs := svc.Shutdown(dctx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return errors.Join(errHTTP, errJobs)
}
