package rankfair_test

import (
	"testing"

	"rankfair"
)

func TestDetectExposureFacade(t *testing.T) {
	a := runningAnalyst(t)
	report, err := a.DetectExposure(rankfair.ExposureParams{
		MinSize: 4, KMin: 5, KMax: 10, Alpha: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// {School=GP} holds 1 of the top-5 (position 1 only): despite the
	// prime position, one slot of five cannot cover a group of half the
	// dataset at α=0.8.
	found := false
	for _, g := range report.At(5) {
		if report.Format(g) == "{School=GP}" {
			found = true
		}
	}
	if !found {
		t.Errorf("exposure at k=5 should flag {School=GP}: %v", report.At(5))
	}
	infos := report.InfoAt(5)
	for _, info := range infos {
		if info.Bias <= 0 {
			t.Errorf("reported exposure group with non-positive bias: %+v", info)
		}
	}
	if _, err := a.DetectExposure(rankfair.ExposureParams{MinSize: 1, KMin: 1, KMax: 5, Alpha: 0}); err == nil {
		t.Error("invalid alpha should fail")
	}
}

func TestDetectAlternateSemanticsFacade(t *testing.T) {
	a := runningAnalyst(t)

	spec, err := a.DetectGlobalLowerMostSpecific(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 4, Lower: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Most specific below-bound groups must have no substantial superset;
	// every reported group is still biased and substantial.
	for _, info := range spec.InfoAt(4) {
		if info.Size < 4 || info.TopK >= 2 {
			t.Errorf("bad most-specific group: %+v", info)
		}
	}
	if len(spec.At(4)) == 0 {
		t.Fatal("expected most-specific below-bound groups")
	}

	gen, err := a.DetectGlobalUpperMostGeneral(rankfair.GlobalUpperParams{
		MinSize: 4, KMin: 5, KMax: 5, Upper: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gen.At(5) {
		if g.NumAttrs() != 1 {
			t.Errorf("most general exceeding groups must bind one attribute: %v", g)
		}
	}
	// {School=MS} holds 3 of the top-5 (> 2).
	found := false
	for _, g := range gen.At(5) {
		if gen.Format(g) == "{School=MS}" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected {School=MS} over-represented: %v", gen.At(5))
	}
}

// TestSemanticsRelationship checks the containment between the two lower-
// bound report semantics: every most-general group is a subset (ancestor)
// of some most-specific group and vice versa — they describe the same
// biased region from opposite ends.
func TestSemanticsRelationship(t *testing.T) {
	a := runningAnalyst(t)
	params := rankfair.GlobalParams{MinSize: 4, KMin: 4, KMax: 5, Lower: []int{2, 2}}
	gen, err := a.DetectGlobal(params)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := a.DetectGlobalLowerMostSpecific(params)
	if err != nil {
		t.Fatal(err)
	}
	for k := 4; k <= 5; k++ {
		for _, g := range gen.At(k) {
			covered := false
			for _, s := range spec.At(k) {
				if g.SubsetOf(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("k=%d: most-general %v has no most-specific extension", k, g)
			}
		}
		for _, s := range spec.At(k) {
			covered := false
			for _, g := range gen.At(k) {
				if g.SubsetOf(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("k=%d: most-specific %v has no most-general ancestor", k, s)
			}
		}
	}
}
