package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"rankfair/internal/pattern"
)

// tfnode is the minimal node shape the frontier is generic over: a pattern
// plus an interned-key slot, mirroring pnode/enode/gnode.
type tfnode struct {
	p   pattern.Pattern
	key string
}

func tfPat(nd *tfnode) pattern.Pattern { return nd.p }
func tfKey(nd *tfnode) *string         { return &nd.key }

// tfPool enumerates every non-empty pattern over a small space — dense
// enough that subset chains (and therefore witness hand-offs on removal)
// occur constantly under random membership churn.
func tfPool(cards []int) []pattern.Pattern {
	n := len(cards)
	var pool []pattern.Pattern
	var rec func(a int, p pattern.Pattern)
	rec = func(a int, p pattern.Pattern) {
		if a == n {
			if p.NumAttrs() > 0 {
				pool = append(pool, append(pattern.Pattern(nil), p...))
			}
			return
		}
		rec(a+1, p) // leave unbound
		for v := 0; v < cards[a]; v++ {
			p[a] = int32(v)
			rec(a+1, p)
		}
		p[a] = pattern.Unbound
	}
	rec(0, pattern.Empty(n))
	return pool
}

// tfOracle recomputes the Res split from scratch — sort the member set,
// run the bulk markDominated pass, filter — exactly what the incremental
// searches did at every k before the frontier existed.
func tfOracle(t *testing.T, members []*tfnode, workers int) []Pattern {
	t.Helper()
	nodes := append([]*tfnode(nil), members...)
	sortNodesInterned(nodes, tfPat, tfKey)
	ps := make([]pattern.Pattern, len(nodes))
	for i, nd := range nodes {
		ps[i] = nd.p
	}
	mask, halted := markDominated(context.Background(), ps, workers)
	if halted {
		t.Fatal("oracle markDominated halted without cancellation")
	}
	out := make([]Pattern, 0, len(ps))
	for i := range ps {
		if !mask[i] {
			out = append(out, ps[i])
		}
	}
	return out
}

// tfCompare asserts the frontier's emitted Res equals the full-recompute
// oracle element for element, in order.
func tfCompare(t *testing.T, f *domFrontier[tfnode], members map[int]*tfnode, step string) {
	t.Helper()
	list := make([]*tfnode, 0, len(members))
	for _, nd := range members {
		list = append(list, nd)
	}
	want := tfOracle(t, list, 4)
	got := f.emit()
	if got == nil {
		t.Fatalf("%s: emit() returned nil, want non-nil", step)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: emit %d patterns, oracle %d", step, len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s: emit[%d] = %s, oracle %s", step, i, got[i].Key(), want[i].Key())
		}
	}
	if wantDom := len(members) - len(want); f.ndom != wantDom {
		t.Fatalf("%s: ndom = %d, oracle %d", step, f.ndom, wantDom)
	}
}

// TestFrontierMatchesBulkRecompute is the staircase differential for the
// incremental domination split: a long random add/remove churn over a
// nested pattern pool, with the frontier compared against the full
// sort-then-markDominated recompute after every single flip — the
// invariant that makes the per-k flip-set path of the incremental searches
// exact. The churn exercises witness hand-off on removal (a dominated
// member whose recorded witness leaves must find a replacement subset or
// resurface into Res) and domination on insert in both directions.
func TestFrontierMatchesBulkRecompute(t *testing.T) {
	pool := tfPool([]int{2, 3, 2, 3})
	rng := rand.New(rand.NewSource(7))
	f := newDomFrontier(tfPat, tfKey)
	members := map[int]*tfnode{}
	ctx := context.Background()

	// Pre-seed phase: bulk membership accumulates as pending, including a
	// few pending removals, then the first settle() bulk-seeds the split.
	for _, i := range rng.Perm(len(pool))[:48] {
		nd := &tfnode{p: pool[i]}
		f.add(nd)
		members[i] = nd
	}
	removed := 0
	for i, nd := range members {
		if removed == 6 {
			break
		}
		f.remove(nd)
		delete(members, i)
		removed++
	}
	if f.settle(ctx, 4) {
		t.Fatal("seeding settle halted without cancellation")
	}
	tfCompare(t, f, members, "after seed")

	// Incremental phase: 400 random flips, settled and checked against the
	// oracle one at a time — single-op batches always take the incremental
	// replay route.
	for op := 0; op < 400; op++ {
		i := rng.Intn(len(pool))
		if nd, ok := members[i]; ok {
			f.remove(nd)
			delete(members, i)
		} else {
			nd := &tfnode{p: pool[i]}
			f.add(nd)
			members[i] = nd
		}
		if f.settle(ctx, 4) {
			t.Fatal("incremental settle halted without cancellation")
		}
		tfCompare(t, f, members, "churn")
	}

	// Batch phase: pile 120 flips (over the rebulk threshold for this
	// frontier size) into one op log — including remove-then-readd and
	// add-then-remove sequences of the same node — then settle once
	// through the bulk recompute route.
	for op := 0; op < 120; op++ {
		i := rng.Intn(len(pool))
		if nd, ok := members[i]; ok {
			f.remove(nd)
			delete(members, i)
		} else {
			nd := &tfnode{p: pool[i]}
			f.add(nd)
			members[i] = nd
		}
	}
	if f.settle(ctx, 4) {
		t.Fatal("rebulk settle halted without cancellation")
	}
	tfCompare(t, f, members, "after rebulk")

	// Drain to empty: emit must stay exact (and non-nil) all the way down.
	for i, nd := range members {
		f.remove(nd)
		delete(members, i)
		if f.settle(ctx, 4) {
			t.Fatal("drain settle halted without cancellation")
		}
		tfCompare(t, f, members, "drain")
	}
	if got := f.emit(); got == nil || len(got) != 0 {
		t.Fatalf("drained frontier emit = %v, want empty non-nil", got)
	}
}

// TestFrontierSeedCancellation proves the bounded-cancel guarantee
// survives the frontier's bulk-seed path: a canceled markDominatedWitness
// pass leaves the frontier unseeded and uncorrupted, and a later seed over
// the same pending set succeeds and matches the oracle.
func TestFrontierSeedCancellation(t *testing.T) {
	pool := tfPool([]int{2, 2, 2, 2})
	f := newDomFrontier(tfPat, tfKey)
	members := map[int]*tfnode{}
	for i := range pool {
		nd := &tfnode{p: pool[i]}
		f.add(nd)
		members[i] = nd
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !f.seed(ctx, 4) {
		t.Fatal("seed with canceled context reported success")
	}
	if f.seeded {
		t.Fatal("halted seed left the frontier marked seeded")
	}
	if len(f.pending) != len(members) {
		t.Fatalf("halted seed dropped pending members: %d of %d left", len(f.pending), len(members))
	}
	if f.seed(context.Background(), 4) {
		t.Fatal("re-seed halted without cancellation")
	}
	tfCompare(t, f, members, "after re-seed")
}

// TestFrontierHaltedSettleRecovers pins the halt contract of the batched
// update: a settle abandoned by cancellation mid-rebulk leaves the
// frontier unseeded but loses no membership, and a later settle rebuilds
// the exact split.
func TestFrontierHaltedSettleRecovers(t *testing.T) {
	pool := tfPool([]int{2, 3, 2, 3})
	f := newDomFrontier(tfPat, tfKey)
	members := map[int]*tfnode{}
	for i := 0; i < 40; i++ {
		nd := &tfnode{p: pool[i]}
		f.add(nd)
		members[i] = nd
	}
	if f.settle(context.Background(), 1) {
		t.Fatal("seeding settle halted without cancellation")
	}
	// Buffer a batch past the rebulk threshold, including a removal and a
	// remove-then-readd, then settle under an already-canceled context.
	f.remove(members[0])
	delete(members, 0)
	f.remove(members[1])
	f.add(members[1])
	for i := 40; i < 110; i++ {
		nd := &tfnode{p: pool[i]}
		f.add(nd)
		members[i] = nd
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !f.settle(ctx, 1) {
		t.Fatal("settle with canceled context reported success")
	}
	if f.seeded {
		t.Fatal("halted rebulk left the frontier marked seeded")
	}
	if f.settle(context.Background(), 1) {
		t.Fatal("recovery settle halted without cancellation")
	}
	tfCompare(t, f, members, "after recovery settle")
}

// TestIncrementalCancellationSweep sweeps the poll budget so the
// cancellation lands in every phase of the incremental searches — root
// setup, the bulk seed, and the per-k frontier flips — and requires the
// bounded-latency guarantee (or a clean completion) at each landing spot.
func TestIncrementalCancellationSweep(t *testing.T) {
	in := denseCancelInput(10, 300)
	const bound = 64 * cancelStride
	runs := map[string]func(ctx context.Context) (*Result, error){
		"PropBounds": func(ctx context.Context) (*Result, error) {
			return PropBoundsCtx(ctx, in, PropParams{MinSize: 1, KMin: 10, KMax: 40, Alpha: 0.8}, 2)
		},
		"ExposureBounds": func(ctx context.Context) (*Result, error) {
			return ExposureBoundsCtx(ctx, in, ExposureParams{MinSize: 1, KMin: 10, KMax: 40, Alpha: 0.8}, 2)
		},
		"GlobalBounds": func(ctx context.Context) (*Result, error) {
			return GlobalBoundsCtx(ctx, in, GlobalParams{MinSize: 1, KMin: 10, KMax: 40,
				Lower: ConstantBounds(10, 40, 1)}, 2)
		},
	}
	for name, run := range runs {
		want, err := run(context.Background())
		if err != nil {
			t.Fatalf("%s: uncanceled run failed: %v", name, err)
		}
		for _, budget := range []int64{1, 5, 25, 125, 625, 3125} {
			res, err := run(newBudgetCtx(budget))
			if err == nil {
				// Budget outlived the search: the result must be the real one.
				if len(res.Groups) != len(want.Groups) {
					t.Errorf("%s budget=%d: completed with %d k-groups, want %d",
						name, budget, len(res.Groups), len(want.Groups))
				}
				continue
			}
			var cerr *CanceledError
			if !errors.As(err, &cerr) {
				t.Errorf("%s budget=%d: want CanceledError, got %v", name, budget, err)
				continue
			}
			if cerr.NodesExamined > int64(bound)+budget*cancelStride {
				t.Errorf("%s budget=%d: examined %d nodes after cancellation, bound %d",
					name, budget, cerr.NodesExamined, int64(bound)+budget*cancelStride)
			}
		}
	}
}
