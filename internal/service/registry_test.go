package service

import (
	"strings"
	"testing"

	"rankfair"
)

const tinyCSV = "sex,region,score\nF,N,1\nM,S,9\nF,E,2\nM,W,8\n"

func TestRegistryAddGetEvict(t *testing.T) {
	r := NewRegistry(4)
	info, created, err := r.Add("tiny", []byte(tinyCSV), rankfair.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("fresh Add should report created=true")
	}
	if info.Rows != 4 || info.Columns != 3 {
		t.Errorf("info = %+v, want 4 rows, 3 columns", info)
	}
	if want := []string{"sex", "region"}; strings.Join(info.Attributes, ",") != strings.Join(want, ",") {
		t.Errorf("attributes = %v, want %v", info.Attributes, want)
	}
	if len(info.Numeric) != 1 || info.Numeric[0] != "score" {
		t.Errorf("numeric = %v, want [score]", info.Numeric)
	}
	if !strings.HasPrefix(info.ID, "ds-") || info.Hash == "" {
		t.Errorf("ID/Hash malformed: %+v", info)
	}

	table, got, ok := r.Get(info.ID)
	if !ok || table == nil || got.ID != info.ID {
		t.Fatalf("Get(%s) = %v, %v", info.ID, got, ok)
	}

	// Idempotent re-upload: same bytes, same record, no duplicate.
	again, againCreated, err := r.Add("other-name", []byte(tinyCSV), rankfair.CSVOptions{})
	if err != nil || again.ID != info.ID {
		t.Errorf("re-upload: %+v, %v; want same ID", again, err)
	}
	if againCreated {
		t.Error("idempotent re-upload should report created=false")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d after idempotent re-upload, want 1", r.Len())
	}

	if !r.Evict(info.ID) {
		t.Error("Evict should report true for present ID")
	}
	if r.Evict(info.ID) {
		t.Error("Evict should report false for absent ID")
	}
	if _, _, ok := r.Get(info.ID); ok {
		t.Error("Get should miss after Evict")
	}
}

func TestRegistryRejectsBadCSV(t *testing.T) {
	r := NewRegistry(4)
	for name, raw := range map[string]string{
		"empty":  "",
		"header": "a,b\n",
		"ragged": "a,b\n1,2\n3\n",
	} {
		if _, _, err := r.Add(name, []byte(raw), rankfair.CSVOptions{}); err == nil {
			t.Errorf("%s: Add accepted invalid CSV", name)
		}
	}
}

func TestRegistryCapEviction(t *testing.T) {
	r := NewRegistry(2)
	ids := make([]string, 3)
	for i := range ids {
		csv := tinyCSV + strings.Repeat("F,N,1\n", i+1) // distinct content
		info, _, err := r.Add("t", []byte(csv), rankfair.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want cap 2", r.Len())
	}
	if _, _, ok := r.Get(ids[0]); ok {
		t.Error("oldest dataset should have been evicted")
	}
	if _, _, ok := r.Get(ids[2]); !ok {
		t.Error("newest dataset should be resident")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry(4)
	a, _, _ := r.Add("a", []byte(tinyCSV), rankfair.CSVOptions{})
	b, _, _ := r.Add("b", []byte(tinyCSV+"F,N,3\n"), rankfair.CSVOptions{})
	list := r.List()
	if len(list) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(list))
	}
	got := map[string]bool{list[0].ID: true, list[1].ID: true}
	if !got[a.ID] || !got[b.ID] {
		t.Errorf("List = %v, want both %s and %s", list, a.ID, b.ID)
	}
}
