// Credit-scoring audit: an end-to-end loan-ranking review using the
// library's extension surface — suggested bounds, exposure-based fairness
// (position-discounted), bias-ranked reporting, and both report semantics
// (most general vs most specific).
//
// Run with:
//
//	go run ./examples/creditaudit
package main

import (
	"fmt"
	"log"

	"rankfair"
	"rankfair/internal/synth"
)

func main() {
	bundle := synth.GermanCredit(synth.DefaultGermanRows, 23)
	analyst, err := rankfair.New(bundle.Table, bundle.Ranker)
	check(err)

	kMin, kMax := 20, 60

	// 1. Let the library suggest lower bounds from a policy statement:
	// "every substantial group should hold at least 15% of every prefix".
	lower, err := rankfair.SuggestLowerBounds(kMin, kMax, 0.15)
	check(err)
	fmt.Printf("suggested bounds: L_%d=%d ... L_%d=%d\n\n", kMin, lower[0], kMax, lower[len(lower)-1])

	report, err := analyst.DetectGlobal(rankfair.GlobalParams{
		MinSize: 100, KMin: kMin, KMax: kMax, Lower: lower,
	})
	check(err)

	// 2. Rank the k=60 findings by bias magnitude, the output organization
	// the paper recommends for analysts.
	fmt.Printf("top findings at k=%d, by bias magnitude:\n", kMax)
	infos := report.InfoAt(kMax)
	for i, info := range infos {
		if i == 6 {
			fmt.Printf("  ... and %d more\n", len(infos)-6)
			break
		}
		fmt.Printf("  %s\n", report.Describe(info, kMax))
	}

	// 3. Exposure audit: counts can look fair while positions are not.
	// Groups stuck at the bottom of the prefix earn little exposure.
	exposure, err := analyst.DetectExposure(rankfair.ExposureParams{
		MinSize: 100, KMin: kMax, KMax: kMax, Alpha: 0.8,
	})
	check(err)
	countOnly, err := analyst.DetectProportional(rankfair.PropParams{
		MinSize: 100, KMin: kMax, KMax: kMax, Alpha: 0.8,
	})
	check(err)
	onlyExposure := diff(exposure.At(kMax), countOnly.At(kMax))
	fmt.Printf("\nexposure audit at k=%d: %d groups (count-based: %d)\n",
		kMax, len(exposure.At(kMax)), len(countOnly.At(kMax)))
	if len(onlyExposure) > 0 {
		fmt.Println("flagged only by exposure (present in the prefix, but near its bottom):")
		for i, g := range onlyExposure {
			if i == 8 {
				fmt.Printf("  ... and %d more\n", len(onlyExposure)-8)
				break
			}
			fmt.Printf("  %s\n", exposure.Format(g))
		}
	}

	// 4. The same biased region from the other end: most specific
	// descriptions for case-by-case review.
	specific, err := analyst.DetectGlobalLowerMostSpecific(rankfair.GlobalParams{
		MinSize: 100, KMin: kMax, KMax: kMax, Lower: lower[len(lower)-1:],
	})
	check(err)
	fmt.Printf("\nmost general descriptions: %d; most specific: %d\n",
		len(report.At(kMax)), len(specific.At(kMax)))
}

// diff returns patterns in a that are absent from b.
func diff(a, b []rankfair.Pattern) []rankfair.Pattern {
	var out []rankfair.Pattern
	for _, p := range a {
		found := false
		for _, q := range b {
			if p.Equal(q) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
