package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/obs"
)

const (
	clientTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	clientTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// newJSONLogger builds the JSON wide-event logger main.go installs for
// -audit-log, pointed at a test sink.
func newJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// doTraced performs a request carrying the given traceparent header and
// returns the response (body fully read) plus its bytes.
func doTraced(t *testing.T, method, url, traceparent string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestTraceparentPropagation: a request carrying a W3C traceparent keeps
// its trace ID end to end — the response header echoes it, and the job's
// exported span tree roots under the caller's span. A request without
// one still gets a stable derived identity.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))

	resp, raw := doTraced(t, http.MethodPost, ts.URL+"/v1/audits", clientTraceparent, AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	tp := resp.Header.Get("Traceparent")
	gotTrace, gotSpan, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response Traceparent %q does not parse", tp)
	}
	if gotTrace != clientTraceID {
		t.Errorf("response trace ID = %q, want the client's %q", gotTrace, clientTraceID)
	}
	if gotSpan == "00f067aa0ba902b7" {
		t.Error("response span ID echoes the client's span instead of a server span")
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	awaitReport(t, ts, view.ID)

	// The finished job's trace adopted the client identity: same trace
	// ID, rooted under the client's span.
	var tree obs.TraceTree
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/"+view.ID+"/trace", nil, &tree); code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if tree.TraceID != clientTraceID {
		t.Errorf("job trace ID = %q, want adopted %q", tree.TraceID, clientTraceID)
	}
	if tree.ParentSpan != "00f067aa0ba902b7" {
		t.Errorf("job root parent span = %q, want the client's span", tree.ParentSpan)
	}
	if got := tree.Root.Attrs; len(got) == 0 {
		t.Error("root span has no attributes; want outcome/cache")
	}

	// No traceparent: the response still carries a parseable identity,
	// deterministic in the request ID.
	resp2, _ := doTraced(t, http.MethodGet, ts.URL+"/v1/datasets", "", nil)
	tid2, _, ok := obs.ParseTraceparent(resp2.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("derived Traceparent %q does not parse", resp2.Header.Get("Traceparent"))
	}
	if want := obs.DeriveTraceID(resp2.Header.Get("X-Request-ID")); tid2 != want {
		t.Errorf("derived trace ID = %q, want %q (sha-256 of the request ID)", tid2, want)
	}
}

// TestErrorEnvelopeCarriesTraceID: every error path's JSON envelope
// echoes the request's trace ID so a failed call can be joined to its
// distributed trace without header spelunking.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	_, ts := testServer(t)

	for name, probe := range map[string]struct {
		method, path string
		body         any
		wantStatus   int
	}{
		"not_found":       {http.MethodGet, "/v1/datasets/nope", nil, http.StatusNotFound},
		"bad_request":     {http.MethodPost, "/v1/audits", []string{"not", "an", "object"}, http.StatusBadRequest},
		"trace_not_found": {http.MethodGet, "/v1/audits/job-999999/trace", nil, http.StatusNotFound},
	} {
		resp, raw := doTraced(t, probe.method, ts.URL+probe.path, clientTraceparent, probe.body)
		if resp.StatusCode != probe.wantStatus {
			t.Errorf("%s: status %d, want %d: %s", name, resp.StatusCode, probe.wantStatus, raw)
			continue
		}
		var envelope struct {
			Error struct {
				TraceID string `json:"trace_id"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			t.Errorf("%s: envelope does not decode: %v: %s", name, err, raw)
			continue
		}
		if envelope.Error.TraceID != clientTraceID {
			t.Errorf("%s: envelope trace_id = %q, want %q", name, envelope.Error.TraceID, clientTraceID)
		}
		if _, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); !ok {
			t.Errorf("%s: error response has no parseable Traceparent", name)
		}
	}
}

// TestWideEventAuditLog: one structured record per terminal audit with
// the full correlation set — request and trace IDs, dataset coordinates,
// phase durations, search stats and the cache disposition.
func TestWideEventAuditLog(t *testing.T) {
	var sink syncWriter
	svc := mustNew(t, Config{
		Workers: 2, CacheEntries: 8, MaxDatasets: 4,
		AuditLog: newJSONLogger(&sink),
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})

	info := upload(t, ts, biasedCSV(120))
	params := rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8}
	resp, raw := doTraced(t, http.MethodPost, ts.URL+"/v1/audits", clientTraceparent, AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(), Params: params,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	awaitReport(t, ts, view.ID)
	awaitReport(t, ts, submitAudit(t, ts, info.ID, params).ID) // cache hit

	var events []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("audit log line is not JSON: %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("audit log has %d records, want 2:\n%s", len(events), sink.String())
	}

	first := events[0]
	for key, want := range map[string]any{
		"job":             view.ID,
		"request_id":      resp.Header.Get("X-Request-ID"),
		"trace_id":        clientTraceID,
		"dataset":         info.ID,
		"dataset_hash":    info.Hash,
		"dataset_version": float64(info.Version),
		"measure":         "prop",
		"outcome":         "ok",
		"cache":           "miss",
		"strategy":        "index",
	} {
		if got := first[key]; got != want {
			t.Errorf("wide event %s = %v, want %v", key, got, want)
		}
	}
	for _, key := range []string{"queue_ms", "run_ms", "serialize_ms", "workers", "nodes_expanded"} {
		if _, ok := first[key]; !ok {
			t.Errorf("wide event is missing %q: %v", key, first)
		}
	}
	if run, sz := first["run_ms"].(float64), first["serialize_ms"].(float64); sz <= 0 || run < sz {
		t.Errorf("phase durations implausible: run_ms=%v serialize_ms=%v", run, sz)
	}
	if events[1]["cache"] != "hit" {
		t.Errorf("second audit's wide event cache = %v, want hit", events[1]["cache"])
	}
	if events[1]["trace_id"] == clientTraceID {
		t.Error("cache-hit audit reuses the first request's trace ID")
	}
}

// TestShedJobTraceOutcome: a job shed at dequeue (its budget consumed by
// the queue wait) still lands a trace in the ring with the terminal
// outcome on the root span, and its wide event records the shed.
func TestShedJobTraceOutcome(t *testing.T) {
	var sink syncWriter
	m := NewManager(1, 64)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	traces := obs.NewTraceStore(64)
	m.SetObserver(&JobObserver{Traces: traces, AuditLog: newJSONLogger(&sink)})

	block := make(chan struct{})
	holder := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		<-block
		return &rankfair.ReportJSON{}, false, nil
	}
	doomed := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		return &rankfair.ReportJSON{}, false, nil
	}
	hv, err := m.Submit("ds", rankfair.AuditParams{}, holder)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := m.Submit("ds", rankfair.AuditParams{}, doomed,
		WithBudget(5*time.Millisecond), WithMeta(JobMeta{TraceID: clientTraceID, RequestID: "req-shed"}))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the doomed job's budget expire while queued
	close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, hv.ID); err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(ctx, dv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != JobFailed || view.ErrorCode != CodeShed {
		t.Fatalf("doomed job ended %s/%s, want failed/shed", view.Status, view.ErrorCode)
	}

	tr, ok := traces.Get(dv.ID)
	if !ok {
		t.Fatal("shed job has no trace in the ring")
	}
	tree := tr.Tree()
	if got := tree.Root.Attrs; len(got) == 0 || got[0].Key != "outcome" || got[0].Value != "shed" {
		t.Errorf("shed root span attrs = %v, want outcome=shed", got)
	}
	if tree.TraceID != clientTraceID {
		t.Errorf("shed trace ID = %q, want adopted %q", tree.TraceID, clientTraceID)
	}
	if !strings.Contains(sink.String(), `"outcome":"shed"`) || !strings.Contains(sink.String(), `"request_id":"req-shed"`) {
		t.Errorf("wide event for the shed job is missing:\n%s", sink.String())
	}

	// A budget expiring mid-run lands the same way: terminal outcome on
	// the root span, deadline_exceeded in the wide event.
	slow := func(ctx context.Context) (*rankfair.ReportJSON, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	}
	sv, err := m.Submit("ds", rankfair.AuditParams{}, slow, WithBudget(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	view, err = m.Wait(ctx, sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != JobFailed || view.ErrorCode != CodeDeadlineExceeded {
		t.Fatalf("slow job ended %s/%s, want failed/deadline_exceeded", view.Status, view.ErrorCode)
	}
	tr, ok = traces.Get(sv.ID)
	if !ok {
		t.Fatal("deadlined job has no trace in the ring")
	}
	if got := tr.Tree().Root.Attrs; len(got) == 0 || got[0].Value != CodeDeadlineExceeded {
		t.Errorf("deadlined root span attrs = %v, want outcome=%s", got, CodeDeadlineExceeded)
	}
	if !strings.Contains(sink.String(), `"outcome":"deadline_exceeded"`) {
		t.Errorf("wide event for the deadlined job is missing:\n%s", sink.String())
	}
}

// TestOpenMetricsNegotiation: an OpenMetrics Accept header switches the
// scrape to the 1.0 exposition (validated strictly, exemplars attached),
// while the default scrape stays the plain 0.0.4 text format with no
// exemplar syntax — byte-compatible with pre-exemplar consumers.
func TestOpenMetricsNegotiation(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))
	view := submitAudit(t, ts, info.ID,
		rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8})
	awaitReport(t, ts, view.ID)

	get := func(accept string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	respOM, om := get("application/openmetrics-text; version=1.0.0")
	if got := respOM.Header.Get("Content-Type"); got != obs.ContentTypeOpenMetrics {
		t.Errorf("OM Content-Type = %q", got)
	}
	if err := obs.ValidateOpenMetrics([]byte(om)); err != nil {
		t.Fatalf("OM scrape fails strict validation: %v", err)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OM scrape is not terminated by # EOF")
	}
	if !strings.Contains(om, `# {trace_id="`) {
		t.Error("OM scrape carries no exemplars after a completed audit")
	}

	resp004, plain := get("")
	if got := resp004.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("default Content-Type = %q", got)
	}
	if strings.Contains(plain, "trace_id") || strings.Contains(plain, "# EOF") {
		t.Error("exemplar syntax leaked into the 0.0.4 exposition")
	}
	// The negotiation is per-request, not sticky: a second default scrape
	// after the OM one differs only in sample values, never in shape.
	if strings.Contains(plain, "#") && !strings.Contains(plain, "# HELP") {
		t.Error("default scrape shape changed")
	}
}

// collectorState is a minimal OTLP/HTTP collector fake for service-level
// tests: it records request counts per path and can stall forever.
type collectorState struct {
	mu     sync.Mutex
	traces int
	stall  chan struct{} // non-nil: every request blocks until closed
}

func (c *collectorState) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.stall != nil {
			<-c.stall
		}
		c.mu.Lock()
		if r.URL.Path == "/v1/traces" {
			c.traces++
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *collectorState) traceCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traces
}

// TestExporterDoesNotChangeReports: the audit report served with OTLP
// export enabled is byte-identical to the one served without it — the
// exporter observes, never participates.
func TestExporterDoesNotChangeReports(t *testing.T) {
	collector := &collectorState{}
	cts := httptest.NewServer(collector.handler())
	t.Cleanup(cts.Close)

	fetch := func(cfg Config) []byte {
		svc := mustNew(t, cfg)
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
		info := upload(t, ts, biasedCSV(150))
		view := submitAudit(t, ts, info.ID,
			rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8})
		awaitReport(t, ts, view.ID)
		resp, err := http.Get(ts.URL + "/v1/audits/" + view.ID + "/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return raw
	}

	plain := fetch(Config{Workers: 2, CacheEntries: 8, MaxDatasets: 4})
	exported := fetch(Config{Workers: 2, CacheEntries: 8, MaxDatasets: 4, OTLPEndpoint: cts.URL})
	if !bytes.Equal(plain, exported) {
		t.Errorf("report changed with export enabled:\n%s\n%s", plain, exported)
	}
	// Shutdown drains the queue, so by now the collector saw the trace.
	if collector.traceCount() == 0 {
		t.Error("collector received no trace export")
	}
}

// TestStalledCollectorNeverBlocksAudits: with the collector wedged and a
// one-slot export queue, audits must keep completing at full speed and
// the overflow must surface as drops, not latency.
func TestStalledCollectorNeverBlocksAudits(t *testing.T) {
	collector := &collectorState{stall: make(chan struct{})}
	cts := httptest.NewServer(collector.handler())
	t.Cleanup(cts.Close)

	// The aggressive metric interval wedges the export goroutine in a
	// stalled POST almost immediately, so finished-audit traces pile into
	// the one-slot queue with nothing draining it.
	svc := mustNew(t, Config{
		Workers: 2, CacheEntries: 8, MaxDatasets: 4,
		OTLPEndpoint: cts.URL, OTLPQueue: 1, OTLPInterval: time.Millisecond,
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	// Registered last → runs first: release the collector before Shutdown
	// so the exporter's drain isn't waiting out its HTTP timeout.
	t.Cleanup(func() { close(collector.stall) })

	info := upload(t, ts, biasedCSV(120))
	start := time.Now()
	for i := 0; i < 8; i++ {
		// Distinct KMax per audit defeats the result cache: every audit
		// computes, finishes, and enqueues a trace at the wedged exporter.
		view := submitAudit(t, ts, info.ID,
			rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 12 + i, Alpha: 0.8})
		awaitReport(t, ts, view.ID)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("audits took %v against a stalled collector", elapsed)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "rankfaird_otlp_dropped_total") {
		t.Fatal("scrape is missing rankfaird_otlp_dropped_total")
	}
	var dropped float64
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "rankfaird_otlp_dropped_total ") {
			fmt.Sscanf(line, "rankfaird_otlp_dropped_total %f", &dropped)
		}
	}
	if dropped == 0 {
		t.Error("stalled collector produced no drops; the enqueue may be blocking")
	}
}

// TestTraceRingEvictionConcurrentGet hammers a one-slot trace ring with
// concurrent finishing audits and trace reads — the eviction path racing
// GET /v1/audits/{id}/trace must stay data-race free (run under -race).
func TestTraceRingEvictionConcurrentGet(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4, CacheEntries: 8, MaxDatasets: 4, TraceEntries: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	info := upload(t, ts, biasedCSV(100))

	const auditors = 4
	ids := make(chan string, auditors*8)
	var wg sync.WaitGroup
	for g := 0; g < auditors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var view JobView
				code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
					Dataset: info.ID, Ranker: scoreRanker(),
					Params: rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 12 + g*8 + i, Alpha: 0.8},
				}, &view)
				if code != http.StatusAccepted {
					t.Errorf("submit: status %d", code)
					return
				}
				awaitReport(t, ts, view.ID)
				ids <- view.ID
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Readers chase the writers: every finished ID is fetched repeatedly
	// while later audits evict it from the one-slot ring. 200 (still
	// resident) and 404 (evicted) are both correct; racing is not.
	var seen []string
	for {
		select {
		case id := <-ids:
			seen = append(seen, id)
		case <-done:
			for _, id := range seen {
				resp, err := http.Get(ts.URL + "/v1/audits/" + id + "/trace")
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("GET trace %s: status %d", id, resp.StatusCode)
				}
			}
			return
		default:
			if len(seen) > 0 {
				resp, err := http.Get(ts.URL + "/v1/audits/" + seen[len(seen)-1] + "/trace")
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
}
