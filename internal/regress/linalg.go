package regress

import (
	"errors"
	"math"
)

// sym is a dense symmetric matrix stored as the upper triangle.
type sym struct {
	n int
	a []float64 // row-major upper triangle: (i,j) with j >= i at idx(i,j)
}

func newSym(n int) *sym {
	return &sym{n: n, a: make([]float64, n*(n+1)/2)}
}

func (s *sym) idx(i, j int) int {
	// j >= i assumed; row i starts after i full rows of decreasing length.
	return i*s.n - i*(i-1)/2 + (j - i)
}

func (s *sym) at(i, j int) float64 {
	if j < i {
		i, j = j, i
	}
	return s.a[s.idx(i, j)]
}

func (s *sym) add(i, j int, v float64) {
	if j < i {
		i, j = j, i
	}
	s.a[s.idx(i, j)] += v
}

// solveCholesky solves A x = b for symmetric positive definite A.
func solveCholesky(A *sym, b []float64) ([]float64, error) {
	n := A.n
	// L is lower triangular, stored dense row-major for simplicity.
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, i+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := A.at(i, j)
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, errors.New("matrix is not positive definite")
				}
				L[i][j] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	// Forward solve L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * z[k]
		}
		z[i] = sum / L[i][i]
	}
	// Back solve L^T x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= L[k][i] * x[k]
		}
		x[i] = sum / L[i][i]
	}
	return x, nil
}
