package main

import "testing"

func TestRunDemoExplain(t *testing.T) {
	if err := run("", "student", 150, 1, "", "Medu=primary", 30, "ridge", 8); err != nil {
		t.Fatalf("ridge: %v", err)
	}
	if err := run("", "student", 150, 1, "", "Medu=primary,sex=F", 30, "tree", 4); err != nil {
		t.Fatalf("tree multi-attribute: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                       string
		input, demo, rankBy, group string
		rows, k, perms             int
		model                      string
	}{
		{"no group", "", "student", "", "", 100, 20, 8, "ridge"},
		{"bad assignment", "", "student", "", "Medu", 100, 20, 8, "ridge"},
		{"unknown attr", "", "student", "", "nope=1", 100, 20, 8, "ridge"},
		{"unknown value", "", "student", "", "Medu=phd", 100, 20, 8, "ridge"},
		{"unknown model", "", "student", "", "Medu=primary", 100, 20, 8, "svm"},
		{"unknown demo", "", "zzz", "", "Medu=primary", 100, 20, 8, "ridge"},
		{"no source", "", "", "", "Medu=primary", 100, 20, 8, "ridge"},
		{"k too large", "", "student", "", "Medu=primary", 100, 5000, 8, "ridge"},
		{"missing file", "/nonexistent.csv", "", "score", "a=b", 0, 5, 8, "ridge"},
	}
	for _, c := range cases {
		if err := run(c.input, c.demo, c.rows, 1, c.rankBy, c.group, c.k, c.model, c.perms); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
