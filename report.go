package rankfair

import (
	"fmt"
	"sort"

	"rankfair/internal/core"
)

// GroupInfo enriches a detected group with the quantities behind its
// detection, supporting the output organization the paper recommends
// ("rank the groups by their overall size in the data or by the bias in
// their representation", Section III).
type GroupInfo struct {
	// Pattern is the detected group.
	Pattern Pattern
	// Size is s_D(p), the group's size in the dataset.
	Size int
	// TopK is s_{R_k(D)}(p), the group's size among the top-k.
	TopK int
	// Required is the bound the group violates at k: the lower bound for
	// under-representation reports, the upper bound for over-representation
	// reports.
	Required float64
	// Bias is the violation magnitude: Required-TopK for lower bounds,
	// TopK-Required for upper bounds. Larger means more biased.
	Bias float64
}

// reportKind identifies which bound a Report's groups violate.
type reportKind int

const (
	kindGlobalLower reportKind = iota
	kindPropLower
	kindGlobalUpper
	kindPropUpper
	kindExposure
)

// bound computes the violated bound for a pattern of size sD at prefix k.
func (r *Report) bound(sD, k int) float64 {
	n := float64(len(r.analyst.in.Rows))
	switch r.kind {
	case kindGlobalLower:
		return float64(r.gParams.Lower[k-r.gParams.KMin])
	case kindPropLower:
		return r.pParams.Alpha * float64(sD) * float64(k) / n
	case kindGlobalUpper:
		return float64(r.guParams.Upper[k-r.guParams.KMin])
	case kindExposure:
		ek := 0.0
		for i := 1; i <= k; i++ {
			ek += core.PositionExposure(i)
		}
		return r.eParams.Alpha * float64(sD) * ek / n
	default:
		return r.puParams.Beta * float64(sD) * float64(k) / n
	}
}

// InfoAt returns the result set at k enriched with sizes, bounds and bias
// magnitudes, sorted by descending bias (ties: larger groups first, then
// deterministic key order).
func (r *Report) InfoAt(k int) []GroupInfo {
	groups := r.At(k)
	if groups == nil {
		return nil
	}
	in := r.analyst.in
	infos := make([]GroupInfo, len(groups))
	for i, g := range groups {
		sD := g.Count(in.Rows)
		cnt := g.CountTopK(in.Rows, in.Ranking, k)
		req := r.bound(sD, k)
		var bias float64
		switch r.kind {
		case kindGlobalUpper, kindPropUpper:
			bias = float64(cnt) - req
		case kindExposure:
			bias = req - core.PatternExposure(in, g, k)
		default:
			bias = req - float64(cnt)
		}
		infos[i] = GroupInfo{Pattern: g, Size: sD, TopK: cnt, Required: req, Bias: bias}
	}
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].Bias != infos[b].Bias {
			return infos[a].Bias > infos[b].Bias
		}
		if infos[a].Size != infos[b].Size {
			return infos[a].Size > infos[b].Size
		}
		return infos[a].Pattern.Key() < infos[b].Pattern.Key()
	})
	return infos
}

// Measure returns the report's measure name as serialized in ReportJSON
// (e.g. "proportional-lower"). It identifies which bound the report's
// groups violate without exposing the parameter structs.
func (r *Report) Measure() string { return r.measureName() }

// Describe renders one enriched group as a human-readable line, e.g.
//
//	{sex=F, address=R}: 61 tuples, 2 of top-20 (bound 4.9, bias 2.9)
func (r *Report) Describe(info GroupInfo, k int) string {
	return fmt.Sprintf("%s: %d tuples, %d of top-%d (bound %.1f, bias %.1f)",
		r.Format(info.Pattern), info.Size, info.TopK, k, info.Required, info.Bias)
}

// SuggestLowerBounds proposes a non-decreasing lower-bound staircase for
// DetectGlobal from a target share: L_k = floor(share·k), clamped to at
// least 1 once share·k reaches 1. It addresses the paper's future-work item
// of automatic threshold suggestion with the simplest useful policy: "every
// substantial group should hold at least `share` of every prefix".
func SuggestLowerBounds(kMin, kMax int, share float64) ([]int, error) {
	if kMax < kMin || kMin < 1 {
		return nil, fmt.Errorf("rankfair: invalid k range [%d,%d]", kMin, kMax)
	}
	if share <= 0 || share > 1 {
		return nil, fmt.Errorf("rankfair: share %v outside (0,1]", share)
	}
	out := make([]int, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		out[k-kMin] = int(share * float64(k))
	}
	return out, nil
}

// attachKind records the bound parameters on a freshly built report so
// InfoAt can recompute per-group bounds.
func (r *Report) attachGlobal(p core.GlobalParams) *Report {
	r.kind = kindGlobalLower
	r.gParams = p
	return r
}

func (r *Report) attachProp(p core.PropParams) *Report {
	r.kind = kindPropLower
	r.pParams = p
	return r
}

func (r *Report) attachGlobalUpper(p core.GlobalUpperParams) *Report {
	r.kind = kindGlobalUpper
	r.guParams = p
	return r
}

func (r *Report) attachPropUpper(p core.PropUpperParams) *Report {
	r.kind = kindPropUpper
	r.puParams = p
	return r
}
