package rankfair

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// encodeReference is the output contract: json.Encoder with two-space
// indentation, exactly what WriteJSON produced before the hand-rolled
// encoder.
func encodeReference(t *testing.T, rj *ReportJSON) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rj); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkEncodes(t *testing.T, name string, rj *ReportJSON) {
	t.Helper()
	got := append(appendReportJSON(nil, rj), '\n')
	want := encodeReference(t, rj)
	if !bytes.Equal(got, want) {
		t.Errorf("%s: appendReportJSON diverges from encoding/json\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestAppendReportJSONMatchesEncodingJSON holds the pooled-buffer encoder
// to byte-identity with encoding/json across the structural edge cases:
// nil vs empty slices and maps, escaped strings (quotes, HTML characters,
// control bytes, U+2028/U+2029, invalid UTF-8), and float formats across
// the 'f'/'e' switchover.
func TestAppendReportJSONMatchesEncodingJSON(t *testing.T) {
	nasty := []string{
		"plain",
		`quote " backslash \ done`,
		"<script>&amp;</script>",
		"tab\tnewline\ncarriage\rbell\x07",
		"line para sep",
		"bad utf8: \xff\xfe ok",
		"ünïcödé ✓",
		"",
	}
	cases := map[string]*ReportJSON{
		"nil-everything": {Measure: "global-lower"},
		"empty-slices":   {Measure: "x", Attributes: []string{}, Results: []KGroupsJSON{}},
		"nil-groups":     {Measure: "x", Attributes: []string{"a"}, Results: []KGroupsJSON{{K: 3}}},
		"empty-map": {Measure: "x", Attributes: []string{"a"}, Results: []KGroupsJSON{
			{K: 3, Groups: []GroupJSON{{Pattern: map[string]string{}, Key: "k"}}},
		}},
		"nasty-strings": {
			Measure:       nasty[1],
			KMin:          -3,
			KMax:          1 << 40,
			Attributes:    nasty,
			NodesExamined: math.MaxInt64,
			Results: []KGroupsJSON{{K: 7, Groups: []GroupJSON{{
				Pattern: map[string]string{
					nasty[2]: nasty[3], nasty[4]: nasty[5], "zz": "last", "aa": "first", "": "empty",
				},
				Key:      nasty[6],
				Size:     -1,
				Required: 0.30000000000000004,
				Bias:     -2.9,
			}}}},
		},
		"stats-full": {
			Measure: "prop",
			Results: []KGroupsJSON{{K: 2}},
			Stats: &SearchStatsJSON{
				Strategy:             `ind"ex`,
				NodesExpanded:        math.MaxInt64,
				PrunedSize:           -1,
				PrunedBound:          1 << 40,
				PrunedDominated:      7,
				PostingIntersections: 0,
				CountOnlyPasses:      3,
				LazyScatters:         9,
				FrontierByLevel:      []int64{1, 0, -5, math.MaxInt64},
				PhaseMS:              &PhaseTimingsJSON{Analyst: 0.125, Search: 9.9e20, Serialize: 1e-7},
			},
		},
		"stats-minimal": {
			Measure: "global",
			Stats:   &SearchStatsJSON{Strategy: "lists", FrontierByLevel: []int64{}},
		},
		"float-forms": {Measure: "f", Results: []KGroupsJSON{{K: 1, Groups: []GroupJSON{
			{Pattern: map[string]string{"a": "b"}, Required: 1e-7, Bias: -1e-7},
			{Pattern: map[string]string{"a": "b"}, Required: 9.9e20, Bias: 1e21},
			{Pattern: map[string]string{"a": "b"}, Required: -1e22, Bias: 0},
			{Pattern: map[string]string{"a": "b"}, Required: math.SmallestNonzeroFloat64, Bias: math.MaxFloat64},
			{Pattern: map[string]string{"a": "b"}, Required: 1e-9, Bias: 2.5e-45},
		}}}},
	}
	for name, rj := range cases {
		checkEncodes(t, name, rj)
	}

	// Randomized floats across magnitudes, including negative zero.
	rng := rand.New(rand.NewSource(99))
	groups := make([]GroupJSON, 0, 200)
	for i := 0; i < 200; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(50)-25))
		g := GroupJSON{Pattern: map[string]string{}, Required: f, Bias: math.Copysign(0, -1)}
		groups = append(groups, g)
	}
	checkEncodes(t, "random-floats", &ReportJSON{Measure: "r", Results: []KGroupsJSON{{K: 1, Groups: groups}}})
}

// TestWriteJSONMatchesEncodingJSONOnRealReport pins WriteJSON end to end
// on a real detection report, including the pooled-buffer reuse across
// consecutive calls.
func TestWriteJSONMatchesEncodingJSONOnRealReport(t *testing.T) {
	a := encodeTestAnalyst(t)
	rep, err := a.DetectGlobal(GlobalParams{MinSize: 2, KMin: 3, KMax: 6, Lower: []int{1, 2, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeReference(t, rep.ToJSON())
	for round := 0; round < 3; round++ { // pooled buffer reuse
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("round %d: WriteJSON diverges from encoding/json\ngot:\n%s\nwant:\n%s", round, buf.Bytes(), want)
		}
	}
}

// TestToJSONPatternMapsIndependent pins the public ToJSON contract: the
// returned Pattern maps are caller-mutable copies, not aliases of the
// report's cached per-group label maps (which the streaming encoder
// shares internally).
func TestToJSONPatternMapsIndependent(t *testing.T) {
	a := encodeTestAnalyst(t)
	rep, err := a.DetectGlobal(GlobalParams{MinSize: 2, KMin: 3, KMax: 6, Lower: []int{1, 2, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	before := encodeReference(t, rep.ToJSON())
	j := rep.ToJSON()
	for _, kg := range j.Results {
		for i := range kg.Groups {
			for k := range kg.Groups[i].Pattern {
				kg.Groups[i].Pattern[k] = "REDACTED"
			}
		}
	}
	after := encodeReference(t, rep.ToJSON())
	if !bytes.Equal(before, after) {
		t.Error("mutating one ToJSON snapshot changed later serializations (label maps aliased)")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("REDACTED")) {
		t.Error("mutated snapshot leaked into WriteJSON output")
	}
}

// encodeTestAnalyst builds a small analyst with label strings that need
// escaping, so the real-report differential also exercises the string
// escaper.
func encodeTestAnalyst(t *testing.T) *Analyst {
	t.Helper()
	d := NewDataset()
	if err := d.AddCategorical("Group<&>", []string{`x"1`, "y z", `x"1`, "w", "y z", "w", `x"1`, "w"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddCategorical("Tier", []string{"a", "b", "a", "b", "a", "b", "a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNumeric("score", []float64{8, 7, 6, 5, 4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	a, err := New(d, &ByColumns{Keys: []ColumnKey{{Column: "score", Descending: true}}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}
