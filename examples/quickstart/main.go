// Quickstart: detect groups with biased representation in a ranking using
// the paper's running example (Figure 1): sixteen students ranked by grade
// with ties broken by fewer past failures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rankfair"
)

func main() {
	// Build the dataset: categorical attributes define the groups the
	// search can discover; numeric columns feed the ranker.
	students := rankfair.NewDataset()
	check(students.AddCategorical("Gender", []string{
		"F", "M", "M", "M", "M", "F", "F", "M", "F", "F", "M", "F", "F", "M", "F", "M"}))
	check(students.AddCategorical("School", []string{
		"MS", "MS", "GP", "GP", "MS", "MS", "GP", "GP", "MS", "MS", "MS", "GP", "GP", "MS", "GP", "GP"}))
	check(students.AddCategorical("Address", []string{
		"R", "R", "U", "U", "R", "U", "R", "R", "R", "R", "R", "U", "U", "U", "U", "U"}))
	check(students.AddCategorical("Failures", []string{
		"1", "1", "1", "2", "0", "1", "1", "1", "0", "2", "2", "0", "2", "1", "1", "0"}))
	check(students.AddNumeric("Grade", []float64{
		11, 15, 8, 4, 19, 4, 7, 6, 14, 7, 13, 20, 12, 13, 5, 9}))
	check(students.AddNumeric("FailuresNum", []float64{
		1, 1, 1, 2, 0, 1, 1, 1, 0, 2, 2, 0, 2, 1, 1, 0}))

	// The ranking algorithm is a black box to the detector; here it is the
	// paper's scholarship committee ranking.
	analyst, err := rankfair.New(students, &rankfair.ByColumns{Keys: []rankfair.ColumnKey{
		{Column: "Grade", Descending: true},
		{Column: "FailuresNum", Descending: false},
	}})
	check(err)

	// Problem 3.1: groups of at least 4 students must place at least 2
	// members in every top-k for k in [4,5].
	report, err := analyst.DetectGlobal(rankfair.GlobalParams{
		MinSize: 4,
		KMin:    4, KMax: 5,
		Lower: rankfair.ConstantBounds(4, 5, 2),
	})
	check(err)

	for k := 4; k <= 5; k++ {
		fmt.Printf("groups under-represented in the top-%d:\n", k)
		for _, g := range report.At(k) {
			fmt.Printf("  %s\n", report.Format(g))
		}
	}

	// Problem 3.2: the same question with proportional bounds — every
	// group of at least 5 students should hold roughly its overall share
	// of each top-k, with slack α = 0.9.
	prop, err := analyst.DetectProportional(rankfair.PropParams{
		MinSize: 5, KMin: 4, KMax: 5, Alpha: 0.9,
	})
	check(err)
	fmt.Println("\nproportionally under-represented (k=5):")
	for _, g := range prop.At(5) {
		fmt.Printf("  %s\n", prop.Format(g))
	}

	fmt.Printf("\nsearch examined %d pattern nodes\n", report.Stats.NodesExamined)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
