package rankfair_test

import (
	"fmt"
	"log"

	"rankfair"
	"rankfair/internal/synth"
)

// The examples run on the paper's Figure 1 dataset: sixteen students
// ranked by grade, ties broken by fewer failures.
func exampleAnalyst() *rankfair.Analyst {
	b := synth.RunningExample()
	a, err := rankfair.New(b.Table, b.Ranker)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

// Detect groups below a global lower bound (Problem 3.1, Example 2.4 of
// the paper: with L=2 at k=5, only one GP student makes the top five).
func ExampleAnalyst_detectGlobal() {
	a := exampleAnalyst()
	report, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 8,
		KMin:    5, KMax: 5,
		Lower: rankfair.ConstantBounds(5, 5, 2),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range report.At(5) {
		fmt.Println(report.Format(g))
	}
	// Output:
	// {School=GP}
}

// Detect groups below their proportional share (Problem 3.2, Example 4.9).
func ExampleAnalyst_detectProportional() {
	a := exampleAnalyst()
	report, err := a.DetectProportional(rankfair.PropParams{
		MinSize: 5,
		KMin:    4, KMax: 5,
		Alpha: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range report.At(5) {
		fmt.Println(report.Format(g))
	}
	// Output:
	// {Failures=1}
	// {Address=U}
	// {School=GP}
	// {Gender=F}
}

// Rank findings by the magnitude of their bound violation.
func ExampleReport_InfoAt() {
	a := exampleAnalyst()
	report, err := a.DetectGlobal(rankfair.GlobalParams{
		MinSize: 4, KMin: 4, KMax: 4, Lower: []int{2},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range report.InfoAt(4)[:2] {
		fmt.Println(report.Describe(info, 4))
	}
	// Output:
	// {Failures=2}: 4 tuples, 0 of top-4 (bound 2.0, bias 2.0)
	// {Failures=1}: 8 tuples, 1 of top-4 (bound 2.0, bias 1.0)
}

// Repair a prefix to meet explicit representation targets.
func ExampleAnalyst_RepairTopK() {
	a := exampleAnalyst()
	selected, err := a.RepairTopK("School", 5, map[string]rankfair.FairTopKConstraint{
		"GP": {Lower: 2},
		"MS": {Lower: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	in := a.Input()
	for _, ri := range selected {
		fmt.Printf("tuple %d (%s)\n", ri+1, a.Format(a.EmptyPattern().With(1, in.Rows[ri][1])))
	}
	// Output:
	// tuple 12 ({School=GP})
	// tuple 5 ({School=MS})
	// tuple 2 ({School=MS})
	// tuple 9 ({School=MS})
	// tuple 13 ({School=GP})
}

// Bind builds patterns from attribute labels.
func ExampleAnalyst_Bind() {
	a := exampleAnalyst()
	p, err := a.Bind(a.EmptyPattern(), "Gender", "F")
	if err != nil {
		log.Fatal(err)
	}
	p, err = a.Bind(p, "School", "MS")
	if err != nil {
		log.Fatal(err)
	}
	in := a.Input()
	fmt.Printf("%s: %d tuples, %d in the top-5\n",
		a.Format(p), p.Count(in.Rows), p.CountTopK(in.Rows, in.Ranking, 5))
	// Output:
	// {Gender=F, School=MS}: 4 tuples, 1 in the top-5
}
