package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"rankfair"
	"rankfair/internal/synth"
)

// TestCancelRunningAuditStopsSearch is the regression test for the job
// manager passing its job context into the lattice search: before the fix,
// Cancel only flipped a flag checked between phases, so a running audit
// burned a full traversal before the cancellation took effect. The audit
// below runs on the Theorem 3.3 worst-case construction (seconds of serial
// search); a cancel issued while it runs must surface as a canceled job
// long before the full traversal could have finished.
func TestCancelRunningAuditStopsSearch(t *testing.T) {
	const n = 17 // full serial search takes several seconds
	bundle := synth.WorstCase(n)
	var csv bytes.Buffer
	if err := rankfair.WriteCSV(&csv, bundle.Table); err != nil {
		t.Fatal(err)
	}
	svc := mustNew(t, Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	info, _, err := svc.Registry().Add("worst", csv.Bytes(), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, n+1)
	for i := range perm {
		perm[i] = i
	}
	view, err := svc.SubmitAudit(AuditRequest{
		Dataset: info.ID,
		Ranker:  RankerSpec{Ranking: perm},
		Params: rankfair.AuditParams{
			Measure: rankfair.MeasureGlobal, MinSize: 2, KMin: n, KMax: n, Lower: []int{n/2 + 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the job to actually start, then cancel it mid-search.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, ok := svc.Jobs().Get(view.ID)
		if !ok {
			t.Fatalf("job %s vanished", view.ID)
		}
		if cur.Status == JobRunning {
			break
		}
		if cur.Status != JobQueued {
			t.Fatalf("job %s reached %s before it could be canceled", view.ID, cur.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", view.ID)
		}
		time.Sleep(time.Millisecond)
	}
	canceledAt := time.Now()
	if !svc.Jobs().Cancel(view.ID) {
		t.Fatalf("Cancel(%s) reported missing job", view.ID)
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(waitCtx, view.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.Status != JobCanceled {
		t.Fatalf("job ended %s (err=%q), want canceled", final.Status, final.Error)
	}
	// The search must have stopped mid-lattice: with cancellation checked
	// every few hundred node expansions the job ends in well under the
	// seconds the full worst-case traversal needs.
	if waited := time.Since(canceledAt); waited > 5*time.Second {
		t.Errorf("cancellation took %v; the search likely ran to completion", waited)
	}
}

// TestAuditWorkersDefaultApplied checks the per-job override chain: a
// request that leaves workers unset inherits the service default, while an
// explicit value wins.
func TestAuditWorkersDefaultApplied(t *testing.T) {
	bundle := synth.WorstCase(4)
	var csv bytes.Buffer
	if err := rankfair.WriteCSV(&csv, bundle.Table); err != nil {
		t.Fatal(err)
	}
	svc := mustNew(t, Config{Workers: 1, AuditWorkers: 3})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	info, _, err := svc.Registry().Add("tiny", csv.Bytes(), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{0, 1, 2, 3, 4}
	req := AuditRequest{
		Dataset: info.ID,
		Ranker:  RankerSpec{Ranking: perm},
		Params: rankfair.AuditParams{
			Measure: rankfair.MeasureGlobal, MinSize: 1, KMin: 2, KMax: 4, Lower: []int{1, 1, 1},
		},
	}
	view, err := svc.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	if view.Params.Workers != 3 {
		t.Errorf("default audit workers not applied: got %d, want 3", view.Params.Workers)
	}
	req.Params.Workers = 2
	view, err = svc.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	if view.Params.Workers != 2 {
		t.Errorf("explicit workers overridden: got %d, want 2", view.Params.Workers)
	}
	req.Params.Workers = rankfair.MaxWorkers + 1
	if _, err := svc.SubmitAudit(req); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("out-of-range workers accepted: %v", err)
	}

	// An oversized operator default is clamped, not allowed to fail every
	// workers-unset audit at run time.
	svc2 := mustNew(t, Config{Workers: 1, AuditWorkers: rankfair.MaxWorkers + 100})
	t.Cleanup(func() { svc2.Shutdown(context.Background()) })
	info2, _, err := svc2.Registry().Add("tiny", csv.Bytes(), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}
	req.Params.Workers = 0
	req.Dataset = info2.ID
	view, err = svc2.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	if view.Params.Workers != rankfair.MaxWorkers {
		t.Errorf("oversized default not clamped: got %d, want %d", view.Params.Workers, rankfair.MaxWorkers)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc2.Jobs().Wait(waitCtx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Errorf("clamped-default audit ended %s: %s", final.Status, final.Error)
	}
}

// TestCancelDoesNotPoisonJoinedAudit: canceling a job must not fail an
// identical concurrent job that joined its in-flight computation — the
// survivor re-runs the search as the new owner.
func TestCancelDoesNotPoisonJoinedAudit(t *testing.T) {
	const n = 16 // sub-second-scale serial search: keeps the cancel-while-running window wide
	bundle := synth.WorstCase(n)
	var csv bytes.Buffer
	if err := rankfair.WriteCSV(&csv, bundle.Table); err != nil {
		t.Fatal(err)
	}
	svc := mustNew(t, Config{Workers: 2, QueueDepth: 4})
	t.Cleanup(func() { svc.Shutdown(context.Background()) })
	info, _, err := svc.Registry().Add("worst", csv.Bytes(), rankfair.CSVOptions{AllCategorical: true})
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, n+1)
	for i := range perm {
		perm[i] = i
	}
	req := AuditRequest{
		Dataset: info.ID,
		Ranker:  RankerSpec{Ranking: perm},
		Params: rankfair.AuditParams{
			Measure: rankfair.MeasureGlobal, MinSize: 2, KMin: n, KMax: n, Lower: []int{n/2 + 1},
		},
	}
	owner, err := svc.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := func(id string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			cur, ok := svc.Jobs().Get(id)
			if !ok {
				t.Fatalf("job %s vanished", id)
			}
			if cur.Status == JobRunning {
				return
			}
			if cur.Status != JobQueued || time.Now().After(deadline) {
				t.Fatalf("job %s is %s, want running", id, cur.Status)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRunning(owner.ID)
	joiner, err := svc.SubmitAudit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(joiner.ID) // blocked inside the owner's flight
	if !svc.Jobs().Cancel(owner.ID) {
		t.Fatalf("Cancel(%s) reported missing job", owner.ID)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc.Jobs().Wait(waitCtx, joiner.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone {
		t.Fatalf("joined audit ended %s (err=%q), want done despite the owner's cancellation",
			final.Status, final.Error)
	}
	ownerFinal, _ := svc.Jobs().Get(owner.ID)
	if ownerFinal.Status != JobCanceled {
		t.Errorf("owner ended %s, want canceled", ownerFinal.Status)
	}
}
