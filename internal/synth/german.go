package synth

import (
	"math"

	"rankfair/internal/dataset"
	"rankfair/internal/rank"
)

// DefaultGermanRows matches the Statlog German Credit dataset used in the
// paper (1,000 applicants, 20 attributes).
const DefaultGermanRows = 1000

// GermanCredit generates a synthetic German Credit dataset with the Statlog
// schema (20 categorical attributes). The paper ranks applicants by the
// creditworthiness score of Yang & Stoyanovich [36], whose exact form is
// unknown; we build a latent creditworthiness dominated by loan duration,
// credit amount, installment rate and residence length, so the Shapley
// analysis of Figure 10c recovers exactly those attributes.
func GermanCredit(n int, seed int64) *Bundle {
	g := newGen(seed)

	status := make([]string, n)
	durationCat := make([]string, n)
	history := make([]string, n)
	purpose := make([]string, n)
	amountCat := make([]string, n)
	savings := make([]string, n)
	employment := make([]string, n)
	installmentCat := make([]string, n)
	personal := make([]string, n)
	debtors := make([]string, n)
	residenceCat := make([]string, n)
	property := make([]string, n)
	ageCat := make([]string, n)
	otherPlans := make([]string, n)
	housing := make([]string, n)
	existingCredits := make([]string, n)
	job := make([]string, n)
	numLiable := make([]string, n)
	telephone := make([]string, n)
	foreign := make([]string, n)
	score := make([]float64, n)

	statusLabels := []string{"<0DM", "[0,200)DM", ">=200DM", "no-account"}
	historyLabels := []string{"critical", "delayed", "existing-paid", "all-paid", "no-credits"}
	purposeLabels := []string{"new-car", "used-car", "furniture", "radio/tv", "education", "business"}
	savingsLabels := []string{"<100DM", "[100,500)DM", "[500,1000)DM", ">=1000DM", "unknown"}
	employmentLabels := []string{"unemployed", "<1y", "[1,4)y", "[4,7)y", ">=7y"}
	personalLabels := []string{"male-div", "female-div/mar", "male-single", "male-mar", "female-single"}
	debtorsLabels := []string{"none", "co-applicant", "guarantor"}
	propertyLabels := []string{"real-estate", "savings-ins", "car", "none"}
	plansLabels := []string{"bank", "stores", "none"}
	housingLabels := []string{"rent", "own", "free"}
	jobLabels := []string{"unskilled-nonres", "unskilled-res", "skilled", "management"}

	for i := 0; i < n; i++ {
		// Latent financial standing drives the correlated attributes.
		wealth := g.normal(0, 1)

		statusIdx := g.choice([]float64{
			clamp(0.30-0.12*wealth, 0.03, 0.6),
			clamp(0.27-0.04*wealth, 0.05, 0.5),
			clamp(0.06+0.10*wealth, 0.02, 0.5),
			clamp(0.37+0.06*wealth, 0.05, 0.6),
		})
		status[i] = statusLabels[statusIdx]

		// Weaker standing pushes toward longer, larger, tighter loans.
		duration := clamp(math.Round(20-6.0*wealth+g.normal(0, 10)), 4, 72)
		amount := clamp(math.Round(3200-1100.0*wealth+math.Abs(g.normal(0, 1))*2800), 250, 18500)
		installment := float64(1 + g.choice([]float64{
			clamp(0.15+0.08*wealth, 0.02, 0.5),
			clamp(0.23+0.04*wealth, 0.05, 0.5),
			0.16,
			clamp(0.46-0.10*wealth, 0.05, 0.7),
		}))
		residence := float64(1 + g.choice([]float64{0.13, 0.31, 0.15, 0.41}))

		durationCat[i] = durationBucket(duration)
		amountCat[i] = amountBucket(amount)
		installmentCat[i] = ordinalLabels(5)[int(installment)]
		residenceCat[i] = ordinalLabels(5)[int(residence)]

		history[i] = historyLabels[g.choice([]float64{0.29, 0.09, 0.53, 0.05, 0.04})]
		purpose[i] = purposeLabels[g.choice([]float64{0.23, 0.10, 0.18, 0.28, 0.10, 0.11})]
		savings[i] = savingsLabels[g.choice([]float64{
			clamp(0.60-0.15*wealth, 0.1, 0.8),
			0.10,
			clamp(0.06+0.05*wealth, 0.02, 0.3),
			clamp(0.05+0.08*wealth, 0.02, 0.3),
			0.18,
		})]
		employment[i] = employmentLabels[g.choice([]float64{
			clamp(0.06-0.02*wealth, 0.01, 0.2),
			0.17,
			0.34,
			0.17,
			clamp(0.25+0.08*wealth, 0.05, 0.5),
		})]
		personal[i] = personalLabels[g.choice([]float64{0.05, 0.31, 0.55, 0.05, 0.04})]
		debtors[i] = debtorsLabels[g.choice([]float64{0.91, 0.04, 0.05})]
		property[i] = propertyLabels[g.choice([]float64{
			clamp(0.28+0.10*wealth, 0.05, 0.6),
			0.23,
			0.33,
			clamp(0.15-0.06*wealth, 0.03, 0.4),
		})]
		age := clamp(19+math.Abs(g.normal(0, 11))+3.0*clamp(wealth, -1, 2), 19, 75)
		ageCat[i] = germanAgeBucket(age)
		otherPlans[i] = plansLabels[g.choice([]float64{0.14, 0.05, 0.81})]
		housing[i] = housingLabels[g.choice([]float64{
			clamp(0.18-0.06*wealth, 0.04, 0.4),
			clamp(0.71+0.08*wealth, 0.3, 0.9),
			0.11,
		})]
		existingCredits[i] = ordinalLabels(5)[1+g.choice([]float64{0.63, 0.33, 0.03, 0.01})]
		job[i] = jobLabels[g.choice([]float64{
			0.02,
			clamp(0.22-0.08*wealth, 0.03, 0.4),
			0.63,
			clamp(0.13+0.09*wealth, 0.03, 0.4),
		})]
		numLiable[i] = ordinalLabels(3)[1+g.choice([]float64{0.85, 0.15})]
		telephone[i] = boolLabel(g.bern(clamp(0.40+0.10*wealth, 0.1, 0.8)))
		foreign[i] = boolLabel(g.bern(0.04))

		// Creditworthiness: dominated by duration, amount, installment
		// rate and residence length (Figure 10c's top-Shapley attributes).
		score[i] = -1.6*(duration-4)/68 - 1.3*(amount-250)/18250 -
			0.9*(installment-1)/3 + 1.1*(residence-1)/3 +
			0.25*wealth + g.normal(0, 0.18)
	}

	t := dataset.New()
	mustAddCat(t, "status_checking", status)
	mustAddCat(t, "duration", durationCat)
	mustAddCat(t, "credit_history", history)
	mustAddCat(t, "purpose", purpose)
	mustAddCat(t, "credit_amount", amountCat)
	mustAddCat(t, "savings", savings)
	mustAddCat(t, "employment_since", employment)
	mustAddCat(t, "installment_rate", installmentCat)
	mustAddCat(t, "personal_status_sex", personal)
	mustAddCat(t, "other_debtors", debtors)
	mustAddCat(t, "residence_length", residenceCat)
	mustAddCat(t, "property", property)
	mustAddCat(t, "age", ageCat)
	mustAddCat(t, "other_installment_plans", otherPlans)
	mustAddCat(t, "housing", housing)
	mustAddCat(t, "existing_credits", existingCredits)
	mustAddCat(t, "job", job)
	mustAddCat(t, "num_liable", numLiable)
	mustAddCat(t, "telephone", telephone)
	mustAddCat(t, "foreign_worker", foreign)
	mustAddNum(t, "credit_score", score)

	return &Bundle{
		Name:  "german",
		Table: t,
		Ranker: &rank.ByColumns{Keys: []rank.ColumnKey{
			{Column: "credit_score", Descending: true},
		}},
	}
}

func durationBucket(v float64) string {
	switch {
	case v < 12:
		return "<12m"
	case v < 24:
		return "[12,24)m"
	case v < 36:
		return "[24,36)m"
	default:
		return ">=36m"
	}
}

func amountBucket(v float64) string {
	switch {
	case v < 1500:
		return "<1500"
	case v < 3500:
		return "[1500,3500)"
	case v < 7000:
		return "[3500,7000)"
	default:
		return ">=7000"
	}
}

func germanAgeBucket(v float64) string {
	switch {
	case v < 30:
		return "<30"
	case v < 45:
		return "[30,45)"
	default:
		return ">=45"
	}
}
