package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int32{0, 0, 1, 2}, 3, []string{"a", "b", "c"})
	if h.N != 4 {
		t.Fatalf("N = %d", h.N)
	}
	want := []float64{0.5, 0.25, 0.25}
	sum := 0.0
	for i, w := range want {
		if math.Abs(h.Props[i]-w) > 1e-12 {
			t.Errorf("prop[%d] = %v, want %v", i, h.Props[i], w)
		}
		sum += h.Props[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("props sum to %v", sum)
	}
}

func TestHistogramEmptyAndNilLabels(t *testing.T) {
	h := NewHistogram(nil, 2, nil)
	if h.N != 0 || h.Props[0] != 0 || h.Props[1] != 0 {
		t.Error("empty histogram should be all zeros")
	}
	if h.Labels[1] != "1" {
		t.Errorf("auto label = %q", h.Labels[1])
	}
	// Out-of-range codes are ignored rather than panicking.
	h2 := NewHistogram([]int32{0, 7, -1}, 2, nil)
	if h2.Props[0] != 1.0/3 {
		t.Errorf("prop[0] = %v", h2.Props[0])
	}
}

func TestComparisonTotalVariation(t *testing.T) {
	c := &Comparison{
		Attribute: "x",
		TopK:      NewHistogram([]int32{0, 0}, 2, nil),
		Group:     NewHistogram([]int32{1, 1}, 2, nil),
	}
	if tv := c.TotalVariation(); math.Abs(tv-1) > 1e-12 {
		t.Errorf("disjoint distributions TV = %v, want 1", tv)
	}
	same := &Comparison{
		Attribute: "x",
		TopK:      NewHistogram([]int32{0, 1}, 2, nil),
		Group:     NewHistogram([]int32{1, 0}, 2, nil),
	}
	if tv := same.TotalVariation(); math.Abs(tv) > 1e-12 {
		t.Errorf("identical distributions TV = %v, want 0", tv)
	}
}

func TestComparisonRender(t *testing.T) {
	c := &Comparison{
		Attribute: "grade",
		TopK:      NewHistogram([]int32{1, 1, 1}, 2, []string{"low", "high"}),
		Group:     NewHistogram([]int32{0, 0, 1}, 2, []string{"low", "high"}),
	}
	out := c.Render()
	for _, want := range []string{"grade", "low", "high", "top-k", "group", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}
