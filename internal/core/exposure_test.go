package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/core"
)

// TestQuickExposureBoundsMatchesIterTD: the incremental exposure algorithm
// agrees with the per-k baseline on random inputs and parameters.
func TestQuickExposureBoundsMatchesIterTD(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng)
		n := len(in.Rows)
		kMin := 1 + rng.Intn(5)
		kMax := kMin + rng.Intn(15)
		if kMax > n {
			kMax = n
		}
		minSize := 1 + rng.Intn(5)
		alpha := 0.2 + rng.Float64()
		params := core.ExposureParams{MinSize: minSize, KMin: kMin, KMax: kMax, Alpha: alpha}
		base, err := core.IterTDExposure(in, params)
		if err != nil {
			t.Logf("IterTDExposure: %v", err)
			return false
		}
		opt, err := core.ExposureBounds(in, params)
		if err != nil {
			t.Logf("ExposureBounds: %v", err)
			return false
		}
		for k := kMin; k <= kMax; k++ {
			if !sameGroups(base.At(k), opt.At(k)) {
				t.Logf("seed %d k=%d: base %v != opt %v (α=%v τs=%d)", seed, k, base.At(k), opt.At(k), alpha, minSize)
				return false
			}
		}
		if opt.Stats.NodesExamined > base.Stats.NodesExamined {
			t.Logf("seed %d: optimized examined more nodes (%d > %d)", seed, opt.Stats.NodesExamined, base.Stats.NodesExamined)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(43)); err != nil {
		t.Fatal(err)
	}
}

func TestExposureBoundsRunningExample(t *testing.T) {
	in := runningInput(t)
	params := core.ExposureParams{MinSize: 4, KMin: 4, KMax: 8, Alpha: 0.8}
	base, err := core.IterTDExposure(in, params)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.ExposureBounds(in, params)
	if err != nil {
		t.Fatal(err)
	}
	for k := 4; k <= 8; k++ {
		if !sameGroups(base.At(k), opt.At(k)) {
			t.Errorf("k=%d: %v != %v", k, base.At(k), opt.At(k))
		}
	}
	if len(opt.At(4)) == 0 {
		t.Error("expected exposure-biased groups at k=4")
	}
}

func TestExposureBoundsValidation(t *testing.T) {
	in := runningInput(t)
	bad := []core.ExposureParams{
		{MinSize: 1, KMin: 0, KMax: 4, Alpha: 0.5},
		{MinSize: 1, KMin: 1, KMax: 4, Alpha: -1},
		{MinSize: 1, KMin: 1, KMax: 99, Alpha: 0.5},
	}
	for i, p := range bad {
		if _, err := core.ExposureBounds(in, p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
