package core

import (
	"fmt"
	"sort"

	"rankfair/internal/pattern"
)

// gnode is a node of the persistent search tree maintained by GLOBALBOUNDS
// across consecutive k values.
type gnode struct {
	p        pattern.Pattern
	sD       int      // size in D (never changes)
	cnt      int      // size in the current top-k
	biased   bool     // cnt < L_k
	expanded bool     // children have been generated
	children []*gnode // explored children with sD >= minSize
}

// globalState holds the incremental search state of Algorithm 2.
type globalState struct {
	in     *Input
	params *GlobalParams
	stats  *Stats

	roots []*gnode
	// biasedSet is the biased frontier: Res ∪ DRes of the paper.
	biasedSet map[*gnode]struct{}
	// res / dres split the frontier into most general biased patterns and
	// dominated biased patterns.
	res  map[*gnode]struct{}
	dres map[*gnode]struct{}
}

// GlobalBounds is Algorithm 2 (GLOBALBOUNDS): detection of groups with
// biased representation under global lower bounds, computed incrementally
// across k. When L_k = L_{k-1}, the search for k starts from the endpoint of
// the search for k-1: only frontier patterns satisfied by the newly inserted
// tuple R(D)[k] can change status, and a frontier pattern whose count rises
// to the bound resumes the search in its unexplored subtree
// (searchFromNode). When L_k increases, a fresh top-down search is performed
// (the paper's rule; it requires a non-decreasing bound sequence).
func GlobalBounds(in *Input, params GlobalParams) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	for i := 1; i < len(params.Lower); i++ {
		if params.Lower[i] < params.Lower[i-1] {
			return nil, fmt.Errorf("core: GlobalBounds requires non-decreasing lower bounds, got L=%d after L=%d (use IterTDGlobal for arbitrary bounds)",
				params.Lower[i], params.Lower[i-1])
		}
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &globalState{in: in, params: &params, stats: &res.Stats}

	st.fullBuild(params.KMin)
	res.Groups[0] = st.snapshot()
	for k := params.KMin + 1; k <= params.KMax; k++ {
		if params.lowerAt(k) > params.lowerAt(k-1) {
			st.fullBuild(k)
			res.Groups[k-params.KMin] = st.snapshot()
			continue
		}
		if st.step(k) {
			res.Groups[k-params.KMin] = st.snapshot()
		} else {
			res.Groups[k-params.KMin] = res.Groups[k-params.KMin-1]
		}
	}
	return res, nil
}

// fullBuild runs a complete top-down search at k, building the persistent
// node tree (the paper's TopDownSearch with DRes maintenance).
func (s *globalState) fullBuild(k int) {
	s.stats.FullSearches++
	s.roots = nil
	s.biasedSet = make(map[*gnode]struct{})
	s.res = make(map[*gnode]struct{})
	s.dres = make(map[*gnode]struct{})

	L := s.params.lowerAt(k)
	n := s.in.Space.NumAttrs()
	all := make([]int32, len(s.in.Rows))
	for i := range all {
		all[i] = int32(i)
	}
	top := make([]int32, k)
	for i := 0; i < k; i++ {
		top[i] = int32(s.in.Ranking[i])
	}
	root := &gnode{p: pattern.Empty(n), sD: len(all), cnt: k, expanded: true}
	s.roots = s.buildChildren(root, all, top, L)
	s.normalize()
}

// buildChildren recursively materializes the explored subtree below parent
// given its match lists, returning the explored children.
func (s *globalState) buildChildren(parent *gnode, matchAll, matchTop []int32, L int) []*gnode {
	var kids []*gnode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.params.MinSize {
				continue
			}
			child := &gnode{p: parent.p.With(a, int32(v)), sD: sD, cnt: len(topBuckets[v])}
			kids = append(kids, child)
			if child.cnt < L {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				continue
			}
			child.expanded = true
			child.children = s.buildChildren(child, allBuckets[v], topBuckets[v], L)
		}
	}
	parent.children = kids
	return kids
}

// step advances the state from k-1 to k with an unchanged bound. It returns
// whether the result set changed.
func (s *globalState) step(k int) bool {
	L := s.params.lowerAt(k)
	newRow := s.in.Rows[s.in.Ranking[k-1]]

	var freed []*gnode
	var walk func(nd *gnode)
	walk = func(nd *gnode) {
		if !nd.p.Matches(newRow) {
			return
		}
		s.stats.NodesExamined++
		nd.cnt++
		if nd.biased && nd.cnt >= L {
			nd.biased = false
			freed = append(freed, nd)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}
	if len(freed) == 0 {
		return false
	}

	for _, nd := range freed {
		delete(s.biasedSet, nd)
		delete(s.res, nd)
		delete(s.dres, nd)
	}
	// searchFromNode: resume the search in the unexplored subtrees of the
	// freed frontier nodes.
	for _, nd := range freed {
		s.expand(nd, k, L)
	}
	// Freed nodes can promote their dominated descendants into Res, and
	// concurrent expansions can discover biased patterns in any order, so
	// the Res/DRes split is recomputed from the updated frontier.
	s.normalize()
	return true
}

// expand resumes the top-down search below a node whose count rose to the
// bound. Newly reached biased descendants join the frontier; unbiased ones
// are expanded further.
func (s *globalState) expand(nd *gnode, k, L int) {
	if nd.expanded {
		return
	}
	nd.expanded = true
	matchAll := matchingRows(s.in.Rows, nd.p, nil)
	matchTop := matchingTopK(s.in.Rows, s.in.Ranking, nd.p, k)
	s.expandWith(nd, matchAll, matchTop, L)
}

func (s *globalState) expandWith(nd *gnode, matchAll, matchTop []int32, L int) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		allBuckets := partitionByValue(s.in.Rows, matchAll, a, card)
		topBuckets := partitionByValue(s.in.Rows, matchTop, a, card)
		for v := 0; v < card; v++ {
			s.stats.NodesExamined++
			sD := len(allBuckets[v])
			if sD < s.params.MinSize {
				continue
			}
			child := &gnode{p: nd.p.With(a, int32(v)), sD: sD, cnt: len(topBuckets[v])}
			nd.children = append(nd.children, child)
			if child.cnt < L {
				child.biased = true
				s.biasedSet[child] = struct{}{}
				continue
			}
			child.expanded = true
			s.expandWith(child, allBuckets[v], topBuckets[v], L)
		}
	}
}

// hasResAncestor reports whether some Res member is a proper subset of p.
func (s *globalState) hasResAncestor(p pattern.Pattern) bool {
	for nd := range s.res {
		if nd.p.ProperSubsetOf(p) {
			return true
		}
	}
	return false
}

// normalize recomputes the Res/DRes split of the biased frontier from
// scratch: Res is the set of biased patterns with no biased proper subset.
func (s *globalState) normalize() {
	nodes := make([]*gnode, 0, len(s.biasedSet))
	for nd := range s.biasedSet {
		nodes = append(nodes, nd)
	}
	sortNodes(nodes)
	s.res = make(map[*gnode]struct{}, len(nodes))
	s.dres = make(map[*gnode]struct{})
	for _, nd := range nodes {
		if s.hasResAncestor(nd.p) {
			s.dres[nd] = struct{}{}
		} else {
			s.res[nd] = struct{}{}
		}
	}
}

// snapshot renders the current Res as a sorted pattern slice.
func (s *globalState) snapshot() []Pattern {
	out := make([]Pattern, 0, len(s.res))
	for nd := range s.res {
		out = append(out, nd.p)
	}
	sortPatterns(out)
	return out
}

// sortNodes orders nodes by (number of bound attributes, key): generality
// order with deterministic ties.
func sortNodes(nodes []*gnode) {
	sort.Slice(nodes, func(i, j int) bool {
		ni, nj := nodes[i].p.NumAttrs(), nodes[j].p.NumAttrs()
		if ni != nj {
			return ni < nj
		}
		return nodes[i].p.Key() < nodes[j].p.Key()
	})
}

// matchingRows returns the indices of rows matching p. If base is non-nil
// only those indices are considered.
func matchingRows(rows [][]int32, p pattern.Pattern, base []int32) []int32 {
	var out []int32
	if base == nil {
		for i, r := range rows {
			if p.Matches(r) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, ri := range base {
		if p.Matches(rows[ri]) {
			out = append(out, ri)
		}
	}
	return out
}

// matchingTopK returns the indices of top-k rows matching p.
func matchingTopK(rows [][]int32, ranking []int, p pattern.Pattern, k int) []int32 {
	if k > len(ranking) {
		k = len(ranking)
	}
	var out []int32
	for _, ri := range ranking[:k] {
		if p.Matches(rows[ri]) {
			out = append(out, int32(ri))
		}
	}
	return out
}
