package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func space2() *Space {
	return &Space{Names: []string{"Gender", "School"}, Cards: []int{2, 2}}
}

func TestEmptyAndBasics(t *testing.T) {
	p := Empty(3)
	if p.NumAttrs() != 0 {
		t.Errorf("empty pattern binds %d attrs", p.NumAttrs())
	}
	if p.MaxAttrIdx() != -1 {
		t.Errorf("empty MaxAttrIdx = %d, want -1", p.MaxAttrIdx())
	}
	q := p.With(1, 2)
	if p.NumAttrs() != 0 {
		t.Error("With must not mutate the receiver")
	}
	if q.NumAttrs() != 1 || q.MaxAttrIdx() != 1 || q[1] != 2 {
		t.Errorf("unexpected q = %v", q)
	}
	if got := q.Without(1); got.NumAttrs() != 0 {
		t.Errorf("Without: %v", got)
	}
	if got := q.Attrs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Attrs = %v", got)
	}
}

func TestMatches(t *testing.T) {
	p := Pattern{Unbound, 1, Unbound}
	if !p.Matches([]int32{5, 1, 9}) {
		t.Error("should match")
	}
	if p.Matches([]int32{5, 0, 9}) {
		t.Error("should not match")
	}
	if !Empty(3).Matches([]int32{1, 2, 3}) {
		t.Error("empty pattern matches everything")
	}
}

func TestSubsetRelations(t *testing.T) {
	gf := Pattern{0, Unbound}  // {Gender=F}
	gfgp := Pattern{0, 0}      // {Gender=F, School=GP}
	gm := Pattern{1, Unbound}  // {Gender=M}
	sgp := Pattern{Unbound, 0} // {School=GP}

	if !gf.SubsetOf(gfgp) || !gf.ProperSubsetOf(gfgp) {
		t.Error("{G=F} ⊊ {G=F,S=GP}")
	}
	if gfgp.SubsetOf(gf) {
		t.Error("{G=F,S=GP} ⊄ {G=F}")
	}
	if !gf.SubsetOf(gf) || gf.ProperSubsetOf(gf) {
		t.Error("subset is reflexive, proper subset is not")
	}
	if gm.SubsetOf(gfgp) {
		t.Error("{G=M} ⊄ {G=F,S=GP}")
	}
	if !sgp.ProperSubsetOf(gfgp) {
		t.Error("{S=GP} ⊊ {G=F,S=GP}")
	}
	if gf.Equal(gm) || !gf.Equal(Pattern{0, Unbound}) {
		t.Error("Equal broken")
	}
}

// TestExample42SearchTreeChildren encodes Example 4.2: {G=F, S=GP} is a
// child of both {G=F} and {S=GP} in the pattern graph but only of {G=F} in
// the search tree.
func TestExample42SearchTreeChildren(t *testing.T) {
	sp := space2()
	gf := Pattern{0, Unbound}
	sgp := Pattern{Unbound, 0}
	gfgp := Pattern{0, 0}

	if !containsPattern(gf.Children(sp), gfgp) {
		t.Error("{G=F,S=GP} must be a tree child of {G=F}")
	}
	if containsPattern(sgp.Children(sp), gfgp) {
		t.Error("{G=F,S=GP} must not be a tree child of {S=GP}")
	}
	parents := gfgp.GraphParents()
	if len(parents) != 2 || !containsPattern(parents, gf) || !containsPattern(parents, sgp) {
		t.Errorf("graph parents = %v", parents)
	}
	if tp := gfgp.TreeParent(); !tp.Equal(gf) {
		t.Errorf("tree parent = %v, want {G=F}", tp)
	}
	if Empty(2).TreeParent() != nil {
		t.Error("empty pattern has no tree parent")
	}
}

func containsPattern(ps []Pattern, q Pattern) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

// TestQuickSearchTreeSpansPatternGraph: the search tree of Definition 4.1
// visits every non-empty pattern exactly once.
func TestQuickSearchTreeSpansPatternGraph(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sp := &Space{Names: make([]string, n), Cards: make([]int, n)}
		for i := 0; i < n; i++ {
			sp.Names[i] = "A"
			sp.Cards[i] = 1 + rng.Intn(3)
		}
		seen := make(map[string]bool)
		dups := false
		EnumerateAll(sp, func(p Pattern) bool {
			k := p.Key()
			if seen[k] {
				dups = true
				return false
			}
			seen[k] = true
			return true
		})
		return !dups && int64(len(seen)) == sp.NumPatterns()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKeyRoundTrip: ParseKey inverts Key.
func TestQuickKeyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		p := Empty(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				p[i] = int32(rng.Intn(5))
			}
		}
		q, err := ParseKey(p.Key())
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyErrors(t *testing.T) {
	for _, bad := range []string{"x", "1|y", "-3", ""} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q): want error", bad)
		}
	}
}

// TestQuickSubsetConsistentWithMatches: if p ⊆ q then every row matching q
// matches p.
func TestQuickSubsetConsistentWithMatches(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		q := Empty(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				q[i] = int32(rng.Intn(3))
			}
		}
		// p: random generalization of q.
		p := q.Clone()
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				p[i] = Unbound
			}
		}
		if !p.SubsetOf(q) {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			row := make([]int32, n)
			for i := range row {
				row[i] = int32(rng.Intn(3))
			}
			if q.Matches(row) && !p.Matches(row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMostGeneralMostSpecific(t *testing.T) {
	gf := Pattern{0, Unbound, Unbound}
	gfgp := Pattern{0, 0, Unbound}
	sms := Pattern{Unbound, 1, Unbound}
	all := []Pattern{gfgp, gf, sms}
	mg := MostGeneral(all)
	if len(mg) != 2 || !containsPattern(mg, gf) || !containsPattern(mg, sms) {
		t.Errorf("MostGeneral = %v", mg)
	}
	ms := MostSpecific(all)
	if len(ms) != 2 || !containsPattern(ms, gfgp) || !containsPattern(ms, sms) {
		t.Errorf("MostSpecific = %v", ms)
	}
	if MostGeneral(nil) != nil {
		t.Error("MostGeneral(nil) should be nil")
	}
}

func TestCounts(t *testing.T) {
	rows := [][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ranking := []int{3, 2, 1, 0}
	p := Pattern{1, Unbound}
	if got := p.Count(rows); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := p.CountTopK(rows, ranking, 2); got != 2 {
		t.Errorf("CountTopK(2) = %d, want 2", got)
	}
	if got := p.CountTopK(rows, ranking, 99); got != 2 {
		t.Errorf("CountTopK over-length = %d, want 2", got)
	}
	if got := Empty(2).CountTopK(rows, ranking, 3); got != 3 {
		t.Errorf("empty CountTopK(3) = %d, want 3", got)
	}
}

func TestFormatAndString(t *testing.T) {
	sp := space2()
	dicts := [][]string{{"F", "M"}, {"GP", "MS"}}
	p := Pattern{0, 1}
	if got := p.Format(sp, dicts); got != "{Gender=F, School=MS}" {
		t.Errorf("Format = %q", got)
	}
	if got := p.Format(sp, nil); got != "{Gender=0, School=1}" {
		t.Errorf("Format nil dicts = %q", got)
	}
	if got := p.String(); got != "{A1=0, A2=1}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty(2).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNumPatternsOverflowSaturates(t *testing.T) {
	sp := &Space{Names: make([]string, 64), Cards: make([]int, 64)}
	for i := range sp.Cards {
		sp.Cards[i] = 1000
	}
	if got := sp.NumPatterns(); got != 1<<63-1 {
		t.Errorf("NumPatterns should saturate, got %d", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	sp := &Space{Names: []string{"A", "B", "C"}, Cards: []int{2, 2, 2}}
	count := 0
	EnumerateAll(sp, func(Pattern) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d patterns, want 5", count)
	}
}

// TestQuickProposition43 encodes Proposition 4.3: when every attribute has
// at least two values, any single tuple satisfies at most half of the
// patterns in the search tree (siblings differing in one attribute value
// cannot both be satisfied).
func TestQuickProposition43(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sp := &Space{Names: make([]string, n), Cards: make([]int, n)}
		for i := 0; i < n; i++ {
			sp.Names[i] = "A"
			sp.Cards[i] = 2 + rng.Intn(3)
		}
		row := make([]int32, n)
		for i := range row {
			row[i] = int32(rng.Intn(sp.Cards[i]))
		}
		total, matched := 0, 0
		EnumerateAll(sp, func(p Pattern) bool {
			total++
			if p.Matches(row) {
				matched++
			}
			return true
		})
		return 2*matched <= total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
