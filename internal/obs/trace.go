package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Trace is one request's span tree: a root span covering the whole job
// plus nested phase spans (decode → rank → index → search → serialize).
// Spans are appended by at most a handful of goroutines per request, so a
// single trace-level mutex is cheap; the cost per span is one lock and a
// couple of time.Now calls, far below the phases it brackets.
type Trace struct {
	id     string
	w3c    string // 32-hex W3C trace ID; derived from id unless adopted
	parent string // incoming parent span ID (16 hex) for cross-process stitching
	mu     sync.Mutex
	root   *Span
	start  time.Time
	seq    int // span discriminator allocator; root took 0
}

// Span is one timed phase inside a trace. A nil *Span is a valid no-op
// receiver everywhere, which is how instrumented code paths stay free of
// "is tracing on" conditionals.
type Span struct {
	tr       *Trace
	name     string
	seq      int // per-trace discriminator behind the W3C span ID
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one string key/value annotation on a span (outcome codes,
// cache disposition). Kept as an ordered slice: spans carry a handful at
// most, and insertion order is the rendering order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// NewTrace starts a trace whose root span (named name) opens at start.
// The W3C trace ID is derived from the correlation ID; AdoptIdentity
// replaces it when the request arrived with its own traceparent.
func NewTrace(id, name string, start time.Time) *Trace {
	t := &Trace{id: id, w3c: DeriveTraceID(id), start: start}
	t.root = &Span{tr: t, name: name, start: start}
	return t
}

// ID returns the trace's correlation ID (the job ID on the audit path).
func (t *Trace) ID() string { return t.id }

// AdoptIdentity replaces the derived W3C identity with one carried in
// from the wire: the caller's trace ID becomes this trace's, and the
// caller's span ID becomes the root span's parent, so an exported trace
// stitches under the remote caller's span. Empty arguments are ignored;
// call before any child spans are opened.
func (t *Trace) AdoptIdentity(traceID, parentSpanID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if traceID != "" {
		t.w3c = traceID
	}
	if parentSpanID != "" {
		t.parent = parentSpanID
	}
}

// TraceID returns the W3C trace ID (32 lowercase hex characters).
func (t *Trace) TraceID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w3c
}

// ParentSpanID returns the adopted remote parent span ID, or "".
func (t *Trace) ParentSpanID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// W3CID returns the span's W3C span ID, derived from the trace ID and
// the span's per-trace sequence number.
func (s *Span) W3CID() string {
	if s == nil {
		return ""
	}
	return DeriveSpanID(s.tr.TraceID(), strconv.Itoa(s.seq))
}

// SetAttr annotates the span, replacing an existing value for the key.
// Nil-safe like every other span method.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the span's value for key, or "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// StartChild opens a child span starting now.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, time.Now(), time.Time{})
}

// ChildAt records a child span with explicit endpoints; a zero end leaves
// the span open for a later Finish.
func (s *Span) ChildAt(name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: start, end: end}
	s.tr.mu.Lock()
	s.tr.seq++
	c.seq = s.tr.seq
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// Finish closes the span now.
func (s *Span) Finish() { s.FinishAt(time.Now()) }

// FinishAt closes the span at a caller-provided instant.
func (s *Span) FinishAt(t time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.end = t
	s.tr.mu.Unlock()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context; StartSpan calls below it
// open children of that span. Attaching a nil span is a no-op carrier.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil when tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying it. Without a span on the context it returns
// the context unchanged and a nil span — Finish on nil is a no-op, so call
// sites need no tracing conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// SpanTree is the JSON rendering of one span: offsets are relative to the
// trace start so a reader can line phases up without absolute timestamps.
// SpanID is the W3C span ID the OTLP export carries for the same span, so
// a reader can cross-reference the in-process tree with a span in Jaeger
// or Tempo; Attrs carries the span's annotations (terminal outcome, cache
// disposition) in insertion order.
type SpanTree struct {
	Name       string     `json:"name"`
	SpanID     string     `json:"span_id,omitempty"`
	StartMS    float64    `json:"start_ms"`
	DurationMS float64    `json:"duration_ms"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanTree `json:"children,omitempty"`
}

// TraceTree is the JSON rendering of a whole trace.
type TraceTree struct {
	ID         string   `json:"id"`
	TraceID    string   `json:"trace_id,omitempty"`
	ParentSpan string   `json:"parent_span_id,omitempty"`
	Start      string   `json:"start"`
	DurationMS float64  `json:"duration_ms"`
	Root       SpanTree `json:"root"`
}

// Tree snapshots the trace as a JSON-renderable span tree. Open spans
// render with duration 0.
func (t *Trace) Tree() TraceTree {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.root.treeLocked(t.start, t.w3c)
	return TraceTree{
		ID:         t.id,
		TraceID:    t.w3c,
		ParentSpan: t.parent,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMS: root.DurationMS,
		Root:       root,
	}
}

func (s *Span) treeLocked(origin time.Time, traceID string) SpanTree {
	out := SpanTree{
		Name:    s.name,
		SpanID:  DeriveSpanID(traceID, strconv.Itoa(s.seq)),
		StartMS: float64(s.start.Sub(origin)) / float64(time.Millisecond),
	}
	if !s.end.IsZero() {
		out.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		out.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.treeLocked(origin, traceID))
	}
	return out
}

// SpanRecord is the export-oriented flat view of one span: absolute
// endpoints (the OTLP wire format wants unix nanos, not offsets), the
// derived W3C IDs, and the parent linkage. The root span's parent is the
// trace's adopted remote span when one arrived on the wire.
type SpanRecord struct {
	Name         string
	SpanID       string
	ParentSpanID string
	Start, End   time.Time
	Attrs        []Attr
	Root         bool
}

// Records snapshots the trace as a preorder span list plus its W3C trace
// ID — the shape the OTLP exporter consumes.
func (t *Trace) Records() (traceID string, recs []SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span, parentID string)
	walk = func(s *Span, parentID string) {
		rec := SpanRecord{
			Name:         s.name,
			SpanID:       DeriveSpanID(t.w3c, strconv.Itoa(s.seq)),
			ParentSpanID: parentID,
			Start:        s.start,
			End:          s.end,
			Root:         s == t.root,
		}
		if len(s.attrs) > 0 {
			rec.Attrs = append([]Attr(nil), s.attrs...)
		}
		recs = append(recs, rec)
		for _, c := range s.children {
			walk(c, rec.SpanID)
		}
	}
	walk(t.root, t.parent)
	return t.w3c, recs
}

// TraceStore is a bounded ring of finished traces keyed by ID: the
// serving layer records every finished audit's trace here and the trace
// endpoint reads them back. When the ring is full the oldest trace falls
// out.
type TraceStore struct {
	mu   sync.Mutex
	m    map[string]*Trace
	ring []string
	head int
	size int
}

// NewTraceStore returns a store retaining up to capacity traces (<= 0
// selects 256).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceStore{m: make(map[string]*Trace, capacity), ring: make([]string, capacity)}
}

// Put records a finished trace, evicting the oldest when full. Re-putting
// an ID replaces the stored trace without consuming a ring slot.
func (ts *TraceStore) Put(t *Trace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.m[t.id]; ok {
		ts.m[t.id] = t
		return
	}
	if ts.size == len(ts.ring) {
		delete(ts.m, ts.ring[ts.head])
	} else {
		ts.size++
	}
	ts.ring[ts.head] = t.id
	ts.head = (ts.head + 1) % len(ts.ring)
	ts.m[t.id] = t
}

// Get returns the trace recorded under id.
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.m[id]
	return t, ok
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.size
}
