package exp

import (
	"fmt"
	"strings"

	"rankfair/internal/core"
	"rankfair/internal/divergence"
	"rankfair/internal/explain"
	"rankfair/internal/pattern"
	"rankfair/internal/synth"
)

// patternFor builds the single-attribute pattern {attr=label} over a
// bundle's attribute space.
func patternFor(b *synth.Bundle, attr, label string) (pattern.Pattern, error) {
	_, names, _ := b.Table.CatMatrix()
	dicts := b.Table.CatDicts()
	for i, n := range names {
		if n != attr {
			continue
		}
		for c, l := range dicts[i] {
			if l == label {
				p := pattern.Empty(len(names))
				p[i] = int32(c)
				return p, nil
			}
		}
		return nil, fmt.Errorf("exp: attribute %q has no value %q (domain %v)", attr, label, dicts[i])
	}
	return nil, fmt.Errorf("exp: no attribute %q", attr)
}

// ShapleyCase is one Figure 10 column: a detected group, its aggregated
// Shapley values (10a-10c) and the value-distribution comparison of the
// top attribute (10d-10f).
type ShapleyCase struct {
	// Dataset names the bundle.
	Dataset string
	// Group renders the explained pattern.
	Group string
	// Detected reports whether GLOBALBOUNDS (k=49, L=40, τs=50) detected
	// the group, as in the paper's setup.
	Detected bool
	// Shapley is the Figure 10a-10c table (top attributes by aggregated
	// Shapley value).
	Shapley *Figure
	// Distribution is the rendered Figure 10d-10f comparison.
	Distribution string
}

// shapleyTarget names each dataset's case-study group from Section VI-C.
var shapleyTargets = map[string][2]string{
	"student": {"Medu", "primary"},              // p1: mother's education = primary
	"compas":  {"age", "<35"},                   // p2: age younger than 35
	"german":  {"status_checking", "[0,200)DM"}, // p3: checking account 0..200 DM
}

// ShapleyCases reproduces Figure 10: for each dataset, detect groups with
// GLOBALBOUNDS at k=49 with L=40 (the paper's setting), explain the
// case-study group with aggregated Shapley values, and compare the top
// attribute's value distribution between the top-k and the group.
func (c Config) ShapleyCases(bundles []*synth.Bundle) ([]*ShapleyCase, error) {
	var out []*ShapleyCase
	for _, b := range bundles {
		target, ok := shapleyTargets[b.Name]
		if !ok {
			continue
		}
		p, err := patternFor(b, target[0], target[1])
		if err != nil {
			return nil, err
		}
		in, err := b.Input()
		if err != nil {
			return nil, err
		}
		k := 49
		if k > len(in.Rows) {
			k = len(in.Rows) / 2
		}
		params := core.GlobalParams{MinSize: c.Tau, KMin: k, KMax: k, Lower: []int{40}}
		res, err := core.GlobalBounds(in, params)
		if err != nil {
			return nil, err
		}
		detected := false
		for _, g := range res.At(k) {
			if g.SubsetOf(p) { // the group or a generalization of it is reported
				detected = true
				break
			}
		}
		expl, err := explain.Explain(in, b.Table.CatDicts(), p, k, explain.Options{
			Seed: c.Seed, Permutations: 24, BackgroundSize: 48,
		})
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			Title:  fmt.Sprintf("Fig. 10 (%s): aggregated Shapley values of group %s (k=%d, n=%d)", b.Name, expl.Pattern.Format(in.Space, b.Table.CatDicts()), k, expl.GroupSize),
			Header: []string{"attribute", "aggregated Shapley", "|relative to max|"},
		}
		maxAbs := absf(expl.Shapley[0].Value)
		for _, s := range expl.Shapley {
			rel := "-"
			if maxAbs > 0 {
				rel = fmt.Sprintf("%.1f%%", 100*absf(s.Value)/maxAbs)
			}
			fig.Rows = append(fig.Rows, []string{s.Name, fmt.Sprintf("%+.3f", s.Value), rel})
		}
		out = append(out, &ShapleyCase{
			Dataset:      b.Name,
			Group:        expl.Pattern.Format(in.Space, b.Table.CatDicts()),
			Detected:     detected,
			Shapley:      fig,
			Distribution: expl.Comparison.Render(),
		})
	}
	return out, nil
}

// CaseStudy reproduces the Section VI-D comparison with the divergence
// method of [27]: Student data restricted to its first four attributes
// (school, sex, age, address), kmin=kmax=10, τs=50 (support 0.13), L=10 for
// global bounds and α=0.8 for proportional representation.
func (c Config) CaseStudy(student *synth.Bundle) (*Figure, error) {
	const attrs = 4
	in, err := student.InputAttrs(attrs)
	if err != nil {
		return nil, err
	}
	dicts := student.Table.CatDicts()[:attrs]
	k := 10
	render := func(ps []pattern.Pattern) string {
		if len(ps) == 0 {
			return "(none)"
		}
		var parts []string
		for _, p := range ps {
			parts = append(parts, p.Format(in.Space, dicts))
		}
		return strings.Join(parts, " ")
	}

	gRes, err := core.GlobalBounds(in, core.GlobalParams{MinSize: c.Tau, KMin: k, KMax: k, Lower: []int{10}})
	if err != nil {
		return nil, err
	}
	pRes, err := core.PropBounds(in, core.PropParams{MinSize: c.Tau, KMin: k, KMax: k, Alpha: c.Alpha})
	if err != nil {
		return nil, err
	}
	support := float64(c.Tau) / float64(len(in.Rows))
	dRes, err := divergence.Find(in, divergence.Params{MinSupport: support, K: k})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title: fmt.Sprintf("Sec. VI-D case study (%s, %d attrs, k=%d, τs=%d ⇒ support %.2f)",
			student.Name, attrs, k, c.Tau, support),
		Header: []string{"method", "groups", "output"},
	}
	fig.Rows = append(fig.Rows, []string{"PropBounds (α=0.8)", fmt.Sprintf("%d", len(pRes.At(k))), render(pRes.At(k))})
	fig.Rows = append(fig.Rows, []string{"GlobalBounds (L=10)", fmt.Sprintf("%d", len(gRes.At(k))), render(gRes.At(k))})

	topDiv := dRes.Groups
	if len(topDiv) > 5 {
		topDiv = topDiv[:5]
	}
	var topStr []string
	for _, g := range topDiv {
		topStr = append(topStr, fmt.Sprintf("%s (δ=%+.3f)", g.Pattern.Format(in.Space, dicts), g.Divergence))
	}
	fig.Rows = append(fig.Rows, []string{
		"Divergence [27]",
		fmt.Sprintf("%d", len(dRes.Groups)),
		"top-5 by divergence: " + strings.Join(topStr, " "),
	})
	// The paper reports where single-attribute groups land in the
	// divergence ranking ({sex=M} at position 17 in their run).
	for _, g := range gRes.At(k) {
		if g.NumAttrs() == 1 {
			fig.Rows = append(fig.Rows, []string{
				"  divergence rank of " + g.Format(in.Space, dicts), fmt.Sprintf("%d", dRes.RankOf(g)), "",
			})
		}
	}
	return fig, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
