package core

import (
	"context"
	"fmt"

	"rankfair/internal/pattern"
)

// The paper's body focuses on lower bounds; Section III ("Upper bounds")
// observes that for bounds from above the informative answers are the
// *most specific substantial* patterns: if black females exceed the upper
// bound then so do blacks and females, so the most specific description is
// reported. This file implements that variant for both fairness measures
// with ITERTD-style per-k searches.
//
// Interpretation implemented here: report patterns p with s_D(p) ≥ τs and
// s_{R_k(D)}(p) above the bound such that no proper superset of p also has
// size ≥ τs and count above the bound (the most specific members of the
// substantial-and-exceeding set).

// GlobalUpperParams parameterizes upper-bound detection for the global
// measure: a pattern exceeds at k when its top-k count is > U_k.
type GlobalUpperParams struct {
	// MinSize is the size threshold τs on s_D(p).
	MinSize int
	// KMin, KMax delimit the inclusive range of k values.
	KMin, KMax int
	// Upper holds U_k for each k, indexed k-KMin.
	Upper []int
}

func (p *GlobalUpperParams) validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("core: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("core: negative size threshold %d", p.MinSize)
	}
	if len(p.Upper) != p.KMax-p.KMin+1 {
		return fmt.Errorf("core: %d upper bounds for k range [%d,%d]", len(p.Upper), p.KMin, p.KMax)
	}
	return nil
}

// IterTDGlobalUpper detects, for each k, the most specific substantial
// patterns whose top-k count exceeds U_k. Exceeding is downward closed
// (every subset of an exceeding pattern exceeds too), so the search prunes
// subtrees whose root no longer exceeds, and maximality reduces to having
// no exceeding pattern-graph child.
func IterTDGlobalUpper(in *Input, params GlobalUpperParams) (*Result, error) {
	return IterTDGlobalUpperCtx(context.Background(), in, params, 1)
}

// IterTDGlobalUpperCtx is IterTDGlobalUpper with cancellation and per-k
// fan-out: ctx aborts the search mid-lattice with a CanceledError, and the
// independent per-k searches spread over workers goroutines (<= 0 means
// GOMAXPROCS, 1 is serial). Results are identical for every worker count.
func IterTDGlobalUpperCtx(ctx context.Context, in *Input, params GlobalUpperParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		u := params.Upper[k-params.KMin]
		cands := collectExceeding(cn, eng, params.MinSize, k, st, ss, func(sD, cnt int) (candidate, descend bool) {
			c := cnt > u
			return c, c // prune when not exceeding: children have count <= cnt
		})
		groups := mostSpecificByChildLookup(in.Space, cands)
		sortPatterns(groups)
		return groups
	})
}

// PropUpperParams parameterizes upper-bound detection for the proportional
// measure: a pattern exceeds at k when its top-k count is > β·s_D(p)·k/|D|.
type PropUpperParams struct {
	// MinSize is the size threshold τs on s_D(p).
	MinSize int
	// KMin, KMax delimit the inclusive range of k values.
	KMin, KMax int
	// Beta is the proportionality slack, > Alpha of the lower-bound side.
	Beta float64
}

func (p *PropUpperParams) validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("core: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("core: negative size threshold %d", p.MinSize)
	}
	if p.Beta <= 0 {
		return fmt.Errorf("core: beta must be positive, got %v", p.Beta)
	}
	return nil
}

// IterTDPropUpper detects, for each k, the most specific substantial
// patterns whose top-k count exceeds β·s_D(p)·k/|D|. Exceeding is not
// downward closed for the proportional measure, so the search only prunes
// subtrees that provably contain no candidate (count ≤ β·τs·k/|D| bounds
// every descendant's count below every descendant's bound) and maximality
// uses a full superset check.
func IterTDPropUpper(in *Input, params PropUpperParams) (*Result, error) {
	return IterTDPropUpperCtx(context.Background(), in, params, 1)
}

// IterTDPropUpperCtx is IterTDPropUpper with cancellation and per-k
// fan-out (see IterTDGlobalUpperCtx).
func IterTDPropUpperCtx(ctx context.Context, in *Input, params PropUpperParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	n := float64(len(in.Rows))
	eng := newEngine(in)
	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		floor := params.Beta * float64(params.MinSize) * float64(k) / n
		cands := collectExceeding(cn, eng, params.MinSize, k, st, ss, func(sD, cnt int) (candidate, descend bool) {
			c := float64(cnt) > params.Beta*float64(sD)*float64(k)/n
			return c, float64(cnt) > floor
		})
		groups := pattern.MostSpecific(cands)
		sortPatterns(groups)
		return groups
	})
}

// collectExceeding runs a top-down search that prunes on the size threshold
// and on the classify callback's descend decision, returning every pattern
// classified as a candidate. The search polls cn once per node and returns
// early when the caller's context is canceled. Frontier match sets live in
// the traversal's ring arena (see bfs.go); only candidates and descents
// materialize a Pattern.
func collectExceeding(cn *canceler, eng *engine, minSize, k int, stats *Stats, ss *SearchStats, classify func(sD, cnt int) (candidate, descend bool)) []Pattern {
	stats.FullSearches++
	var cands []Pattern
	q := eng.newBFS(k)
	defer q.close()
	for q.more() {
		if cn.stopped() {
			return nil
		}
		u := q.pop()
		stats.NodesExamined++
		sD := len(u.m.all)
		if sD < minSize {
			ss.prunedSize()
			continue
		}
		candidate, descend := classify(sD, eng.topCount(u.m, k))
		var p pattern.Pattern
		if candidate || descend {
			p = q.pat(&u)
		}
		if candidate {
			ss.frontier(p)
			cands = append(cands, p)
		}
		if descend {
			ss.expanded()
			q.expand(&u, p)
		} else {
			ss.prunedBound()
		}
	}
	return cands
}

// mostSpecificByChildLookup filters a downward-closed candidate set to its
// maximal members: candidates none of whose pattern-graph children is a
// candidate.
func mostSpecificByChildLookup(space *pattern.Space, cands []Pattern) []Pattern {
	in := make(map[string]bool, len(cands))
	for _, p := range cands {
		in[p.Key()] = true
	}
	var out []Pattern
	for _, p := range cands {
		maximal := true
	scan:
		for a := 0; a < space.NumAttrs(); a++ {
			if p[a] != pattern.Unbound {
				continue
			}
			for v := 0; v < space.Cards[a]; v++ {
				if in[p.With(a, int32(v)).Key()] {
					maximal = false
					break scan
				}
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}
