package count

import (
	"sort"
	"testing"

	"rankfair/internal/pattern"
)

// FuzzIndexedCounts decodes an arbitrary byte string into a small space,
// row matrix, ranking and pattern, and asserts the indexed counts equal the
// naive scans — the coverage-guided twin of TestIndexMatchesNaive.
func FuzzIndexedCounts(f *testing.F) {
	f.Add([]byte{3, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte{2, 4, 4, 7, 3, 1, 0, 2, 6, 5, 4, 3, 2, 1, 9, 8, 7, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		nAttrs := 1 + int(data[0]%4)
		if len(data) < 1+nAttrs {
			t.Skip()
		}
		space := &pattern.Space{
			Names: make([]string, nAttrs),
			Cards: make([]int, nAttrs),
		}
		for a := 0; a < nAttrs; a++ {
			space.Names[a] = string(rune('A' + a))
			space.Cards[a] = 1 + int(data[1+a]%5)
		}
		body := data[1+nAttrs:]
		nRows := len(body) / (nAttrs + 1)
		if nRows == 0 {
			t.Skip()
		}
		if nRows > 64 {
			nRows = 64
		}
		rows := make([][]int32, nRows)
		for i := range rows {
			rows[i] = make([]int32, nAttrs)
			for a := 0; a < nAttrs; a++ {
				rows[i][a] = int32(int(body[i*(nAttrs+1)+a]) % space.Cards[a])
			}
		}
		// Derive a permutation from the leftover byte per row: a stable
		// sort key ensures a valid ranking regardless of input bytes.
		ranking := make([]int, nRows)
		for i := range ranking {
			ranking[i] = i
		}
		for i := range ranking {
			j := int(body[i*(nAttrs+1)+nAttrs]) % nRows
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		ix := Build(rows, space, ranking)

		// Derive patterns of every arity from the data tail and compare.
		for arity := 0; arity <= nAttrs; arity++ {
			p := pattern.Empty(nAttrs)
			for a := 0; a < arity; a++ {
				p[a] = int32(int(data[(a+arity)%len(data)]) % space.Cards[a])
			}
			if got, want := ix.Count(p), p.Count(rows); got != want {
				t.Fatalf("Count(%v) = %d, naive %d", p, got, want)
			}
			for _, k := range []int{1, nRows / 2, nRows} {
				if k < 1 {
					continue
				}
				if got, want := ix.CountTopK(p, k), p.CountTopK(rows, ranking, k); got != want {
					t.Fatalf("CountTopK(%v, %d) = %d, naive %d", p, k, got, want)
				}
			}
		}
	})
}

// FuzzIntersect decodes an arbitrary byte string into two ascending rank
// lists plus a small indexed dataset, and asserts the posting-list
// intersection primitives match naive list filtering: IntersectInto against
// a mark-and-sweep set intersection, and IntersectPostings against a row
// scan through pattern.Matches. It is the coverage-guided twin of
// TestIntersectMatchesNaive for the rank-space search engine.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 9, 8, 7, 6, 5, 0, 1, 2})
	f.Add([]byte{1, 0})
	f.Add([]byte{16, 255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		// Lists: split the tail in two, dedup+sort each into rank lists.
		// A skewed split exercises the galloping path.
		split := 1 + int(data[0])%(len(data)-1)
		toList := func(bs []byte) []int32 {
			seen := make(map[int32]bool, len(bs))
			for i, b := range bs {
				// Spread values so runs of equal bytes still produce
				// diverse gaps between entries.
				seen[int32(b)+int32(i%3)*256] = true
			}
			out := make([]int32, 0, len(seen))
			for v := range seen {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := toList(data[1:split]), toList(data[split:])
		got := IntersectInto(nil, a, b)
		inB := make(map[int32]bool, len(b))
		for _, x := range b {
			inB[x] = true
		}
		var want []int32
		for _, x := range a {
			if inB[x] {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("IntersectInto(%v, %v) = %v, want %v", a, b, got, want)
			}
		}

		// Index-level: a tiny two-attribute dataset from the same bytes;
		// IntersectPostings must match the naive filter over every
		// two-attribute pattern.
		nRows := len(data)
		if nRows > 48 {
			nRows = 48
		}
		const cardA, cardB = 3, 4
		space := &pattern.Space{Names: []string{"A", "B"}, Cards: []int{cardA, cardB}}
		rows := make([][]int32, nRows)
		ranking := make([]int, nRows)
		for i := 0; i < nRows; i++ {
			rows[i] = []int32{int32(data[i]) % cardA, int32(data[i]>>3) % cardB}
			ranking[i] = i
		}
		for i := range ranking { // derive a permutation from the bytes
			j := int(data[(i*7)%len(data)]) % nRows
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		ix := Build(rows, space, ranking)
		for va := int32(0); va < cardA; va++ {
			for vb := int32(0); vb < cardB; vb++ {
				p := pattern.Pattern{va, vb}
				ranks := ix.IntersectPostings(p)
				var naive []int32
				for r := 0; r < nRows; r++ {
					if p.Matches(rows[ranking[r]]) {
						naive = append(naive, int32(r))
					}
				}
				if len(ranks) != len(naive) {
					t.Fatalf("IntersectPostings(%v) = %v, naive filter %v", p, ranks, naive)
				}
				for i := range ranks {
					if ranks[i] != naive[i] {
						t.Fatalf("IntersectPostings(%v) = %v, naive filter %v", p, ranks, naive)
					}
				}
			}
		}
	})
}
