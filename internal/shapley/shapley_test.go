package shapley

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rankfair/internal/pattern"
	"rankfair/internal/regress"
)

func smallSpace() *pattern.Space {
	return &pattern.Space{Names: []string{"A", "B", "C"}, Cards: []int{2, 3, 2}}
}

// linearModel builds a ridge model with hand-set weights over the encoder's
// one-hot columns.
func linearModel(enc *regress.Encoder, weights []float64, intercept float64) *regress.Ridge {
	return &regress.Ridge{Weights: weights, Intercept: intercept}
}

func randomRows(rng *rand.Rand, sp *pattern.Space, n int) [][]int32 {
	rows := make([][]int32, n)
	for i := range rows {
		r := make([]int32, sp.NumAttrs())
		for a := range r {
			r[a] = int32(rng.Intn(sp.Cards[a]))
		}
		rows[i] = r
	}
	return rows
}

// TestExactEfficiency: Shapley values sum to M(t) - E_b[M(b)].
func TestExactEfficiency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := smallSpace()
		enc := regress.NewEncoder(sp)
		w := make([]float64, enc.Width())
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		m := linearModel(enc, w, rng.NormFloat64())
		bg := randomRows(rng, sp, 8)
		ex, err := NewExplainer(m, enc, bg)
		if err != nil {
			return false
		}
		row := randomRows(rng, sp, 1)[0]
		phi, err := ex.Exact(row)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range phi {
			sum += v
		}
		buf := make([]float64, enc.Width())
		mt := ex.predictRow(row, buf)
		base := 0.0
		for _, b := range bg {
			base += ex.predictRow(b, buf)
		}
		base /= float64(len(bg))
		return math.Abs(sum-(mt-base)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestExactLinearity: for a linear model, the Shapley value of attribute a
// equals sum over its columns of w_j (x_j(t) - E_b[x_j(b)]).
func TestExactLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := smallSpace()
		enc := regress.NewEncoder(sp)
		w := make([]float64, enc.Width())
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		m := linearModel(enc, w, 3)
		bg := randomRows(rng, sp, 6)
		ex, err := NewExplainer(m, enc, bg)
		if err != nil {
			return false
		}
		row := randomRows(rng, sp, 1)[0]
		phi, err := ex.Exact(row)
		if err != nil {
			return false
		}
		// Analytic Shapley for linear models.
		xT := make([]float64, enc.Width())
		enc.Encode(row, xT)
		xB := make([]float64, enc.Width())
		tmp := make([]float64, enc.Width())
		for _, b := range bg {
			enc.Encode(b, tmp)
			for j := range xB {
				xB[j] += tmp[j]
			}
		}
		for j := range xB {
			xB[j] /= float64(len(bg))
		}
		for a := 0; a < sp.NumAttrs(); a++ {
			lo, hi := enc.AttrColumns(a)
			want := 0.0
			for j := lo; j < hi; j++ {
				want += w[j] * (xT[j] - xB[j])
			}
			if math.Abs(phi[a]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestExactDummy: an attribute whose columns all have zero weight gets
// Shapley value zero.
func TestExactDummy(t *testing.T) {
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	w := make([]float64, enc.Width())
	lo, hi := enc.AttrColumns(1)
	for j := 0; j < enc.Width(); j++ {
		if j < lo || j >= hi {
			w[j] = float64(j + 1)
		}
	}
	rng := rand.New(rand.NewSource(5))
	bg := randomRows(rng, sp, 5)
	ex, err := NewExplainer(linearModel(enc, w, 0), enc, bg)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ex.Exact([]int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[1]) > 1e-12 {
		t.Errorf("dummy attribute has Shapley %v, want 0", phi[1])
	}
}

// TestSampledConvergesToExact: the permutation estimator approaches the
// exact values with a large sampling budget.
func TestSampledConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	w := make([]float64, enc.Width())
	for j := range w {
		w[j] = rng.NormFloat64() * 2
	}
	bg := randomRows(rng, sp, 10)
	ex, err := NewExplainer(linearModel(enc, w, 1), enc, bg)
	if err != nil {
		t.Fatal(err)
	}
	row := []int32{1, 1, 1}
	exact, err := ex.Exact(row)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ex.Sampled(row, 4000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for a := range exact {
		if math.Abs(exact[a]-approx[a]) > 0.15 {
			t.Errorf("attr %d: exact %v sampled %v", a, exact[a], approx[a])
		}
	}
}

// TestSampledEfficiencyInExpectation: each permutation telescopes, so the
// sum of sampled Shapley values equals M(t) minus the mean prediction of
// the *sampled* backgrounds — with the full budget over a single-row
// background this is exact.
func TestSampledEfficiencySingleBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	w := make([]float64, enc.Width())
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	bg := randomRows(rng, sp, 1)
	ex, err := NewExplainer(linearModel(enc, w, 2), enc, bg)
	if err != nil {
		t.Fatal(err)
	}
	row := []int32{0, 2, 1}
	phi, err := ex.Sampled(row, 50, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range phi {
		sum += v
	}
	buf := make([]float64, enc.Width())
	want := ex.predictRow(row, buf) - ex.predictRow(bg[0], buf)
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("sampled sum %v, want %v", sum, want)
	}
}

func TestSampledDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	w := make([]float64, enc.Width())
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	bg := randomRows(rng, sp, 4)
	ex, _ := NewExplainer(linearModel(enc, w, 0), enc, bg)
	row := []int32{1, 0, 1}
	a, _ := ex.Sampled(row, 20, rand.New(rand.NewSource(7)))
	b, _ := ex.Sampled(row, 20, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give identical estimates: %v vs %v", a, b)
		}
	}
}

func TestAggregateGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	w := make([]float64, enc.Width())
	for j := range w {
		w[j] = float64(j)
	}
	bg := randomRows(rng, sp, 5)
	ex, _ := NewExplainer(linearModel(enc, w, 0), enc, bg)
	rows := [][]int32{{0, 0, 0}, {0, 1, 1}, {1, 2, 0}}
	p := pattern.Pattern{0, pattern.Unbound, pattern.Unbound} // matches first two
	agg, size, err := ex.AggregateGroup(rows, p, 200, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Fatalf("group size = %d, want 2", size)
	}
	if len(agg) != sp.NumAttrs() {
		t.Fatalf("aggregate length %d", len(agg))
	}
	// No tuple matches this pattern.
	none := pattern.Pattern{pattern.Unbound, pattern.Unbound, 1}
	none[0] = 1
	none[1] = 0
	if _, _, err := ex.AggregateGroup(rows, pattern.Pattern{1, 0, 1}, 10, rng); err == nil {
		t.Error("empty group should fail")
	}
	_ = none
}

func TestExplainerErrors(t *testing.T) {
	sp := smallSpace()
	enc := regress.NewEncoder(sp)
	m := linearModel(enc, make([]float64, enc.Width()), 0)
	if _, err := NewExplainer(nil, enc, [][]int32{{0, 0, 0}}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := NewExplainer(m, enc, nil); err == nil {
		t.Error("empty background should fail")
	}
	if _, err := NewExplainer(m, enc, [][]int32{{0}}); err == nil {
		t.Error("short background row should fail")
	}
	ex, err := NewExplainer(m, enc, [][]int32{{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exact([]int32{0}); err == nil {
		t.Error("short row should fail")
	}
	if _, err := ex.Sampled([]int32{0, 0, 0}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero permutations should fail")
	}
	if _, err := ex.Sampled([]int32{0, 0, 0}, 5, nil); err == nil {
		t.Error("nil rng should fail")
	}
	// Exact limit.
	big := &pattern.Space{Names: make([]string, MaxExactAttrs+1), Cards: make([]int, MaxExactAttrs+1)}
	for i := range big.Cards {
		big.Cards[i] = 2
	}
	bigEnc := regress.NewEncoder(big)
	bigRow := make([]int32, MaxExactAttrs+1)
	bx, err := NewExplainer(linearModel(bigEnc, make([]float64, bigEnc.Width()), 0), bigEnc, [][]int32{bigRow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bx.Exact(bigRow); err == nil {
		t.Error("exceeding exact limit should fail")
	}
}
