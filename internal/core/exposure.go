package core

import (
	"context"
	"fmt"
	"math"
)

// The paper's conclusion lists "the extension of the framework to support
// other fairness measures" as future work. This file adds one such measure
// from the fairness-in-ranking literature the paper builds on: exposure
// (Singh & Joachims, KDD'18, the paper's [34]). Position i in the ranking
// carries exposure 1/log2(i+1); a group's exposure in the top-k is the sum
// over its members' positions. Proportional exposure fairness requires
//
//	exposure_k(p) >= α · s_D(p) · E(k) / |D|
//
// where E(k) is the total exposure of the first k positions. Unlike plain
// counts, exposure distinguishes *where* in the prefix a group sits: a
// group packed into positions k-9..k earns far less exposure than one
// holding positions 1..10, exactly the phenomenon the paper's Section III
// example describes (urban students in positions 1-5 vs 6-10).

// ExposureParams parameterizes proportional-exposure bias detection.
type ExposureParams struct {
	// MinSize is the size threshold τs on s_D(p).
	MinSize int
	// KMin, KMax delimit the inclusive range of k values.
	KMin, KMax int
	// Alpha is the proportional slack, typically in (0, 1].
	Alpha float64
}

func (p *ExposureParams) validate() error {
	if p.KMin < 1 || p.KMax < p.KMin {
		return fmt.Errorf("core: invalid k range [%d,%d]", p.KMin, p.KMax)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("core: negative size threshold %d", p.MinSize)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("core: alpha must be positive, got %v", p.Alpha)
	}
	return nil
}

// PositionExposure returns the exposure weight of 1-based rank position i.
func PositionExposure(i int) float64 {
	return 1 / math.Log2(float64(i)+1)
}

// PatternExposure returns the exposure of pattern p in the top-k of the
// ranking: the sum of position weights over its members there.
func PatternExposure(in *Input, p Pattern, k int) float64 {
	if k > len(in.Ranking) {
		k = len(in.Ranking)
	}
	total := 0.0
	for i := 0; i < k; i++ {
		if p.Matches(in.Rows[in.Ranking[i]]) {
			total += PositionExposure(i + 1)
		}
	}
	return total
}

// IterTDExposure detects, for each k in range, the most general patterns
// with size >= τs whose exposure in the top-k falls below α·s_D(p)·E(k)/|D|.
// The search follows Algorithm 1 with the weighted measure: like the
// proportional count measure, exposure bias is not monotone along the
// pattern graph, so children of unbiased patterns are explored and biased
// patterns close their subtrees (their descendants cannot be most general).
func IterTDExposure(in *Input, params ExposureParams) (*Result, error) {
	return IterTDExposureCtx(context.Background(), in, params, 1)
}

// IterTDExposureCtx is IterTDExposure with cancellation and per-k fan-out:
// ctx aborts the search mid-lattice with a CanceledError, and the
// independent per-k searches spread over workers goroutines (<= 0 means
// GOMAXPROCS, 1 is serial). Results are identical for every worker count.
func IterTDExposureCtx(ctx context.Context, in *Input, params ExposureParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	nf := float64(len(in.Rows))

	// weightOf[row] is the exposure of the row's position (0 beyond k; the
	// prefix sum gives E(k)). Both are read-only under the fan-out, as is
	// the engine with its per-rank weight view.
	weightOf := make([]float64, len(in.Rows))
	wByRank := make([]float64, params.KMax)
	totalExposure := make([]float64, params.KMax+1)
	for i := 0; i < params.KMax; i++ {
		w := PositionExposure(i + 1)
		weightOf[in.Ranking[i]] = w
		wByRank[i] = w
		totalExposure[i+1] = totalExposure[i] + w
	}
	eng := newEngine(in)
	eng.weightByRow = weightOf
	eng.weightByRank = wByRank

	return runPerK(ctx, eng, params.KMin, params.KMax, workers, func(cn *canceler, st *Stats, ss *SearchStats, k int) []Pattern {
		st.FullSearches++
		ek := totalExposure[k]
		filt := newSubsetFilter()
		q := eng.newBFS(k)
		defer q.close()
		for q.more() {
			if cn.stopped() {
				return nil
			}
			u := q.pop()
			st.NodesExamined++
			sD := len(u.m.all)
			if sD < params.MinSize {
				ss.prunedSize()
				continue
			}
			exp := eng.exposureOf(u.m, k)
			if exp < params.Alpha*float64(sD)*ek/nf {
				p := q.pat(&u)
				ss.prunedBound()
				if !filt.dominated(p) {
					ss.frontier(p)
					filt.add(p)
				} else {
					ss.addDominated(1)
				}
				continue
			}
			ss.expanded()
			q.expand(&u, q.pat(&u))
		}
		groups := filt.res
		sortPatterns(groups)
		return groups
	})
}
