// Package service is the serving layer of the reproduction: it turns the
// rankfair library into a long-lived audit engine. It provides a dataset
// registry (content-hashed CSV uploads), a bounded-worker asynchronous job
// manager for the five detection measures, and an LRU result cache with
// in-flight deduplication so repeated audits of the same table — the
// common dashboard workload — are served without recomputing the lattice
// search. cmd/rankfaird exposes it over HTTP.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"rankfair"
	"rankfair/internal/dataset"
)

// DatasetInfo is the registry's public record of one dataset generation.
// A dataset is a living object: row appends advance it through
// monotonically versioned, content-hash-chained generations. The ID is
// derived from the *seed* generation's hash and stays stable across
// appends (it addresses the dataset, not a generation); Hash always names
// the current generation's content, which is what every cache key embeds —
// so audits admitted against an older generation keep their own keys and
// snapshot while new audits see the new content.
type DatasetInfo struct {
	// ID addresses the dataset in the API; it is derived from the seed
	// generation's Hash, so byte-identical seed uploads land on the same
	// ID, and it does not change when appends advance the content.
	ID string `json:"id"`
	// Name is the optional caller-supplied label.
	Name string `json:"name,omitempty"`
	// Hash is the hex SHA-256 of the current generation's CSV bytes —
	// appending rows then hashing is identical to hashing a fresh upload
	// of the concatenated CSV, so the two routes share cache keys. Result
	// cache keys embed it, so cache entries can never serve a stale table.
	Hash string `json:"hash"`
	// Version counts generations, starting at 1 for the seed upload and
	// incrementing once per accepted append batch.
	Version int `json:"version"`
	// Parent is the previous generation's content hash (the chain link);
	// empty for the seed generation.
	Parent string `json:"parent,omitempty"`
	// Rows and Columns describe the decoded table.
	Rows    int `json:"rows"`
	Columns int `json:"columns"`
	// Attributes lists the categorical columns (the pattern space).
	Attributes []string `json:"attributes"`
	// Numeric lists the numeric columns (usable as ranking keys).
	Numeric []string `json:"numeric,omitempty"`
	// Bytes is the size of the current generation's CSV.
	Bytes int64 `json:"bytes"`
	// Created is the seed upload time.
	Created time.Time `json:"created"`
}

type regEntry struct {
	info  DatasetInfo
	table *rankfair.Dataset
	// raw and opts persist the generation's canonical CSV bytes and the
	// seed upload's decode options: appends extend raw (the chained hash
	// is a hash of real, re-uploadable bytes) and the rebuild path
	// re-decodes it with the same options as the seed, which is what makes
	// append-then-audit equivalent to fresh-upload-then-audit even when a
	// batch changes the decoded schema.
	raw  []byte
	opts rankfair.CSVOptions
	// appendMu serializes append transactions against this dataset; the
	// registry lock only guards the commit, so concurrent appends to
	// *different* datasets proceed in parallel while two appends to one
	// dataset chain cleanly.
	appendMu sync.Mutex
}

// Registry holds decoded datasets in memory, keyed by content-derived IDs.
// When the configured capacity is exceeded the least recently *used*
// dataset is evicted (uploads and audits both count as use).
type Registry struct {
	mu    sync.Mutex
	byID  map[string]*regEntry
	used  map[string]time.Time
	cap   int
	clock func() time.Time
	// onEvict, when set, is called with each evicted record — the hook
	// the service uses to drop derived state such as cached analysts, so
	// an eviction actually releases the dataset's memory instead of
	// leaving it pinned elsewhere. It runs under the registry lock, which
	// closes the race where a concurrent re-Add of the same content
	// completes between the eviction and a deferred hook, and the stale
	// hook then purges the re-added dataset's fresh analysts. Hooks must
	// therefore not call back into the registry.
	onEvict func(DatasetInfo)
}

// SetEvictHook registers the eviction callback. Call before serving; the
// hook runs under the registry lock and must not re-enter the registry.
func (r *Registry) SetEvictHook(fn func(DatasetInfo)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvict = fn
}

// NewRegistry returns a registry evicting beyond maxDatasets entries
// (<= 0 means 64).
func NewRegistry(maxDatasets int) *Registry {
	if maxDatasets <= 0 {
		maxDatasets = 64
	}
	return &Registry{
		byID:  make(map[string]*regEntry),
		used:  make(map[string]time.Time),
		cap:   maxDatasets,
		clock: time.Now,
	}
}

// HashCSV returns the content hash the registry would assign to raw CSV
// bytes.
func HashCSV(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// idFromHash shortens a content hash into an addressable dataset ID.
func idFromHash(hash string) string { return "ds-" + hash[:12] }

// Add decodes raw CSV bytes into a dataset and registers it. Re-uploading
// byte-identical content is idempotent and returns the existing record
// with created=false, so the caller can tell a fresh admission (which the
// durable store must learn about) from a no-op.
func (r *Registry) Add(name string, raw []byte, opts rankfair.CSVOptions) (DatasetInfo, bool, error) {
	hash := HashCSV(raw)
	id := idFromHash(hash)

	r.mu.Lock()
	if e, ok := r.byID[id]; ok {
		r.used[id] = r.clock()
		info := e.info
		r.mu.Unlock()
		return info, false, nil
	}
	r.mu.Unlock()

	// Decode outside the lock: CSV parsing is the slow part.
	table, err := rankfair.ReadCSV(bytes.NewReader(raw), opts)
	if err != nil {
		return DatasetInfo{}, false, fmt.Errorf("service: decoding CSV: %w", err)
	}
	if err := table.Validate(); err != nil {
		return DatasetInfo{}, false, fmt.Errorf("service: invalid table: %w", err)
	}
	if table.NumRows() == 0 {
		return DatasetInfo{}, false, fmt.Errorf("service: dataset has no rows")
	}
	info := DatasetInfo{
		ID:         id,
		Name:       name,
		Hash:       hash,
		Version:    1,
		Rows:       table.NumRows(),
		Columns:    table.NumCols(),
		Attributes: table.CategoricalNames(),
		Bytes:      int64(len(raw)),
	}
	for _, c := range table.Columns() {
		if c.Kind == dataset.Numeric {
			info.Numeric = append(info.Numeric, c.Name)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok { // lost a concurrent upload race
		r.used[id] = r.clock()
		return e.info, false, nil
	}
	info.Created = r.clock()
	r.byID[id] = &regEntry{info: info, table: table, raw: raw, opts: opts}
	r.used[id] = info.Created
	for len(r.byID) > r.cap {
		if !r.evictOldestLocked() {
			break
		}
	}
	return info, true, nil
}

// Restore admits a generation recovered from the durable store: the
// caller already materialized the table (seed decode plus append-chain
// replay), so the record lands as-is — Version, Parent and Created come
// from the persisted metadata, not from this process's clock. Restoring
// an ID that is already resident is a no-op returning the resident
// record (a concurrent upload or page-in won).
func (r *Registry) Restore(info DatasetInfo, table *rankfair.Dataset, raw []byte, opts rankfair.CSVOptions) DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[info.ID]; ok {
		r.used[info.ID] = r.clock()
		return e.info
	}
	r.byID[info.ID] = &regEntry{info: info, table: table, raw: raw, opts: opts}
	r.used[info.ID] = r.clock()
	for len(r.byID) > r.cap {
		if !r.evictOldestLocked() {
			break
		}
	}
	return info
}

// evictOldestLocked drops the least recently used dataset and fires the
// eviction hook; it reports whether anything was evicted.
func (r *Registry) evictOldestLocked() bool {
	oldestID := ""
	var oldest time.Time
	for id, at := range r.used {
		if oldestID == "" || at.Before(oldest) {
			oldestID, oldest = id, at
		}
	}
	if oldestID == "" {
		return false
	}
	info := r.byID[oldestID].info
	delete(r.byID, oldestID)
	delete(r.used, oldestID)
	if r.onEvict != nil {
		r.onEvict(info)
	}
	return true
}

// Get returns the decoded table and its record, marking the dataset used.
func (r *Registry) Get(id string) (*rankfair.Dataset, DatasetInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return nil, DatasetInfo{}, false
	}
	r.used[id] = r.clock()
	return e.table, e.info, true
}

// List returns every record, most recently created first.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e.info)
	}
	sortDatasetInfos(out)
	return out
}

// sortDatasetInfos orders records most recently created first, ID as the
// tiebreak — the deterministic ordering the list API paginates over.
func sortDatasetInfos(infos []DatasetInfo) {
	sort.Slice(infos, func(i, j int) bool {
		if !infos[i].Created.Equal(infos[j].Created) {
			return infos[i].Created.After(infos[j].Created)
		}
		return infos[i].ID < infos[j].ID
	})
}

// Evict removes a dataset; it reports whether the ID was present. Cached
// audit results keyed by the dataset's content hash survive eviction by
// design (the hash pins their validity, not the registry entry).
func (r *Registry) Evict(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return false
	}
	delete(r.byID, id)
	delete(r.used, id)
	if r.onEvict != nil {
		r.onEvict(e.info)
	}
	return true
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// appendState is the generation snapshot an append transaction builds on.
type appendState struct {
	table *rankfair.Dataset
	info  DatasetInfo
	raw   []byte
	opts  rankfair.CSVOptions
}

// lockAppend opens an append transaction on a dataset: it acquires the
// entry's append gate (serializing concurrent appends to the same dataset)
// and snapshots the current generation. Callers must unlockAppend the
// returned entry. The registry lock is not held while the transaction
// runs, so reads and audits proceed concurrently against the old
// generation — the copy-on-write derivation never touches it.
func (r *Registry) lockAppend(id string) (*regEntry, appendState, bool) {
	r.mu.Lock()
	e, ok := r.byID[id]
	r.mu.Unlock()
	if !ok {
		return nil, appendState{}, false
	}
	e.appendMu.Lock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID[id] != e { // evicted (and possibly re-added) while we waited
		e.appendMu.Unlock()
		return nil, appendState{}, false
	}
	return e, appendState{table: e.table, info: e.info, raw: e.raw, opts: e.opts}, true
}

// unlockAppend closes an append transaction without committing.
func (e *regEntry) unlockAppend() { e.appendMu.Unlock() }

// commitAppend publishes a new generation built by an append transaction.
// It reports false when the dataset was evicted while the transaction ran
// (the new generation is then discarded — the eviction decision wins).
// The old generation's table remains valid for every reader that already
// holds it; only the registry's pointer advances.
func (r *Registry) commitAppend(id string, e *regEntry, table *rankfair.Dataset, raw []byte, info DatasetInfo) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byID[id] != e {
		return false
	}
	e.table = table
	e.raw = raw
	e.info = info
	r.used[id] = r.clock()
	return true
}
