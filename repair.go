package rankfair

import (
	"fmt"

	"rankfair/internal/rank"
)

// FairTopKConstraint bounds one group's count in a repaired selection.
type FairTopKConstraint = rank.FairTopKConstraint

// FairTopK selects k items maximizing total score subject to per-group
// lower/upper bounds, for groups partitioned by a single attribute (the
// constrained ranking of Celis et al., the paper's fairness definition
// [10]). See Analyst.RepairTopK for the dataset-level entry point.
func FairTopK(scores []float64, groupOf []int, k int, constraints []FairTopKConstraint) ([]int, error) {
	return rank.FairTopK(scores, groupOf, k, constraints)
}

// KendallTau returns Kendall's tau-a between two rankings (permutations of
// the same row indices, best first).
func KendallTau(a, b []int) (float64, error) { return rank.KendallTau(a, b) }

// SpearmanRho returns Spearman's rank correlation between two rankings.
func SpearmanRho(a, b []int) (float64, error) { return rank.SpearmanRho(a, b) }

// NDCG returns the normalized discounted cumulative gain of a ranking at
// cutoff k for the given per-item relevance grades.
func NDCG(relevance []float64, ranking []int, k int) (float64, error) {
	return rank.NDCG(relevance, ranking, k)
}

// RepairTopK builds a repaired top-k selection over one protected
// attribute: the best-ranked k tuples (by the analyst's black-box ranking)
// subject to per-value count bounds. Constraints are keyed by the
// attribute's value labels; absent values are unconstrained. The returned
// row indices are ordered best first.
//
// Detection tells the analyst *which* groups a ranking under-serves;
// RepairTopK produces the minimally perturbed prefix that meets explicit
// representation targets — the companion operation the paper cites as
// orthogonal work ([3], [38]).
func (a *Analyst) RepairTopK(attr string, k int, constraints map[string]FairTopKConstraint) ([]int, error) {
	attrIdx := -1
	for i, n := range a.in.Space.Names {
		if n == attr {
			attrIdx = i
			break
		}
	}
	if attrIdx < 0 {
		return nil, fmt.Errorf("rankfair: no attribute %q", attr)
	}
	card := a.in.Space.Cards[attrIdx]
	cons := make([]FairTopKConstraint, card)
	if a.dicts != nil {
		seen := make(map[string]bool, len(constraints))
		for v := 0; v < card; v++ {
			label := a.dicts[attrIdx][v]
			if c, ok := constraints[label]; ok {
				cons[v] = c
				seen[label] = true
			}
		}
		for label := range constraints {
			if !seen[label] {
				return nil, fmt.Errorf("rankfair: attribute %q has no value %q", attr, label)
			}
		}
	} else if len(constraints) > 0 {
		return nil, fmt.Errorf("rankfair: no value dictionary for attribute %q", attr)
	}
	groupOf := make([]int, len(a.in.Rows))
	for i, row := range a.in.Rows {
		groupOf[i] = int(row[attrIdx])
	}
	// The black box only exposes an order; positions serve as scores so
	// the repair is the minimally perturbed prefix. Repair needs only
	// this O(n) inverse permutation, so it deliberately does not force
	// the analyst's counting index to build — repair shares the engine
	// at the service layer, where the cached Analyst skips re-ranking.
	scores := make([]float64, len(a.in.Rows))
	for pos, ri := range a.in.Ranking {
		scores[ri] = -float64(pos)
	}
	return rank.FairTopK(scores, groupOf, k, cons)
}
