package count

import (
	"rankfair/internal/pattern"
)

// Extend derives the index of an appended dataset from this index without
// rebuilding: the streaming ingestion path's in-place posting-list
// maintenance. rows is the full appended matrix whose first NumRows()
// entries are the receiver's rows unchanged, space describes it (cards may
// only grow — new values gain empty posting slots), and ranking is the full
// new permutation, best first (callers validate it upstream, as with
// Build).
//
// The receiver is immutable and stays fully usable — this is what gives the
// service layer copy-on-write snapshot isolation, with in-flight audits
// searching the old generation while the new one lands. Sharing is
// per posting list: a list none of whose ranks shift (every entry below the
// first insertion position) and which gains no new entry is aliased into
// the new index untouched; only lists the batch actually perturbs are
// rewritten — one ordered insert per appended row per attribute, with
// existing entries remapped through the monotone old-rank → new-rank map.
// A batch that lands at the bottom of the ranking (the common streaming
// shape: new arrivals scoring below the incumbents) therefore shares almost
// every posting list with its parent, and the whole derivation costs
// O(n + b·attrs) instead of Build's O(n·attrs) scatter on top of an
// O(n log n) re-rank.
func (ix *Index) Extend(rows [][]int32, space *pattern.Space, ranking []int) *Index {
	n := len(ix.rows)
	total := len(rows)
	out := &Index{
		rows:     rows,
		ranking:  ranking,
		space:    space,
		rankOf:   make([]int32, total),
		rowAt:    make([][]int32, total),
		postings: make([][][]int32, space.NumAttrs()),
		bitmaps:  make([][]*Bitmap, space.NumAttrs()),
	}
	// One pass over the new ranking: the rank-major views, the monotone
	// old-rank → new-rank map, and the appended rows' insertion positions
	// (ascending by construction).
	newRankOfOld := make([]int32, n)
	inserted := make([]int32, 0, total-n)
	for rank, ri := range ranking {
		out.rankOf[ri] = int32(rank)
		out.rowAt[rank] = rows[ri]
		if ri < n {
			newRankOfOld[ix.rankOf[ri]] = int32(rank)
		} else {
			inserted = append(inserted, int32(rank))
		}
	}
	// Old ranks strictly below the first insertion position are unshifted;
	// with an empty batch nothing shifts at all.
	minIns := total
	if len(inserted) > 0 {
		minIns = int(inserted[0])
	}

	// Per attribute: bucket the appended rows' ranks by value (ascending,
	// since inserted is ascending), then merge each touched list.
	for a := 0; a < space.NumAttrs(); a++ {
		card := space.Cards[a]
		out.postings[a] = make([][]int32, card)
		out.bitmaps[a] = make([]*Bitmap, card)
		var oldLists [][]int32
		var oldBms []*Bitmap
		if a < len(ix.postings) {
			oldLists = ix.postings[a]
			oldBms = ix.bitmaps[a]
		}
		newPer := make([][]int32, card)
		for _, rank := range inserted {
			v := out.rowAt[rank][a]
			newPer[v] = append(newPer[v], rank)
		}
		for v := 0; v < card; v++ {
			var old []int32
			if v < len(oldLists) {
				old = oldLists[v]
			}
			add := newPer[v]
			if len(add) == 0 && (len(old) == 0 || int(old[len(old)-1]) < minIns) {
				out.postings[a][v] = old // untouched: alias, copy-on-write
				if v < len(oldBms) {
					out.bitmaps[a][v] = oldBms[v] // bitmap shares the list's fate
				}
				continue
			}
			merged := make([]int32, 0, len(old)+len(add))
			i, j := 0, 0
			for i < len(old) && j < len(add) {
				or := newRankOfOld[old[i]]
				if or < add[j] {
					merged = append(merged, or)
					i++
				} else {
					merged = append(merged, add[j])
					j++
				}
			}
			for ; i < len(old); i++ {
				merged = append(merged, newRankOfOld[old[i]])
			}
			merged = append(merged, add[j:]...)
			out.postings[a][v] = merged
			if len(merged) >= bitmapMinLen {
				out.bitmaps[a][v] = BitmapFromRanks(merged)
			}
		}
	}
	return out
}
