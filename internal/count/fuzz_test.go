package count

import (
	"testing"

	"rankfair/internal/pattern"
)

// FuzzIndexedCounts decodes an arbitrary byte string into a small space,
// row matrix, ranking and pattern, and asserts the indexed counts equal the
// naive scans — the coverage-guided twin of TestIndexMatchesNaive.
func FuzzIndexedCounts(f *testing.F) {
	f.Add([]byte{3, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte{2, 4, 4, 7, 3, 1, 0, 2, 6, 5, 4, 3, 2, 1, 9, 8, 7, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		nAttrs := 1 + int(data[0]%4)
		if len(data) < 1+nAttrs {
			t.Skip()
		}
		space := &pattern.Space{
			Names: make([]string, nAttrs),
			Cards: make([]int, nAttrs),
		}
		for a := 0; a < nAttrs; a++ {
			space.Names[a] = string(rune('A' + a))
			space.Cards[a] = 1 + int(data[1+a]%5)
		}
		body := data[1+nAttrs:]
		nRows := len(body) / (nAttrs + 1)
		if nRows == 0 {
			t.Skip()
		}
		if nRows > 64 {
			nRows = 64
		}
		rows := make([][]int32, nRows)
		for i := range rows {
			rows[i] = make([]int32, nAttrs)
			for a := 0; a < nAttrs; a++ {
				rows[i][a] = int32(int(body[i*(nAttrs+1)+a]) % space.Cards[a])
			}
		}
		// Derive a permutation from the leftover byte per row: a stable
		// sort key ensures a valid ranking regardless of input bytes.
		ranking := make([]int, nRows)
		for i := range ranking {
			ranking[i] = i
		}
		for i := range ranking {
			j := int(body[i*(nAttrs+1)+nAttrs]) % nRows
			ranking[i], ranking[j] = ranking[j], ranking[i]
		}
		ix := Build(rows, space, ranking)

		// Derive patterns of every arity from the data tail and compare.
		for arity := 0; arity <= nAttrs; arity++ {
			p := pattern.Empty(nAttrs)
			for a := 0; a < arity; a++ {
				p[a] = int32(int(data[(a+arity)%len(data)]) % space.Cards[a])
			}
			if got, want := ix.Count(p), p.Count(rows); got != want {
				t.Fatalf("Count(%v) = %d, naive %d", p, got, want)
			}
			for _, k := range []int{1, nRows / 2, nRows} {
				if k < 1 {
					continue
				}
				if got, want := ix.CountTopK(p, k), p.CountTopK(rows, ranking, k); got != want {
					t.Fatalf("CountTopK(%v, %d) = %d, naive %d", p, k, got, want)
				}
			}
		}
	})
}
