package obs

import "testing"

// BenchmarkExemplarOverhead compares the plain histogram observe path
// against the exemplar-recording one. The exemplar slot is a single
// atomic pointer store on top of the bucket increment, so the two arms
// should be within noise of each other — and of the PR 6 BenchmarkObs
// numbers, since the plain path is byte-for-byte the pre-exemplar code.
func BenchmarkExemplarOverhead(b *testing.B) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
	b.Run("observe", func(b *testing.B) {
		r := NewRegistry()
		h := r.NewHistogram("bench_observe_seconds", "bench", bounds)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%100) / 100)
		}
	})
	b.Run("exemplar", func(b *testing.B) {
		r := NewRegistry()
		h := r.NewHistogram("bench_exemplar_seconds", "bench", bounds)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveExemplar(float64(i%100)/100, traceID)
		}
	})
}
