package core

import (
	"context"

	"rankfair/internal/pattern"
)

// pnode is a node of the persistent search tree maintained by PROPBOUNDS.
// Unlike the global case, a node can oscillate between biased and unbiased:
// the per-pattern bound α·s_D(p)·k/|D| grows with k while the count grows
// only when new top tuples match. Nodes therefore keep their explored
// children even while biased ("orphan" subtrees stay tracked).
type pnode struct {
	p        pattern.Pattern
	sD       int
	cnt      int
	biased   bool
	expanded bool
	children []*pnode
	// ktilde is, for an unbiased node, the smallest k at which the node
	// becomes biased if its count stays unchanged (the k̃ of Section IV-C).
	ktilde int
	// key interns p.Key() on first snapshot use (sortNodesInterned).
	key string
}

// psink collects the side effects of one subtree build or one serial step
// phase: biased frontier nodes, nodes scheduled for re-examination (their
// ktilde is already computed; the bucket insert happens at merge time), and
// work accounting. Each fan-out sink also owns a searcher with its pooled
// partition scratch. Sinks merge into the shared state in deterministic
// order, which keeps the parallel build byte-identical to the serial one.
type psink struct {
	cn     canceler
	sr     searcher
	stats  Stats
	search SearchStats
	biased []*pnode
	sched  []*pnode
}

// propState holds the incremental search state of Algorithm 3.
type propState struct {
	in      *Input
	eng     *engine
	pr      *PropParams
	stats   *Stats
	n       int // |D|
	ctx     context.Context
	workers int
	// search accumulates the run's SearchStats; nil when disabled. Serial
	// phases count into it directly, fan-out workers via their sink.
	search *SearchStats

	roots []*pnode
	// front is the biased frontier with its Res/DRes split maintained
	// incrementally: the full build bulk-seeds it, steps feed it only the
	// nodes that flipped.
	front *domFrontier[pnode]
	// buckets[k] holds unbiased nodes scheduled for re-examination at k
	// (the set K of the paper). Entries can be stale: a node is only
	// processed when its stored ktilde still equals k and it is unbiased.
	buckets [][]*pnode

	res  []Pattern // current result snapshot (sorted)
	dirt bool      // biased set changed since the last snapshot
}

// PropBounds is Algorithm 3 (PROPBOUNDS): detection of groups with biased
// proportional representation, computed incrementally across k. Per k it
// examines only (a) explored nodes satisfied by the newly inserted tuple
// R(D)[k] — walking down from the root and skipping subtrees the tuple does
// not satisfy — and (b) unbiased nodes whose critical value k̃ equals k
// (maintained in the bucket queue K). A biased frontier node whose count
// catches up with its growing bound is expanded (selectiveTD resumes the
// search below it).
func PropBounds(in *Input, params PropParams) (*Result, error) {
	return PropBoundsCtx(context.Background(), in, params, 1)
}

// PropBoundsCtx is PropBounds with cancellation and intra-search fan-out:
// the independent subtrees of the initial build and of resumed frontier
// expansions spread over workers goroutines (<= 0 means GOMAXPROCS, 1 is
// serial), with per-worker sinks merged deterministically so results are
// byte-identical to the serial path. A canceled ctx stops the traversal
// within a bounded number of node expansions and returns a CanceledError.
func PropBoundsCtx(ctx context.Context, in *Input, params PropParams, workers int) (*Result, error) {
	if err := prepare(in, params.KMax, params.validate()); err != nil {
		return nil, err
	}
	if err := preflight(ctx); err != nil {
		return nil, err
	}
	res := &Result{KMin: params.KMin, KMax: params.KMax, Groups: make([][]Pattern, params.KMax-params.KMin+1)}
	st := &propState{
		in:      in,
		eng:     newEngine(in),
		pr:      &params,
		stats:   &res.Stats,
		n:       len(in.Rows),
		ctx:     ctx,
		workers: normWorkers(workers),
		front: newDomFrontier(
			func(nd *pnode) pattern.Pattern { return nd.p },
			func(nd *pnode) *string { return &nd.key }),
		buckets: make([][]*pnode, params.KMax+2),
	}
	st.search = st.eng.newSearchStats(st.workers)
	res.Search = st.search
	if !st.fullBuild(params.KMin) {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	groups, ok := st.snapshot()
	if !ok {
		return nil, canceledErr(ctx, res.Stats.NodesExamined)
	}
	res.Groups[0] = groups
	for k := params.KMin + 1; k <= params.KMax; k++ {
		if !st.step(k) {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		if groups, ok = st.snapshot(); !ok {
			return nil, canceledErr(ctx, res.Stats.NodesExamined)
		}
		res.Groups[k-params.KMin] = groups
	}
	return res, nil
}

// biasedAt evaluates the proportional bias condition at k.
func (s *propState) biasedAt(sD, cnt, k int) bool {
	return float64(cnt) < s.pr.Alpha*float64(sD)*float64(k)/float64(s.n)
}

// computeKtilde returns the smallest k with biasedAt(sD, cnt, k), or
// KMax+1 when the node cannot become biased within the range. The initial
// estimate comes from solving cnt = α·sD·k/|D| and is corrected by a local
// scan to be robust against floating-point rounding.
func (s *propState) computeKtilde(sD, cnt int) int {
	limit := s.pr.KMax + 1
	if sD == 0 {
		return limit
	}
	kt := int(float64(cnt)*float64(s.n)/(s.pr.Alpha*float64(sD))) + 1
	if kt < 1 {
		kt = 1
	}
	for kt > 1 && s.biasedAt(sD, cnt, kt-1) {
		kt--
	}
	for kt <= s.pr.KMax && !s.biasedAt(sD, cnt, kt) {
		kt++
	}
	if kt > s.pr.KMax {
		return limit
	}
	return kt
}

// scheduleInto records the node's k̃ and queues it on the sink; the bucket
// insert happens when the sink merges. Deferring the insert is safe within
// a step: a node scheduled at step k is unbiased at k, so its k̃ is > k and
// the entry cannot be due before the merge runs.
func (s *propState) scheduleInto(nd *pnode, sk *psink) {
	nd.ktilde = s.computeKtilde(nd.sD, nd.cnt)
	if nd.ktilde <= s.pr.KMax {
		sk.sched = append(sk.sched, nd)
	}
}

// merge folds a sink into the shared state. Frontier admissions use the
// sink's own canceler, so a halt during the incremental domination update
// registers at the caller's existing halted checks.
func (s *propState) merge(sk *psink) {
	s.stats.add(sk.stats)
	s.search.merge(&sk.search)
	for _, nd := range sk.biased {
		s.front.add(nd)
	}
	if len(sk.biased) > 0 {
		s.dirt = true
	}
	for _, nd := range sk.sched {
		s.buckets[nd.ktilde] = append(s.buckets[nd.ktilde], nd)
	}
}

// fullBuild runs the complete top-down search at kMin, materializing the
// explored tree, the biased frontier, and the schedule K. The root's
// subtrees build independently on the worker pool; sink merge order is the
// subtree order, matching the serial traversal. On the rank-space engine
// the root units alias the counting index's posting lists (zero setup
// scans on a warm index). It reports false when the build was abandoned
// because the context was canceled.
func (s *propState) fullBuild(k int) bool {
	s.stats.FullSearches++
	units := s.eng.rootUnits(k)
	sinks := make([]psink, len(units))
	children := make([]*pnode, len(units))
	fanOut(s.workers, len(units), func(i int) {
		u := &units[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		sk.stats.NodesExamined++
		sD := len(u.m.all)
		if sD < s.pr.MinSize {
			sk.sr.ss.prunedSize()
			return
		}
		child := &pnode{p: u.p, sD: sD, cnt: s.eng.topCount(u.m, k)}
		children[i] = child
		if s.biasedAt(sD, child.cnt, k) {
			child.biased = true
			sk.sr.ss.prunedBound()
			sk.sr.ss.frontier(child.p)
			sk.biased = append(sk.biased, child)
			return
		}
		s.scheduleInto(child, sk)
		child.expanded = true
		sk.sr.ss.expanded()
		child.children = s.buildChildrenInto(child, u.m, k, sk)
	})
	halted := false
	for i := range units {
		if children[i] != nil {
			s.roots = append(s.roots, children[i])
		}
		s.merge(&sinks[i])
		halted = halted || sinks[i].cn.halted
	}
	s.dirt = true
	return !halted
}

func (s *propState) buildChildrenInto(parent *pnode, m matchSet, k int, sk *psink) []*pnode {
	var kids []*pnode
	n := s.in.Space.NumAttrs()
	for a := parent.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return kids
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.pr.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &pnode{p: parent.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			kids = append(kids, child)
			if s.biasedAt(sD, child.cnt, k) {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			s.scheduleInto(child, sk)
			child.expanded = true
			sk.sr.ss.expanded()
			child.children = s.buildChildrenInto(child, cs.at(v), k, sk)
		}
		sk.sr.release(mk)
	}
	parent.children = kids
	return kids
}

// step advances the state from k-1 to k. It reports false when the step
// was abandoned because the context was canceled.
func (s *propState) step(k int) bool {
	newRow := s.in.Rows[s.in.Ranking[k-1]]

	// Serial phases use one sink for stats and deferred schedule inserts;
	// biased-set membership changes apply directly (no concurrency here).
	ser := &psink{cn: canceler{ctx: s.ctx}}

	// Phase 1 (selectiveTD): walk only explored nodes the new tuple
	// satisfies; their counts grow by one. Orphan subtrees below biased
	// nodes are traversed too so their counts stay fresh.
	var freed []*pnode
	var walk func(nd *pnode)
	walk = func(nd *pnode) {
		if ser.cn.stopped() || !nd.p.Matches(newRow) {
			return
		}
		ser.stats.NodesExamined++
		nd.cnt++
		if nd.biased {
			if !s.biasedAt(nd.sD, nd.cnt, k) {
				nd.biased = false
				s.front.remove(nd)
				s.scheduleInto(nd, ser)
				freed = append(freed, nd)
				s.dirt = true
			}
		} else if s.biasedAt(nd.sD, nd.cnt, k) {
			// Only reachable when α > 1 lets the bound grow faster than
			// one per k; handled for completeness.
			nd.biased = true
			s.search.prunedBound()
			s.search.frontier(nd.p)
			s.front.add(nd)
			s.dirt = true
		} else {
			s.scheduleInto(nd, ser)
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}

	// Phase 2: nodes whose critical k̃ is reached flip to biased unless
	// their count was bumped meanwhile (stale entries are skipped via the
	// ktilde guard).
	for _, nd := range s.buckets[k] {
		if ser.cn.stopped() {
			break
		}
		if nd.biased || nd.ktilde != k {
			continue
		}
		ser.stats.NodesExamined++
		if s.biasedAt(nd.sD, nd.cnt, k) {
			nd.biased = true
			s.search.prunedBound()
			s.search.frontier(nd.p)
			s.front.add(nd)
			s.dirt = true
		} else {
			s.scheduleInto(nd, ser)
		}
	}
	s.buckets[k] = nil
	if ser.cn.halted {
		s.merge(ser)
		return false
	}

	// Phase 3: resume the search below frontier nodes that became unbiased
	// and had no explored children yet. Those subtrees are disjoint, so
	// they expand on the worker pool, one sink each; the node's match set
	// is re-materialized (a posting-list intersection on the rank-space
	// engine) rather than re-scanned.
	var resumed []*pnode
	for _, nd := range freed {
		if !nd.expanded {
			nd.expanded = true
			s.search.expanded()
			resumed = append(resumed, nd)
		}
	}
	sinks := make([]psink, len(resumed))
	fanOut(s.workers, len(resumed), func(i int) {
		nd := resumed[i]
		sk := &sinks[i]
		sk.cn = canceler{ctx: s.ctx}
		sk.sr = s.eng.acquire()
		defer sk.sr.close()
		if s.search != nil {
			sk.sr.ss = &sk.search
		}
		mk := sk.sr.mark()
		m := sk.sr.materialize(nd.p, k)
		s.expandWithInto(nd, m, k, sk)
		sk.sr.release(mk)
	})
	s.merge(ser)
	halted := false
	for i := range sinks {
		s.merge(&sinks[i])
		halted = halted || sinks[i].cn.halted
	}
	return !halted
}

func (s *propState) expandWithInto(nd *pnode, m matchSet, k int, sk *psink) {
	n := s.in.Space.NumAttrs()
	for a := nd.p.MaxAttrIdx() + 1; a < n; a++ {
		card := s.in.Space.Cards[a]
		mk := sk.sr.mark()
		cs := sk.sr.childStats(m, a, card, k, false)
		for v := 0; v < card; v++ {
			if sk.cn.stopped() {
				return
			}
			sk.stats.NodesExamined++
			sD := cs.size(v)
			if sD < s.pr.MinSize {
				sk.sr.ss.prunedSize()
				continue
			}
			child := &pnode{p: nd.p.With(a, int32(v)), sD: sD, cnt: cs.count(v)}
			nd.children = append(nd.children, child)
			if s.biasedAt(sD, child.cnt, k) {
				child.biased = true
				sk.sr.ss.prunedBound()
				sk.sr.ss.frontier(child.p)
				sk.biased = append(sk.biased, child)
				continue
			}
			s.scheduleInto(child, sk)
			child.expanded = true
			sk.sr.ss.expanded()
			s.expandWithInto(child, cs.at(v), k, sk)
		}
		sk.sr.release(mk)
	}
}

// snapshot returns the most general biased patterns. Because biased nodes
// can appear and disappear anywhere in the explored tree (including
// interior nodes with explored descendants), the Res/DRes split lives in
// the incrementally maintained domination frontier: the first snapshot
// bulk-seeds it on the worker pool (markDominatedWitness), later dirty
// snapshots find the split already settled by the step's flips and only
// fold the domination tally into the stats — the same per-pass accounting
// the full recompute used to report. ok is false when the seed was
// abandoned because the context was canceled (the state stays dirty).
func (s *propState) snapshot() (groups []Pattern, ok bool) {
	if !s.dirt {
		return s.res, true
	}
	if s.front.settle(s.ctx, s.workers) {
		return nil, false
	}
	s.search.addDominated(int64(s.front.ndom))
	s.dirt = false
	s.res = s.front.emit()
	return s.res, true
}
