package pattern

import (
	"strings"
	"testing"
)

// FuzzParseKey checks that ParseKey never panics and that accepted keys
// round-trip through Key exactly.
func FuzzParseKey(f *testing.F) {
	f.Add("1|*|3")
	f.Add("*")
	f.Add("0")
	f.Add("12|0|*|*|7")
	f.Add("")
	f.Add("-1|2")
	f.Add("x|y")
	f.Add("0000000007000000000") // int32 overflow regression
	f.Fuzz(func(t *testing.T, key string) {
		p, err := ParseKey(key)
		if err != nil {
			return
		}
		if got := p.Key(); got != key {
			// The only legal mismatch would be non-canonical numerals
			// (e.g. "01"); reject those too by re-parsing.
			q, err2 := ParseKey(got)
			if err2 != nil || !q.Equal(p) {
				t.Fatalf("round trip %q -> %v -> %q", key, p, got)
			}
		}
	})
}

// FuzzMatchesSubset checks the core semantic link on arbitrary inputs:
// whenever p ⊆ q, every row matched by q is matched by p.
func FuzzMatchesSubset(f *testing.F) {
	f.Add("1|*", "1|0", "1|0")
	f.Add("*|*", "2|2", "2|2")
	f.Fuzz(func(t *testing.T, pKey, qKey, rowKey string) {
		p, err := ParseKey(pKey)
		if err != nil {
			return
		}
		q, err := ParseKey(qKey)
		if err != nil || len(q) != len(p) {
			return
		}
		rp, err := ParseKey(rowKey)
		if err != nil || len(rp) != len(p) {
			return
		}
		row := make([]int32, len(rp))
		for i, v := range rp {
			if v == Unbound {
				return // rows must be fully bound
			}
			row[i] = v
		}
		if p.SubsetOf(q) && q.Matches(row) && !p.Matches(row) {
			t.Fatalf("subset violated: p=%q q=%q row=%q", pKey, qKey, strings.Join([]string{rowKey}, ""))
		}
	})
}
