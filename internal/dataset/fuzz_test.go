package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary CSV input never panics and that every
// successfully decoded table is internally consistent and re-encodable.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("name\n\n")
	f.Add("a,a\n1,2\n")
	f.Add(",\n,\n")
	f.Add("h\n1.5\nNaN\n")
	f.Add("x,y,z\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(strings.NewReader(input), CSVOptions{})
		if err != nil {
			return
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("decoded table fails validation: %v\ninput: %q", err, input)
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, tab); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}
