// Command omlint validates an OpenMetrics 1.0 exposition read from stdin
// against the strict in-repo parser (internal/obs.ValidateOpenMetrics):
// family/TYPE/HELP ordering, suffix discipline, label escaping, exemplar
// placement and length, cumulative bucket monotonicity, and the # EOF
// terminator. CI pipes the daemon's negotiated /metrics scrape through it
// so a malformed exposition cannot land green.
//
// Usage:
//
//	curl -H 'Accept: application/openmetrics-text' localhost:8080/metrics | omlint
package main

import (
	"fmt"
	"io"
	"os"

	"rankfair/internal/obs"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omlint: reading stdin:", err)
		os.Exit(1)
	}
	if err := obs.ValidateOpenMetrics(data); err != nil {
		fmt.Fprintln(os.Stderr, "omlint:", err)
		os.Exit(1)
	}
	fmt.Printf("omlint: OK (%d bytes)\n", len(data))
}
