package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rankfair"
)

// biasedCSV builds a deterministic table where every odd row is M with a
// high score and every even row is F with a much lower one, so the top of
// the ranking is all-male: {sex=F} (and the regions riding on even rows)
// are under-represented at every prefix.
func biasedCSV(rows int) []byte {
	var b bytes.Buffer
	b.WriteString("sex,region,score\n")
	regions := []string{"N", "S", "E", "W"}
	for i := 0; i < rows; i++ {
		sex := "M"
		score := 10000 - i
		if i%2 == 0 {
			sex = "F"
			score -= 5000
		}
		fmt.Fprintf(&b, "%s,%s,%d\n", sex, regions[i%4], score)
	}
	return b.Bytes()
}

// mustNew builds a service, failing the test on a store-open error.
func mustNew(t testing.TB, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

// testServer wraps a Service in an httptest server.
func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := mustNew(t, Config{Workers: 4, QueueDepth: 32, CacheEntries: 32, MaxDatasets: 8})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

// doJSON posts a JSON body and decodes the response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// upload posts CSV bytes and returns the dataset record.
func upload(t *testing.T, ts *httptest.Server, raw []byte) DatasetInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets?name=test", "text/csv", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func scoreRanker() RankerSpec {
	return RankerSpec{Columns: []ColumnKeySpec{{Column: "score", Descending: true}}}
}

// awaitReport polls the audit endpoints until the job finishes and
// returns its report.
func awaitReport(t *testing.T, ts *httptest.Server, jobID string) *rankfair.ReportJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view JobView
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/"+jobID, nil, &view); code != http.StatusOK {
			t.Fatalf("GET audit %s: status %d", jobID, code)
		}
		switch view.Status {
		case JobDone:
			var report rankfair.ReportJSON
			if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/"+jobID+"/report", nil, &report); code != http.StatusOK {
				t.Fatalf("GET report %s: status %d", jobID, code)
			}
			return &report
		case JobFailed, JobCanceled:
			t.Fatalf("audit %s ended %s: %s", jobID, view.Status, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("audit %s still %s after deadline", jobID, view.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestUploadAuditReportAllMeasures is the end-to-end cycle of the
// acceptance criteria: upload → audit → report for all five measures.
func TestUploadAuditReportAllMeasures(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(200))

	cases := []struct {
		params  rankfair.AuditParams
		measure string // ReportJSON measure name
	}{
		{rankfair.AuditParams{Measure: "global", MinSize: 10, KMin: 5, KMax: 20, Lower: constants(5, 20, 2)}, "global-lower"},
		{rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8}, "proportional-lower"},
		{rankfair.AuditParams{Measure: "global-upper", MinSize: 10, KMin: 5, KMax: 20, Upper: constants(5, 20, 3)}, "global-upper"},
		{rankfair.AuditParams{Measure: "prop-upper", MinSize: 10, KMin: 5, KMax: 20, Beta: 1.25}, "proportional-upper"},
		{rankfair.AuditParams{Measure: "exposure", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8}, "exposure"},
	}
	for _, tc := range cases {
		t.Run(tc.params.Measure, func(t *testing.T) {
			var view JobView
			code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
				Dataset: info.ID, Ranker: scoreRanker(), Params: tc.params,
			}, &view)
			if code != http.StatusAccepted {
				t.Fatalf("submit: status %d", code)
			}
			report := awaitReport(t, ts, view.ID)
			if report.Measure != tc.measure {
				t.Errorf("report measure = %q, want %q", report.Measure, tc.measure)
			}
			if report.KMin != 5 || report.KMax != 20 {
				t.Errorf("report k range = [%d,%d], want [5,20]", report.KMin, report.KMax)
			}
			if len(report.Results) == 0 {
				t.Errorf("measure %s found no groups on the biased table", tc.params.Measure)
			}
		})
	}

	// The lower-side reports must flag the all-female group.
	var view JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 20, Alpha: 0.8},
	}, &view)
	report := awaitReport(t, ts, view.ID)
	foundF := false
	for _, kg := range report.Results {
		for _, g := range kg.Groups {
			if g.Pattern["sex"] == "F" {
				foundF = true
				if g.TopK != 0 {
					t.Errorf("k=%d: {sex=F} top-k count = %d, want 0 on the all-male prefix", kg.K, g.TopK)
				}
			}
		}
	}
	if !foundF {
		t.Error("proportional report never flagged {sex=F}")
	}
}

func constants(kMin, kMax, v int) []int {
	out := make([]int, kMax-kMin+1)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestConcurrentIdenticalAuditsComputeOnce fires identical audits in
// parallel and proves, via the cache counters surfaced on /metrics, that
// the lattice search ran exactly once.
func TestConcurrentIdenticalAuditsComputeOnce(t *testing.T) {
	svc, ts := testServer(t)
	info := upload(t, ts, biasedCSV(400))

	req := AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 10, KMin: 5, KMax: 60, Alpha: 0.8},
	}
	const clients = 12
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var view JobView
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &view); code != http.StatusAccepted {
				t.Errorf("client %d: status %d", i, code)
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()

	reports := make([]*rankfair.ReportJSON, clients)
	for i, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		reports[i] = awaitReport(t, ts, id)
	}
	for i := 1; i < clients; i++ {
		a, _ := json.Marshal(reports[0])
		b, _ := json.Marshal(reports[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("client %d report differs from client 0", i)
		}
	}

	cs := svc.Cache().Stats()
	if cs.Misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 computation for %d identical audits", cs.Misses, clients)
	}
	if cs.Hits+cs.Shared != clients-1 {
		t.Errorf("cache hits+shared = %d, want %d", cs.Hits+cs.Shared, clients-1)
	}

	// The same counters must be visible on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if got := metricValue(t, raw, "rankfaird_cache_misses_total"); got != 1 {
		t.Errorf("metrics: cache_misses_total = %d, want 1", got)
	}
	if got := metricValue(t, raw, "rankfaird_cache_hits_total"); got != clients-1 {
		t.Errorf("metrics: cache_hits_total = %d, want %d", got, clients-1)
	}
	if got := metricValue(t, raw, "rankfaird_jobs_completed_total"); got != clients {
		t.Errorf("metrics: jobs_completed_total = %d, want %d", got, clients)
	}
}

// metricValue extracts one gauge/counter value from a Prometheus text
// exposition.
func metricValue(t *testing.T, raw []byte, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, raw)
	}
	v, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(60))

	t.Run("upload-empty", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("upload-bad-delimiter", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/datasets?comma=ab", "text/csv", strings.NewReader(tinyCSV))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("audit-malformed-json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/audits", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("audit-unknown-dataset", func(t *testing.T) {
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
			Dataset: "ds-missing", Ranker: scoreRanker(),
			Params: rankfair.AuditParams{Measure: "prop", MinSize: 1, KMin: 1, KMax: 5, Alpha: 0.8},
		}, nil)
		if code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", code)
		}
	})
	t.Run("audit-bad-measure", func(t *testing.T) {
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
			Dataset: info.ID, Ranker: scoreRanker(),
			Params: rankfair.AuditParams{Measure: "bogus", MinSize: 1, KMin: 1, KMax: 5},
		}, nil)
		if code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", code)
		}
	})
	t.Run("audit-kmax-too-large", func(t *testing.T) {
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
			Dataset: info.ID, Ranker: scoreRanker(),
			Params: rankfair.AuditParams{Measure: "prop", MinSize: 1, KMin: 1, KMax: 10_000, Alpha: 0.8},
		}, nil)
		if code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", code)
		}
	})
	t.Run("audit-no-ranker", func(t *testing.T) {
		code := doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
			Dataset: info.ID,
			Params:  rankfair.AuditParams{Measure: "prop", MinSize: 1, KMin: 1, KMax: 5, Alpha: 0.8},
		}, nil)
		if code != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", code)
		}
	})
	t.Run("audit-unknown-id", func(t *testing.T) {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/job-999999", nil, nil); code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", code)
		}
	})
	t.Run("report-unknown-id", func(t *testing.T) {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/audits/job-999999/report", nil, nil); code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", code)
		}
	})
	t.Run("dataset-unknown-id", func(t *testing.T) {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/ds-missing", nil, nil); code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", code)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/ds-missing", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("delete status = %d, want 404", resp.StatusCode)
		}
	})
}

func TestDatasetLifecycleEndpoints(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(40))

	var got DatasetInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, &got); code != http.StatusOK || got.ID != info.ID {
		t.Errorf("GET dataset: code=%d got=%+v", code, got)
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil, &list); code != http.StatusOK || len(list.Datasets) != 1 {
		t.Errorf("GET datasets: code=%d list=%+v", code, list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE: status %d, want 204", resp.StatusCode)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Errorf("GET after evict: status %d, want 404", code)
	}
}

func TestRepairEndpoint(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(60))

	var resp RepairResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/repair", RepairRequest{
		Dataset: info.ID, Ranker: scoreRanker(), Attr: "sex", K: 10,
		Constraints: map[string]rankfair.FairTopKConstraint{"F": {Lower: 4}},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("repair: status %d", code)
	}
	if len(resp.Selected) != 10 {
		t.Fatalf("repair selected %d rows, want 10", len(resp.Selected))
	}
	// biasedCSV puts F on even row indices; the unconstrained top-10 has
	// none, the repaired prefix must hold at least 4.
	females := 0
	for _, ri := range resp.Selected {
		if ri%2 == 0 {
			females++
		}
	}
	if females < 4 {
		t.Errorf("repaired top-10 has %d F rows, want >= 4", females)
	}

	code = doJSON(t, http.MethodPost, ts.URL+"/v1/repair", RepairRequest{
		Dataset: info.ID, Ranker: scoreRanker(), Attr: "nope", K: 10,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("repair with unknown attr: status %d, want 400", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))

	var resp ExplainResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/explain", ExplainRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Group: map[string]string{"sex": "F"}, K: 20,
		Options: rankfair.ExplainOptions{Seed: 1, Permutations: 8, BackgroundSize: 16},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if resp.Group != "{sex=F}" {
		t.Errorf("explain group = %q, want {sex=F}", resp.Group)
	}
	if resp.Explanation == nil || len(resp.Explanation.Shapley) == 0 {
		t.Errorf("explain returned no Shapley attributions: %+v", resp.Explanation)
	}

	code = doJSON(t, http.MethodPost, ts.URL+"/v1/explain", ExplainRequest{
		Dataset: info.ID, Ranker: scoreRanker(), K: 20,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("explain without group: status %d, want 400", code)
	}
}

func TestCancelEndpointAndHealthz(t *testing.T) {
	_, ts := testServer(t)
	info := upload(t, ts, biasedCSV(40))

	var view JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/audits", AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "prop", MinSize: 2, KMin: 2, KMax: 10, Alpha: 0.8},
	}, &view)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/audits/"+view.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel: status %d, want 200", resp.StatusCode)
	}

	var health struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: code=%d status=%q", code, health.Status)
	}
}

// TestRankerSpecCacheKeyDistinct guards the cache-key invariant: specs
// selecting different computations must not collide, even with delimiter
// characters inside column names.
func TestRankerSpecCacheKeyDistinct(t *testing.T) {
	specs := []RankerSpec{
		{Columns: []ColumnKeySpec{{Column: "a,b"}}},
		{Columns: []ColumnKeySpec{{Column: "a"}, {Column: "b"}}},
		{Columns: []ColumnKeySpec{{Column: "score:desc"}}},
		{Columns: []ColumnKeySpec{{Column: "score", Descending: true}}},
		{Columns: []ColumnKeySpec{{Column: "score"}}},
		{Ranking: []int{0, 1, 2}},
		{Ranking: []int{2, 1, 0}},
	}
	seen := map[string]int{}
	for i, s := range specs {
		key := s.CacheKey()
		if j, dup := seen[key]; dup {
			t.Errorf("specs %d and %d collide on cache key %q", j, i, key)
		}
		seen[key] = i
	}
}

// TestCachedAuditServedFromCache runs the same audit twice sequentially
// and checks the second job reports a cache hit without re-computation.
func TestCachedAuditServedFromCache(t *testing.T) {
	svc, ts := testServer(t)
	info := upload(t, ts, biasedCSV(120))
	req := AuditRequest{
		Dataset: info.ID, Ranker: scoreRanker(),
		Params: rankfair.AuditParams{Measure: "global", MinSize: 5, KMin: 5, KMax: 30, Lower: constants(5, 30, 2)},
	}

	var first JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &first)
	awaitReport(t, ts, first.ID)

	var second JobView
	doJSON(t, http.MethodPost, ts.URL+"/v1/audits", req, &second)
	awaitReport(t, ts, second.ID)

	final, ok := svc.Jobs().Get(second.ID)
	if !ok || !final.CacheHit {
		t.Errorf("second audit job = %+v, want cache_hit=true", final)
	}
	if cs := svc.Cache().Stats(); cs.Misses != 1 {
		t.Errorf("cache misses = %d after repeat audit, want 1", cs.Misses)
	}
}
