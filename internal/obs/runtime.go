package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache rate-limits runtime.ReadMemStats: the goroutine/heap/GC
// gauges all read from one snapshot refreshed at most every interval, so a
// scrape costs one ReadMemStats instead of one per gauge and the values
// are mutually consistent.
type memStatsCache struct {
	mu       sync.Mutex
	at       time.Time
	ms       runtime.MemStats
	interval time.Duration
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) >= c.interval {
		runtime.ReadMemStats(&c.ms)
		c.at = now
	}
	return &c.ms
}

// RegisterRuntime registers goroutine, heap and GC gauges under the given
// name prefix (e.g. "rankfaird_").
func RegisterRuntime(r *Registry, prefix string) {
	cache := &memStatsCache{interval: time.Second}
	r.NewGaugeFunc(prefix+"goroutines", "Goroutines currently live.", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.NewGaugeFunc(prefix+"heap_alloc_bytes", "Bytes of allocated heap objects.", func() int64 {
		return int64(cache.get().HeapAlloc)
	})
	r.NewGaugeFunc(prefix+"heap_objects", "Allocated heap objects.", func() int64 {
		return int64(cache.get().HeapObjects)
	})
	r.NewCounterFunc(prefix+"gc_cycles_total", "Completed GC cycles.", func() int64 {
		return int64(cache.get().NumGC)
	})
}
